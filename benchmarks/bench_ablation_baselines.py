"""Ablation — LocBLE vs the alternative estimator designs and baselines.

The paper only compares against the Dartle ranging app; a downstream user
deciding between architectures wants the wider field on a common workload:

* **LocBLE (batch NLS)** — this library's default: no survey, no anchors;
* **Particle filter** — the sequential design alternative (same inputs);
* **Fingerprinting, fresh survey** — the RADAR-family comparator with a
  same-day calibration walk in the same room;
* **Fingerprinting, stale survey** — the same map after the environment
  changed (surveyed in a different channel realisation), the maintenance
  cost fingerprinting carries;
* **Dartle** — the fixed-constant ranger (range error, 1-D).

Shape asserted: LocBLE and the particle filter are close (they consume the
same information); the fresh survey is competitive; the stale survey and
the fixed-constant ranger degrade.
"""

from __future__ import annotations

import numpy as np

from helpers import dominant_env, measure_once, print_series, run_experiment
from repro.baselines.dartle import DartleRanger
from repro.baselines.fingerprint import DistanceFingerprint, FingerprintLocator
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.estimator import EllipticalEstimator
from repro.core.particle import ParticleEstimator
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.motion.deadreckoning import MotionTracker
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import Vec2
from repro.world.scenarios import scenario
from repro.world.trajectory import random_waypoint_walk

ENVS = (2, 3, 4)
N_SEEDS = 5


def _survey(sc, seed) -> DistanceFingerprint:
    """A calibration walk around the room with the beacon at a known spot."""
    rng = np.random.default_rng(seed)
    sim = Simulator(sc.floorplan, rng)
    walk = random_waypoint_walk(
        sc.observer_start, 10, rng, leg_range=(1.5, 3.5),
        bounds=(sc.floorplan.width, sc.floorplan.height))
    rec = sim.simulate(walk, [BeaconSpec("cal", position=sc.beacon_position)])
    trace = rec.rssi_traces["cal"]
    distances = [
        walk.position_at(t).distance_to(sc.beacon_position)
        for t in trace.timestamps()
    ]
    return DistanceFingerprint().fit(distances, trace.values())


def _experiment():
    rows = {k: [] for k in ("locble", "particle", "fp_fresh", "fp_stale",
                            "dartle_range")}
    for idx in ENVS:
        sc = scenario(idx)
        env = dominant_env(sc)
        fresh = _survey(sc, 4242 + idx)      # same room, same day
        stale = _survey(scenario(7), 999)    # surveyed elsewhere / long ago
        for seed in range(N_SEEDS):
            rec, _ = measure_once(sc, 8800 + seed)
            truth = rec.true_position_in_frame("target")
            trace = rec.rssi_traces["target"]
            track = MotionTracker().track(rec.observer_imu.trace)
            ts = trace.timestamps()
            walk_pos = [track.displacement_at(t) for t in ts]
            p = np.array([-w.x for w in walk_pos])
            q = np.array([-w.y for w in walk_pos])
            filtered = AdaptiveNoiseFilter().apply(
                trace.values(), trace.mean_rate_hz())

            try:
                # The full system: EnvAware's class feeds the priors.
                pipeline = LocBLE(
                    estimator=EllipticalEstimator().with_environment(env))
                est = pipeline.estimate(trace, rec.observer_imu.trace)
                rows["locble"].append(est.error_to(truth))
            except (EstimationError, InsufficientDataError):
                rows["locble"].append(10.0)

            pf = ParticleEstimator(np.random.default_rng(seed))
            pf.update_batch(p, q, filtered)
            rows["particle"].append(pf.estimate().error_to(truth))

            for key, fp in (("fp_fresh", fresh), ("fp_stale", stale)):
                try:
                    est_fp = FingerprintLocator(fp).estimate(
                        walk_pos, filtered)
                    rows[key].append(est_fp.distance_to(truth))
                except (EstimationError, InsufficientDataError):
                    rows[key].append(10.0)

            rows["dartle_range"].append(
                DartleRanger().range_error(trace, truth.norm()))
    return {k: float(np.median(v)) for k, v in rows.items()}


def test_ablation_baseline_field(benchmark):
    medians = run_experiment(benchmark, _experiment)
    print_series("Baselines — median error (m), envs #2-#4", medians)

    # The two no-survey designs consuming the same data land close.
    assert abs(medians["locble"] - medians["particle"]) < 2.0
    # LocBLE needs no calibration pass yet stays competitive with the
    # surveyed fingerprint ...
    assert medians["locble"] < medians["fp_fresh"] + 1.5
    # ... and beats the stale survey.
    assert medians["locble"] < medians["fp_stale"]
