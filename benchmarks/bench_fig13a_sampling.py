"""Fig. 13a — impact of the BLE sampling frequency.

Phones sample BLE at different rates (9 Hz iPhone 6s, 8 Hz Nexus 6P); the
paper re-samples its ~9 Hz traces down to 8 / 6.5 / 5.5 Hz by inserting an
idle delay between scans and finds the *medians* stable while the worst case
degrades at lower rates (fewer samples, more susceptibility to noise).
"""

from __future__ import annotations

import numpy as np

from helpers import measure_once, print_series, run_experiment
from repro.ble.scanner import resample_trace
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.world.scenarios import scenario

RATES_HZ = [9.0, 8.0, 6.5, 5.5]
ENVS = (2, 3, 4)  # the paper's environments #2-#4
N_SEEDS = 5


def _experiment():
    # Collect base traces once, then re-sample each to every target rate.
    sessions = []
    for idx in ENVS:
        sc = scenario(idx)
        for seed in range(N_SEEDS):
            rec, _ = measure_once(sc, 3000 + seed)
            sessions.append(rec)

    series = {}
    for rate in RATES_HZ:
        errs = []
        for rec in sessions:
            trace = resample_trace(rec.rssi_traces["target"], rate)
            try:
                est = LocBLE().estimate(trace, rec.observer_imu.trace)
                errs.append(est.error_to(rec.true_position_in_frame("target")))
            except (EstimationError, InsufficientDataError):
                errs.append(10.0)
        series[rate] = {
            "median": float(np.median(errs)),
            "p90": float(np.percentile(errs, 90)),
        }
    return series


def test_fig13a_sampling_frequency(benchmark):
    series = run_experiment(benchmark, _experiment)
    for rate, row in series.items():
        print_series(f"Fig. 13a — {rate} Hz", row)
    print_series("Fig. 13a — paper",
                 {"medians": "stable across rates",
                  "worst case": "degrades at lower rates"})

    medians = [series[r]["median"] for r in RATES_HZ]
    # Medians stay in one band across rates (stability claim): the lowest
    # rate's median is within 1.5 m of the full-rate one.
    assert abs(series[5.5]["median"] - series[9.0]["median"]) < 1.5
    # No catastrophic median anywhere.
    assert max(medians) < 6.0
