"""Fleet scale benchmark: fixes/sec, tail latency and shed rate vs load.

Drives the sharded :class:`~repro.fleet.TrackingFleet` through
:mod:`repro.fleet.loadtest` at several offered-load levels against a
*fixed* fleet capacity, and writes ``BENCH_scale.json`` at the repo root
with, per level:

* offered samples/s and beacon count;
* **fixes/sec** served (accepted fixes per wall-clock processing second);
* **p50/p99 fix latency** (fix-weighted per-tick processing time);
* **shed rate** (fraction of offered samples refused by any admission
  layer — fleet cap, per-shard session cap, RSS-ring pressure).

The top level deliberately exceeds the fleet's session capacity so the
curve shows the admission layers doing their job (nonzero shed, bounded
latency) instead of the unbounded-degradation failure mode.

The run also performs a **live-migration equivalence check at load**: one
level is replayed twice from the same generated stream, once with a
mid-stream migration wave, once without — the two snapshot streams must be
bit-identical, and the verdict is recorded in the report. The check runs
at the within-capacity level: bit-identity is a property of *live
sessions* (they ride the checkpoint wire format), while per-shard
admission of **new** beacons is occupancy-dependent by design — migrating
sessions changes shard occupancy, so under active admission pressure the
two runs may admit different beacon sets. See docs/streaming.md.

Run directly (``python benchmarks/bench_scale.py``), as the CI gate
(``python benchmarks/bench_scale.py --smoke`` — tiny fleet, asserts
nonzero fixes/sec and zero untyped errors, does not rewrite the committed
report), or via pytest (``pytest benchmarks/bench_scale.py -m fleet``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro.fleet import FleetConfig, LoadTestConfig, run_load_test, snapshot_key
from repro.fleet.loadtest import LoadTestResult
from repro.service import ServiceConfig, SessionConfig
from repro.service.health import HealthConfig
from repro.sim.load import LoadConfig, generate_load

REPO_ROOT = Path(__file__).resolve().parents[1]
REPORT_PATH = REPO_ROOT / "BENCH_scale.json"

#: Offered-load levels (beacon counts) for the full run. Fleet capacity is
#: held fixed at N_SHARDS * MAX_SESSIONS_PER_SHARD = 96 sessions, so the
#: top level oversubscribes ~2x and must shed.
LEVELS = (24, 96, 192)
N_SHARDS = 4
MAX_SESSIONS_PER_SHARD = 24
DURATION_S = 45.0
RATE_HZ = 5.0
SEED = 11


def _service_config() -> ServiceConfig:
    return ServiceConfig(
        session=SessionConfig(
            window_s=20.0,
            health=HealthConfig(stale_after_s=6.0, lost_after_s=60.0),
        ),
        imu_window_s=25.0,
        max_sessions=MAX_SESSIONS_PER_SHARD,
    )


def _fleet_config(n_shards: int = N_SHARDS) -> FleetConfig:
    return FleetConfig(n_shards=n_shards, service=_service_config())


def _load_config(n_beacons: int, duration_s: float = DURATION_S) -> LoadConfig:
    return LoadConfig(
        duration_s=duration_s,
        n_beacons=n_beacons,
        template_beacons=min(4, n_beacons),
        rate_hz=RATE_HZ,
        arrival="poisson",
        seed=SEED,
    )


def _level_row(n_beacons: int, result: LoadTestResult) -> Dict[str, object]:
    return {
        "n_beacons": n_beacons,
        "offered_per_s": round(result.offered_per_s, 2),
        "offered_samples": result.offered_samples,
        "ticks": result.ticks,
        "fixes_total": result.fixes_total,
        "fixes_per_s": round(result.fixes_per_s, 2),
        "fix_latency_p50_ms": round(result.fix_latency_p50_ms, 2),
        "fix_latency_p99_ms": round(result.fix_latency_p99_ms, 2),
        "shed_rate": round(result.shed_rate, 4),
        "shed_samples": result.shed_samples,
        "sessions": result.stats["sessions"],
        "sessions_per_shard": result.stats["sessions_per_shard"],
        "admission_refused": result.stats["admission_refused"],
        "wall_s": round(result.wall_s, 2),
        "untyped_errors": result.untyped_errors,
        "errors": len(result.errors),
    }


def run_levels(
    levels=LEVELS, duration_s: float = DURATION_S, n_shards: int = N_SHARDS
) -> List[Dict[str, object]]:
    rows = []
    for n_beacons in levels:
        result = run_load_test(LoadTestConfig(
            fleet=_fleet_config(n_shards),
            load=_load_config(n_beacons, duration_s),
        ))
        rows.append(_level_row(n_beacons, result))
    return rows


def run_migration_check(
    n_beacons: int = LEVELS[0], duration_s: float = DURATION_S
) -> Dict[str, object]:
    """Replay one stream with and without a mid-run migration wave.

    Returns the verdict dict recorded in the report; ``identical`` must be
    True — a migrated session continues snapshot-identically. Runs within
    fleet capacity (no admission pressure): occupancy-dependent admission
    of new beacons is deliberately outside the bit-identity contract.
    """
    load = _load_config(n_beacons, duration_s)
    stream = generate_load(load)
    migrate_at = max(2, len(stream.ticks) // 2)
    base = run_load_test(
        LoadTestConfig(fleet=_fleet_config(), load=load), stream=stream)
    moved = run_load_test(
        LoadTestConfig(fleet=_fleet_config(), load=load,
                       migrate_at_tick=migrate_at), stream=stream)
    identical = sorted(base.snapshots) == sorted(moved.snapshots)
    divergence = None
    if identical:
        for beacon_id, base_seq in base.snapshots.items():
            moved_seq = moved.snapshots[beacon_id]
            if len(base_seq) != len(moved_seq):
                identical, divergence = False, beacon_id
                break
            for a, b in zip(base_seq, moved_seq):
                if snapshot_key(a) != snapshot_key(b):
                    identical, divergence = False, f"{beacon_id}@t={a.t}"
                    break
            if not identical:
                break
    return {
        "n_beacons": n_beacons,
        "migrate_at_tick": migrate_at,
        "migrations": len(moved.migrations),
        "identical": identical,
        "first_divergence": divergence,
    }


def run_full() -> Dict[str, object]:
    levels = run_levels()
    migration = run_migration_check()
    return {
        "description": (
            "Sharded tracking fleet under generated load: fixes/sec, "
            "fix-latency percentiles and shed rate vs offered load, plus a "
            "live-migration bit-identity check at load."
        ),
        "python": platform.python_version(),
        "config": {
            "n_shards": N_SHARDS,
            "max_sessions_per_shard": MAX_SESSIONS_PER_SHARD,
            "capacity_sessions": N_SHARDS * MAX_SESSIONS_PER_SHARD,
            "duration_s": DURATION_S,
            "rate_hz": RATE_HZ,
            "arrival": "poisson",
            "seed": SEED,
        },
        "levels": levels,
        "migration_check": migration,
    }


def run_smoke() -> Dict[str, object]:
    """The CI gate: a tiny fleet that must serve fixes with typed failures
    only. Small enough for a pull-request loop (~10 s)."""
    rows = run_levels(levels=(8,), duration_s=30.0, n_shards=2)
    return {"levels": rows}


# -- pytest entry points (excluded from tier-1 via the fleet marker) ----------


@pytest.mark.fleet
def test_bench_scale_smoke():
    report = run_smoke()
    row = report["levels"][0]
    assert row["fixes_per_s"] > 0, row
    assert row["untyped_errors"] == 0, row


@pytest.mark.fleet
def test_bench_scale_migration_identical():
    verdict = run_migration_check(n_beacons=12, duration_s=30.0)
    assert verdict["migrations"] > 0, verdict
    assert verdict["identical"], verdict


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI gate: nonzero fixes/sec, zero untyped "
                             "errors; does not rewrite BENCH_scale.json")
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_smoke()
        row = report["levels"][0]
        print(json.dumps(row, indent=2))
        ok = row["fixes_per_s"] > 0 and row["untyped_errors"] == 0
        print("smoke:", "OK" if ok else "FAILED")
        return 0 if ok else 1

    report = run_full()
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["levels"]:
        print(f"beacons={row['n_beacons']:4d} "
              f"offered={row['offered_per_s']:7.1f}/s "
              f"fixes/s={row['fixes_per_s']:7.1f} "
              f"p50={row['fix_latency_p50_ms']:7.1f}ms "
              f"p99={row['fix_latency_p99_ms']:8.1f}ms "
              f"shed={row['shed_rate']:6.1%} "
              f"untyped={row['untyped_errors']}")
    mig = report["migration_check"]
    print(f"migration check: {mig['migrations']} sessions moved -> "
          f"{'bit-identical' if mig['identical'] else 'DIVERGED'}")
    print(f"wrote {REPORT_PATH}")
    ok = (all(r["untyped_errors"] == 0 and r["fixes_per_s"] > 0
              for r in report["levels"])
          and mig["identical"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
