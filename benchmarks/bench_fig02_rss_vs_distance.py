"""Fig. 2 — RSS vs distance on different smartphones.

The paper walks away from a beacon with three phones and shows that the
absolute RSS curves are vertically offset per device while the *trend* is
shared. We regenerate the same walk-away sweep for three phone profiles and
assert: (a) every phone's smoothed curve decreases with distance, (b) the
device offsets reproduce the vertical separation, (c) de-meaned curves agree
far more than the raw ones (same pattern despite offsets).
"""

from __future__ import annotations

import numpy as np

from helpers import print_series, run_experiment
from repro.ble.devices import PHONES
from repro.filters.smoothing import moving_average
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import Vec2
from repro.world.floorplan import Floorplan
from repro.world.trajectory import straight_walk

#: The paper's x-axis checkpoints (metres).
DISTANCES = [0.5, 1.5, 3.0, 4.6, 6.1]
PHONE_NAMES = ["iphone_5s", "nexus_5x", "nexus_6"]


def _walkaway_curve(phone_name: str, seed: int) -> np.ndarray:
    """Mean smoothed RSS at each checkpoint distance for one phone."""
    rng = np.random.default_rng(seed)
    plan = Floorplan("corridor", 10.0, 4.0)
    sim = Simulator(plan, rng, phone=PHONES[phone_name])
    beacon = Vec2(0.5, 2.0)
    walk = straight_walk(Vec2(1.0, 2.0), 0.0, 6.5, speed=0.7)
    rec = sim.simulate(walk, [BeaconSpec("b", position=beacon)])
    trace = rec.rssi_traces["b"]
    smoothed = moving_average(trace.values(), 9)
    ts = trace.timestamps()
    curve = []
    for d in DISTANCES:
        # Time at which the observer is d metres from the beacon.
        t_at = walk.times[0] + max(d - 0.5, 0.0) / 0.7
        idx = int(np.argmin(np.abs(ts - t_at)))
        curve.append(float(smoothed[idx]))
    return np.array(curve)


def _experiment():
    curves = {}
    for name in PHONE_NAMES:
        runs = np.stack([_walkaway_curve(name, seed) for seed in range(5)])
        curves[name] = runs.mean(axis=0)
    return curves


def test_fig02_rss_vs_distance(benchmark):
    curves = run_experiment(benchmark, _experiment)

    print_series(
        "Fig. 2 — RSS (dBm) at distances " + str(DISTANCES),
        {name: np.round(c, 1).tolist() for name, c in curves.items()},
    )

    # (a) Every curve decreases from near to far.
    for name, c in curves.items():
        assert c[0] > c[-1] + 8.0, f"{name} curve does not fall with distance"

    # (b) Device offsets separate the curves roughly by the profile deltas.
    mean_levels = {n: float(np.mean(c)) for n, c in curves.items()}
    assert mean_levels["nexus_6"] > mean_levels["nexus_5x"], (
        "nexus_6's positive chipset offset should sit above nexus_5x's "
        "negative one"
    )

    # (c) Trends agree once offsets are removed: de-meaned curves are close.
    demeaned = {n: c - np.mean(c) for n, c in curves.items()}
    raw_spread = np.ptp([mean_levels[n] for n in PHONE_NAMES])
    trend_mismatch = max(
        float(np.max(np.abs(demeaned[a] - demeaned[b])))
        for a in PHONE_NAMES
        for b in PHONE_NAMES
    )
    print_series(
        "Fig. 2 — shape",
        {"raw offset spread (dB)": raw_spread,
         "max trend mismatch (dB)": trend_mismatch},
    )
    assert trend_mismatch < raw_spread + 6.0
