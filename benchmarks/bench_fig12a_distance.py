"""Fig. 12a — measurement accuracy vs target distance (outdoor lot).

Eleven test points spaced 2.8 m apart, five repeats each: the paper finds
~1 m accuracy within 5.6 m, < 3 m within 11.2 m, and a sharp degradation
past 14 m (the log model flattens out; BLE proximity itself is only valid to
~15 m). We sweep the same checkpoints in the outdoor scenario and assert the
near/far shape and the degradation knee.
"""

from __future__ import annotations

import math

import numpy as np

from helpers import print_series, run_experiment
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import Vec2
from repro.world.floorplan import Floorplan
from repro.world.trajectory import l_shape

DISTANCES = [2.8, 5.6, 8.4, 11.2, 14.0]
N_REPEATS = 5
BEARING_RAD = math.radians(12.0)  # the user roughly faces the target


def _experiment():
    series = {}
    for d in DISTANCES:
        errs = []
        for seed in range(N_REPEATS):
            rng = np.random.default_rng(int(d * 100) + seed)
            plan = Floorplan("lot", 30.0, 20.0, outdoor=True)
            sim = Simulator(plan, rng)
            start = Vec2(2.0, 8.0)
            beacon = start + Vec2.from_polar(d, BEARING_RAD)
            walk = l_shape(start, 0.0, leg1=2.8, leg2=2.2)
            rec = sim.simulate(walk, [BeaconSpec("b", position=beacon)])
            try:
                est = LocBLE().estimate(rec.rssi_traces["b"],
                                        rec.observer_imu.trace)
                errs.append(est.error_to(rec.true_position_in_frame("b")))
            except (EstimationError, InsufficientDataError):
                errs.append(d)  # no estimate at all: count the full distance
        series[d] = float(np.mean(errs))
    return series


def test_fig12a_distance_sweep(benchmark):
    series = run_experiment(benchmark, _experiment)
    print_series(
        "Fig. 12a — mean error (m) vs target distance",
        {f"{d:.1f} m": v for d, v in series.items()},
    )
    print_series(
        "Fig. 12a — paper",
        {"<= 5.6 m": "~1 m", "<= 11.2 m": "< 3 m", "> 14 m": "> 3.5 m"},
    )

    # Near range is metre-level.
    assert series[2.8] < 2.0
    assert series[5.6] < 2.0

    # Error grows with distance; the far end is clearly degraded.
    assert series[14.0] > series[5.6]
    assert series[14.0] > 3.5

    # The knee: within ~8.4 m errors stay moderate.
    assert series[8.4] < series[14.0]
