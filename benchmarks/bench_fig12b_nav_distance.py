"""Fig. 12b — estimation error vs remaining distance while navigating.

An observer ~16.5 m away first measures, then walks toward the target under
LocBLE guidance while the regression keeps absorbing fresh advertisements.
The paper records the estimation accuracy at decreasing distances (17 → 3 m)
and sees ~5 m error initially (long distance, little data), improving as the
observer approaches, down to ~1 m at 3 m.
"""

from __future__ import annotations

import math

import numpy as np

from helpers import print_series, run_experiment
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.estimator import EllipticalEstimator
from repro.core.navigation import Navigator
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import LocationEstimate, Vec2
from repro.world.floorplan import Floorplan
from repro.world.trajectory import Trajectory, l_shape

CHECKPOINTS = [17.0, 14.0, 11.0, 9.0, 6.0, 3.0]
N_REPEATS = 5
START_DISTANCE = 16.5


def _approach_run(seed: int) -> dict:
    """Navigate from ~16.5 m; record estimate error at each checkpoint."""
    rng = np.random.default_rng(seed)
    plan = Floorplan("lot", 24.0, 24.0, outdoor=True)
    sim = Simulator(plan, rng)
    start = Vec2(2.5, 2.5)
    heading = math.radians(30.0)
    beacon = start + Vec2.from_polar(START_DISTANCE, heading + 0.15)

    walk = l_shape(start, heading, leg1=2.8, leg2=2.2)
    rec = sim.simulate(walk, [BeaconSpec("b", position=beacon)])
    truth_frame = walk.to_frame(beacon)
    try:
        est = LocBLE().estimate(rec.rssi_traces["b"], rec.observer_imu.trace)
    except (EstimationError, InsufficientDataError):
        est = LocationEstimate(position=Vec2(10.0, 0.0))

    trace = rec.rssi_traces["b"]
    p_pool = [-walk.displacement_in_frame(t).x for t in trace.timestamps()]
    q_pool = [-walk.displacement_in_frame(t).y for t in trace.timestamps()]
    rss_pool = list(trace.values())

    nav = Navigator(arrival_radius_m=0.5, max_leg_m=2.0)
    believed = walk.displacement_in_frame(walk.times[-1])
    true_pos = believed
    nav_heading = math.pi / 2
    t_cursor = walk.times[-1] + 1.0
    estimator = EllipticalEstimator()
    anf = AdaptiveNoiseFilter()
    errors_at = {}

    def record(distance_now: float) -> None:
        for cp in CHECKPOINTS:
            if cp not in errors_at and distance_now <= cp:
                errors_at[cp] = est.position.distance_to(truth_frame)

    record(truth_frame.distance_to(believed))
    for _ in range(24):
        ins = nav.instruction(believed, nav_heading, est)
        if ins.arrived:
            break
        believed_from = believed
        believed, nav_heading = nav.waypoint_after(believed, nav_heading, ins)
        actual_heading = nav_heading + rng.normal(0.0, math.radians(3.5))
        actual_length = ins.distance_m * (1.0 + rng.normal(0.0, 0.05))
        true_from = true_pos
        true_pos = true_pos + Vec2.from_polar(actual_length, actual_heading)

        wf, wt = walk.from_frame(true_from), walk.from_frame(true_pos)
        if wf.distance_to(wt) >= 0.3:
            leg = Trajectory([wf, wt],
                             [t_cursor, t_cursor + wf.distance_to(wt) / 1.1])
            leg_rec = sim.simulate(leg, [BeaconSpec("b", position=beacon)],
                                   t_pad_s=0.0)
            for s in leg_rec.rssi_traces["b"].samples:
                frac = (s.timestamp - leg.times[0]) / max(leg.duration, 1e-9)
                bp = believed_from + (believed - believed_from) * min(max(frac, 0.0), 1.0)
                p_pool.append(-bp.x)
                q_pool.append(-bp.y)
                rss_pool.append(s.rssi)
            t_cursor = leg.times[-1] + 1.0
            try:
                filtered = anf.apply(np.asarray(rss_pool), 8.0)
                fit = EllipticalEstimator().fit(
                    np.asarray(p_pool), np.asarray(q_pool), filtered)
                est = LocationEstimate(position=fit.position)
            except (EstimationError, InsufficientDataError):
                pass
        record(beacon.distance_to(walk.from_frame(true_pos)))
    return errors_at


def _experiment():
    per_checkpoint = {cp: [] for cp in CHECKPOINTS}
    for seed in range(N_REPEATS):
        run = _approach_run(seed)
        for cp, err in run.items():
            per_checkpoint[cp].append(err)
    return {
        cp: float(np.mean(v)) if v else float("nan")
        for cp, v in per_checkpoint.items()
    }


def test_fig12b_navigation_vs_distance(benchmark):
    series = run_experiment(benchmark, _experiment)
    print_series(
        "Fig. 12b — mean estimation error (m) at remaining distance",
        {f"{cp:.0f} m": v for cp, v in series.items()},
    )
    print_series("Fig. 12b — paper", {"17 m": "~5 m", "3 m": "~1 m"})

    valid = {cp: v for cp, v in series.items() if not math.isnan(v)}
    far = np.mean([v for cp, v in valid.items() if cp >= 11.0])
    near = np.mean([v for cp, v in valid.items() if cp <= 6.0])

    # The error improves as the observer approaches, ending near ~1-2 m.
    assert near < far
    assert near < 3.0
    assert series[3.0] < 2.5
