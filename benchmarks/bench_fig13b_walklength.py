"""Fig. 13b — how far does the observer need to walk?

The paper truncates measurement traces to 80 / 70 / 50 % of their samples
and finds accuracy stable at 80 % (~3 m of walking), degrading at 70 % and
much worse at 50 % — LocBLE needs most of the L-walk to capture the signal
geometry (and below ~3 m the second leg is barely present).
"""

from __future__ import annotations

import numpy as np

from helpers import measure_once, print_series, run_experiment
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.world.scenarios import scenario

FRACTIONS = [1.0, 0.8, 0.7, 0.5]
ENVS = (2, 3, 4)
N_SEEDS = 5


def _experiment():
    sessions = []
    for idx in ENVS:
        sc = scenario(idx)
        for seed in range(N_SEEDS):
            rec, _ = measure_once(sc, 4000 + seed)
            sessions.append(rec)

    series = {}
    for frac in FRACTIONS:
        errs = []
        for rec in sessions:
            trace = rec.rssi_traces["target"].truncated_fraction(frac)
            try:
                est = LocBLE().estimate(trace, rec.observer_imu.trace)
                errs.append(est.error_to(rec.true_position_in_frame("target")))
            except (EstimationError, InsufficientDataError):
                # Too little data to even regress: a hard failure.
                errs.append(12.0)
        series[frac] = float(np.median(errs))
    return series


def test_fig13b_walk_length(benchmark):
    series = run_experiment(benchmark, _experiment)
    print_series(
        "Fig. 13b — median error (m) vs fraction of data kept",
        {f"{int(f * 100)} %": v for f, v in series.items()},
    )
    print_series("Fig. 13b — paper",
                 {"80 %": "stable (~3 m walk suffices)",
                  "70 %": "starts to degrade", "50 %": "much worse"})

    # Stable at 80 % of the data...
    assert series[0.8] < series[1.0] + 1.0
    # ...and clearly degraded at 50 %.
    assert series[0.5] > series[1.0]
    assert series[0.5] > series[0.8]
