"""Fig. 10b — overall navigation error CDF ("LocBLE in action", Sec. 7.3).

The paper hides an Estimote beacon in an office, measures, then navigates to
the estimate with dead reckoning; over 20 runs at 4–12 m initial distance
the *overall* error (distance from the navigation destination to the true
beacon) has median 1.5 m, 75th percentile 2 m and maximum < 3 m.

We regenerate the loop with the refinement the system performs in practice
(Fig. 12b): while walking toward the target, freshly heard advertisements
are matched against the dead-reckoned track and the regression re-runs, so
the estimate sharpens as the user closes in. Dead reckoning drifts with the
Sec. 5.2 accuracies (heading ~3.5°, step length ~5 %).
"""

from __future__ import annotations

import math

import numpy as np

from helpers import cdf_points, print_series, run_experiment
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.estimator import EllipticalEstimator
from repro.core.navigation import Navigator
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import LocationEstimate, Vec2
from repro.world.floorplan import Floorplan
from repro.world.trajectory import Trajectory, l_shape

N_RUNS = 20
HEADING_NOISE_RAD = math.radians(3.5)
LENGTH_NOISE_FRAC = 0.05


def navigate_once(seed: int, start_distance=None) -> float:
    """One measure-then-navigate run; returns the overall error (m)."""
    rng = np.random.default_rng(seed)
    plan = Floorplan("office", 20.0, 20.0)
    sim = Simulator(plan, rng)
    start = Vec2(2.0, 2.0)
    heading = rng.uniform(0.0, np.pi / 3)
    distance = start_distance or rng.uniform(4.0, 12.0)
    bearing = heading + rng.uniform(-0.35, 0.35)
    beacon = start + Vec2.from_polar(distance, bearing)
    beacon = Vec2(min(max(beacon.x, 0.5), 19.5), min(max(beacon.y, 0.5), 19.5))

    # Measure phase: the L-walk through the full pipeline.
    walk = l_shape(start, heading, leg1=2.8, leg2=2.2)
    rec = sim.simulate(walk, [BeaconSpec("b", position=beacon)])
    est = LocBLE().estimate(rec.rssi_traces["b"], rec.observer_imu.trace)

    # Matched (p, q, rss) pool seeding the incremental re-estimation: the
    # believed (dead-reckoned) displacement at each RSS sample.
    trace = rec.rssi_traces["b"]
    p_pool = [-walk.displacement_in_frame(t).x for t in trace.timestamps()]
    q_pool = [-walk.displacement_in_frame(t).y for t in trace.timestamps()]
    rss_pool = list(trace.values())

    nav = Navigator(arrival_radius_m=0.5, max_leg_m=2.0)
    believed = walk.displacement_in_frame(walk.times[-1])
    true_pos = believed
    nav_heading = math.pi / 2
    t_cursor = walk.times[-1] + 1.0
    estimator = EllipticalEstimator()
    anf = AdaptiveNoiseFilter()

    for _ in range(16):
        ins = nav.instruction(believed, nav_heading, est)
        if ins.arrived:
            break
        believed_from = believed
        believed, nav_heading = nav.waypoint_after(believed, nav_heading, ins)
        actual_heading = nav_heading + rng.normal(0.0, HEADING_NOISE_RAD)
        actual_length = ins.distance_m * (1.0 + rng.normal(0.0, LENGTH_NOISE_FRAC))
        true_from = true_pos
        true_pos = true_pos + Vec2.from_polar(actual_length, actual_heading)

        # Hear fresh advertisements along the true walked leg; match them to
        # the *believed* track (what the phone's DR knows).
        wf, wt = walk.from_frame(true_from), walk.from_frame(true_pos)
        if wf.distance_to(wt) < 0.3:
            continue
        leg = Trajectory([wf, wt], [t_cursor, t_cursor + wf.distance_to(wt) / 1.1])
        leg_rec = sim.simulate(leg, [BeaconSpec("b", position=beacon)],
                               t_pad_s=0.0)
        leg_trace = leg_rec.rssi_traces["b"]
        for s in leg_trace.samples:
            frac = (s.timestamp - leg.times[0]) / max(leg.duration, 1e-9)
            frac = min(max(frac, 0.0), 1.0)
            bp = believed_from + (believed - believed_from) * frac
            p_pool.append(-bp.x)
            q_pool.append(-bp.y)
            rss_pool.append(s.rssi)
        t_cursor = leg.times[-1] + 1.0

        # Re-run the regression on everything heard so far.
        try:
            filtered = anf.apply(np.asarray(rss_pool), 8.0)
            fit = estimator.fit(np.asarray(p_pool), np.asarray(q_pool), filtered)
            est = LocationEstimate(position=fit.position, gamma=fit.gamma,
                                   n=fit.n)
        except (EstimationError, InsufficientDataError):
            pass

    world_final = walk.from_frame(true_pos)
    return world_final.distance_to(beacon)


def _experiment():
    return [navigate_once(seed) for seed in range(N_RUNS)]


def test_fig10b_navigation_cdf(benchmark):
    errors = run_experiment(benchmark, _experiment)
    errors = sorted(errors)
    stats = {
        "median (m)": float(np.median(errors)),
        "p75 (m)": float(np.percentile(errors, 75)),
        "max (m)": float(np.max(errors)),
        "paper": "median 1.5 m, p75 2 m, max < 3 m",
    }
    print_series("Fig. 10b — overall navigation error", stats)
    print("  CDF:", [(round(e, 2), round(f, 2)) for e, f in cdf_points(errors)])

    # Shape: navigation lands near the beacon for most runs; tails are
    # wider than the paper's (our measurement errors are larger at range).
    assert stats["median (m)"] < 2.5
    assert stats["p75 (m)"] < 4.5
