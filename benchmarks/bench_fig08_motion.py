"""Fig. 8 / Sec. 5.2 — step and turn detection accuracy.

The paper reports ~94.77 % step-based moving-distance accuracy and an
average turn-angle error of 3.45°. We synthesise walks and L-turns, run the
detectors, and assert: step counts track ground truth, distance accuracy
stays above 85 %, and mean turn-angle error stays below 6° (both within
striking distance of the paper on an independent gait model).
"""

from __future__ import annotations

import math

import numpy as np

from helpers import print_series, run_experiment
from repro.imu.sensors import ImuSynthesizer
from repro.motion.deadreckoning import MotionTracker
from repro.motion.stepcounter import StepDetector
from repro.motion.steplength import walking_distance
from repro.motion.turndetector import TurnDetector
from repro.types import Vec2
from repro.world.trajectory import l_shape, straight_walk

N_SEEDS = 12


def _experiment():
    step_count_errors = []
    distance_ratios = []
    angle_errors_deg = []
    for seed in range(N_SEEDS):
        rng = np.random.default_rng(seed)
        # Distance accuracy on straight walks of varying length.
        length = 4.0 + 1.5 * (seed % 4)
        walk = straight_walk(Vec2(0, 0), 0.0, length)
        out = ImuSynthesizer(rng).synthesize(walk)
        steps = StepDetector().detect(out.trace)
        step_count_errors.append(abs(len(steps) - len(out.true_step_times)))
        distance_ratios.append(walking_distance(steps) / length)

        # Turn-angle accuracy on L-walks with varied turn angles.
        angle = math.radians(70.0 + 10.0 * (seed % 5))
        rng2 = np.random.default_rng(1000 + seed)
        lwalk = l_shape(Vec2(0, 0), 0.0, turn_rad=angle)
        lout = ImuSynthesizer(rng2).synthesize(lwalk)
        turns = TurnDetector().detect(lout.trace)
        if len(turns) == 1:
            angle_errors_deg.append(
                abs(math.degrees(turns[0].angle_rad) - math.degrees(angle))
            )
        else:
            angle_errors_deg.append(90.0)  # detection failure counts hard

    # End-to-end dead-reckoning endpoint error on the measurement L-walk.
    endpoint_errors = []
    for seed in range(N_SEEDS):
        rng = np.random.default_rng(2000 + seed)
        walk = l_shape(Vec2(0, 0), 0.0, leg1=2.8, leg2=2.2)
        out = ImuSynthesizer(rng).synthesize(walk)
        track = MotionTracker().track(out.trace)
        true_end = walk.displacement_in_frame(walk.times[-1])
        endpoint_errors.append(track.end_position.distance_to(true_end))

    return {
        "mean |step count error|": float(np.mean(step_count_errors)),
        "distance accuracy": float(
            1.0 - np.mean(np.abs(np.array(distance_ratios) - 1.0))
        ),
        "mean turn angle error (deg)": float(np.mean(angle_errors_deg)),
        "mean DR endpoint error (m)": float(np.mean(endpoint_errors)),
    }


def test_fig08_motion_detection(benchmark):
    m = run_experiment(benchmark, _experiment)
    print_series("Fig. 8 — step & turn detection", m)
    print_series(
        "Fig. 8 — paper reference",
        {"distance accuracy": 0.9477, "turn angle error (deg)": 3.45},
    )

    assert m["mean |step count error|"] <= 1.5
    assert m["distance accuracy"] > 0.85
    assert m["mean turn angle error (deg)"] < 6.0
    assert m["mean DR endpoint error (m)"] < 0.8
