"""Sec. 7.8 — system overhead: LocBLE vs the simple ranging app.

The paper instruments the iOS app and finds LocBLE costs 14 % CPU / 12 %
energy against Dartle's 11.3 % / 11 % — i.e. the full pipeline is only
slightly more expensive than a trivial ranger. Energy cannot be measured in
a simulation, so we use the reproducible part of the claim: the *compute*
cost of processing one measurement. The shape to preserve: LocBLE costs
more than the ranger, but by a small constant factor, and one measurement
completes in interactive time (well under the 3–5 s walk it analyses).
"""

from __future__ import annotations

import time

import numpy as np

from helpers import measure_once, print_series
from repro.baselines.dartle import DartleRanger
from repro.core.pipeline import LocBLE
from repro.world.scenarios import scenario

N_RUNS = 6


def test_sec78_processing_overhead(benchmark):
    sc = scenario(2)
    sessions = [measure_once(sc, 7000 + seed)[0] for seed in range(N_RUNS)]

    def locble_all():
        pipeline = LocBLE()
        for rec in sessions:
            pipeline.estimate(rec.rssi_traces["target"],
                              rec.observer_imu.trace)

    def dartle_all():
        ranger = DartleRanger()
        for rec in sessions:
            ranger.range_estimate(rec.rssi_traces["target"])

    # Time the full LocBLE pipeline under pytest-benchmark...
    benchmark.pedantic(locble_all, rounds=3, iterations=1)
    locble_s = float(benchmark.stats["mean"]) / N_RUNS

    # ...and the ranger with a plain timer (one benchmark fixture per test).
    t0 = time.perf_counter()
    for _ in range(3):
        dartle_all()
    dartle_s = (time.perf_counter() - t0) / (3 * N_RUNS)

    ratio = locble_s / max(dartle_s, 1e-12)
    print_series(
        "Sec. 7.8 — per-measurement processing cost",
        {
            "LocBLE (s)": locble_s,
            "Dartle ranger (s)": dartle_s,
            "ratio": ratio,
            "paper": "LocBLE 14 % CPU vs Dartle 11.3 % (app-level, incl. "
                     "scanning); compute-only ratios differ by construction",
        },
    )

    # LocBLE's estimate must complete in interactive time: far less than
    # the 3-5 s the measurement walk itself takes.
    assert locble_s < 1.5
    # And the ranger is cheaper, as in the paper.
    assert dartle_s < locble_s
