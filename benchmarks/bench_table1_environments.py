"""Table 1 — per-environment accuracy across the nine scenarios.

The paper reports mean error with 75 %-confidence intervals per environment:
best in the LOS meeting room (0.8 m), worst in the labs/hall (2.1–2.3 m),
1.2 m outdoors, with two takeaways: LOS environments beat NLOS ones, and the
blocked environments cluster together. We run LocBLE (EnvAware-informed
priors via the true dominant class of each scenario) on every scenario and
assert those orderings; absolute values are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from helpers import dominant_env, print_series, run_experiment, stationary_errors
from repro.types import EnvClass
from repro.world.scenarios import scenario

N_SEEDS = 6


def _experiment():
    rows = {}
    for idx in range(1, 10):
        sc = scenario(idx)
        env = dominant_env(sc)
        errs = stationary_errors(idx, range(N_SEEDS), env_prior=env)
        rows[idx] = {
            "name": sc.name,
            "env": env,
            "mean": float(np.mean(errs)),
            "median": float(np.median(errs)),
            "p75": float(np.percentile(errs, 75)),
            "paper": sc.paper_accuracy_m,
        }
    return rows


def test_table1_environments(benchmark):
    rows = run_experiment(benchmark, _experiment)

    for idx, r in rows.items():
        print_series(
            f"Table 1 — env #{idx} ({r['name']}, {r['env']})",
            {"mean error (m)": r["mean"], "median": r["median"],
             "p75": r["p75"], "paper mean (m)": r["paper"]},
        )

    los_envs = [idx for idx, r in rows.items() if r["env"] == EnvClass.LOS]
    nlos_envs = [idx for idx, r in rows.items() if r["env"] == EnvClass.NLOS]

    # Takeaway 1: LOS environments outperform NLOS ones on average.
    los_mean = float(np.mean([rows[i]["median"] for i in los_envs]))
    nlos_mean = float(np.mean([rows[i]["median"] for i in nlos_envs]))
    print_series("Table 1 — class aggregate (median m)",
                 {"LOS envs": los_mean, "NLOS envs": nlos_mean})
    assert los_mean < nlos_mean

    # The meeting room is the best indoor environment, as in the paper.
    indoor_medians = {i: rows[i]["median"] for i in range(1, 9)}
    assert min(indoor_medians, key=indoor_medians.get) == 1

    # Meeting-room accuracy is ~1 m; labs/hall are the hardest (multi-metre).
    assert rows[1]["median"] < 1.6
    assert rows[7]["median"] > rows[1]["median"]
    assert rows[8]["median"] > rows[1]["median"]

    # The outdoor lot beats the NLOS indoor environments (paper: 1.2 m).
    assert rows[9]["median"] < nlos_mean
