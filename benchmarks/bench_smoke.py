"""CI benchmark smoke gate: catch hot-path perf regressions early.

Re-runs the single-process hot-path benches from
:mod:`bench_perf_hotpaths` and compares each measured speedup against the
baseline recorded in the committed ``BENCH_perf.json``: a bench whose
speedup falls below ``baseline / REGRESSION_FACTOR`` fails the gate. The
speedups are before/after *ratios* on identical workloads, so they are
largely machine-independent — unlike raw wall-clock times, which CI
hardware churn would make useless as baselines.

The multi-process pool sweep is deliberately excluded: its ratio is a
function of the host's core count, not of the code (the full bench already
scales its own target by ``effective_cpus``). Run directly
(``python benchmarks/bench_smoke.py``) or via pytest
(``pytest benchmarks/bench_smoke.py -m perf``).
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict

import pytest

from bench_perf_hotpaths import (
    REPORT_PATH,
    bench_dtw,
    bench_estimator,
    bench_fit_batch,
    bench_warm_start,
)

#: A bench may be up to this factor slower (in speedup ratio) than the
#: committed baseline before the smoke gate fails.
REGRESSION_FACTOR = 2.0

#: The machine-independent (single-process) benches the gate covers.
SMOKE_BENCHES: Dict[str, Callable[[], Dict[str, object]]] = {
    "estimator_grid_search": bench_estimator,
    "estimator_warm_start": bench_warm_start,
    "estimator_fit_batch": bench_fit_batch,
    "dtw_distance_banded": bench_dtw,
}


def load_baselines() -> Dict[str, float]:
    """Baseline speedup per bench from the committed ``BENCH_perf.json``."""
    report = json.loads(REPORT_PATH.read_text())
    return {
        name: float(bench["speedup"])
        for name, bench in report["benches"].items()
        if name in SMOKE_BENCHES
    }


def run_smoke() -> Dict[str, Dict[str, object]]:
    """Run every smoke bench and attach its regression verdict."""
    baselines = load_baselines()
    out: Dict[str, Dict[str, object]] = {}
    for name, bench in SMOKE_BENCHES.items():
        result = bench()
        baseline = baselines.get(name)
        floor = None if baseline is None else baseline / REGRESSION_FACTOR
        result["baseline_speedup"] = baseline
        result["regression_floor"] = floor
        result["regressed"] = (floor is not None
                               and float(result["speedup"]) < floor)
        out[name] = result
    return out


@pytest.mark.perf
def test_bench_smoke():
    results = run_smoke()
    # Every bench must still hold its own absolute target *and* stay within
    # REGRESSION_FACTOR of the committed baseline ratio.
    for name, r in results.items():
        assert r["meets_target"], (name, r)
        assert not r["regressed"], (name, r)


def main() -> int:
    results = run_smoke()
    failed = False
    print(f"bench smoke gate on {os.cpu_count() or 1} CPU(s): speedup must "
          f"stay within {REGRESSION_FACTOR:.0f}x of the committed baseline")
    for name, r in results.items():
        baseline = r["baseline_speedup"]
        base_txt = "n/a" if baseline is None else f"{baseline:.1f}x"
        verdict = "REGRESSED" if r["regressed"] else (
            "ok" if r["meets_target"] else "BELOW TARGET")
        if r["regressed"] or not r["meets_target"]:
            failed = True
        print(f"  {name}: {r['speedup']:.1f}x "
              f"(baseline {base_txt}, target {r['target_speedup']:.0f}x) "
              f"{verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
