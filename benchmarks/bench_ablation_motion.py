"""Ablation — how much does dead-reckoning quality cost end to end?

Sec. 5.2's motion tracker feeds the regression; this bench isolates its
contribution by swapping the motion source while holding everything else
fixed:

* **oracle motion** — the simulator's ground-truth displacements (an upper
  bound no phone can reach);
* **turn-based DR** — the paper's step counter + turn detector (default);
* **right-angle DR** — the paper's refinement (the user promises a 90°
  turn, so the measured angle is discarded);
* **fused-heading DR** — the complementary-filter heading source.

Shape asserted: oracle is best-or-equal; every DR variant stays within
~1 m of it (the paper's claim that ~95 % step accuracy and ~3.5° turn
accuracy suffice); no variant collapses.
"""

from __future__ import annotations

import numpy as np

from helpers import measure_once, print_series, run_experiment
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.estimator import EllipticalEstimator
from repro.errors import EstimationError, InsufficientDataError
from repro.motion.deadreckoning import MotionTracker
from repro.world.scenarios import scenario

ENVS = (1, 2, 9)  # LOS rooms: motion error is visible when channel is kind
N_SEEDS = 6


def _fit_with_motion(rec, displacement_at) -> float:
    trace = rec.rssi_traces["target"]
    ts = trace.timestamps()
    p = np.array([-displacement_at(t).x for t in ts])
    q = np.array([-displacement_at(t).y for t in ts])
    filtered = AdaptiveNoiseFilter().apply(trace.values(),
                                           trace.mean_rate_hz())
    est = EllipticalEstimator().with_environment("LOS")
    fit = est.fit(p, q, filtered)
    return fit.position.distance_to(rec.true_position_in_frame("target"))


def _experiment():
    rows = {"oracle motion": [], "turn-based DR": [],
            "right-angle DR": [], "fused-heading DR": []}
    for idx in ENVS:
        sc = scenario(idx)
        for seed in range(N_SEEDS):
            rec, _ = measure_once(sc, 9500 + seed)
            walk = rec.observer_trajectory
            trackers = {
                "turn-based DR": MotionTracker(),
                "right-angle DR": MotionTracker(assume_right_angle=True),
                "fused-heading DR": MotionTracker(use_heading_fusion=True),
            }
            try:
                rows["oracle motion"].append(
                    _fit_with_motion(rec, walk.displacement_in_frame))
                for name, tracker in trackers.items():
                    track = tracker.track(rec.observer_imu.trace)
                    rows[name].append(
                        _fit_with_motion(rec, track.displacement_at))
            except (EstimationError, InsufficientDataError):
                continue
    return {k: float(np.median(v)) for k, v in rows.items()}


def test_ablation_motion_sources(benchmark):
    medians = run_experiment(benchmark, _experiment)
    print_series("Motion ablation — median error (m), LOS envs", medians)

    oracle = medians["oracle motion"]
    # Ground-truth motion is best or statistically tied.
    for name, v in medians.items():
        if name != "oracle motion":
            assert v >= oracle - 0.3, f"{name} beats oracle implausibly"
            # The paper's premise: phone-grade DR costs little end to end.
            assert v <= oracle + 1.2, f"{name} collapses vs oracle"
