"""Fig. 15 — multi-beacon clustering calibration in blocked environments.

In the labs (env #7, concrete in the path) and hall (env #8, construction),
single-beacon accuracy "averages only 3 m"; clustering co-located beacons
improves it monotonically with the cluster size, roughly halving the error
by 6 beacons. We sweep 1 / 2 / 4 / 6 co-located beacons (0.3 m apart, the
Fig. 9 spacing) and assert the improvement trend in both environments.
"""

from __future__ import annotations

import math

import numpy as np

from helpers import print_series, run_experiment
from repro.core.calibration import ClusteringCalibrator
from repro.core.estimator import EllipticalEstimator
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import Vec2
from repro.world.scenarios import scenario
from repro.world.trajectory import l_shape

CLUSTER_SIZES = [1, 2, 4, 6]
N_SEEDS = 10


def _cluster_errors(env_index: int, n_beacons: int) -> list:
    sc = scenario(env_index)
    pipeline_factory = lambda: LocBLE(
        estimator=EllipticalEstimator().with_environment("NLOS")
    )
    errs = []
    for seed in range(N_SEEDS):
        rng = np.random.default_rng(env_index * 1000 + seed)
        sim = Simulator(sc.floorplan, rng)
        walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                       leg1=2.8, leg2=2.2)
        center = sc.beacon_position
        beacons = [BeaconSpec("target", position=center)]
        for k in range(n_beacons - 1):
            offset = Vec2.from_polar(0.3, 2.0 * math.pi * k / max(n_beacons - 1, 1))
            beacons.append(BeaconSpec(f"n{k}", position=center + offset))
        rec = sim.simulate(walk, beacons)
        truth = rec.true_position_in_frame("target")
        try:
            if n_beacons == 1:
                est = pipeline_factory().estimate(
                    rec.rssi_traces["target"], rec.observer_imu.trace)
                errs.append(est.error_to(truth))
            else:
                cal = ClusteringCalibrator(pipeline_factory())
                result = cal.calibrate("target", rec.rssi_traces,
                                       rec.observer_imu.trace)
                errs.append(result.error_to(truth))
        except (EstimationError, InsufficientDataError):
            errs.append(8.0)
    return errs


def _experiment():
    out = {}
    for env_index, name in ((7, "lab"), (8, "hall")):
        out[name] = {
            n: float(np.mean(_cluster_errors(env_index, n)))
            for n in CLUSTER_SIZES
        }
    return out


def test_fig15_clustering_calibration(benchmark):
    results = run_experiment(benchmark, _experiment)
    for name, series in results.items():
        print_series(
            f"Fig. 15 — {name}: mean error (m) vs cluster size",
            {f"{n} beacons": v for n, v in series.items()},
        )
    print_series("Fig. 15 — paper",
                 {"single": "~3 m", "6 beacons": "error roughly halved"})

    for name, series in results.items():
        # Clustering helps: 6 beacons beat the single-beacon baseline...
        assert series[6] < series[1], f"{name}: no clustering gain"
        # ...and the trend is broadly monotone (allow small inversions).
        assert series[4] < series[1] + 0.3
        assert series[6] <= series[2] + 0.3

    # Aggregate improvement factor in the direction of the paper's ~2x.
    gains = [series[1] / max(series[6], 1e-9) for series in results.values()]
    assert float(np.mean(gains)) > 1.15
