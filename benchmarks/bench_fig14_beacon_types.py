"""Fig. 14 — does the BLE beacon type matter?

Three common beacon targets — an iOS device acting as a beacon, a RadBeacon
USB dongle and an Estimote — measured in environment #2. Dedicated beacons
have "slight advantages over smart devices integrated beacons, as the chips
in smart devices are built more compactly" (modelled as higher per-packet
emission jitter), but the overall verdict is that LocBLE "doesn't depend on
specific BLE devices".
"""

from __future__ import annotations

import numpy as np

from helpers import measure_once, print_series, run_experiment
from repro.ble.devices import BEACONS
from repro.core.pipeline import LocBLE
from repro.world.scenarios import scenario

N_SEEDS = 8
TYPES = ["ios_device", "radbeacon_usb", "estimote"]


def _experiment():
    sc = scenario(2)
    rows = {}
    for name in TYPES:
        errs = []
        for seed in range(N_SEEDS):
            rec, pipeline = measure_once(
                sc, 6000 + seed, beacon_profile=BEACONS[name]
            )
            est = pipeline.estimate(rec.rssi_traces["target"],
                                    rec.observer_imu.trace)
            errs.append(est.error_to(rec.true_position_in_frame("target")))
        rows[name] = float(np.mean(errs))
    return rows


def test_fig14_beacon_types(benchmark):
    rows = run_experiment(benchmark, _experiment)
    print_series("Fig. 14 — mean error (m) by beacon type", rows)
    print_series("Fig. 14 — paper",
                 {"verdict": "dedicated beacons slightly better; no strong "
                             "device dependence"})

    # No strong device dependence: every type lands in the same band.
    values = list(rows.values())
    assert max(values) - min(values) < 1.5
    assert max(values) < 4.0

    # The dedicated beacons are not *worse* than the phone-integrated one
    # (the paper's slight-advantage direction, asserted weakly).
    dedicated_best = min(rows["estimote"], rows["radbeacon_usb"])
    assert dedicated_best <= rows["ios_device"] + 0.5
