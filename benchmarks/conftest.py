"""Shared fixtures for the experiment benchmarks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envaware import EnvAwareClassifier
from repro.sim.datasets import EnvDatasetBuilder


@pytest.fixture(scope="session")
def trained_envaware() -> EnvAwareClassifier:
    """EnvAware classifier trained once for all benches that need it."""
    builder = EnvDatasetBuilder(np.random.default_rng(20170701))
    windows, labels = builder.build(sessions_per_class=10)
    return EnvAwareClassifier().fit(windows, labels)
