"""Sec. 4.1 — EnvAware classification accuracy (the 94.7 % / 94.5 % claim).

Rebuilds the paper's model-selection step: the 9-feature window vectors are
fed to a linear SVM, a kernel SVM, a decision tree and a random forest; the
paper reports the linear SVM winning its ensemble with 94.7 % precision and
94.5 % recall on the three-class problem. On our synthetic channel the
classes overlap more than in the authors' dataset, so we assert the shape:
all classifiers well above chance (33 %), the linear SVM competitive with
the ensemble's best, and precision/recall printed per model.
"""

from __future__ import annotations

import numpy as np

from helpers import print_series, run_experiment
from repro.core.envaware import EnvAwareClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.kernels import MultiClassKernelSVM, rbf_kernel
from repro.ml.metrics import accuracy, precision_recall_f1
from repro.ml.svm import MultiClassSVM
from repro.ml.tree import DecisionTreeClassifier
from repro.sim.datasets import EnvDatasetBuilder


def _experiment():
    train_builder = EnvDatasetBuilder(np.random.default_rng(20170701))
    train_w, train_y = train_builder.build(sessions_per_class=10)
    test_builder = EnvDatasetBuilder(np.random.default_rng(20171212))
    test_w, test_y = test_builder.build(sessions_per_class=5)
    test_y = np.asarray(test_y)

    candidates = {
        "linear_svm": lambda: MultiClassSVM(epochs=60),
        "rbf_svm": lambda: MultiClassKernelSVM(rbf_kernel(0.3)),
        "decision_tree": lambda: DecisionTreeClassifier(),
        "random_forest": lambda: RandomForestClassifier(n_trees=30),
    }
    results = {}
    for name, factory in candidates.items():
        clf = EnvAwareClassifier(classifier=factory()).fit(train_w, train_y)
        pred = clf.predict(test_w)
        m = precision_recall_f1(test_y, pred)
        m["accuracy"] = accuracy(test_y, pred)
        results[name] = m
    return results


def test_sec41_envaware_classifiers(benchmark):
    results = run_experiment(benchmark, _experiment)

    for name, m in results.items():
        print_series(f"Sec. 4.1 — {name}", m)
    print_series(
        "Sec. 4.1 — paper reference",
        {"precision": 0.947, "recall": 0.945, "note": "authors' dataset"},
    )

    # Every candidate beats chance on the 3-class problem by a wide margin.
    for name, m in results.items():
        assert m["accuracy"] > 0.6, f"{name} barely beats chance"

    # The linear SVM — the paper's pick — is competitive with the best.
    best = max(m["f1"] for m in results.values())
    assert results["linear_svm"]["f1"] >= best - 0.08

    # And it reaches solid absolute precision/recall on held-out data.
    assert results["linear_svm"]["precision"] > 0.78
    assert results["linear_svm"]["recall"] > 0.78
