"""Shared machinery for the per-figure experiment benchmarks.

Each bench regenerates one table or figure of the paper: it builds the
workload, runs the system, prints the same rows/series the paper reports and
asserts the qualitative *shape* (orderings, crossovers, rough factors). The
pytest-benchmark fixture times one full experiment run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.estimator import EllipticalEstimator
from repro.core.pipeline import LocBLE
from repro.sim.parallel import run_trials
from repro.sim.simulator import BeaconSpec, MeasurementRecord, Simulator
from repro.types import Vec2
from repro.world.scenarios import Scenario, scenario
from repro.world.trajectory import l_shape

__all__ = [
    "measure_once",
    "stationary_errors",
    "cdf_points",
    "print_series",
    "run_experiment",
    "DEFAULT_LEGS",
]

#: Default L-walk legs used across experiments (4.5-5 m total, Sec. 7.6.2).
DEFAULT_LEGS = (2.8, 2.2)


def measure_once(
    sc: Scenario,
    seed: int,
    pipeline: Optional[LocBLE] = None,
    legs: Tuple[float, float] = DEFAULT_LEGS,
    extra_beacons: int = 0,
    beacon_profile=None,
    interference: float = 0.0,
) -> Tuple[MeasurementRecord, LocBLE]:
    """Simulate one measurement session in scenario ``sc``."""
    rng = np.random.default_rng(seed)
    sim = Simulator(sc.floorplan, rng, interference_loss_prob=interference)
    walk = l_shape(
        sc.observer_start, sc.observer_heading_rad, leg1=legs[0], leg2=legs[1]
    )
    kwargs = {} if beacon_profile is None else {"profile": beacon_profile}
    beacons = [BeaconSpec("target", position=sc.beacon_position, **kwargs)]
    for k in range(extra_beacons):
        offset = Vec2.from_polar(0.3, 2.0 * math.pi * k / max(extra_beacons, 1))
        beacons.append(
            BeaconSpec(f"near{k}", position=sc.beacon_position + offset, **kwargs)
        )
    rec = sim.simulate(walk, beacons)
    if pipeline is None:
        pipeline = LocBLE()
    return rec, pipeline


@dataclass(frozen=True)
class _StationaryErrorTrial:
    """Picklable per-seed body of :func:`stationary_errors`."""

    env_index: int
    pipeline_factory: object
    env_prior: Optional[str]
    legs: Tuple[float, float]

    def __call__(self, seed: int) -> float:
        sc = scenario(self.env_index)
        if self.pipeline_factory is not None:
            pipeline = self.pipeline_factory()
        elif self.env_prior is not None:
            pipeline = LocBLE(
                estimator=EllipticalEstimator().with_environment(self.env_prior)
            )
        else:
            pipeline = LocBLE()
        rec, pipeline = measure_once(
            sc, seed, pipeline=pipeline, legs=self.legs)
        est = pipeline.estimate(rec.rssi_traces["target"], rec.observer_imu.trace)
        return est.error_to(rec.true_position_in_frame("target"))


def stationary_errors(
    env_index: int,
    seeds: range,
    pipeline_factory=None,
    env_prior: Optional[str] = None,
    legs: Tuple[float, float] = DEFAULT_LEGS,
    max_workers: Optional[int] = None,
    parallel: str = "auto",
) -> List[float]:
    """Estimation errors for the scenario's default stationary target.

    Dispatched through :func:`repro.sim.parallel.run_trials` — each seed is
    self-contained, so worker count changes wall-clock time, never the
    errors. Benches expect every trial to succeed, so a failed trial raises.
    """
    trial = _StationaryErrorTrial(
        env_index=env_index,
        pipeline_factory=pipeline_factory,
        env_prior=env_prior,
        legs=(float(legs[0]), float(legs[1])),
    )
    results = run_trials(
        trial, seeds, max_workers=max_workers, parallel=parallel)
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            f"{len(failed)}/{len(results)} trials failed; first "
            f"(seed {failed[0].seed}): {failed[0].error}"
        )
    return [float(r.value) for r in results]


def dominant_env(sc: Scenario) -> str:
    """The link's environment class at the scenario's default geometry."""
    return sc.floorplan.classify_link(sc.beacon_position, sc.observer_start).env_class


def cdf_points(errors: List[float]) -> List[Tuple[float, float]]:
    """(error, cumulative fraction) points of an empirical CDF."""
    xs = sorted(errors)
    n = len(xs)
    return [(x, (i + 1) / n) for i, x in enumerate(xs)]


def print_series(title: str, rows: Dict) -> None:
    """Uniform key: value table output for bench logs."""
    print(f"\n=== {title} ===")
    for k, v in rows.items():
        if isinstance(v, float):
            print(f"  {k}: {v:.3f}")
        else:
            print(f"  {k}: {v}")


def run_experiment(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark timing and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
