"""Sec. 9 extensions — crowding, Bluetooth 5, straight-walk, 3-D.

The paper's discussion names four directions; this bench exercises each
implementation and asserts its headline behaviour:

* **Crowded environments** (Sec. 9.2): with ~18 ambient BLE devices the
  target's effective rate drops from ~8 Hz toward ~3 Hz (the paper's own
  interference observation) and accuracy degrades but does not collapse.
* **Bluetooth 5** (Sec. 9.3): a Class-1 coded-PHY beacon stays audible
  through deep blockage where a legacy beacon goes silent.
* **Straight-walk mode** (Sec. 9.2): the mirror ambiguity left by a
  straight measurement leg is resolved online during the navigation turn.
* **3-D** (Sec. 9.3): with an elevation-changing walk and barometer data,
  the 3-D fit recovers beacon height.
"""

from __future__ import annotations

import numpy as np

from helpers import print_series, run_experiment
from repro.ble.devices import BEACONS
from repro.ble.interference import CrowdInterference
from repro.channel.pathloss import rss_at
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.estimator import EllipticalEstimator
from repro.core.pipeline import LocBLE
from repro.core.straightwalk import StraightWalkResolver
from repro.core.three_d import Estimator3D, Vec3
from repro.errors import EstimationError, InsufficientDataError
from repro.imu.barometer import BarometerModel
from repro.motion import MotionTracker
from repro.sim.simulator import BeaconSpec, Simulator
from repro.sim.simulator3d import Simulator3D, ramp_profile
from repro.types import Vec2
from repro.world.floorplan import Floorplan
from repro.world.obstacles import wall
from repro.world.scenarios import scenario
from repro.world.trajectory import l_shape


def _crowding():
    sc = scenario(6)
    out = {}
    for label, crowd in (("quiet", None),
                         ("crowded", CrowdInterference(n_ambient=18))):
        rates, errs = [], []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            sim = Simulator(sc.floorplan, rng, crowd=crowd)
            walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                           leg1=2.8, leg2=2.2)
            rec = sim.simulate(walk, [
                BeaconSpec("t", position=sc.beacon_position)])
            rates.append(rec.rssi_traces["t"].mean_rate_hz())
            try:
                e = LocBLE().estimate(rec.rssi_traces["t"],
                                      rec.observer_imu.trace)
                errs.append(e.error_to(rec.true_position_in_frame("t")))
            except (EstimationError, InsufficientDataError):
                errs.append(10.0)
        out[label] = {"rate_hz": float(np.mean(rates)),
                      "median_err": float(np.median(errs))}
    return out


def _ble5():
    plan = Floorplan("deep", 20, 8, obstacles=[
        wall(8, 0, 8, 8, "concrete_wall"),
        wall(13, 0, 13, 8, "cinder_wall"),
    ])
    counts = {}
    for name in ("estimote", "ble5_longrange"):
        ns = []
        for seed in range(4):
            rng = np.random.default_rng(seed)
            sim = Simulator(plan, rng)
            walk = l_shape(Vec2(1, 4), 0.0, leg1=2.8, leg2=2.2)
            rec = sim.simulate(walk, [
                BeaconSpec("b", position=Vec2(18, 4),
                           profile=BEACONS[name])])
            ns.append(len(rec.rssi_traces["b"]))
        counts[name] = float(np.mean(ns))
    return counts


def _straight_walk():
    resolved_correctly = 0
    total = 0
    for seed in range(8):
        rng = np.random.default_rng(seed)
        true_side = 1.0 if seed % 2 == 0 else -1.0
        true = Vec2(4.0, 3.0 * true_side)
        a = np.linspace(0, 3.5, 35)
        l = np.hypot(true.x - a, true.y)
        rss = np.array([rss_at(d, -59.0, 2.0) for d in l])
        rss = rss + rng.normal(0, 0.8, len(rss))
        fit, _ = EllipticalEstimator().fit_leg(a, rss)
        resolver = StraightWalkResolver(fit)
        for k in range(12):
            obs = Vec2(3.5, 0.25 * (k + 1))
            d = true.distance_to(obs)
            reading = rss_at(d, -59.0, 2.0) + rng.normal(0, 0.8)
            resolver.observe(-obs.x, -obs.y, reading)
        total += 1
        winner = resolver.current
        if winner.y * true_side > 0:
            resolved_correctly += 1
    return {"correct_side": resolved_correctly, "total": total}


def _three_d():
    errs_xy, errs_z = [], []
    for seed in range(5):
        rng = np.random.default_rng(seed)
        plan = Floorplan("atrium", 12, 12)
        sim = Simulator3D(plan, rng)
        walk = l_shape(Vec2(2, 2), 0.3, leg1=2.8, leg2=2.2)
        prof = ramp_profile(0.0, 1.2, walk.times[0], walk.times[0] + 2.5)
        beacon = Vec3(7.5, 6.0, 2.8)
        m = sim.simulate(walk, prof, beacon)
        truth = m.true_position_in_frame()
        track = MotionTracker().track(m.observer_imu.trace)
        rel_alt = BarometerModel(rng).estimate_relative_altitude(
            m.pressure_hpa)
        ts = m.rssi_trace.timestamps()
        p = np.array([-track.displacement_at(t).x for t in ts])
        q = np.array([-track.displacement_at(t).y for t in ts])
        r = -np.interp(ts, m.pressure_timestamps, rel_alt)
        filt = AdaptiveNoiseFilter().apply(
            m.rssi_trace.values(), m.rssi_trace.mean_rate_hz())
        fit = Estimator3D(
            planar=EllipticalEstimator().with_environment("LOS")
        ).fit(p, q, r, filt)
        errs_xy.append(np.hypot(fit.position.x - truth.x,
                                fit.position.y - truth.y))
        errs_z.append(abs(fit.position.z - truth.z))
    return {"median_xy_err": float(np.median(errs_xy)),
            "median_z_err": float(np.median(errs_z))}


def _experiment():
    return {
        "crowding": _crowding(),
        "ble5": _ble5(),
        "straight_walk": _straight_walk(),
        "three_d": _three_d(),
    }


def test_sec9_extensions(benchmark):
    results = run_experiment(benchmark, _experiment)
    print_series("Sec. 9.2 — crowded environment", results["crowding"])
    print_series("Sec. 9.3 — Bluetooth 5 deep-blockage samples",
                 results["ble5"])
    print_series("Sec. 9.2 — straight-walk resolution",
                 results["straight_walk"])
    print_series("Sec. 9.3 — 3-D localisation", results["three_d"])

    crowd = results["crowding"]
    # The paper's interference observation: the rate drops hard (8 -> ~3 Hz).
    assert crowd["crowded"]["rate_hz"] < 0.6 * crowd["quiet"]["rate_hz"]
    # Accuracy degrades but estimation still functions.
    assert crowd["crowded"]["median_err"] < 9.0

    # BLE 5 long range stays audible where legacy goes silent.
    assert results["ble5"]["ble5_longrange"] > results["ble5"]["estimote"] + 5

    # Straight-walk: the navigation turn resolves the mirror most of the time.
    sw = results["straight_walk"]
    assert sw["correct_side"] >= int(0.75 * sw["total"])

    # 3-D: horizontal accuracy metre-level, height within ~1.5 m.
    assert results["three_d"]["median_xy_err"] < 4.0
    assert results["three_d"]["median_z_err"] < 1.5
