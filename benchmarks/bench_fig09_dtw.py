"""Fig. 9 — DTW clustering mechanics: matching, lower-bound speedups.

The paper's Fig. 9 shows RSS sequences of four beacons (two co-located with
the target, one far away), successful/unsuccessful DTW cost matrices, and
two speed claims: the lower-bound test is ~100× faster than running DTW on
a segment, and the segmented scheme is ≥2× faster than applying DTW to the
whole sequence. We regenerate the four-beacon measurement, assert the
matcher separates near from far, and time both claims.
"""

from __future__ import annotations

import math
import time

import numpy as np

from helpers import print_series, run_experiment
from repro.dtw.dtw import dtw_distance, dtw_full
from repro.dtw.lowerbound import lb_keogh
from repro.dtw.segmatch import SegmentMatcher
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import Vec2
from repro.world.scenarios import scenario
from repro.world.trajectory import l_shape

N_SEEDS = 8


def _four_beacon_session(seed: int):
    """Beacon 4 = target (5 m away); beacons 2, 3 co-located; beacon 1 far."""
    rng = np.random.default_rng(seed)
    sc = scenario(6)  # store: the setting the clustering story motivates
    sim = Simulator(sc.floorplan, rng)
    walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                   leg1=2.8, leg2=2.2)
    target = sc.beacon_position
    beacons = [
        BeaconSpec("beacon4_target", position=target),
        BeaconSpec("beacon2_near", position=target + Vec2(0.3, 0.0)),
        BeaconSpec("beacon3_near", position=target + Vec2(-0.2, 0.22)),
        BeaconSpec("beacon1_far",
                   position=sc.observer_start + Vec2(0.6, 0.8)),
    ]
    return sim.simulate(walk, beacons)


def _experiment():
    matcher = SegmentMatcher()
    near_matched = near_total = far_matched = far_total = 0
    lb_time = dtw_time = 0.0
    lb_runs = 0
    seg_time = full_time = 0.0
    for seed in range(N_SEEDS):
        rec = _four_beacon_session(seed)
        target_trace = rec.rssi_traces["beacon4_target"]
        for bid, trace in rec.rssi_traces.items():
            if bid == "beacon4_target" or len(trace) < 12:
                continue
            t0 = time.perf_counter()
            result = matcher.match(target_trace, trace)
            seg_time += time.perf_counter() - t0
            if "near" in bid:
                near_total += 1
                near_matched += result.matched
            else:
                far_total += 1
                far_matched += result.matched

            # Whole-sequence unconstrained DTW — the paper's baseline
            # ("applying DTW directly to the original sequence").
            t0 = time.perf_counter()
            a = target_trace.values()
            b = np.interp(target_trace.timestamps(), trace.timestamps(),
                          trace.values())
            dtw_distance(np.diff(a), np.diff(b))
            full_time += time.perf_counter() - t0

            # Per-segment LB vs DTW timing (the 100x claim).
            t_ts, t_vals = matcher.preprocess(target_trace)
            c_ts, c_vals = matcher.preprocess(trace)
            for k in range(len(t_vals) // matcher.segment_len):
                sl = slice(k * matcher.segment_len,
                           (k + 1) * matcher.segment_len)
                cand = np.interp(t_ts[sl], c_ts, c_vals)
                t0 = time.perf_counter()
                lb_keogh(cand, t_vals[sl], matcher.window)
                lb_time += time.perf_counter() - t0
                t0 = time.perf_counter()
                dtw_distance(cand, t_vals[sl], window=matcher.window)
                dtw_time += time.perf_counter() - t0
                lb_runs += 1

    # Kernel-scale speedup (the paper's "100x faster for the same size
    # data"): at the 10-point segment size, per-call overhead hides the
    # asymptotic gap, so we also measure it at a longer sequence length.
    rng = np.random.default_rng(0)
    a = rng.normal(size=200)
    b = rng.normal(size=200)
    t0 = time.perf_counter()
    for _ in range(100):
        lb_keogh(a, b, 10)
    kernel_lb = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(100):
        dtw_distance(a, b, window=10)
    kernel_dtw = time.perf_counter() - t0

    # Cost-matrix sanity for the Fig. 9(c)/(d) panels.
    rec = _four_beacon_session(0)
    t = np.diff(rec.rssi_traces["beacon4_target"].values())[:10]
    near = np.diff(rec.rssi_traces["beacon2_near"].values())[:10]
    far = np.diff(rec.rssi_traces["beacon1_far"].values())[:10]
    near_cost = dtw_full(t, near, window=3).normalized_distance
    far_cost = dtw_full(t, far, window=3).normalized_distance

    return {
        "near matched": f"{near_matched}/{near_total}",
        "far matched": f"{far_matched}/{far_total}",
        "near_rate": near_matched / max(near_total, 1),
        "far_rate": far_matched / max(far_total, 1),
        "lb speedup over dtw (10-pt segments)": dtw_time / max(lb_time, 1e-12),
        "lb speedup over dtw (200-pt kernel)": kernel_dtw / max(kernel_lb, 1e-12),
        "segmented speedup over full dtw": full_time / max(seg_time, 1e-12),
        "first-segment cost near": float(near_cost),
        "first-segment cost far": float(far_cost),
    }


def test_fig09_dtw_clustering(benchmark):
    m = run_experiment(benchmark, _experiment)
    print_series("Fig. 9 — DTW segment matching", m)
    print_series(
        "Fig. 9 — paper reference",
        {"lb speedup": "~100x per test", "scheme speedup": ">= 2x"},
    )

    # Co-located beacons cluster; the far beacon does not.
    assert m["near_rate"] >= 0.6
    assert m["far_rate"] <= 0.25

    # Lower bounding is dramatically cheaper than DTW at kernel scale
    # (the 10-point-segment ratio is overhead-bound and reported only).
    assert m["lb speedup over dtw (200-pt kernel)"] > 20.0
    assert m["lb speedup over dtw (10-pt segments)"] > 1.0

    # The segmented scheme beats unconstrained whole-sequence DTW by the
    # claimed >= 2x on measurement-length traces (and the gap widens with
    # sequence length, since the scheme is O(n*w) against O(n^2)).
    assert m["segmented speedup over full dtw"] > 1.5
