"""Ablation — the estimator's design choices, stacked one at a time.

DESIGN.md calls out the reproduction's estimator decisions; this bench
quantifies each increment on a mixed indoor workload:

1. the paper's linearised Eq. 4/5 solve alone (grid over n, LS per n);
2. + Gauss–Newton refinement in the RSS domain (this reproduction's core
   addition — fixes the errors-in-variables shrinkage);
3. + the Γ prior from the beacon's advertised measured power;
4. + the environment-informed exponent/Γ-shift priors (what EnvAware feeds).

The claim asserted: refinement is load-bearing, and the Γ prior adds a
further material improvement; the environment prior helps where blockage
matches its assumption (it is applied with the true dominant class here).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from helpers import dominant_env, measure_once, print_series, run_experiment
from repro.core.estimator import EllipticalEstimator
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.world.scenarios import scenario

ENVS = (1, 3, 6, 7)
N_SEEDS = 5


def _errors(estimator_for_env) -> list:
    errs = []
    for idx in ENVS:
        sc = scenario(idx)
        env = dominant_env(sc)
        for seed in range(N_SEEDS):
            rec, _ = measure_once(sc, 8000 + seed)
            pipeline = LocBLE(estimator=estimator_for_env(env))
            try:
                est = pipeline.estimate(rec.rssi_traces["target"],
                                        rec.observer_imu.trace)
                errs.append(est.error_to(rec.true_position_in_frame("target")))
            except (EstimationError, InsufficientDataError):
                errs.append(10.0)
    return errs


def _experiment():
    variants = {
        "1 linearised only": lambda env: EllipticalEstimator(
            refine=False, gamma_prior=None),
        "2 + GN refinement": lambda env: EllipticalEstimator(
            gamma_prior=None),
        "3 + gamma prior": lambda env: EllipticalEstimator(),
        "4 + env priors": lambda env: (
            EllipticalEstimator().with_environment(env)),
    }
    return {name: _errors(fn) for name, fn in variants.items()}


def test_ablation_estimator_stack(benchmark):
    results = run_experiment(benchmark, _experiment)
    medians = {k: float(np.median(v)) for k, v in results.items()}
    means = {k: float(np.mean(v)) for k, v in results.items()}
    print_series("Ablation — median error (m)", medians)
    print_series("Ablation — mean error (m)", means)

    # The refinement is the big step over the paper's linearised math.
    assert medians["2 + GN refinement"] < medians["1 linearised only"]
    assert means["2 + GN refinement"] < means["1 linearised only"]
    # A bare gamma prior (advertised power, no blockage shift) is NOT a
    # free win on blocked environments — it drags estimates short. Only the
    # environment-shifted prior stack recovers the benefit, which is the
    # quantitative argument for EnvAware feeding the estimator.
    assert means["4 + env priors"] <= means["3 + gamma prior"]
    # The full stack has the best (or within-noise-best) mean error.
    assert means["4 + env priors"] <= min(means.values()) + 0.35
