"""Fig. 5 — preprocessing ablation (ANF / EnvAware / solver refinement).

The paper evaluates environments #2–#4 with environmental changes and
reports that removing EnvAware costs >1 m of median error and removing ANF
>1.5 m. Our workload mixes persistently blocked sessions (scenarios #3, #4,
#7) with NLOS→LOS transition walks, then compares:

* the full pipeline,
* the pipeline without EnvAware (no class priors, no regression restarts),
* the pipeline without ANF (raw RSS into the regression),
* the pipeline on the paper's *linearised* solver (Eq. 4/5 without the
  Gauss–Newton refinement this reproduction adds).

Reproduction notes recorded by this bench: EnvAware's benefit reproduces;
ANF's end-to-end benefit does **not** reproduce against the refined solver
(the nonlinear fit is already noise-robust — see EXPERIMENTS.md), so the
assertion on ANF is a neutrality bound rather than the paper's 1.5 m gain.
The refined-vs-linearised gap shows why: the paper's linearised solver is
the fragile consumer the smoothing was protecting.
"""

from __future__ import annotations

import numpy as np

from helpers import print_series, run_experiment
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.estimator import EllipticalEstimator
from repro.core.pipeline import LocBLE
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import Vec2
from repro.world.floorplan import Floorplan
from repro.world.obstacles import wall
from repro.world.scenarios import scenario
from repro.world.trajectory import Trajectory, l_shape

N_SEEDS = 4
TRANSITION_MATERIALS = ("concrete_wall", "cinder_wall", "metal_board")


def _transition_walk() -> Trajectory:
    pts = [Vec2(2.0, 4.0), Vec2(6.0, 4.0), Vec2(6.0, 6.5)]
    times = [0.0]
    for a, b in zip(pts, pts[1:]):
        times.append(times[-1] + a.distance_to(b) / 1.1)
    return Trajectory(pts, times)


def _workload_errors(pipeline_factory) -> np.ndarray:
    errs = []
    # Persistently blocked rooms (scenario presets #3, #4, #7).
    for idx in (3, 4, 7):
        sc = scenario(idx)
        for seed in range(N_SEEDS):
            rng = np.random.default_rng(idx * 91 + seed)
            sim = Simulator(sc.floorplan, rng)
            walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                           leg1=2.8, leg2=2.2)
            rec = sim.simulate(walk, [
                BeaconSpec("t", position=sc.beacon_position)
            ])
            est = pipeline_factory().estimate(
                rec.rssi_traces["t"], rec.observer_imu.trace)
            errs.append(est.error_to(rec.true_position_in_frame("t")))
    # NLOS -> LOS transition walks (wall ends mid-room; the observer's
    # second leg emerges past it).
    for material in TRANSITION_MATERIALS:
        plan = Floorplan(f"tr_{material}", 14.0, 10.0,
                         obstacles=[wall(6.8, 0.0, 6.8, 5.2, material)])
        for seed in range(N_SEEDS):
            rng = np.random.default_rng(abs(hash(material)) % 512 + seed)
            sim = Simulator(plan, rng)
            rec = sim.simulate(_transition_walk(), [
                BeaconSpec("t", position=Vec2(9.5, 6.0))
            ])
            est = pipeline_factory().estimate(
                rec.rssi_traces["t"], rec.observer_imu.trace)
            errs.append(est.error_to(rec.true_position_in_frame("t")))
    return np.asarray(errs)


def test_fig05_preprocessing_ablation(benchmark, trained_envaware):
    ea = trained_envaware

    def experiment():
        return {
            "full": _workload_errors(lambda: LocBLE(envaware=ea, batch_s=1.5)),
            "w/o ANF": _workload_errors(
                lambda: LocBLE(
                    envaware=ea, batch_s=1.5,
                    anf=AdaptiveNoiseFilter(use_butterworth=False,
                                            use_akf=False),
                )
            ),
            "w/o EnvAware": _workload_errors(lambda: LocBLE(envaware=None)),
            "linearised solver": _workload_errors(
                lambda: LocBLE(
                    envaware=ea, batch_s=1.5,
                    estimator=EllipticalEstimator(refine=False),
                )
            ),
        }

    results = run_experiment(benchmark, experiment)
    medians = {k: float(np.median(v)) for k, v in results.items()}
    print_series("Fig. 5 — median estimation error (m)", medians)
    print_series(
        "Fig. 5 — paper reference",
        {"w/o EnvAware": "> +1 m median", "w/o ANF": "> +1.5 m median",
         "divergence": "ANF is end-to-end neutral against the refined "
                       "solver on this channel (see EXPERIMENTS.md)"},
    )

    # EnvAware's benefit reproduces.
    assert medians["full"] < medians["w/o EnvAware"]
    # ANF neutrality bound: removing it must not swing the median by > 1 m
    # in either direction (the paper's +1.5 m gain does not reproduce
    # against the refined solver; a larger swing would flag a regression).
    assert abs(medians["full"] - medians["w/o ANF"]) < 1.0
    # The Gauss-Newton refinement this reproduction adds is load-bearing:
    # the paper's linearised solver alone is substantially worse.
    assert medians["full"] < medians["linearised solver"]
