"""Solver-backend accuracy-vs-cost comparison on the Table-1 scenarios.

Runs the same measurement sessions (all nine Table-1 environments, several
seeds each) through :class:`~repro.core.pipeline.LocBLE` with each
registered solver backend — elliptical (the paper's regression), particle
(sequential Monte Carlo) and ekf (multi-hypothesis extended Kalman filter)
— and writes ``BENCH_solvers.json`` at the repo root with, per backend:

* **accuracy**: median / mean / p90 location error across all scenarios
  and seeds, plus the per-scenario medians;
* **cost**: median and p90 wall-clock time per full pipeline estimate
  (everything from sanitization through the solve);
* **robustness bookkeeping**: refusals (typed) and untyped errors (must
  be zero).

Run directly (``python benchmarks/bench_solvers.py``), as the CI gate
(``python benchmarks/bench_solvers.py --smoke`` — one scenario, asserts
every backend estimates with zero untyped errors, does not rewrite the
committed report), or via pytest (``pytest benchmarks/bench_solvers.py -m
solvers``). EXPERIMENTS.md summarizes the committed numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np
import pytest

from repro.core.pipeline import LocBLE
from repro.core.solvers import available_backends
from repro.errors import ReproError
from repro.world.scenarios import scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from helpers import DEFAULT_LEGS, measure_once  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]
REPORT_PATH = REPO_ROOT / "BENCH_solvers.json"

SCENARIOS = tuple(range(1, 10))
SEEDS = tuple(range(6))


def run_backend(
    backend: str,
    scenarios: Sequence[int] = SCENARIOS,
    seeds: Sequence[int] = SEEDS,
) -> Dict[str, object]:
    """Accuracy and per-estimate cost for one backend over the grid."""
    errors: List[float] = []
    times_ms: List[float] = []
    per_scenario: Dict[str, float] = {}
    refused = 0
    untyped = 0
    for idx in scenarios:
        sc = scenario(idx)
        sc_errors: List[float] = []
        for seed in seeds:
            rec, _ = measure_once(sc, seed)
            pipeline = LocBLE(solver=backend, sanitize="repair")
            t0 = time.perf_counter()
            try:
                est = pipeline.estimate(
                    rec.rssi_traces["target"], rec.observer_imu.trace)
            except ReproError:
                refused += 1
                continue
            except Exception:  # noqa: BLE001 - the bookkeeping the bench exists for
                untyped += 1
                continue
            times_ms.append(1e3 * (time.perf_counter() - t0))
            err = est.error_to(rec.true_position_in_frame("target"))
            if np.isfinite(err):
                errors.append(float(err))
                sc_errors.append(float(err))
        if sc_errors:
            per_scenario[f"scenario_{idx}"] = float(np.median(sc_errors))
    return {
        "backend": backend,
        "n_trials": len(list(scenarios)) * len(list(seeds)),
        "n_estimates": len(errors),
        "refused": refused,
        "untyped_errors": untyped,
        "error_median_m": float(np.median(errors)) if errors else None,
        "error_mean_m": float(np.mean(errors)) if errors else None,
        "error_p90_m": float(np.percentile(errors, 90)) if errors else None,
        "per_scenario_median_m": per_scenario,
        "solve_ms_median": float(np.median(times_ms)) if times_ms else None,
        "solve_ms_p90": float(np.percentile(times_ms, 90)) if times_ms else None,
    }


def run_full() -> Dict[str, object]:
    return {
        "description": (
            "Accuracy-vs-cost comparison of the registered solver backends "
            "on the Table-1 stationary scenarios (same traces per backend)."
        ),
        "python": platform.python_version(),
        "config": {
            "scenarios": list(SCENARIOS),
            "seeds": list(SEEDS),
            "legs": list(DEFAULT_LEGS),
            "sanitize": "repair",
        },
        "backends": [run_backend(b) for b in available_backends()],
    }


def run_smoke() -> Dict[str, object]:
    """The CI gate: one scenario, two seeds, every backend must estimate
    with zero untyped errors. Small enough for a pull-request loop."""
    return {
        "backends": [
            run_backend(b, scenarios=(1,), seeds=(0, 1))
            for b in available_backends()
        ],
    }


def _smoke_ok(report: Dict[str, object]) -> bool:
    return all(
        row["untyped_errors"] == 0 and row["n_estimates"] > 0
        for row in report["backends"]
    )


# -- pytest entry point (excluded from tier-1 via the solvers marker) ---------


@pytest.mark.solvers
def test_bench_solvers_smoke():
    report = run_smoke()
    for row in report["backends"]:
        assert row["untyped_errors"] == 0, row
        assert row["n_estimates"] > 0, row
        assert row["error_median_m"] < 6.0, row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI gate: every backend estimates, zero "
                             "untyped errors; does not rewrite "
                             "BENCH_solvers.json")
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_smoke()
        print(json.dumps(report, indent=2))
        ok = _smoke_ok(report)
        print("smoke:", "OK" if ok else "FAILED")
        return 0 if ok else 1

    report = run_full()
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{'backend':12s} {'median':>7s} {'mean':>6s} {'p90':>6s} "
          f"{'ms/solve':>9s} {'refused':>7s} {'untyped':>7s}")
    for row in report["backends"]:
        print(f"{row['backend']:12s} {row['error_median_m']:7.2f} "
              f"{row['error_mean_m']:6.2f} {row['error_p90_m']:6.2f} "
              f"{row['solve_ms_median']:9.1f} {row['refused']:7d} "
              f"{row['untyped_errors']:7d}")
    print(f"wrote {REPORT_PATH}")
    ok = all(r["untyped_errors"] == 0 and r["n_estimates"] > 0
             for r in report["backends"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
