"""Fig. 11a — stationary targets in environments #1–#6, LocBLE vs Dartle.

The paper plots per-environment x-error, h-error and absolute-position error
for LocBLE, against the Dartle app's *range* error, and reports LocBLE ~30 %
better. Dartle only ranges (1-D); the paper compares its range-estimation
error with LocBLE's absolute error, so we do the same: LocBLE's position
error vs |Dartle range − true distance|.
"""

from __future__ import annotations

import numpy as np

from helpers import DEFAULT_LEGS, dominant_env, measure_once, print_series, run_experiment
from repro.baselines.dartle import DartleRanger
from repro.core.estimator import EllipticalEstimator
from repro.core.pipeline import LocBLE
from repro.world.scenarios import scenario

N_SEEDS = 6


def _experiment():
    rows = {}
    for idx in range(1, 7):
        sc = scenario(idx)
        env = dominant_env(sc)
        x_errs, h_errs, abs_errs, dartle_errs = [], [], [], []
        for seed in range(N_SEEDS):
            pipeline = LocBLE(
                estimator=EllipticalEstimator().with_environment(env)
            )
            rec, pipeline = measure_once(sc, seed, pipeline=pipeline)
            truth = rec.true_position_in_frame("target")
            est = pipeline.estimate(rec.rssi_traces["target"],
                                    rec.observer_imu.trace)
            x_errs.append(abs(est.position.x - truth.x))
            h_errs.append(abs(est.position.y - truth.y))
            abs_errs.append(est.error_to(truth))
            dartle_errs.append(
                DartleRanger().range_error(rec.rssi_traces["target"],
                                           rec.true_distance("target"))
            )
        rows[idx] = {
            "x err": float(np.mean(x_errs)),
            "h err": float(np.mean(h_errs)),
            "locble abs": float(np.mean(abs_errs)),
            "dartle range": float(np.mean(dartle_errs)),
        }
    return rows


def test_fig11a_stationary_vs_dartle(benchmark):
    rows = run_experiment(benchmark, _experiment)
    for idx, r in rows.items():
        print_series(f"Fig. 11a — env #{idx}", r)

    locble_overall = float(np.mean([r["locble abs"] for r in rows.values()]))
    dartle_overall = float(np.mean([r["dartle range"] for r in rows.values()]))
    print_series(
        "Fig. 11a — overall",
        {"LocBLE abs (m)": locble_overall, "Dartle range (m)": dartle_overall,
         "improvement": 1.0 - locble_overall / dartle_overall,
         "paper improvement": 0.30},
    )

    # LocBLE provides (x, h); x and h component errors bound the abs error.
    for r in rows.values():
        assert max(r["x err"], r["h err"]) <= r["locble abs"] + 1e-9

    # The paper's headline: LocBLE beats the fixed-parameter ranger, by
    # roughly the claimed ~30 % overall.
    assert locble_overall < dartle_overall
    assert 1.0 - locble_overall / dartle_overall > 0.15
