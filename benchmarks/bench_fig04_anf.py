"""Fig. 4 — BF + AKF filtering: smooth like the Butterworth, lag like raw.

The paper's figure overlays, for a 40 s RSS trace: the theoretical curve,
raw readings, the 6th-order Butterworth output (smooth but delayed) and the
BF+AKF output (smooth *and* responsive). We regenerate the trace with a
mid-walk level change, run each stage over a dozen seeds, and assert:

* BF is far smoother than raw;
* in the ~1.5 s right after the level change — where BF's group delay bites
  — BF+AKF tracks the theoretical curve better than BF (the responsiveness
  the zoom-in of Fig. 4 highlights);
* BF+AKF remains far closer to the theoretical curve than raw overall.

Once the transient has passed, the smoother BF catches up again; the AKF's
whole point is only the transient.
"""

from __future__ import annotations

import numpy as np

from helpers import print_series, run_experiment
from repro.channel.fading import RicianFading
from repro.core.anf import AdaptiveNoiseFilter
from repro.filters.butterworth import ButterworthLowPass

FS_HZ = 9.0
STEP_T = 20.0
N_SEEDS = 12


def _one_trace(seed: int):
    rng = np.random.default_rng(seed)
    ts = np.arange(0.0, 40.0, 1.0 / FS_HZ)
    true = -68.0 - 8.0 * np.log10(1.0 + ts / 4.0)
    true = true + np.where(ts > STEP_T, -10.0, 0.0)  # walks behind a blocker
    fader = RicianFading(10.0, rng)
    raw = true + np.array([fader.sample_db() for _ in ts])
    raw += rng.normal(0.0, 1.0, len(ts))
    bf = ButterworthLowPass(order=6, cutoff_hz=0.8, fs_hz=FS_HZ).apply(raw)
    fused = AdaptiveNoiseFilter().apply(raw, FS_HZ)
    return ts, true, raw, bf, fused


def _experiment():
    agg = {"raw_rmse": [], "bf_rmse": [], "fused_rmse": [],
           "raw_rough": [], "bf_rough": [], "fused_rough": [],
           "bf_transient": [], "fused_transient": [], "transient_wins": 0}
    for seed in range(N_SEEDS):
        ts, true, raw, bf, fused = _one_trace(seed)
        transient = (ts > STEP_T) & (ts < STEP_T + 1.5)
        agg["raw_rmse"].append(np.sqrt(np.mean((raw - true) ** 2)))
        agg["bf_rmse"].append(np.sqrt(np.mean((bf - true) ** 2)))
        agg["fused_rmse"].append(np.sqrt(np.mean((fused - true) ** 2)))
        agg["raw_rough"].append(np.std(np.diff(raw)))
        agg["bf_rough"].append(np.std(np.diff(bf)))
        agg["fused_rough"].append(np.std(np.diff(fused)))
        bf_t = float(np.mean(np.abs(bf[transient] - true[transient])))
        fused_t = float(np.mean(np.abs(fused[transient] - true[transient])))
        agg["bf_transient"].append(bf_t)
        agg["fused_transient"].append(fused_t)
        agg["transient_wins"] += fused_t < bf_t
    return {
        k: (float(np.mean(v)) if isinstance(v, list) else v)
        for k, v in agg.items()
    }


def test_fig04_anf_filtering(benchmark):
    m = run_experiment(benchmark, _experiment)
    print_series("Fig. 4 — BF + AKF filtering (mean over seeds)", m)

    # BF removes the fast fading (the figure's visibly smoother curve).
    assert m["bf_rough"] < 0.3 * m["raw_rough"]

    # The zoom-in claim: right after the level change, the fused output is
    # closer to the theoretical curve than the lagging BF, in nearly every
    # run.
    assert m["fused_transient"] < m["bf_transient"]
    assert m["transient_wins"] >= int(0.75 * N_SEEDS)

    # Overall, both filtered signals are far closer to truth than raw, and
    # the fused output stays much smoother than raw.
    assert m["fused_rmse"] < 0.8 * m["raw_rmse"]
    assert m["fused_rough"] < 0.5 * m["raw_rough"]
