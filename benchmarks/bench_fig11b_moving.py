"""Fig. 11b — locating a *moving* target (two walking users).

Two users, observer and target, both move during the measurement; the
target streams its RSS/motion data to the observer (Sec. 5). The paper runs
40+ experiments in environments #9 (test 1: 3–9 m) and #8 (test 2: 3–14 m)
and reports error (at the target's initial location) below 2.5 m for more
than 50 % of runs.

Both users' frames are reconciled through their magnetometers; the error
sources the paper names — fast blockage changes and accumulated movement
estimation error of *two* users — are all present in the simulation.
"""

from __future__ import annotations

import math

import numpy as np

from helpers import cdf_points, print_series, run_experiment
from repro.ble.devices import BEACONS
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import Vec2
from repro.world.scenarios import scenario
from repro.world.trajectory import l_shape, straight_walk

N_RUNS = 12


def _moving_errors(env_index: int, d_range, seed_base: int):
    sc = scenario(env_index)
    errs = []
    for seed in range(N_RUNS):
        rng = np.random.default_rng(seed_base + seed)
        sim = Simulator(sc.floorplan, rng)
        start = Vec2(2.0, 2.0)
        heading = rng.uniform(0.0, math.pi / 4)
        observer = l_shape(start, heading, leg1=2.8, leg2=2.2)
        d0 = rng.uniform(*d_range)
        t_start = start + Vec2.from_polar(d0, heading + rng.uniform(-0.4, 0.4))
        t_start = Vec2(
            min(max(t_start.x, 0.5), sc.floorplan.width - 0.5),
            min(max(t_start.y, 0.5), sc.floorplan.height - 0.5),
        )
        # The target walks a couple of metres in its own direction.
        t_heading = rng.uniform(-math.pi, math.pi)
        length = rng.uniform(1.5, 3.0)
        end = t_start + Vec2.from_polar(length, t_heading)
        if not sc.floorplan.contains(end):
            t_heading += math.pi
        target = straight_walk(t_start, t_heading, length, speed=0.8)
        rec = sim.simulate(observer, [
            BeaconSpec("m", trajectory=target, profile=BEACONS["ios_device"])
        ])
        try:
            est = LocBLE().estimate(
                rec.rssi_traces["m"], rec.observer_imu.trace,
                target_imu=rec.target_imu.trace,
            )
            errs.append(est.error_to(rec.true_position_in_frame("m")))
        except (EstimationError, InsufficientDataError):
            errs.append(d0)
    return errs


def _experiment():
    return {
        "test1 (env #9, 3-9 m)": _moving_errors(9, (3.0, 9.0), 500),
        "test2 (env #8, 3-12 m)": _moving_errors(8, (3.0, 12.0), 900),
    }


def test_fig11b_moving_target(benchmark):
    results = run_experiment(benchmark, _experiment)
    for name, errs in results.items():
        med = float(np.median(errs))
        frac_under = float(np.mean(np.asarray(errs) < 2.5))
        print_series(f"Fig. 11b — {name}",
                     {"median (m)": med, "fraction < 2.5 m": frac_under})
        print("  CDF:",
              [(round(e, 2), round(f, 2)) for e, f in cdf_points(errs)])
    print_series("Fig. 11b — paper", {"< 2.5 m": "> 50 % of runs"})

    all_errs = np.concatenate([np.asarray(v) for v in results.values()])
    t1 = np.asarray(results["test1 (env #9, 3-9 m)"])
    t2 = np.asarray(results["test2 (env #8, 3-12 m)"])
    # Shape: moving-target estimation works; the open outdoor test is
    # easier than the blocked hall; a solid fraction of runs land close.
    # (Our fraction under 2.5 m is lower than the paper's >50 % overall —
    # the blocked-hall moving case has the widest divergence; recorded in
    # EXPERIMENTS.md.)
    assert float(np.median(t1)) <= float(np.median(t2))
    assert float(np.median(all_errs)) < 4.5
    assert float(np.mean(all_errs < 3.0)) >= 0.3
