"""Hot-path performance benchmarks: vectorized kernels vs their references.

Times the three overhauled hot paths against the retained reference
implementations and writes ``BENCH_perf.json`` at the repo root:

* the estimator's exponent grid search (batched LS vs per-candidate loop);
* banded DTW (two-buffer vectorized band vs per-cell DP);
* the Monte-Carlo sweep (process pool vs serial — only meaningful on
  multi-core hosts; the report records ``effective_cpus`` so a 1-CPU
  container's numbers are not mistaken for a regression).

Run directly (``python benchmarks/bench_perf_hotpaths.py``) or via pytest
(``pytest benchmarks/bench_perf_hotpaths.py -m perf``). Render the report
with ``python -m repro.perf.report``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np
import pytest

from repro import perf
from repro.core.estimator import EllipticalEstimator, FitRequest, fit_batch
from repro.dtw.dtw import _dtw_distance_reference, dtw_distance
from repro.sim.montecarlo import stationary_trials
from repro.world.scenarios import scenario

REPO_ROOT = Path(__file__).resolve().parents[1]
REPORT_PATH = REPO_ROOT / "BENCH_perf.json"

#: (target speedups from the issue's acceptance criteria)
TARGET_ESTIMATOR = 3.0
TARGET_DTW = 5.0
TARGET_PARALLEL = 2.0
TARGET_WARM = 5.0
TARGET_BATCH = 3.0


def _parallel_target(cpus: int) -> float:
    """The pool-speedup bar this host can actually express.

    A process pool's speedup is bounded by physical cores: on >= 4 CPUs we
    hold the issue's full target; below that the bar scales down, and on a
    1-CPU host (where the pool can only add overhead) it drops to "no
    pathological slowdown" rather than hard-failing the bench.
    """
    if cpus >= 4:
        return TARGET_PARALLEL
    return max(0.2, 0.5 * (cpus - 1))


def _best_of(fn: Callable[[], object], repeats: int = 7, number: int = 5) -> float:
    """Best mean-per-call over ``repeats`` batches of ``number`` calls."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def _estimator_workload(seed: int = 7, beacon_x: float = 2.0,
                        beacon_y: float = 2.5):
    """A realistic L-walk regression input: 40 matched samples."""
    rng = np.random.default_rng(seed)
    n_samples = 40
    # Observer walks an L (2.8 m then 2.2 m); beacon 2.5 m off the path.
    frac = np.linspace(0.0, 1.0, n_samples)
    leg1 = frac < 0.56
    ox = np.where(leg1, frac / 0.56 * 2.8, 2.8)
    oy = np.where(leg1, 0.0, (frac - 0.56) / 0.44 * 2.2)
    p, q = -ox, -oy
    dist = np.hypot(ox - beacon_x, oy - beacon_y)
    rss = -55.0 - 10.0 * 2.2 * np.log10(np.maximum(dist, 0.1))
    rss = rss + rng.normal(0.0, 1.5, n_samples)
    return p, q, rss


def bench_estimator() -> Dict[str, object]:
    est = EllipticalEstimator()
    p, q, rss = _estimator_workload()
    ref = est._fit_linearized_reference(p, q, rss, use_q=True)
    vec = est._fit_linearized(p, q, rss, use_q=True)
    assert np.isclose(ref.n, vec.n)
    assert np.isclose(ref.gamma, vec.gamma, rtol=1e-9)
    assert np.isclose(ref.position.x, vec.position.x, rtol=1e-9)
    assert np.isclose(ref.position.y, vec.position.y, rtol=1e-9)
    before = _best_of(lambda: est._fit_linearized_reference(p, q, rss, use_q=True))
    after = _best_of(lambda: est._fit_linearized(p, q, rss, use_q=True))
    return {
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "target_speedup": TARGET_ESTIMATOR,
        "meets_target": before / after >= TARGET_ESTIMATOR,
        "note": f"{len(est.n_grid)}-point exponent grid, {len(p)} samples, "
                "batched QR vs per-candidate lstsq loop",
    }


def bench_warm_start() -> Dict[str, object]:
    """Full cold fit (grid + GN polish) vs the warm-seeded fast path on the
    next tick's overlapping window."""
    est = EllipticalEstimator()
    p, q, rss = _estimator_workload()
    cold = est.fit(p, q, rss)
    assert cold.warm is not None, "cold fit must emit a warm state"
    # The next solve period's window: same geometry, fresh measurement noise.
    rng = np.random.default_rng(23)
    rss2 = rss + rng.normal(0.0, 0.4, rss.shape)
    warm_res = est.fit(p, q, rss2, warm=cold.warm)
    cold_res = est.fit(p, q, rss2)
    assert warm_res.warm_started, "warm fast path must engage"
    assert abs(warm_res.position.x - cold_res.position.x) < 0.5
    assert abs(warm_res.position.y - cold_res.position.y) < 0.5
    before = _best_of(lambda: est.fit(p, q, rss2), repeats=3, number=2)
    after = _best_of(lambda: est.fit(p, q, rss2, warm=cold.warm))
    return {
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "target_speedup": TARGET_WARM,
        "meets_target": before / after >= TARGET_WARM,
        "note": f"{len(p)}-sample window; cold {len(est.n_grid)}-point grid "
                "+ GN polish vs 3-seed warm LM refine; positions agree to "
                f"{abs(warm_res.position.x - cold_res.position.x):.1e} m in x",
    }


def bench_fit_batch(n_sessions: int = 32) -> Dict[str, object]:
    """One batched kernel for N sessions' warm solves vs the same solves in
    a sequential Python loop (both through the identical lockstep LM)."""
    est = EllipticalEstimator()
    rng = np.random.default_rng(37)
    requests = []
    for i in range(n_sessions):
        p, q, rss = _estimator_workload(
            seed=100 + i,
            beacon_x=1.0 + 0.1 * i,
            beacon_y=1.5 + 0.05 * i,
        )
        warm = est.fit(p, q, rss).warm
        assert warm is not None
        rss2 = rss + rng.normal(0.0, 0.4, rss.shape)
        requests.append(FitRequest(p=p, q=q, rss=rss2, warm=warm))

    def sequential():
        return [est.fit(r.p, r.q, r.rss, warm=r.warm) for r in requests]

    seq = sequential()
    bat = fit_batch(requests, default_estimator=est)
    assert all(r.warm_started for r in seq), "all requests must stay warm"
    for s, b in zip(seq, bat):
        assert s.position.x == b.position.x and s.position.y == b.position.y
        assert np.array_equal(s.residuals, b.residuals)

    before = _best_of(sequential, repeats=3, number=3)
    after = _best_of(lambda: fit_batch(requests, default_estimator=est),
                     repeats=5, number=3)
    return {
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "target_speedup": TARGET_BATCH,
        "meets_target": before / after >= TARGET_BATCH,
        "note": f"{n_sessions}-session batch, 40-sample windows; one "
                "stacked lockstep-LM kernel vs per-session warm fits; "
                "results verified bit-identical",
    }


def bench_dtw() -> Dict[str, object]:
    rng = np.random.default_rng(11)
    a = np.cumsum(rng.normal(0.0, 1.0, 200))
    b = np.cumsum(rng.normal(0.0, 1.0, 200))
    w = 10
    assert np.isclose(_dtw_distance_reference(a, b, window=w),
                      dtw_distance(a, b, window=w), rtol=1e-9)
    before = _best_of(lambda: _dtw_distance_reference(a, b, window=w))
    after = _best_of(lambda: dtw_distance(a, b, window=w), number=20)
    return {
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "target_speedup": TARGET_DTW,
        "meets_target": before / after >= TARGET_DTW,
        "note": "two 200-sample sequences, window=10; vectorized band "
                "update vs per-cell DP loop",
    }


def bench_parallel() -> Dict[str, object]:
    sc = scenario(3)
    seeds = range(20)
    t0 = time.perf_counter()
    serial = stationary_trials(sc, seeds, parallel="off", failure_value=99.0)
    before = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = stationary_trials(sc, seeds, parallel="force", max_workers=4,
                               failure_value=99.0)
    after = time.perf_counter() - t0
    assert serial == pooled, "parallel sweep must be bit-identical to serial"
    cpus = os.cpu_count() or 1
    target = _parallel_target(cpus)
    return {
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "target_speedup": target,
        "meets_target": before / after >= target,
        "note": f"20-seed stationary sweep, 4 workers vs serial on "
                f"{cpus} CPU(s); results verified bit-identical. The "
                "target scales with effective CPUs — on a single-CPU host "
                "the pool only adds overhead, so the bar is merely 'no "
                "pathological slowdown'.",
    }


def build_report() -> Dict[str, object]:
    perf.reset()
    benches = {
        "estimator_grid_search": bench_estimator(),
        "estimator_warm_start": bench_warm_start(),
        "estimator_fit_batch": bench_fit_batch(),
        "dtw_distance_banded": bench_dtw(),
        "parallel_stationary_trials": bench_parallel(),
    }
    return {
        "meta": {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "effective_cpus": os.cpu_count() or 1,
            "numpy": np.__version__,
        },
        "benches": benches,
        "perf_snapshot": perf.snapshot(),
    }


def write_report(report: Dict[str, object]) -> Path:
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return REPORT_PATH


@pytest.mark.perf
def test_perf_hotpaths():
    report = build_report()
    path = write_report(report)
    benches = report["benches"]
    # The vectorized kernels must actually be faster — by their target
    # factors on the single-process paths (machine-independent).
    assert benches["estimator_grid_search"]["meets_target"], benches
    assert benches["estimator_warm_start"]["meets_target"], benches
    assert benches["estimator_fit_batch"]["meets_target"], benches
    assert benches["dtw_distance_banded"]["meets_target"], benches
    # The pool bench's target is already scaled to what this host's core
    # count can express (see _parallel_target), so it always asserts.
    assert benches["parallel_stationary_trials"]["meets_target"], benches
    print(f"\nwrote {path}")


def main() -> int:
    report = build_report()
    path = write_report(report)
    for name, b in report["benches"].items():
        print(f"{name}: {b['before_s'] * 1e3:.2f} ms -> "
              f"{b['after_s'] * 1e3:.2f} ms  ({b['speedup']:.1f}x, "
              f"target {b['target_speedup']:.0f}x, "
              f"{'met' if b['meets_target'] else 'NOT met'})")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
