#!/usr/bin/env python3
"""Offline trace analysis: record sessions to disk, analyse them later.

The paper's own evaluation is a trace analysis over a recorded dataset
(Sec. 7.2). This example shows the same workflow with the library: simulate
a few sessions, persist them as JSON (the format a logging app would write),
then reload and batch-analyse them — including an EnvAware classification of
each session's propagation environment.

Run:  python examples/offline_trace_analysis.py [directory]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import BeaconSpec, EnvDatasetBuilder, LocBLE, Simulator, l_shape, scenario
from repro.core.envaware import EnvAwareClassifier, trace_windows
from repro.sim.traces import load_session, save_session


def record_sessions(directory: Path, n: int = 4) -> None:
    """Simulate and persist ``n`` measurement sessions."""
    for seed in range(n):
        env_index = 1 + seed % 4
        sc = scenario(env_index)
        rng = np.random.default_rng(seed)
        sim = Simulator(sc.floorplan, rng)
        walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                       leg1=2.8, leg2=2.2)
        rec = sim.simulate(walk, [BeaconSpec("b", position=sc.beacon_position)])
        truth = rec.true_position_in_frame("b")
        save_session(
            directory / f"session_{seed}.json",
            rec.rssi_traces,
            rec.observer_imu.trace,
            metadata={
                "scenario": env_index,
                "true_x": truth.x,
                "true_y": truth.y,
            },
        )
    print(f"Recorded {n} sessions into {directory}")


def analyse_sessions(directory: Path) -> None:
    """Reload every session and run the full analysis offline."""
    print("\nTraining EnvAware on a synthetic labelled dataset...")
    windows, labels = EnvDatasetBuilder(np.random.default_rng(7)).build(
        sessions_per_class=6
    )
    envaware = EnvAwareClassifier().fit(windows, labels)
    pipeline = LocBLE(envaware=envaware)

    print(f"\n{'session':28s} {'env (EnvAware)':14s} {'error (m)':>9s}")
    errors = []
    for path in sorted(directory.glob("session_*.json")):
        rssi, imu, meta = load_session(path)
        trace = rssi["b"]
        est = pipeline.estimate(trace, imu)
        from repro.types import Vec2

        truth = Vec2(meta["true_x"], meta["true_y"])
        err = est.error_to(truth)
        errors.append(err)
        # Majority window classification, just for display.
        votes = [envaware.predict_one(w) for w in trace_windows(trace)]
        majority = max(set(votes), key=votes.count) if votes else "?"
        print(f"{path.name:28s} {majority:14s} {err:9.2f}")
    print(f"\nmean error over {len(errors)} sessions: "
          f"{np.mean(errors):.2f} m")


def main() -> None:
    if len(sys.argv) > 1:
        directory = Path(sys.argv[1])
        directory.mkdir(parents=True, exist_ok=True)
        record_sessions(directory)
        analyse_sessions(directory)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp)
            record_sessions(directory)
            analyse_sessions(directory)


if __name__ == "__main__":
    main()
