#!/usr/bin/env python3
"""Retail shelf: cluster co-located beacons to sharpen a hard estimate.

The paper's motivating retail deployment (Sec. 1, Sec. 6): items of one
category are shelved together, each carrying a cheap beacon. A shopper
measures one target item through racks (NLOS); LocBLE detects which of the
other audible beacons are physically co-located — by DTW-matching their RSS
trends — and fuses their estimates into a calibrated position (Algorithm 2).

Run:  python examples/retail_shelf.py [seed]
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro import BeaconSpec, ClusteringCalibrator, LocBLE, Simulator, Vec2, l_shape, scenario
from repro.core.estimator import EllipticalEstimator


def main(seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    sc = scenario(6)  # the Table-1 store: 9x10 m with tall shelf racks
    print(f"Scenario: {sc.name}, beacon-to-observer distance "
          f"{sc.nominal_distance:.1f} m through shelf racks\n")

    # The target item plus four same-shelf items 0.3 m apart, and one
    # unrelated beacon near the entrance.
    shelf = sc.beacon_position
    beacons = [BeaconSpec("target-item", position=shelf)]
    for k in range(4):
        offset = Vec2.from_polar(0.3, 2.0 * math.pi * k / 4.0)
        beacons.append(BeaconSpec(f"shelf-mate-{k}", position=shelf + offset))
    beacons.append(
        BeaconSpec("entrance-promo",
                   position=sc.observer_start + Vec2(0.7, 0.6))
    )

    walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                   leg1=2.8, leg2=2.2)
    sim = Simulator(sc.floorplan, rng)
    rec = sim.simulate(walk, beacons)
    truth = rec.true_position_in_frame("target-item")

    # NLOS-informed pipeline (what EnvAware would select behind the racks).
    pipeline = LocBLE(estimator=EllipticalEstimator().with_environment("NLOS"))

    single = pipeline.estimate(rec.rssi_traces["target-item"],
                               rec.observer_imu.trace)
    print(f"Single-beacon estimate: error {single.error_to(truth):.2f} m")

    calibrator = ClusteringCalibrator(pipeline)
    result = calibrator.calibrate("target-item", rec.rssi_traces,
                                  rec.observer_imu.trace)

    print("\nDTW cluster vote (Sec. 6.1):")
    for bid, match in sorted(result.match_results.items()):
        verdict = "co-located" if match.matched else "unrelated"
        print(f"  {bid:16s} {match.n_matched}/{match.n_segments} segments "
              f"matched -> {verdict}")

    print(f"\nCalibrated estimate over {len(result.contributors)} beacons "
          f"(weights: "
          + ", ".join(f"{b}={w:.2f}" for b, w in sorted(result.weights.items()))
          + ")")
    print(f"Calibrated error: {result.error_to(truth):.2f} m "
          f"(single-beacon was {single.error_to(truth):.2f} m)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
