#!/usr/bin/env python3
"""Track a moving target: locate a walking phone (Sec. 5 / Fig. 11b).

Both users move: the observer walks the L-shaped measurement path while the
target — a phone with its beacon function on — wanders off. The target
streams its RSS/motion data back (the paper uses UPnP for this), the two
dead-reckoned frames are reconciled through the magnetometers, and LocBLE
estimates where the target *started* (the paper's moving-target metric).

Run:  python examples/track_moving_friend.py [seed]
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro import BeaconSpec, LocBLE, Simulator, Vec2, l_shape, scenario
from repro.ble.devices import BEACONS
from repro.world.trajectory import straight_walk


def main(seed: int = 2) -> None:
    rng = np.random.default_rng(seed)
    sc = scenario(9)  # the outdoor parking lot (the paper's test 1)
    sim = Simulator(sc.floorplan, rng)

    observer_start = Vec2(3.0, 3.0)
    observer = l_shape(observer_start, math.radians(15.0),
                       leg1=3.0, leg2=2.5)

    friend_start = Vec2(9.5, 8.0)
    friend = straight_walk(friend_start, math.radians(200.0), 2.5, speed=0.8)
    print(f"Friend starts {observer_start.distance_to(friend_start):.1f} m "
          f"away and walks {friend.total_length():.1f} m during the "
          "measurement\n")

    rec = sim.simulate(observer, [
        BeaconSpec("friend-phone", trajectory=friend,
                   profile=BEACONS["ios_device"])
    ])

    # The target's IMU trace is what their phone would transmit over.
    estimate = LocBLE().estimate(
        rec.rssi_traces["friend-phone"],
        rec.observer_imu.trace,
        target_imu=rec.target_imu.trace,
    )

    truth = rec.true_position_in_frame("friend-phone")  # initial position
    print("Moving-target estimate (scored at the friend's initial "
          "location, as in the paper):")
    print(f"  estimated: ({estimate.position.x:+.2f}, "
          f"{estimate.position.y:+.2f})")
    print(f"  truth    : ({truth.x:+.2f}, {truth.y:+.2f})")
    print(f"  error    : {estimate.error_to(truth):.2f} m "
          "(paper: < 2.5 m for > 50 % of runs)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
