#!/usr/bin/env python3
"""Find a lost item: measure, then navigate to the beacon (Fig. 1a use-case).

A tagged item is lost somewhere in a large office. The user measures with an
L-walk, then follows LocBLE's navigation instructions ("turn x°, walk y m")
while dead reckoning drifts realistically; the estimate keeps refreshing
from advertisements heard along the way. The last-metre proximity snap
(Sec. 9.2, future work implemented here) takes over inside 2 m.

Run:  python examples/find_lost_item.py [seed]
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro import BeaconSpec, Floorplan, LocBLE, Navigator, Simulator, Vec2, l_shape
from repro.baselines.proximity import ProximityEstimator
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.estimator import EllipticalEstimator
from repro.errors import EstimationError, InsufficientDataError
from repro.types import LocationEstimate, RssiTrace
from repro.world.trajectory import Trajectory


def main(seed: int = 1) -> None:
    rng = np.random.default_rng(seed)
    plan = Floorplan("office", 18.0, 14.0)
    sim = Simulator(plan, rng)

    start = Vec2(2.0, 2.0)
    heading = math.radians(20.0)
    item = Vec2(rng.uniform(8.0, 15.0), rng.uniform(5.0, 12.0))
    print(f"Item lost somewhere in an 18x14 m office "
          f"(actually at {item}, {start.distance_to(item):.1f} m away)\n")

    # --- Measure phase -----------------------------------------------------
    walk = l_shape(start, heading, leg1=2.8, leg2=2.2)
    rec = sim.simulate(walk, [BeaconSpec("item", position=item)])
    est = LocBLE().estimate(rec.rssi_traces["item"], rec.observer_imu.trace)
    print(f"Measured: item estimated at frame position "
          f"({est.position.x:+.1f}, {est.position.y:+.1f}), "
          f"confidence {est.confidence:.2f}")

    # --- Navigate phase ----------------------------------------------------
    nav = Navigator(arrival_radius_m=0.5, max_leg_m=2.0,
                    use_proximity_snap=True)
    proximity = ProximityEstimator()
    believed = walk.displacement_in_frame(walk.times[-1])
    true_pos = believed
    nav_heading = math.pi / 2
    t_cursor = walk.times[-1] + 1.0

    trace = rec.rssi_traces["item"]
    p_pool = [-walk.displacement_in_frame(t).x for t in trace.timestamps()]
    q_pool = [-walk.displacement_in_frame(t).y for t in trace.timestamps()]
    rss_pool = list(trace.values())
    recent_trace = trace

    for step in range(1, 15):
        prox_d = None
        try:
            prox_d = proximity.short_range_distance(recent_trace)
        except InsufficientDataError:
            pass
        ins = nav.instruction(believed, nav_heading, est,
                              proximity_distance_m=prox_d)
        if ins.arrived:
            print(f"\nstep {step}: arrived!")
            break
        mode = " [proximity mode]" if ins.proximity_mode else ""
        print(f"step {step}: turn {ins.turn_deg:+.0f}°, "
              f"walk {ins.distance_m:.1f} m{mode}")

        believed_from = believed
        believed, nav_heading = nav.waypoint_after(believed, nav_heading, ins)
        actual_heading = nav_heading + rng.normal(0.0, math.radians(3.5))
        actual_len = ins.distance_m * (1.0 + rng.normal(0.0, 0.05))
        true_from = true_pos
        true_pos = true_pos + Vec2.from_polar(actual_len, actual_heading)

        # Hear fresh advertisements along the walked leg and refresh.
        wf, wt = walk.from_frame(true_from), walk.from_frame(true_pos)
        if wf.distance_to(wt) < 0.3:
            continue
        leg = Trajectory([wf, wt],
                         [t_cursor, t_cursor + wf.distance_to(wt) / 1.1])
        leg_rec = sim.simulate(leg, [BeaconSpec("item", position=item)],
                               t_pad_s=0.0)
        recent_trace = leg_rec.rssi_traces["item"]
        for s in recent_trace.samples:
            frac = (s.timestamp - leg.times[0]) / max(leg.duration, 1e-9)
            bp = believed_from + (believed - believed_from) * min(max(frac, 0), 1)
            p_pool.append(-bp.x)
            q_pool.append(-bp.y)
            rss_pool.append(s.rssi)
        t_cursor = leg.times[-1] + 1.0
        try:
            filtered = AdaptiveNoiseFilter().apply(np.asarray(rss_pool), 8.0)
            fit = EllipticalEstimator().fit(np.asarray(p_pool),
                                            np.asarray(q_pool), filtered)
            est = LocationEstimate(position=fit.position)
        except (EstimationError, InsufficientDataError):
            pass

    final = walk.from_frame(true_pos)
    print(f"\nFinal standing point: {final}")
    print(f"Overall error to the item: {final.distance_to(item):.2f} m "
          f"(paper's Fig. 10b: median 1.5 m over 20 such runs)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
