#!/usr/bin/env python3
"""Quickstart: locate one BLE beacon with a single L-shaped walk.

Simulates the paper's core use-case end to end: a beacon sits across the
meeting room; the user walks the L-shaped measurement path with their phone;
LocBLE fuses the phone's RSS readings with dead-reckoned motion and prints
the beacon's estimated 2-D position, the fitted path-loss parameters and the
estimation confidence.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import BeaconSpec, LocBLE, Simulator, l_shape, scenario


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed)

    # Environment #1 from the paper's Table 1: a 5x5 m meeting room.
    sc = scenario(1)
    print(f"Scenario: {sc.name} ({sc.floorplan.width:g}x"
          f"{sc.floorplan.height:g} m)")
    print(f"Hidden beacon at {sc.beacon_position} "
          f"({sc.nominal_distance:.1f} m from the observer)\n")

    # The user walks the L-shaped measurement path (Sec. 5.1): ~2.8 m
    # straight, a 90-degree turn, then ~2.2 m more.
    walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                   leg1=2.8, leg2=2.2)

    # Simulate what the phone records: BLE advertisements through a fading
    # channel, plus accelerometer/gyro/magnetometer streams.
    sim = Simulator(sc.floorplan, rng)
    rec = sim.simulate(walk, [BeaconSpec("my-beacon",
                                         position=sc.beacon_position)])
    trace = rec.rssi_traces["my-beacon"]
    print(f"Recorded {len(trace)} RSSI samples at "
          f"{trace.mean_rate_hz():.1f} Hz "
          f"(range {trace.values().min():.0f} to "
          f"{trace.values().max():.0f} dBm)")

    # Run LocBLE: adaptive noise filtering, motion tracking, and the
    # elliptical regression that solves jointly for position and the
    # path-loss parameters.
    estimate = LocBLE().estimate(trace, rec.observer_imu.trace)

    truth = rec.true_position_in_frame("my-beacon")
    print("\n--- LocBLE estimate (measurement frame: origin = walk start, "
          "+x = initial walking direction) ---")
    print(f"position : ({estimate.position.x:+.2f}, "
          f"{estimate.position.y:+.2f}) m")
    print(f"truth    : ({truth.x:+.2f}, {truth.y:+.2f}) m")
    print(f"error    : {estimate.error_to(truth):.2f} m")
    print(f"fitted Γ : {estimate.gamma:.1f} dBm at 1 m")
    print(f"fitted n : {estimate.n:.2f}")
    print(f"confidence: {estimate.confidence:.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
