#!/usr/bin/env python3
"""AR tagging in 3-D: locate a wall-mounted beacon's height (Fig. 1b).

The paper's AR use-case highlights tagged items on the user's display even
behind occlusions; the Sec. 9.3 extension asks for 3-D positions so the AR
overlay can anchor at the right height. This example runs the implemented
3-D flow: the user walks the L-path up a short ramp, the phone fuses RSS
with dead reckoning *and* its barometer, and the Estimator3D reports the
beacon's (x, h, z) — including how high on the wall it is mounted.

Run:  python examples/ar_tagging_3d.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Vec2
from repro.analysis import CoverageMap
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.estimator import EllipticalEstimator
from repro.core.three_d import Estimator3D, Vec3
from repro.imu.barometer import BarometerModel
from repro.motion import MotionTracker
from repro.sim.simulator3d import Simulator3D, ramp_profile
from repro.world.floorplan import Floorplan
from repro.world.trajectory import l_shape


def main(seed: int = 1) -> None:
    rng = np.random.default_rng(seed)
    plan = Floorplan("gallery", 12.0, 12.0)
    sim = Simulator3D(plan, rng)

    # The tagged artwork hangs 2.8 m up a gallery wall.
    artwork = Vec3(7.5, 6.0, 2.8)
    print("A tagged item hangs somewhere in a 12x12 m gallery "
          f"(actually at ({artwork.x}, {artwork.y}), "
          f"{artwork.z} m above the floor)\n")

    # Measurement walk: the L-path doubles as a ramp climb (0 -> 1.2 m),
    # which is what makes the beacon's height observable.
    walk = l_shape(Vec2(2.0, 2.0), 0.3, leg1=2.8, leg2=2.2)
    climb = ramp_profile(0.0, 1.2, walk.times[0], walk.times[0] + 2.5)
    m = sim.simulate(walk, climb, artwork)
    print(f"Recorded {len(m.rssi_trace)} RSSI samples, "
          f"{len(m.pressure_hpa)} barometer samples")

    # Fuse: planar dead reckoning + barometric elevation + filtered RSS.
    track = MotionTracker().track(m.observer_imu.trace)
    rel_alt = BarometerModel(rng).estimate_relative_altitude(m.pressure_hpa)
    ts = m.rssi_trace.timestamps()
    p = np.array([-track.displacement_at(t).x for t in ts])
    q = np.array([-track.displacement_at(t).y for t in ts])
    r = -np.interp(ts, m.pressure_timestamps, rel_alt)
    filtered = AdaptiveNoiseFilter().apply(
        m.rssi_trace.values(), m.rssi_trace.mean_rate_hz())

    estimator = Estimator3D(
        planar=EllipticalEstimator().with_environment("LOS"))
    fit = estimator.fit(p, q, r, filtered)

    truth = m.true_position_in_frame()
    print("\n--- 3-D estimate (frame: origin at walk start, z relative to "
          "the phone's starting height) ---")
    print(f"estimated: ({fit.position.x:+.2f}, {fit.position.y:+.2f}, "
          f"{fit.position.z:+.2f}) m")
    print(f"truth    : ({truth.x:+.2f}, {truth.y:+.2f}, {truth.z:+.2f}) m")
    print(f"3-D error: {fit.position.distance_to(truth):.2f} m "
          f"(height error {abs(fit.position.z - truth.z):.2f} m)")
    mount_height = fit.position.z + sim.carry_height_m
    print(f"\nThe AR overlay should anchor ~{mount_height:.1f} m above "
          "the floor.")

    # Bonus: where in the gallery is this beacon audible at all?
    cm = CoverageMap(plan, Vec2(artwork.x, artwork.y))
    print(f"Beacon audible over {cm.coverage_fraction():.0%} of the floor:")
    print(cm.ascii_map())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
