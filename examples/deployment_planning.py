#!/usr/bin/env python3
"""Deployment planning: link budgets, coverage maps, and the survey question.

Before fitting a store with beacons, an integrator wants to know: how far
will each beacon be heard through the racks, which shelf spots are covered,
and is a fingerprint site-survey worth its cost against LocBLE's
survey-free measurement? This example answers all three with the library's
analysis tools and baselines.

Run:  python examples/deployment_planning.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import BeaconSpec, LocBLE, Simulator, Vec2, l_shape
from repro.analysis import CoverageMap, LinkBudget
from repro.baselines.fingerprint import DistanceFingerprint, FingerprintLocator
from repro.ble.devices import BEACONS
from repro.motion import MotionTracker
from repro.types import EnvClass
from repro.world.builder import store_layout
from repro.world.trajectory import random_waypoint_walk


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    plan = store_layout(width=12.0, depth=10.0, n_aisles=3)
    beacon_pos = Vec2(6.0, 3.2)  # on the first rack row's far side

    # --- 1. Link budget: how far can this shelf beacon be heard? ----------
    print("--- Link budget ---")
    for name in ("estimote", "ble5_longrange"):
        lb = LinkBudget(BEACONS[name], env_class=EnvClass.NLOS,
                        excess_loss_db=7.0)  # one rack in the way
        print(f"{name:16s}: max reliable range {lb.max_range_m():5.1f} m "
              f"(margin at 6 m: {lb.margin_db(6.0):.0f} dB)")

    # --- 2. Coverage map over the store floor ------------------------------
    cm = CoverageMap(plan, beacon_pos)
    print(f"\n--- Coverage ({cm.coverage_fraction():.0%} of the floor) ---")
    print(cm.ascii_map())

    # --- 3. Survey-free LocBLE vs a surveyed fingerprint ------------------
    print("\n--- LocBLE vs fingerprinting ---")
    sim = Simulator(plan, rng)

    # The integrator's calibration pass: a 10-leg walk with the beacon at a
    # known position (this is the cost fingerprinting carries).
    survey_walk = random_waypoint_walk(Vec2(2.0, 1.0), 10, rng,
                                       bounds=(12.0, 10.0))
    cal = sim.simulate(survey_walk, [BeaconSpec("cal", position=beacon_pos)])
    cal_trace = cal.rssi_traces["cal"]
    distances = [survey_walk.position_at(t).distance_to(beacon_pos)
                 for t in cal_trace.timestamps()]
    fingerprint = DistanceFingerprint().fit(distances, cal_trace.values())
    print(f"survey walk: {survey_walk.total_length():.0f} m, "
          f"{len(cal_trace)} calibration samples")

    # A shopper's measurement of the same beacon.
    walk = l_shape(Vec2(2.0, 1.0), 0.5, leg1=2.8, leg2=2.2)
    rec = sim.simulate(walk, [BeaconSpec("item", position=beacon_pos)])
    truth = rec.true_position_in_frame("item")

    from repro.core.estimator import EllipticalEstimator

    pipeline = LocBLE(
        estimator=EllipticalEstimator().with_environment(EnvClass.NLOS))
    locble = pipeline.estimate(rec.rssi_traces["item"],
                               rec.observer_imu.trace)
    track = MotionTracker().track(rec.observer_imu.trace)
    positions = [track.displacement_at(t)
                 for t in rec.rssi_traces["item"].timestamps()]
    fp_est = FingerprintLocator(fingerprint).estimate(
        positions, rec.rssi_traces["item"].values())

    print(f"LocBLE (no survey)     : error "
          f"{locble.error_to(truth):.2f} m")
    print(f"fingerprint (surveyed) : error "
          f"{fp_est.distance_to(truth):.2f} m")
    print("\nLocBLE lands in the surveyed baseline's accuracy band without "
          "the calibration walk — and keeps working after the racks are "
          "rearranged, when the survey would need redoing.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
