"""Crowded-environment interference (the paper's Sec. 9.2 evaluation gap).

"In a shopping mall where pedestrians' BLE signals and the surrounding BLE
beacons create interferences and affect RSS readings" — two effects matter:

* **Scan contention / co-channel collisions**: every additional audible
  advertiser steals scanner airtime and occasionally collides with the
  target's advertisement on the shared 37/38/39 channels. The paper
  observed the target's effective RSS rate fall from 8 Hz to ~3 Hz under
  heavy interference (Sec. 6.1). We model the per-packet loss probability
  as ``N / (N + N_half)``: it passes ~60 % loss (8 → ~3 Hz) around
  ``N ≈ 18`` audible devices with the default half-load constant.
* **Ambient RSS perturbation**: overlapping transmissions that still decode
  perturb the measured power; modelled as extra zero-mean jitter growing
  with the crowd.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import ConfigurationError

__all__ = ["CrowdInterference", "crowding_loss_probability"]

#: Audible-device count at which half the packets are lost to contention.
DEFAULT_HALF_LOAD = 12.0


def crowding_loss_probability(
    n_audible: int, half_load: float = DEFAULT_HALF_LOAD
) -> float:
    """Packet-loss probability from ``n_audible`` other BLE devices."""
    if n_audible < 0:
        raise ConfigurationError("n_audible must be non-negative")
    if half_load <= 0:
        raise ConfigurationError("half_load must be positive")
    return n_audible / (n_audible + half_load)


@dataclass(frozen=True)
class CrowdInterference:
    """Interference profile of a crowded deployment.

    ``n_ambient`` counts audible BLE devices *besides* the beacons the
    session simulates explicitly; the simulator adds its own beacon count.
    """

    n_ambient: int = 0
    half_load: float = DEFAULT_HALF_LOAD
    jitter_db_per_10: float = 0.4  # extra RSS jitter std per 10 devices

    def loss_probability(self, n_simulated_beacons: int) -> float:
        """Total contention loss for a session with this many beacons."""
        n_others = self.n_ambient + max(n_simulated_beacons - 1, 0)
        return crowding_loss_probability(n_others, self.half_load)

    def extra_jitter_db(self, n_simulated_beacons: int) -> float:
        """Additional RSS jitter std from overlapping transmissions."""
        n_others = self.n_ambient + max(n_simulated_beacons - 1, 0)
        return self.jitter_db_per_10 * n_others / 10.0
