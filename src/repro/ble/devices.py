"""Hardware profiles for the phones and beacons the paper evaluates.

Phones differ in BLE *sampling rate* (the paper measured 9 Hz on iPhone 6s,
8 Hz on Nexus 6P) and in chipset RSS offset (Fig. 2's vertical shifts).
Beacons differ in reference power and antenna quality — the paper found
dedicated beacons (RadBeacon, Estimote) slightly better targets than
smartphone-integrated beacons (Fig. 14) because phone antennas are more
compactly packed, which we model as extra per-packet emission jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError

__all__ = ["PhoneProfile", "BeaconProfile", "PHONES", "BEACONS"]


@dataclass(frozen=True)
class PhoneProfile:
    """Observer device: how it scans and how its chipset distorts RSS."""

    name: str
    sampling_hz: float
    rx_offset_db: float
    rx_jitter_std_db: float

    def __post_init__(self) -> None:
        if self.sampling_hz <= 0:
            raise ConfigurationError("sampling_hz must be positive")


@dataclass(frozen=True)
class BeaconProfile:
    """Target device: reference power and emission stability.

    ``gamma_dbm`` is the mean received power at 1 m from this hardware;
    ``tx_jitter_std_db`` models packet-to-packet emission variation (worse on
    phone-integrated radios); ``advertising_hz`` is the broadcast rate — the
    paper configured all beacons to 10 Hz. ``ble_version`` is 4 for legacy
    advertising or 5 for the extended advertising of Bluetooth 5 (Sec. 9.3:
    "wider coverage ... will enhance LocBLE's performance while keeping it
    still compatible"): a Class-1 BLE 5 beacon may transmit up to 100 mW
    (+10 dB on the legacy cap) and the coded PHY buys receiver sensitivity.
    """

    name: str
    gamma_dbm: float
    tx_jitter_std_db: float
    advertising_hz: float = 10.0
    connectable: bool = False
    ble_version: int = 4
    coded_phy: bool = False

    def __post_init__(self) -> None:
        if self.advertising_hz <= 0:
            raise ConfigurationError("advertising_hz must be positive")


PHONES: Dict[str, PhoneProfile] = {
    "iphone_5s": PhoneProfile("iphone_5s", sampling_hz=9.0, rx_offset_db=0.0,
                              rx_jitter_std_db=1.2),
    "iphone_6s": PhoneProfile("iphone_6s", sampling_hz=9.0, rx_offset_db=-1.5,
                              rx_jitter_std_db=1.0),
    "nexus_5x": PhoneProfile("nexus_5x", sampling_hz=8.0, rx_offset_db=-6.0,
                             rx_jitter_std_db=1.5),
    "nexus_6": PhoneProfile("nexus_6", sampling_hz=8.0, rx_offset_db=4.0,
                            rx_jitter_std_db=1.5),
    "nexus_6p": PhoneProfile("nexus_6p", sampling_hz=8.0, rx_offset_db=2.0,
                             rx_jitter_std_db=1.3),
}

BEACONS: Dict[str, BeaconProfile] = {
    # Dedicated beacons: clean antennas, stable emission.
    "estimote": BeaconProfile("estimote", gamma_dbm=-58.0, tx_jitter_std_db=0.8),
    "radbeacon_usb": BeaconProfile("radbeacon_usb", gamma_dbm=-60.0,
                                   tx_jitter_std_db=0.9),
    # Smartphone acting as a beacon: compact antenna, noisier emission.
    "ios_device": BeaconProfile("ios_device", gamma_dbm=-61.0,
                                tx_jitter_std_db=1.6),
    # Bluetooth 5 Class-1 beacon: +10 dB Tx over the BLE 4 cap, and the
    # long-range coded PHY (receivers decode ~5 dB deeper).
    "ble5_longrange": BeaconProfile("ble5_longrange", gamma_dbm=-49.0,
                                    tx_jitter_std_db=0.8, ble_version=5,
                                    coded_phy=True),
}
