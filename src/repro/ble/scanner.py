"""Scanner model: what fraction of advertisements a phone actually reports.

Three loss mechanisms shape a real scan trace:

* **Sensitivity** — packets below the receiver's decode floor are silently
  dropped (deep fades at long range thin the trace, consistent with the
  paper's observation that estimates degrade beyond ~14 m).
* **Random scan loss** — scan-window misalignment and 2.4 GHz interference
  drop a fraction of packets; the paper observed the effective rate fall
  from 8 Hz to ~3 Hz under heavy interference (Sec. 6.1).
* **Rate cap** — the OS reports at the phone's sampling rate (9 Hz iOS, 8 Hz
  Nexus); receptions arriving faster than the cap are coalesced.

Also provides :func:`resample_trace`, the idle-delay downsampling the paper
uses for the Fig. 13a sampling-frequency sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ble.devices import PhoneProfile
from repro.errors import ConfigurationError
from repro.types import RssiSample, RssiTrace

__all__ = ["Scanner", "resample_trace"]

#: Typical BLE receiver sensitivity (dBm); below this, packets don't decode.
DEFAULT_SENSITIVITY_DBM = -100.0

#: Extra decode margin of the Bluetooth 5 coded (long-range) PHY.
CODED_PHY_SENSITIVITY_GAIN_DB = 5.0


@dataclass
class Scanner:
    """Filters raw channel observations into the trace an app would see."""

    profile: PhoneProfile
    rng: np.random.Generator
    sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM
    base_loss_prob: float = 0.08
    interference_loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_loss_prob < 1.0:
            raise ConfigurationError("base_loss_prob must be in [0, 1)")
        if not 0.0 <= self.interference_loss_prob < 1.0:
            raise ConfigurationError("interference_loss_prob must be in [0, 1)")

    @property
    def min_report_gap_s(self) -> float:
        return 1.0 / self.profile.sampling_hz

    def filter_indices(self, samples: List[RssiSample]) -> List[int]:
        """Indices of the receptions that survive sensitivity, loss and rate cap.

        The rate cap models how the OS surfaces scan results: the BLE stack
        polls at the phone's sampling rate and reports the latest decodable
        reception per tick, so receptions arriving faster than the tick rate
        coalesce (only the newest survives) rather than being spaced out.

        Exposed separately so the simulator can keep per-sample ground-truth
        metadata aligned with the reported trace.
        """
        loss = 1.0 - (1.0 - self.base_loss_prob) * (1.0 - self.interference_loss_prob)
        decodable: List[int] = []
        for i, s in enumerate(samples):
            if s.rssi < self.sensitivity_dbm:
                continue
            if loss > 0.0 and self.rng.random() < loss:
                continue
            decodable.append(i)
        if not decodable:
            return []
        # Tick through the trace at the sampling rate, reporting the most
        # recent decodable reception in each tick window.
        kept: List[int] = []
        tick = self.min_report_gap_s
        t = samples[decodable[0]].timestamp
        pending: Optional[int] = None
        for i in decodable:
            while samples[i].timestamp >= t + tick:
                if pending is not None:
                    kept.append(pending)
                    pending = None
                t += tick
            pending = i
        if pending is not None:
            kept.append(pending)
        return kept

    def receive(self, samples: List[RssiSample]) -> RssiTrace:
        """Apply sensitivity, random loss and the rate cap to raw receptions.

        ``samples`` must be time-ordered receptions of a single beacon.
        """
        return RssiTrace([samples[i] for i in self.filter_indices(samples)])


def resample_trace(trace: RssiTrace, target_hz: float) -> RssiTrace:
    """Downsample a trace to ``target_hz`` by inserting an idle delay.

    Mirrors the paper's Fig. 13a methodology ("by inserting an idle delay
    between two consecutive scans"): scan slots open on a fixed
    ``1/target_hz`` grid and the first reception at or after each slot is
    kept. The grid anchors at the first sample, so the kept rate tracks the
    requested one even when the underlying receptions are quantised to the
    advertising interval.
    """
    if target_hz <= 0:
        raise ConfigurationError("target_hz must be positive")
    if not trace.samples:
        return RssiTrace([])
    gap = 1.0 / target_hz
    kept: List[RssiSample] = []
    next_slot = trace.samples[0].timestamp
    for s in trace.samples:
        if s.timestamp >= next_slot - 1e-9:
            kept.append(s)
            # Open the next slot one gap after this one; catch up if the
            # trace has a hole larger than the gap.
            next_slot += gap
            if s.timestamp > next_slot:
                next_slot = s.timestamp + gap
    return RssiTrace(kept)
