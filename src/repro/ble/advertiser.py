"""Advertising schedule: when each advertisement goes out, on which channel.

A beacon broadcasts one advertising *event* per interval; within an event the
packet is sent on channels 37, 38, 39 in sequence. The BLE spec adds a random
0–10 ms ``advDelay`` per event to avoid persistent collisions. A scanner only
listens on one channel at a time, so per reception we model one (time,
channel) draw per event; the hop sequence rotates which channel the scanner
catches — the source of frequency-selective jitter in raw traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.ble.devices import BeaconProfile
from repro.errors import ConfigurationError

__all__ = ["AdvertisingEvent", "Advertiser"]

_HOP_SEQUENCE = (37, 38, 39)
_ADV_DELAY_MAX_S = 0.010  # BLE spec advDelay: uniform 0–10 ms


@dataclass(frozen=True)
class AdvertisingEvent:
    """One advertising event: timestamp and the channel a scanner receives on."""

    timestamp: float
    channel: int
    event_index: int


@dataclass
class Advertiser:
    """Generates a beacon's advertising events over a time span."""

    profile: BeaconProfile
    rng: np.random.Generator

    @property
    def interval_s(self) -> float:
        return 1.0 / self.profile.advertising_hz

    def events(self, t_start: float, t_end: float) -> List[AdvertisingEvent]:
        """All advertising events in [t_start, t_end)."""
        if t_end <= t_start:
            raise ConfigurationError("t_end must exceed t_start")
        out: List[AdvertisingEvent] = []
        t = t_start
        i = 0
        while t < t_end:
            jitter = float(self.rng.uniform(0.0, _ADV_DELAY_MAX_S))
            ts = t + jitter
            if ts < t_end:
                # The scanner dwells on one advertising channel per scan
                # window; rotating through the hop sequence reproduces which
                # channel each reception lands on.
                channel = _HOP_SEQUENCE[i % len(_HOP_SEQUENCE)]
                out.append(AdvertisingEvent(ts, channel, i))
            t += self.interval_s
            i += 1
        return out
