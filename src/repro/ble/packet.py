"""BLE advertising PDU encoding/decoding for the three beacon formats.

Implements the over-the-air layout of the advertising-channel PDU header
(whose first 4 bits carry the PDU type — how the paper distinguishes
connectable from non-connectable beacons, Sec. 2.2) and the manufacturer /
service-data payloads of Apple iBeacon, Google Eddystone-UID and AltBeacon.

The rest of the library identifies beacons by an opaque string id; this
module exists so traces can be generated from *real* packet bytes end-to-end
and so the beacon-type experiment (Fig. 14) manipulates genuine formats.
"""

from __future__ import annotations

import struct
import uuid as uuid_mod
from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Union

from repro.errors import PacketError

__all__ = [
    "PduType",
    "AdvertisingPdu",
    "IBeaconPayload",
    "EddystoneUidPayload",
    "AltBeaconPayload",
    "decode_beacon_payload",
    "iter_ad_structures",
]

_APPLE_COMPANY_ID = 0x004C
_RADIUS_COMPANY_ID = 0x0118
_EDDYSTONE_SERVICE_UUID = 0xFEAA


class PduType(IntEnum):
    """Advertising-channel PDU types (BLE spec Vol 6 Part B 2.3)."""

    ADV_IND = 0x0  # connectable undirected
    ADV_DIRECT_IND = 0x1
    ADV_NONCONN_IND = 0x2  # non-connectable — what proximity beacons use
    SCAN_REQ = 0x3
    SCAN_RSP = 0x4
    CONNECT_REQ = 0x5
    ADV_SCAN_IND = 0x6
    ADV_EXT_IND = 0x7  # Bluetooth 5 extended advertising


@dataclass(frozen=True)
class AdvertisingPdu:
    """An advertising PDU: 2-byte header + AdvA (6 bytes) + AdvData.

    Header byte 0: PDU type in bits 0–3, TxAdd in bit 6. Header byte 1:
    payload length. This mirrors the layout the paper points readers at
    (BLE spec p. 2567).
    """

    pdu_type: PduType
    adv_address: bytes
    adv_data: bytes
    tx_add_random: bool = True

    def __post_init__(self) -> None:
        if len(self.adv_address) != 6:
            raise PacketError("AdvA must be 6 bytes")
        if len(self.adv_data) > 31:
            raise PacketError("legacy advertising data is limited to 31 bytes")

    @property
    def connectable(self) -> bool:
        """True for PDU types that accept connections (Sec. 2.2).

        ADV_EXT_IND (Bluetooth 5) carries its connectability in the extended
        header's AdvMode; this library models only the non-connectable
        broadcast mode proximity beacons use, so it reports False here.
        """
        return self.pdu_type in (PduType.ADV_IND, PduType.ADV_DIRECT_IND)

    def encode(self) -> bytes:
        header0 = int(self.pdu_type) & 0x0F
        if self.tx_add_random:
            header0 |= 0x40
        payload = self.adv_address + self.adv_data
        return bytes([header0, len(payload)]) + payload

    @staticmethod
    def decode(raw: bytes) -> "AdvertisingPdu":
        if len(raw) < 8:
            raise PacketError("PDU too short for header + AdvA")
        pdu_type = PduType(raw[0] & 0x0F)
        tx_add = bool(raw[0] & 0x40)
        length = raw[1]
        payload = raw[2:]
        if len(payload) != length:
            raise PacketError(
                f"length field {length} does not match payload {len(payload)}"
            )
        return AdvertisingPdu(
            pdu_type=pdu_type,
            adv_address=payload[:6],
            adv_data=payload[6:],
            tx_add_random=tx_add,
        )


@dataclass(frozen=True)
class IBeaconPayload:
    """Apple iBeacon: proximity UUID + major/minor + measured power at 1 m."""

    proximity_uuid: uuid_mod.UUID
    major: int
    minor: int
    measured_power: int  # signed dBm at 1 m

    def beacon_id(self) -> str:
        return f"ibeacon:{self.proximity_uuid}:{self.major}:{self.minor}"

    def encode(self) -> bytes:
        if not (0 <= self.major <= 0xFFFF and 0 <= self.minor <= 0xFFFF):
            raise PacketError("major/minor must fit in 16 bits")
        body = struct.pack(
            ">16sHHb",
            self.proximity_uuid.bytes,
            self.major,
            self.minor,
            self.measured_power,
        )
        mfg = struct.pack("<H", _APPLE_COMPANY_ID) + bytes([0x02, 0x15]) + body
        # AD structures: flags + manufacturer-specific data.
        flags = bytes([0x02, 0x01, 0x06])
        return flags + bytes([len(mfg) + 1, 0xFF]) + mfg

    @staticmethod
    def decode(adv_data: bytes) -> "IBeaconPayload":
        mfg = _find_ad_structure(adv_data, 0xFF)
        if mfg is None or len(mfg) < 25:
            raise PacketError("no iBeacon manufacturer data found")
        company = struct.unpack_from("<H", mfg, 0)[0]
        if company != _APPLE_COMPANY_ID or mfg[2] != 0x02 or mfg[3] != 0x15:
            raise PacketError("not an iBeacon frame")
        raw_uuid, major, minor, power = struct.unpack_from(">16sHHb", mfg, 4)
        return IBeaconPayload(uuid_mod.UUID(bytes=raw_uuid), major, minor, power)


@dataclass(frozen=True)
class EddystoneUidPayload:
    """Google Eddystone-UID: 10-byte namespace + 6-byte instance + Tx at 0 m."""

    namespace: bytes
    instance: bytes
    tx_power_0m: int

    def beacon_id(self) -> str:
        return f"eddystone:{self.namespace.hex()}:{self.instance.hex()}"

    def encode(self) -> bytes:
        if len(self.namespace) != 10 or len(self.instance) != 6:
            raise PacketError("Eddystone UID needs 10-byte namespace, 6-byte instance")
        svc_uuid = struct.pack("<H", _EDDYSTONE_SERVICE_UUID)
        frame = bytes([0x00, self.tx_power_0m & 0xFF]) + self.namespace + self.instance
        flags = bytes([0x02, 0x01, 0x06])
        uuid_list = bytes([0x03, 0x03]) + svc_uuid
        svc_data = bytes([len(frame) + 3, 0x16]) + svc_uuid + frame
        return flags + uuid_list + svc_data

    @staticmethod
    def decode(adv_data: bytes) -> "EddystoneUidPayload":
        svc = _find_ad_structure(adv_data, 0x16)
        if svc is None or len(svc) < 4:
            raise PacketError("no Eddystone service data found")
        if struct.unpack_from("<H", svc, 0)[0] != _EDDYSTONE_SERVICE_UUID:
            raise PacketError("service data is not Eddystone")
        frame = svc[2:]
        if frame[0] != 0x00 or len(frame) < 18:
            raise PacketError("not an Eddystone-UID frame")
        tx = struct.unpack_from("b", frame, 1)[0]
        return EddystoneUidPayload(frame[2:12], frame[12:18], tx)


@dataclass(frozen=True)
class AltBeaconPayload:
    """AltBeacon: 20-byte beacon id + reference RSS at 1 m."""

    beacon_id_bytes: bytes
    reference_rss: int
    mfg_reserved: int = 0
    company_id: int = _RADIUS_COMPANY_ID

    def beacon_id(self) -> str:
        return f"altbeacon:{self.beacon_id_bytes.hex()}"

    def encode(self) -> bytes:
        if len(self.beacon_id_bytes) != 20:
            raise PacketError("AltBeacon id must be 20 bytes")
        mfg = (
            struct.pack("<H", self.company_id)
            + bytes([0xBE, 0xAC])
            + self.beacon_id_bytes
            + struct.pack("b", self.reference_rss)
            + bytes([self.mfg_reserved & 0xFF])
        )
        flags = bytes([0x02, 0x01, 0x06])
        return flags + bytes([len(mfg) + 1, 0xFF]) + mfg

    @staticmethod
    def decode(adv_data: bytes) -> "AltBeaconPayload":
        mfg = _find_ad_structure(adv_data, 0xFF)
        if mfg is None or len(mfg) < 26:
            raise PacketError("no AltBeacon manufacturer data found")
        if mfg[2] != 0xBE or mfg[3] != 0xAC:
            raise PacketError("not an AltBeacon frame")
        company = struct.unpack_from("<H", mfg, 0)[0]
        ident = mfg[4:24]
        rss = struct.unpack_from("b", mfg, 24)[0]
        reserved = mfg[25]
        return AltBeaconPayload(ident, rss, reserved, company)


BeaconPayload = Union[IBeaconPayload, EddystoneUidPayload, AltBeaconPayload]


def decode_beacon_payload(adv_data: bytes) -> BeaconPayload:
    """Decode any supported beacon payload, trying each format in turn."""
    for decoder in (IBeaconPayload.decode, AltBeaconPayload.decode,
                    EddystoneUidPayload.decode):
        try:
            return decoder(adv_data)
        except PacketError:
            continue
    raise PacketError("advertising data matches no supported beacon format")


def iter_ad_structures(adv_data: bytes):
    """Yield (ad_type, body) for every AD structure in advertising data.

    The generic walk over the length-type-value layout of BLE advertising
    payloads (Core Spec Vol 3 Part C 11) — useful for inspecting frames
    beyond the three beacon formats this module decodes natively.
    """
    i = 0
    while i < len(adv_data):
        length = adv_data[i]
        if length == 0:
            return
        if i + 1 + length > len(adv_data):
            raise PacketError("truncated AD structure")
        yield adv_data[i + 1], adv_data[i + 2 : i + 1 + length]
        i += 1 + length


def _find_ad_structure(adv_data: bytes, ad_type: int) -> Optional[bytes]:
    """Return the body of the first AD structure with the given type."""
    for found_type, body in iter_ad_structures(adv_data):
        if found_type == ad_type:
            return body
    return None
