"""BLE protocol substrate: packets, advertising schedule, scanner model."""

from repro.ble.advertiser import Advertiser, AdvertisingEvent
from repro.ble.devices import BEACONS, PHONES, BeaconProfile, PhoneProfile
from repro.ble.interference import CrowdInterference, crowding_loss_probability
from repro.ble.packet import (
    AdvertisingPdu,
    AltBeaconPayload,
    EddystoneUidPayload,
    IBeaconPayload,
    PduType,
    decode_beacon_payload,
    iter_ad_structures,
)
from repro.ble.scanner import Scanner, resample_trace

__all__ = [
    "Advertiser", "AdvertisingEvent", "BEACONS", "PHONES", "BeaconProfile",
    "PhoneProfile", "AdvertisingPdu", "AltBeaconPayload",
    "EddystoneUidPayload", "IBeaconPayload", "PduType",
    "decode_beacon_payload", "iter_ad_structures", "Scanner", "resample_trace",
    "CrowdInterference", "crowding_loss_probability",
]
