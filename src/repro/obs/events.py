"""Structured event records and the log core backing :mod:`repro.obs`.

An :class:`Event` is one JSON-serialisable fact about the running system:
what happened (``name``), where (``component``), how bad (``severity``),
when (a monotonic timestamp plus a process-wide sequence number), inside
which operation (``trace`` — the correlation id of the enclosing span tree)
and every structured detail the emitter attached (``fields``).

The :class:`EventLog` is deliberately tiny and dependency-free: a lock, a
sequence counter, and a list of sinks. Emission cost while enabled is one
dataclass construction plus one fan-out loop; while disabled it is a single
boolean check, so the instrumented hot paths can keep their events in
production builds the same way :mod:`repro.perf` keeps its timers.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["SEVERITIES", "Event", "EventLog"]

#: Recognised severities, mildest first. Unknown severities are coerced to
#: ``"info"`` rather than rejected — a telemetry layer must never raise out
#: of the code path it observes.
SEVERITIES: Tuple[str, ...] = ("debug", "info", "warning", "error")


def _jsonable(value: Any) -> Any:
    """Coerce one field value to something ``json.dumps`` accepts.

    Numpy scalars quack like Python numbers via ``item()``; everything else
    unserialisable is degraded to ``repr`` — a lossy record beats a crashed
    pipeline.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):
        try:
            return _jsonable(value.item())
        except (TypeError, ValueError):
            pass
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


@dataclass(frozen=True)
class Event:
    """One structured telemetry record.

    ``seq`` is a process-wide monotone counter (total emission order even
    when two events share a clock reading); ``t_mono`` the monotonic clock
    at emission, so durations between events are meaningful across system
    clock adjustments; ``wall`` the epoch time for humans correlating with
    external logs.
    """

    seq: int
    t_mono: float
    wall: float
    severity: str
    component: str
    name: str
    trace: Optional[str] = None
    fields: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict with the fields flattened in."""
        out: Dict[str, Any] = {
            "seq": self.seq,
            "t_mono": self.t_mono,
            "wall": self.wall,
            "severity": self.severity,
            "component": self.component,
            "event": self.name,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        for key, value in self.fields.items():
            out[str(key)] = _jsonable(value)
        return out

    def to_json(self) -> str:
        """One JSON-lines record (no trailing newline)."""
        return json.dumps(self.as_dict(), separators=(",", ":"),
                          sort_keys=False, default=repr)


class EventLog:
    """Thread-safe fan-out of :class:`Event` records to attached sinks.

    Sinks are anything with a ``write(event)`` method (see
    :mod:`repro.obs.sinks`). A sink that raises is detached after counting
    the failure — observability must degrade, never take the solve path
    down with it.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._seq = 0
        self._sinks: List[Any] = []
        self._dropped_sinks = 0

    # -- sink management -----------------------------------------------------

    def add_sink(self, sink: Any) -> Any:
        """Attach a sink; returns it for chaining."""
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> bool:
        """Detach a sink; True if it was attached."""
        with self._lock:
            try:
                self._sinks.remove(sink)
                return True
            except ValueError:
                return False

    def sinks(self) -> List[Any]:
        with self._lock:
            return list(self._sinks)

    @property
    def dropped_sinks(self) -> int:
        """How many sinks were detached because their ``write`` raised."""
        return self._dropped_sinks

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        name: str,
        *,
        severity: str = "info",
        component: str = "repro",
        trace: Optional[str] = None,
        **fields: Any,
    ) -> Optional[Event]:
        """Record one event; returns it, or ``None`` while disabled."""
        if not self.enabled:
            return None
        if severity not in SEVERITIES:
            severity = "info"
        with self._lock:
            self._seq += 1
            seq = self._seq
            sinks = list(self._sinks)
        event = Event(
            seq=seq,
            t_mono=time.monotonic(),
            wall=time.time(),
            severity=severity,
            component=component,
            name=name,
            trace=trace,
            fields=fields,
        )
        for sink in sinks:
            try:
                sink.write(event)
            except Exception:
                with self._lock:
                    if sink in self._sinks:
                        self._sinks.remove(sink)
                        self._dropped_sinks += 1
        return event

    def next_trace_id(self) -> str:
        """A fresh correlation id (monotone, process-unique)."""
        with self._lock:
            self._seq += 1
            return f"t{self._seq:08d}"

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Detach every sink and restart the sequence counter."""
        with self._lock:
            self._sinks.clear()
            self._seq = 0
            self._dropped_sinks = 0
