"""Render a structured event log for humans: ``python -m repro obs report``.

Reads a JSON-lines event log (written by
:class:`~repro.obs.sinks.JsonLinesSink`, e.g. via
``python -m repro soak --events-log events.jsonl``) and prints a summary —
event volume by name and severity, per-fix provenance statistics, span
timing aggregates — followed by a tail of the newest records. Malformed
lines are counted, never fatal: a report over a partially-written log from
a crashed process is exactly when this tool is needed most.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["load_events", "summarize_events", "format_summary", "main"]


def load_events(path: Path) -> Tuple[List[Dict[str, Any]], int]:
    """Parse one JSON-lines event log; returns (records, malformed_lines)."""
    records: List[Dict[str, Any]] = []
    bad = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                bad += 1
    return records, bad


def summarize_events(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a record list into the report's summary structure."""
    by_name: Dict[str, int] = {}
    by_severity: Dict[str, int] = {}
    spans: Dict[str, Dict[str, float]] = {}
    provenance = {
        "fixes": 0,
        "degraded": 0,
        "cov_fallbacks": 0,
        "env_restarts": 0,
        "confidence_sum": 0.0,
    }
    for r in records:
        name = str(r.get("event", "?"))
        by_name[name] = by_name.get(name, 0) + 1
        severity = str(r.get("severity", "?"))
        by_severity[severity] = by_severity.get(severity, 0) + 1
        if name == "span" and "span" in r:
            agg = spans.setdefault(
                str(r["span"]), {"count": 0, "total_s": 0.0, "errors": 0}
            )
            agg["count"] += 1
            agg["total_s"] += float(r.get("duration_s", 0.0) or 0.0)
            if r.get("status") == "error":
                agg["errors"] += 1
        if name == "fix.provenance":
            provenance["fixes"] += 1
            if r.get("degraded"):
                provenance["degraded"] += 1
            if r.get("cov_fallback"):
                provenance["cov_fallbacks"] += 1
            provenance["env_restarts"] += int(r.get("env_restarts", 0) or 0)
            provenance["confidence_sum"] += float(r.get("confidence", 0.0) or 0.0)
    return {
        "n_events": len(records),
        "by_name": by_name,
        "by_severity": by_severity,
        "spans": spans,
        "provenance": provenance,
    }


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f} ms"
    return f"{s * 1e6:.1f} us"


def format_summary(
    summary: Dict[str, Any],
    tail: Optional[List[Dict[str, Any]]] = None,
    malformed: int = 0,
) -> str:
    """Render the summary (and an optional record tail) as aligned text."""
    lines: List[str] = ["=== repro obs event-log report ==="]
    lines.append(f"  events: {summary['n_events']}"
                 + (f"  (+{malformed} malformed lines skipped)"
                    if malformed else ""))
    sev = summary["by_severity"]
    if sev:
        lines.append("  severity: " + ", ".join(
            f"{k}={sev[k]}" for k in ("debug", "info", "warning", "error")
            if k in sev))

    by_name = summary["by_name"]
    if by_name:
        lines.append("")
        lines.append("  -- events by name --")
        name_w = max(len(n) for n in by_name) + 2
        for name in sorted(by_name, key=lambda n: (-by_name[n], n)):
            lines.append(f"  {name.ljust(name_w)}{by_name[name]:>8}")

    prov = summary["provenance"]
    if prov["fixes"]:
        mean_conf = prov["confidence_sum"] / prov["fixes"]
        lines.append("")
        lines.append("  -- fix provenance --")
        lines.append(f"  fixes: {prov['fixes']}  degraded: {prov['degraded']}"
                     f"  cov fallbacks: {prov['cov_fallbacks']}"
                     f"  env restarts: {prov['env_restarts']}")
        lines.append(f"  mean confidence: {mean_conf:.3f}")

    spans = summary["spans"]
    if spans:
        lines.append("")
        lines.append("  -- spans --")
        name_w = max(len(n) for n in spans) + 2
        lines.append(f"  {'span'.ljust(name_w)}{'calls':>8}{'total':>12}"
                     f"{'mean':>12}{'errors':>8}")
        for name in sorted(spans):
            agg = spans[name]
            mean = agg["total_s"] / agg["count"] if agg["count"] else 0.0
            lines.append(
                f"  {name.ljust(name_w)}{int(agg['count']):>8}"
                f"{_fmt_seconds(agg['total_s']):>12}"
                f"{_fmt_seconds(mean):>12}{int(agg['errors']):>8}"
            )

    if tail:
        lines.append("")
        lines.append(f"  -- last {len(tail)} events --")
        for r in tail:
            fields = {k: v for k, v in r.items()
                      if k not in ("seq", "t_mono", "wall", "severity",
                                   "component", "event", "trace")}
            detail = " ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(
                f"  #{r.get('seq', '?')} [{r.get('severity', '?')}] "
                f"{r.get('component', '?')}/{r.get('event', '?')} {detail}"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro obs report`` (args pre-stripped)."""
    args = list(sys.argv[1:] if argv is None else argv)
    path: Optional[Path] = None
    tail_n = 10
    while args:
        arg = args.pop(0)
        if arg == "--tail" and args:
            tail_n = int(args.pop(0))
        elif arg == "--log" and args:
            path = Path(args.pop(0))
        elif path is None and not arg.startswith("-"):
            path = Path(arg)
        else:
            print(f"error: unrecognised argument {arg!r}", file=sys.stderr)
            return 2
    if path is None:
        print("error: pass an event log path (--log events.jsonl); one is "
              "written by e.g. 'python -m repro soak --events-log "
              "events.jsonl'", file=sys.stderr)
        return 2
    if not path.is_file():
        print(f"error: no event log at {path}", file=sys.stderr)
        return 2
    records, malformed = load_events(path)
    print(format_summary(summarize_events(records),
                         tail=records[-tail_n:] if tail_n > 0 else None,
                         malformed=malformed))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
