"""Lightweight nesting spans over the structured event log.

A span times one named operation::

    with obs.span("estimator.solve", beacon="b0"):
        fit = estimator.fit(p, q, rss)

Spans nest: the outermost span mints a correlation (trace) id, inner spans
inherit it, and every event emitted inside the ``with`` block — by any
module, at any depth — carries that id, so one solve's whole story can be
grepped out of a JSON-lines log with a single filter.

On exit each span emits a single ``span`` event (name, duration, depth,
status — ``error`` plus the exception type if the block raised, which then
propagates untouched) and records its duration into the process-wide
:mod:`repro.perf` timer registry under its own name, so span timings land
next to the ``@perf.profiled`` hot-path timers in ``perf.snapshot()``.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Tuple

from repro import perf
from repro.obs.events import EventLog

__all__ = ["SpanHandle", "current_trace_id", "span_context"]

#: The stack of open spans in the current execution context; contextvars
#: keep nesting correct across threads (and coroutines, should they appear).
_SPAN_STACK: contextvars.ContextVar[Tuple["SpanHandle", ...]] = (
    contextvars.ContextVar("repro_obs_span_stack", default=())
)


class SpanHandle:
    """One open span: its identity plus mutable fields for late annotation."""

    __slots__ = ("name", "component", "trace_id", "depth", "fields", "t0")

    def __init__(self, name: str, component: str, trace_id: str,
                 depth: int, fields: dict):
        self.name = name
        self.component = component
        self.trace_id = trace_id
        self.depth = depth
        self.fields = fields
        self.t0 = time.perf_counter()

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields reported on the span's closing event."""
        self.fields.update(fields)


def current_trace_id() -> Optional[str]:
    """The correlation id of the innermost open span, if any."""
    stack = _SPAN_STACK.get()
    return stack[-1].trace_id if stack else None


@contextmanager
def span_context(
    log: EventLog,
    name: str,
    *,
    component: str = "repro",
    perf_registry: Optional[perf.PerfRegistry] = None,
    **fields: Any,
) -> Iterator[SpanHandle]:
    """Open a span on ``log``; see the module docstring.

    Exposed through :func:`repro.obs.span`, which binds the default log.
    While the log is disabled the body still runs (and still times into
    ``perf``) but no event is emitted.
    """
    stack = _SPAN_STACK.get()
    trace_id = stack[-1].trace_id if stack else log.next_trace_id()
    handle = SpanHandle(name, component, trace_id, len(stack), dict(fields))
    token = _SPAN_STACK.set(stack + (handle,))
    status = "ok"
    error: Optional[str] = None
    try:
        yield handle
    except BaseException as exc:
        status = "error"
        error = type(exc).__name__
        raise
    finally:
        _SPAN_STACK.reset(token)
        duration = time.perf_counter() - handle.t0
        registry = perf_registry if perf_registry is not None else perf.registry
        registry.record(name, duration)
        closing = dict(handle.fields)
        closing["duration_s"] = duration
        closing["depth"] = handle.depth
        closing["status"] = status
        if error is not None:
            closing["error"] = error
        log.emit(
            "span",
            severity="info" if status == "ok" else "warning",
            component=component,
            trace=trace_id,
            span=name,
            **closing,
        )
