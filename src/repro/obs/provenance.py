"""Per-fix provenance: the auditable record behind every location fix.

Deployed beacon systems live or die by being able to audit per-fix
provenance across thousands of device-hours — when a track drifts, the
first question is *which* fixes fed it and *what state* the pipeline was in
when it produced them. :class:`FixProvenance` is that record, assembled in
layers as a solve travels up the stack:

* :class:`~repro.core.estimator.EllipticalEstimator` contributes the solver
  facts: which solver ran, how many initial candidates it refined, the
  covariance conditioning and whether the position std fell back to the cap;
* :class:`~repro.core.pipeline.LocBLE` contributes the pipeline facts:
  environment class and restarts, sample counts, sanitization repairs,
  confidence, fallback path (if any);
* :class:`~repro.service.session.TrackingSession` contributes the stream
  facts: beacon id, stream time, buffer depth and shed counts, health state
  — and emits the completed record as one ``fix.provenance`` event.

The record is JSON-safe by construction (:meth:`to_fields`), so it lands in
the event log verbatim and the soak harness can cross-check provenance
volume against the :mod:`repro.perf` counters.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["FixProvenance"]


@dataclass(frozen=True)
class FixProvenance:
    """Everything worth auditing about how one location fix was produced."""

    # -- solver layer (core/estimator.py) ------------------------------------
    solver: str = "none"            # "gauss-newton" | "warm-start" | "linearized" | "fallback"
    n_candidates: int = 0           # initial seeds refined by the solver
    cov_cond: Optional[float] = None   # condition number of the GN normal matrix
    cov_status: str = "none"        # "ok" | "capped" | "rank-deficient" | "error"
    warm_started: bool = False      # fit came from the warm-start fast path

    # -- pipeline layer (core/pipeline.py) -----------------------------------
    env_class: str = "LOS"
    env_restarts: int = 0           # EnvAware regression restarts in this solve
    n_samples: int = 0              # matched samples fed to the regression
    sanitized_dropped: int = 0      # samples the sanitizer removed
    sanitized_repaired: bool = False  # trace needed any repair at all
    confidence: float = 0.0
    position_std: Optional[float] = None
    fallback: Optional[str] = None  # "range-only" | "no-data" | None

    # -- stream layer (service/session.py) -----------------------------------
    beacon_id: Optional[str] = None
    stream_t: Optional[float] = None
    buffered: Optional[int] = None  # RSS buffer depth at solve time
    shed: Optional[int] = None      # cumulative samples shed by that buffer
    degraded: Optional[bool] = None  # session judged the fix degraded

    @property
    def cov_fallback(self) -> bool:
        """True when the solver could not produce a trustworthy covariance."""
        return self.cov_status in ("capped", "rank-deficient", "error")

    def with_stream(
        self,
        beacon_id: str,
        stream_t: float,
        buffered: int,
        shed: int,
        degraded: bool,
    ) -> "FixProvenance":
        """The same record enriched with the session's stream-layer facts."""
        return dataclasses.replace(
            self,
            beacon_id=beacon_id,
            stream_t=stream_t,
            buffered=buffered,
            shed=shed,
            degraded=degraded,
        )

    def to_fields(self) -> Dict[str, Any]:
        """Flat JSON-safe fields for one event record (Nones omitted)."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            out[f.name] = value
        out["cov_fallback"] = self.cov_fallback
        return out
