"""Event sinks: where :class:`~repro.obs.events.Event` records go.

Three sinks cover the deployment shapes the ROADMAP cares about:

* :class:`RingBufferSink` — the always-on in-memory tail. Bounded (so a
  year-long service cannot leak), drainable (the soak harness empties it
  into its acceptance report), and cheap enough to leave attached forever.
* :class:`JsonLinesSink` — the durable machine-readable log: one JSON
  object per line, flushed per event so a crash loses at most the record
  being written. This is the format ``python -m repro obs report`` reads.
* :class:`CountingSink` — name → count aggregation for cross-checking
  event volumes against :mod:`repro.perf` counters in tests.
"""

from __future__ import annotations

import os
import threading
from collections import Counter, deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.obs.events import Event

__all__ = ["RingBufferSink", "JsonLinesSink", "CountingSink"]

#: Durability policies for :class:`JsonLinesSink` (mirrors
#: :class:`repro.gateway.TraceWriter`): ``"flush"`` survives a process
#: crash, ``"fsync"`` additionally survives an OS/power crash.
DURABILITY_POLICIES = ("flush", "fsync")


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._events: Deque[Event] = deque(maxlen=self.capacity)
        self.total = 0  # every event ever written, including evicted ones

    def write(self, event: Event) -> None:
        with self._lock:
            self._events.append(event)
            self.total += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def tail(self, n: Optional[int] = None) -> List[Event]:
        """The newest ``n`` events, oldest first (all when ``n`` is None)."""
        with self._lock:
            events = list(self._events)
        return events if n is None else events[-n:]

    def drain(self) -> List[Event]:
        """Remove and return every buffered event, oldest first."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events

    def counts(self) -> Dict[str, int]:
        """Buffered event volume per event name."""
        return dict(Counter(e.name for e in self.tail()))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class JsonLinesSink:
    """Appends each event as one JSON line to a file.

    The file handle is opened lazily on the first event and flushed after
    every write; :meth:`close` is idempotent. ``durability="fsync"``
    additionally fsyncs each record, so the log survives an OS or power
    crash at the cost of one sync per event — the right policy when the
    event log *is* the incident record. A sink whose file becomes
    unwritable raises out of ``write`` — the
    :class:`~repro.obs.events.EventLog` responds by detaching it, so the
    solve path keeps running.
    """

    def __init__(self, path: Union[str, Path], durability: str = "flush"):
        if durability not in DURABILITY_POLICIES:
            raise ValueError(
                f"durability must be one of {DURABILITY_POLICIES}, "
                f"got {durability!r}")
        self.path = Path(path)
        self.durability = durability
        self._lock = threading.Lock()
        self._fh = None
        self.written = 0

    def write(self, event: Event) -> None:
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(event.to_json() + "\n")
            self._fh.flush()
            if self.durability == "fsync":
                os.fsync(self._fh.fileno())
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CountingSink:
    """Aggregates event volume by name (and by severity) only."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.by_name: Dict[str, int] = {}
        self.by_severity: Dict[str, int] = {}

    def write(self, event: Event) -> None:
        with self._lock:
            self.by_name[event.name] = self.by_name.get(event.name, 0) + 1
            self.by_severity[event.severity] = (
                self.by_severity.get(event.severity, 0) + 1
            )

    def count(self, name: str) -> int:
        with self._lock:
            return self.by_name.get(name, 0)
