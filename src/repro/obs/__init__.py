"""Structured observability for the LocBLE reproduction (:mod:`repro.obs`).

The silent-failure postmortems that motivated this layer all shared one
shape: a numeric fallback fired (``except LinAlgError: pass``, a capped
std, a shed sample) and nothing recorded that it had happened. ``repro.obs``
makes those paths loud without making them fragile — every fallback becomes
a typed, counted, JSON-serialisable event, and the emitting code path never
slows down meaningfully or crashes because of telemetry.

Like :mod:`repro.perf`, the module doubles as a process-wide facade::

    from repro import obs

    obs.emit("estimator.cov_fallback", severity="warning",
             component="estimator", status="rank-deficient", cond=3.2e17)

    with obs.span("pipeline.estimate", beacon="b0") as sp:
        result = locble.estimate(trace)
        sp.annotate(confidence=result.confidence)

A bounded :class:`~repro.obs.sinks.RingBufferSink` is always attached, so
the most recent events are inspectable (``obs.tail()``) even when nothing
was configured; extra sinks (a :class:`~repro.obs.sinks.JsonLinesSink`
file, a :class:`~repro.obs.sinks.CountingSink` for tests) attach and detach
freely. See ``docs/observability.md`` for the event schema and the list of
events each component emits.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.obs.events import SEVERITIES, Event, EventLog
from repro.obs.provenance import FixProvenance
from repro.obs.sinks import CountingSink, JsonLinesSink, RingBufferSink
from repro.obs.spans import SpanHandle, current_trace_id, span_context

__all__ = [
    "SEVERITIES",
    "Event",
    "EventLog",
    "FixProvenance",
    "RingBufferSink",
    "JsonLinesSink",
    "CountingSink",
    "SpanHandle",
    "log",
    "ring",
    "emit",
    "span",
    "current_trace_id",
    "add_sink",
    "remove_sink",
    "tail",
    "counts",
    "drain",
    "reset",
    "enable",
    "disable",
]

#: The process-wide event log every instrumented module emits into.
log = EventLog()

#: The always-attached in-memory tail (drained by the soak harness).
ring: RingBufferSink = log.add_sink(RingBufferSink())


def emit(
    name: str,
    *,
    severity: str = "info",
    component: str = "repro",
    trace: Optional[str] = None,
    **fields: Any,
) -> Optional[Event]:
    """Emit one event on the default log.

    When no ``trace`` is given, the correlation id of the innermost open
    :func:`span` (if any) is attached automatically, so leaf emissions
    inside a solve inherit the solve's id for free.
    """
    if trace is None:
        trace = current_trace_id()
    return log.emit(
        name, severity=severity, component=component, trace=trace, **fields
    )


def span(
    name: str, *, component: str = "repro", **fields: Any
) -> Iterator[SpanHandle]:
    """Open a timed, nesting span on the default log (see :mod:`.spans`)."""
    return span_context(log, name, component=component, **fields)


def add_sink(sink: Any) -> Any:
    """Attach a sink to the default log; returns the sink."""
    return log.add_sink(sink)


def remove_sink(sink: Any) -> bool:
    """Detach a sink from the default log."""
    return log.remove_sink(sink)


def tail(n: Optional[int] = None) -> List[Event]:
    """The newest ``n`` events in the default ring (all when ``n`` is None)."""
    return ring.tail(n)


def counts() -> Dict[str, int]:
    """Event volume per name currently buffered in the default ring."""
    return ring.counts()


def drain() -> List[Event]:
    """Remove and return everything buffered in the default ring."""
    return ring.drain()


def reset() -> None:
    """Detach every sink, restart numbering, re-attach a fresh default ring.

    Test isolation helper — mirrors :func:`repro.perf.reset`.
    """
    global ring
    log.reset()
    log.enabled = True
    ring = log.add_sink(RingBufferSink())


def enable() -> None:
    log.enable()


def disable() -> None:
    """Stop emitting (sinks stay attached; spans still time into perf)."""
    log.disable()
