"""Sequence-matching substrate: DTW, LB_Keogh, segment voting."""

from repro.dtw.dtw import DtwResult, dtw_distance, dtw_full
from repro.dtw.lowerbound import envelope, lb_keogh
from repro.dtw.segmatch import MatchResult, SegmentMatcher

__all__ = [
    "DtwResult", "dtw_distance", "dtw_full", "envelope", "lb_keogh",
    "MatchResult", "SegmentMatcher",
]
