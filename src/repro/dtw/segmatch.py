"""Fixed-window DTW voting matcher (Sec. 6.1 of the paper).

Decides whether a candidate beacon's RSS sequence follows the same trend as
the target beacon's — the signal that they are physically co-located. The
paper's recipe, implemented step by step:

1. low-pass the sequences and *differentiate* them, so chipset offsets and
   absolute levels cancel;
2. split the target into equal segments of ``segment_len`` points (10 is the
   paper's accuracy/complexity sweet spot) and cut+interpolate the candidate
   to the same time grid;
3. per segment, test the LB_Keogh lower bound against the threshold — only
   survivors run full DTW against the same threshold (empirically 6.1 in the
   paper for 10-point segments);
4. vote: the candidate matches if more than half its segments match.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro import perf
from repro.dtw.dtw import dtw_distance
from repro.dtw.lowerbound import envelope, lb_keogh
from repro.errors import ConfigurationError, InsufficientDataError
from repro.filters.smoothing import differentiate, moving_average
from repro.robustness.sanitize import check_trace
from repro.types import RssiTrace

#: Per-matcher LRU capacity for cached target-segment envelopes.
_ENVELOPE_CACHE_MAX = 256

__all__ = ["MatchResult", "SegmentMatcher"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one candidate against the target."""

    matched: bool
    n_segments: int
    n_matched: int
    n_lb_rejections: int
    n_dtw_runs: int

    @property
    def match_fraction(self) -> float:
        return self.n_matched / max(self.n_segments, 1)


@dataclass
class SegmentMatcher:
    """Matches candidate RSSI traces against a target trace.

    ``threshold`` bounds both the LB_Keogh test and the DTW similarity test
    (the paper uses the same value for both; its empirical 6.1 was tuned on
    the authors' dataset — recalibrated to 12.0 in the scale-free units
    below against this library's simulated channel, where it separates
    0.3 m-co-located beacons from distant ones across the Table-1
    environments); ``window`` is the DTW /
    envelope warping half-width in samples; ``use_lower_bound=False`` turns
    the LB pre-filter off for the Fig. 9 speedup ablation.
    """

    segment_len: int = 10
    threshold: float = 12.0
    window: int = 3
    smooth_window: int = 21
    use_lower_bound: bool = True
    #: (segment bytes, window) → (upper, lower) LRU. One target is matched
    #: against many candidates (Sec. 6.1 clusters every audible beacon), so
    #: each target segment's envelope is computed once per window instead of
    #: once per candidate pair.
    _envelope_cache: "OrderedDict" = field(
        default_factory=OrderedDict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.segment_len < 4:
            raise ConfigurationError("segment_len must be >= 4")
        if self.threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        if self.window < 0:
            raise ConfigurationError("window must be non-negative")

    def preprocess(self, trace: RssiTrace) -> Tuple[np.ndarray, np.ndarray]:
        """Low-pass + differentiate; returns (timestamps, differenced signal).

        The returned timestamps are those of the second..last samples (a
        first difference consumes one sample).
        """
        if len(trace) < self.segment_len + 1:
            raise InsufficientDataError(
                f"need at least {self.segment_len + 1} samples, got {len(trace)}"
            )
        check_trace(trace, context="segment-matcher trace")
        values = moving_average(trace.values(), self.smooth_window)
        diffed = differentiate(values)
        return trace.timestamps()[1:], diffed

    def _target_segments(
        self, ts: np.ndarray, vals: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        n_full = len(vals) // self.segment_len
        if n_full == 0:
            raise InsufficientDataError("target too short for one segment")
        segments = []
        for k in range(n_full):
            sl = slice(k * self.segment_len, (k + 1) * self.segment_len)
            segments.append((ts[sl], vals[sl]))
        return segments

    def _segment_envelope(
        self, seg_vals: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """LRU-cached LB_Keogh envelope of one target segment."""
        key = (seg_vals.tobytes(), self.window)
        cached = self._envelope_cache.get(key)
        if cached is not None:
            self._envelope_cache.move_to_end(key)
            perf.count("segmatch.envelope_cache_hits")
            return cached
        env = envelope(seg_vals, self.window)
        self._envelope_cache[key] = env
        while len(self._envelope_cache) > _ENVELOPE_CACHE_MAX:
            self._envelope_cache.popitem(last=False)
        return env

    def _prepare_target(
        self, target: RssiTrace
    ) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], float]:
        """Preprocess + segment the target once; reused across candidates.

        Returns ``(segments, scale)`` where each segment is its timestamp
        grid and normalised values — the candidate-independent half of the
        matching work.
        """
        t_ts, t_vals = self.preprocess(target)
        # Normalise both differenced sequences by the target's trend scale,
        # making the similarity threshold scale-free: it then measures
        # "multiples of the target's own variation" instead of raw dB/sample
        # (which varies with smoothing, sampling rate and channel noise).
        scale = float(np.sqrt(np.mean(t_vals**2)))
        if scale < 1e-9:
            raise InsufficientDataError("target trend is flat; nothing to match")
        segments = self._target_segments(t_ts, t_vals / scale)
        return segments, scale

    def _match_prepared(
        self,
        segments: List[Tuple[np.ndarray, np.ndarray]],
        scale: float,
        candidate: RssiTrace,
    ) -> MatchResult:
        c_ts, c_vals = self.preprocess(candidate)
        if len(c_ts) < 2:
            raise InsufficientDataError("candidate too short to interpolate")
        c_vals = c_vals / scale

        n_matched = 0
        n_lb_rejections = 0
        n_dtw_runs = 0
        for seg_ts, seg_vals in segments:
            # Split the candidate at the target segment's timestamps and
            # interpolate it onto the segment's grid (device rates differ).
            cand = np.interp(seg_ts, c_ts, c_vals)
            if self.use_lower_bound:
                env = self._segment_envelope(seg_vals)
                bound = lb_keogh(cand, seg_vals, self.window, squared=True,
                                 env=env)
                if bound > self.threshold:
                    n_lb_rejections += 1
                    continue
            n_dtw_runs += 1
            d = dtw_distance(cand, seg_vals, window=self.window)
            if d <= self.threshold:
                n_matched += 1
        return MatchResult(
            matched=n_matched > len(segments) / 2.0,
            n_segments=len(segments),
            n_matched=n_matched,
            n_lb_rejections=n_lb_rejections,
            n_dtw_runs=n_dtw_runs,
        )

    @perf.profiled("segmatch.SegmentMatcher.match")
    def match(self, target: RssiTrace, candidate: RssiTrace) -> MatchResult:
        """Vote on whether ``candidate`` follows the target's RSS trend."""
        segments, scale = self._prepare_target(target)
        return self._match_prepared(segments, scale, candidate)

    @perf.profiled("segmatch.SegmentMatcher.match_many")
    def match_many(
        self, target: RssiTrace, candidates: List[RssiTrace]
    ) -> List[MatchResult]:
        """Match every candidate; order preserved.

        The target is preprocessed and segmented once for the whole batch —
        only the candidate-dependent half of the work runs per candidate.
        """
        segments, scale = self._prepare_target(target)
        return [self._match_prepared(segments, scale, c) for c in candidates]
