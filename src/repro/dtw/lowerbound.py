"""LB_Keogh lower-bounding for DTW (the paper's "lower bounding technique" [28]).

The clustering layer "creates a bounding envelope above and below each target
segment using the warping window", then sums the squared distances from the
parts of a candidate falling outside the envelope (Sec. 6.1). This bound
never exceeds the true DTW cost, so candidates whose bound already beats the
similarity threshold can be rejected without running DTW — the source of the
claimed ~100x speedup per test.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.ndimage import maximum_filter1d, minimum_filter1d

from repro.errors import ConfigurationError

__all__ = ["envelope", "lb_keogh"]


def envelope(target: Sequence[float], window: int) -> Tuple[np.ndarray, np.ndarray]:
    """Upper/lower running min-max envelope with half-width ``window``.

    Computed with C-level sliding min/max filters: the whole point of
    LB_Keogh is to be orders of magnitude cheaper than the DTW it guards.
    """
    target = np.asarray(target, dtype=float)
    if target.ndim != 1 or target.size == 0:
        raise ConfigurationError("target must be a non-empty 1-D sequence")
    if window < 0:
        raise ConfigurationError("window must be non-negative")
    size = 2 * window + 1
    upper = maximum_filter1d(target, size=size, mode="nearest")
    lower = minimum_filter1d(target, size=size, mode="nearest")
    return upper, lower


def lb_keogh(
    candidate: Sequence[float], target: Sequence[float], window: int,
    squared: bool = True,
    env: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> float:
    """LB_Keogh bound of DTW(candidate, target) under a warping window.

    With ``squared=True`` (the paper's formulation) the bound is the squared
    sum of out-of-envelope excursions; with ``squared=False`` it is the L1
    analogue, which lower-bounds the absolute-difference DTW cost used by
    :func:`repro.dtw.dtw.dtw_distance`.

    ``env`` optionally supplies a precomputed ``(upper, lower)`` envelope of
    ``target`` at this ``window`` — the envelope depends only on the target,
    so callers testing many candidates against one target (the clustering
    layer) compute it once instead of once per candidate pair.
    """
    candidate = np.asarray(candidate, dtype=float)
    target = np.asarray(target, dtype=float)
    if candidate.shape != target.shape:
        raise ConfigurationError(
            "LB_Keogh requires equal-length sequences; interpolate first"
        )
    upper, lower = envelope(target, window) if env is None else env
    over = np.maximum(candidate - upper, 0.0)
    under = np.maximum(lower - candidate, 0.0)
    excursion = over + under
    if squared:
        return float(np.sum(excursion * excursion))
    return float(np.sum(excursion))
