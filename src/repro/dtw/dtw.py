"""Dynamic time warping with an optional Sakoe–Chiba warping window.

DTW aligns two temporal sequences by the minimum-cost monotone path through
the pairwise-distance matrix [27]. The clustering layer (Sec. 6.1) uses it
to decide whether two beacons' RSS trends match; the cost matrix itself is
exposed because the paper visualises it (Fig. 9c/d).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DtwResult", "dtw_distance", "dtw_full"]


@dataclass
class DtwResult:
    """Alignment outcome: total cost, warping path and the cost matrix."""

    distance: float
    path: List[Tuple[int, int]]
    cost_matrix: np.ndarray

    @property
    def normalized_distance(self) -> float:
        """Cost per path step — comparable across sequence lengths."""
        return self.distance / max(len(self.path), 1)


def _validate(a: Sequence[float], b: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
        raise ConfigurationError("DTW requires two non-empty 1-D sequences")
    return a, b


def dtw_distance(
    a: Sequence[float], b: Sequence[float], window: Optional[int] = None
) -> float:
    """DTW cost only — O(len(a)) memory, the fast path for matching.

    ``window`` is the Sakoe–Chiba band half-width in samples; None means
    unconstrained alignment.
    """
    a, b = _validate(a, b)
    n, m = len(a), len(b)
    w = max(window, abs(n - m)) if window is not None else max(n, m)
    inf = math.inf
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = np.full(m + 1, inf)
        lo = max(1, i - w)
        hi = min(m, i + w)
        for j in range(lo, hi + 1):
            cost = abs(a[i - 1] - b[j - 1])
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return float(prev[m])


def dtw_full(
    a: Sequence[float], b: Sequence[float], window: Optional[int] = None
) -> DtwResult:
    """DTW with full cost matrix and the optimal warping path (Fig. 9c/d)."""
    a, b = _validate(a, b)
    n, m = len(a), len(b)
    w = max(window, abs(n - m)) if window is not None else max(n, m)
    inf = math.inf
    acc = np.full((n + 1, m + 1), inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        lo = max(1, i - w)
        hi = min(m, i + w)
        for j in range(lo, hi + 1):
            cost = abs(a[i - 1] - b[j - 1])
            acc[i, j] = cost + min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])

    # Backtrack the optimal path.
    path: List[Tuple[int, int]] = []
    i, j = n, m
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        step = np.argmin([acc[i - 1, j - 1], acc[i - 1, j], acc[i, j - 1]])
        if step == 0:
            i, j = i - 1, j - 1
        elif step == 1:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return DtwResult(float(acc[n, m]), path, acc[1:, 1:])
