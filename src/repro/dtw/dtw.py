"""Dynamic time warping with an optional Sakoe–Chiba warping window.

DTW aligns two temporal sequences by the minimum-cost monotone path through
the pairwise-distance matrix [27]. The clustering layer (Sec. 6.1) uses it
to decide whether two beacons' RSS trends match; the cost matrix itself is
exposed because the paper visualises it (Fig. 9c/d).

The row recurrence ``cur[j] = c[j] + min(prev[j], cur[j-1], prev[j-1])``
looks inherently serial because of the ``cur[j-1]`` term, but it reduces to
a running minimum: with ``v[j] = min(prev[j], prev[j-1])`` and ``C`` the
cumulative sum of the row's costs, ``u[j] = cur[j] - C[j]`` satisfies
``u[j] = min(u[j-1], v[j] - C[j-1])`` — one ``np.minimum.accumulate`` per
row. Both :func:`dtw_distance` and :func:`dtw_full` use this vectorized
band update; the original per-cell Python loop survives as
``_dtw_distance_reference`` for equivalence tests and benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import perf
from repro.errors import ConfigurationError

__all__ = ["DtwResult", "dtw_distance", "dtw_full"]


@dataclass
class DtwResult:
    """Alignment outcome: total cost, warping path and the cost matrix."""

    distance: float
    path: List[Tuple[int, int]]
    cost_matrix: np.ndarray

    @property
    def normalized_distance(self) -> float:
        """Cost per path step — comparable across sequence lengths."""
        return self.distance / max(len(self.path), 1)


def _validate(a: Sequence[float], b: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
        raise ConfigurationError("DTW requires two non-empty 1-D sequences")
    return a, b


def _band_row_update(
    a_i: float, b: np.ndarray, prev: np.ndarray, cur: np.ndarray,
    lo: int, hi: int,
) -> None:
    """Fill ``cur[lo..hi]`` from ``prev`` with the scan-based band update.

    ``prev``/``cur`` are (m+1)-length accumulated-cost rows; ``lo``/``hi``
    are the 1-based inclusive band bounds of this row.
    """
    cost = np.abs(a_i - b[lo - 1:hi])
    # min over the two vertical/diagonal predecessors for each band cell.
    v = np.minimum(prev[lo:hi + 1], prev[lo - 1:hi])
    csum = np.cumsum(cost)
    # u[j] = min_{k<=j} (v[k] - C[k-1]); cur = u + C. C[k-1] is csum shifted.
    shifted = np.empty_like(csum)
    shifted[0] = 0.0
    shifted[1:] = csum[:-1]
    u = np.minimum.accumulate(v - shifted)
    cur[lo:hi + 1] = u + csum


#: Above this many band cells ``dtw_distance`` stops precomputing the whole
#: banded cost matrix (O(n·w) memory) and falls back to the O(m)-memory
#: row-wise update. 4M cells ≈ 64 MB of doubles.
_PRECOMPUTE_CELL_CAP = 4_000_000


#: (n, m, w) → clipped band index matrix. Segment matching calls DTW with
#: identical shapes thousands of times; rebuilding the index lattice
#: dominates the precompute for short segments. FIFO-capped.
_BAND_INDEX_CACHE: dict = {}
_BAND_INDEX_CACHE_MAX = 64
_BAND_INDEX_CACHE_CELLS = 200_000


def _band_indices(n: int, m: int, w: int) -> np.ndarray:
    key = (n, m, w)
    idx = _BAND_INDEX_CACHE.get(key)
    if idx is None:
        jj = np.arange(1, n + 1)[:, None] + np.arange(-w, w + 1)[None, :]
        idx = np.clip(jj, 1, m) - 1
        if idx.size <= _BAND_INDEX_CACHE_CELLS:
            if len(_BAND_INDEX_CACHE) >= _BAND_INDEX_CACHE_MAX:
                _BAND_INDEX_CACHE.pop(next(iter(_BAND_INDEX_CACHE)))
            _BAND_INDEX_CACHE[key] = idx
    return idx


def _dtw_banded_precomputed(
    a: np.ndarray, b: np.ndarray, w: int
) -> float:
    """Band-coordinate DP with the whole cost band precomputed.

    Cell ``(i, j)`` is stored at band column ``k = j - i + w``; all rows
    then have the same fixed width ``2w + 1``, so every per-row kernel runs
    on identically-shaped arrays with no per-row index arithmetic. Cells
    whose ``j`` falls outside ``[1, m]`` are phantoms carrying the clipped
    edge column's cost; a phantom path mirrors a legal path entering at the
    edge column and can never undercut it, so no per-row masking is needed.
    """
    n, m = len(a), len(b)
    width = 2 * w + 1
    cost = np.abs(a[:, None] - b[_band_indices(n, m, w)])
    csum = np.empty((n, width + 1))
    csum[:, 0] = 0.0
    np.cumsum(cost, axis=1, out=csum[:, 1:])

    inf = math.inf
    prev = np.full(width + 1, inf)
    cur = np.full(width + 1, inf)
    prev[w] = 0.0  # row 0: j = 0 sits at band column w
    buf = np.empty(width)
    # Pre-build the views and bind the ufuncs once: the loop body is four
    # fixed-width kernels per row and nothing else.
    views = [(prev[1:], prev[:-1], prev[:-1], prev),
             (cur[1:], cur[:-1], cur[:-1], cur)]
    heads = list(csum[:, :-1])
    tails = list(csum[:, 1:])
    vmin, vsub, vaccmin, vadd = (
        np.minimum, np.subtract, np.minimum.accumulate, np.add,
    )
    src, dst = 0, 1
    for r in range(n):
        p_up, p_diag = views[src][0], views[src][1]
        # v[k] = min over the vertical (k+1) and diagonal (k) predecessors.
        vmin(p_up, p_diag, out=buf)
        # Horizontal chaining as a running min: u[k] = min_{t<=k}(v[t]-C[t-1]).
        vsub(buf, heads[r], out=buf)
        vaccmin(buf, out=buf)
        vadd(buf, tails[r], out=views[dst][2])
        src, dst = dst, src
    return float(views[src][3][m - n + w])


def _dtw_rowwise(a: np.ndarray, b: np.ndarray, w: int) -> float:
    """O(m)-memory scan-based update; fallback for very long sequences."""
    n, m = len(a), len(b)
    inf = math.inf
    prev = np.full(m + 1, inf)
    cur = np.full(m + 1, inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        lo = max(1, i - w)
        hi = min(m, i + w)
        # Reset the one stale cell the band's shifted reads could see: the
        # band bounds move right by at most one per row.
        cur[lo - 1] = inf
        if hi < m:
            cur[hi + 1] = inf
        _band_row_update(a[i - 1], b, prev, cur, lo, hi)
        prev, cur = cur, prev
    return float(prev[m])


@perf.profiled("dtw.dtw_distance")
def dtw_distance(
    a: Sequence[float], b: Sequence[float], window: Optional[int] = None
) -> float:
    """DTW cost only — the fast path for matching.

    ``window`` is the Sakoe–Chiba band half-width in samples; None means
    unconstrained alignment. Memory is O(n·w) for typical inputs (the band
    costs are precomputed in one shot) and O(m) beyond
    ``_PRECOMPUTE_CELL_CAP`` band cells.
    """
    a, b = _validate(a, b)
    n, m = len(a), len(b)
    w = max(window, abs(n - m)) if window is not None else max(n, m)
    if n * (2 * w + 1) <= _PRECOMPUTE_CELL_CAP:
        return _dtw_banded_precomputed(a, b, w)
    return _dtw_rowwise(a, b, w)


def _dtw_distance_reference(
    a: Sequence[float], b: Sequence[float], window: Optional[int] = None
) -> float:
    """Pre-vectorization per-cell DP loop; equivalence/benchmark baseline."""
    a, b = _validate(a, b)
    n, m = len(a), len(b)
    w = max(window, abs(n - m)) if window is not None else max(n, m)
    inf = math.inf
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = np.full(m + 1, inf)
        lo = max(1, i - w)
        hi = min(m, i + w)
        for j in range(lo, hi + 1):
            cost = abs(a[i - 1] - b[j - 1])
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return float(prev[m])


@perf.profiled("dtw.dtw_full")
def dtw_full(
    a: Sequence[float], b: Sequence[float], window: Optional[int] = None
) -> DtwResult:
    """DTW with full cost matrix and the optimal warping path (Fig. 9c/d)."""
    a, b = _validate(a, b)
    n, m = len(a), len(b)
    w = max(window, abs(n - m)) if window is not None else max(n, m)
    inf = math.inf
    acc = np.full((n + 1, m + 1), inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        lo = max(1, i - w)
        hi = min(m, i + w)
        _band_row_update(a[i - 1], b, acc[i - 1], acc[i], lo, hi)

    # Backtrack the optimal path.
    path: List[Tuple[int, int]] = []
    i, j = n, m
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        step = np.argmin([acc[i - 1, j - 1], acc[i - 1, j], acc[i, j - 1]])
        if step == 0:
            i, j = i - 1, j - 1
        elif step == 1:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return DtwResult(float(acc[n, m]), path, acc[1:, 1:])
