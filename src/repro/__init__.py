"""LocBLE reproduction: locating and tracking BLE beacons with smartphones.

Reproduces Chen, Shin, Jiang & Kim, "Locating and Tracking BLE Beacons with
Smartphones", CoNEXT 2017 — the LocBLE system — together with every
substrate it needs (RF channel, BLE protocol, IMU, geometry, filters, ML,
DTW) as a pure-Python simulation-backed library.

Quick start::

    import numpy as np
    from repro import LocBLE, Simulator, BeaconSpec, l_shape, scenario, Vec2

    rng = np.random.default_rng(0)
    sc = scenario(1)                       # Table-1 meeting room
    sim = Simulator(sc.floorplan, rng)
    walk = l_shape(sc.observer_start, sc.observer_heading_rad)
    rec = sim.simulate(walk, [BeaconSpec("b", position=sc.beacon_position)])
    est = LocBLE().estimate(rec.rssi_traces["b"], rec.observer_imu.trace)
    print(est.position, "error:", est.error_to(rec.true_position_in_frame("b")))
"""

from repro.baselines import DartleRanger, ProximityEstimator, ProximityZone
from repro.core import (
    AdaptiveNoiseFilter,
    ClusteringCalibrator,
    EllipticalEstimator,
    EnvAwareClassifier,
    LocBLE,
    Navigator,
    ParticleEstimator,
    available_backends,
    make_solver,
)
from repro.fleet import FleetConfig, ShardRouter, TrackingFleet
from repro.gateway import GatewayConfig, IngestionGateway
from repro.service import (
    ServiceConfig,
    SessionConfig,
    SessionState,
    TrackingService,
    TrackingSession,
)
from repro.robustness import (
    EstimateDiagnostics,
    SanitizationReport,
    check_trace,
    sanitize_trace,
)
from repro.sim import (
    BeaconSpec,
    EnvDatasetBuilder,
    FaultModel,
    MeasurementRecord,
    Simulator,
    degradation_sweep,
)
from repro.types import EnvClass, ImuTrace, LocationEstimate, RssiTrace, Vec2
from repro.world import Floorplan, Trajectory, l_shape, straight_walk
from repro.world.scenarios import SCENARIOS, Scenario, scenario

__version__ = "1.0.0"

__all__ = [
    "DartleRanger", "ProximityEstimator", "ProximityZone",
    "AdaptiveNoiseFilter", "ClusteringCalibrator", "EllipticalEstimator",
    "EnvAwareClassifier", "LocBLE", "Navigator", "ParticleEstimator",
    "available_backends", "make_solver", "BeaconSpec",
    "EnvDatasetBuilder", "FaultModel", "degradation_sweep",
    "EstimateDiagnostics", "SanitizationReport", "check_trace",
    "sanitize_trace", "MeasurementRecord", "Simulator", "EnvClass",
    "ImuTrace", "LocationEstimate", "RssiTrace", "Vec2", "Floorplan",
    "Trajectory", "l_shape", "straight_walk", "SCENARIOS", "Scenario",
    "scenario", "ServiceConfig", "SessionConfig", "SessionState",
    "TrackingService", "TrackingSession",
    "FleetConfig", "ShardRouter", "TrackingFleet",
    "GatewayConfig", "IngestionGateway", "__version__",
]
