"""Combined IMU trace synthesis for a walking trajectory.

:class:`ImuSynthesizer` turns a ground-truth :class:`~repro.world.trajectory.
Trajectory` into the earth-frame IMU stream the motion tracker consumes:
user-acceleration magnitude (gait), yaw rate (turn bumps) and magnetic
heading — sampled at a phone-realistic 50–100 Hz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.imu.gait import GaitModel, step_frequency_for_speed
from repro.imu.gyro import GyroModel, TurnEvent
from repro.imu.magnetometer import MagnetometerModel, smooth_heading_through_turns
from repro.types import ImuSample, ImuTrace
from repro.world.geometry import wrap_angle
from repro.world.trajectory import Trajectory

__all__ = ["ImuSynthesizer", "SynthesizedImu"]


@dataclass
class SynthesizedImu:
    """An IMU trace together with its motion ground truth."""

    trace: ImuTrace
    true_step_times: List[float]
    true_turns: List[TurnEvent]


@dataclass
class ImuSynthesizer:
    """Generates the IMU stream for one walker."""

    rng: np.random.Generator
    rate_hz: float = 50.0
    turn_duration_s: float = 0.9
    gait: GaitModel = field(default=None)
    gyro: GyroModel = field(default=None)
    mag: MagnetometerModel = field(default=None)

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ConfigurationError("rate_hz must be positive")
        if self.gait is None:
            self.gait = GaitModel(self.rng)
        if self.gyro is None:
            self.gyro = GyroModel(self.rng)
        if self.mag is None:
            self.mag = MagnetometerModel(self.rng)

    def synthesize(
        self, trajectory: Trajectory, t_pad_s: float = 0.5
    ) -> SynthesizedImu:
        """IMU stream covering the trajectory plus ``t_pad_s`` at both ends."""
        t0 = trajectory.times[0] - t_pad_s
        t1 = trajectory.times[-1] + t_pad_s
        n = max(2, int(round((t1 - t0) * self.rate_hz)) + 1)
        ts = np.linspace(t0, t1, n)

        walking = np.array(
            [trajectory.times[0] <= t <= trajectory.times[-1] for t in ts]
        )
        speeds = self._speeds_at(trajectory, ts)
        step_freq = np.array(
            [step_frequency_for_speed(s) if s > 0 else 0.0 for s in speeds]
        )
        walking &= speeds > 1e-6

        accel, step_times = self.gait.synthesize(ts, walking, step_freq)

        turns = self._turn_events(trajectory)
        gyro_z = self.gyro.synthesize(ts, turns, walking)

        true_heading = np.array([trajectory.heading_at(t) for t in ts])
        true_heading = smooth_heading_through_turns(
            ts, true_heading, np.array([tn.time for tn in turns]), self.turn_duration_s
        )
        mag_heading = self.mag.synthesize(ts, true_heading)

        samples = [
            ImuSample(float(t), float(a), float(g), float(m))
            for t, a, g, m in zip(ts, accel, gyro_z, mag_heading)
        ]
        return SynthesizedImu(ImuTrace(samples), step_times, turns)

    def _speeds_at(self, trajectory: Trajectory, ts: np.ndarray) -> np.ndarray:
        speeds = np.zeros(len(ts))
        for a, b, t_start, t_end in trajectory.legs():
            v = a.distance_to(b) / (t_end - t_start)
            mask = (ts >= t_start) & (ts <= t_end)
            speeds[mask] = v
        return speeds

    def _turn_events(self, trajectory: Trajectory) -> List[TurnEvent]:
        events = []
        for i in range(1, len(trajectory.waypoints) - 1):
            h0 = (trajectory.waypoints[i] - trajectory.waypoints[i - 1]).heading()
            h1 = (trajectory.waypoints[i + 1] - trajectory.waypoints[i]).heading()
            angle = wrap_angle(h1 - h0)
            if abs(angle) >= math.radians(15.0):
                events.append(
                    TurnEvent(trajectory.times[i], angle, self.turn_duration_s)
                )
        return events
