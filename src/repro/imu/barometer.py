"""Barometric pressure synthesis and altitude estimation.

The 3-D extension (paper Sec. 9.3) needs the observer's elevation track.
Phones carry a barometer whose short-term *relative* altitude is good to a
few tens of centimetres — ideal for "did the user walk up the stairs/ramp"
— while its absolute reading drifts with weather. We synthesise pressure
from a true elevation profile via the barometric formula plus sensor noise
and slow drift, and provide the inverse estimator apps use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.smoothing import moving_average

__all__ = ["BarometerModel", "altitude_from_pressure", "pressure_at_altitude"]

#: Standard sea-level pressure (hPa) and the ~8.4 m/hPa lapse near ground.
SEA_LEVEL_HPA = 1013.25
HPA_PER_METRE = 1.0 / 8.43


def pressure_at_altitude(altitude_m: float,
                         reference_hpa: float = SEA_LEVEL_HPA) -> float:
    """Pressure (hPa) at ``altitude_m`` using the linearised barometric law.

    The linear model is accurate to millimetres over the few-metre
    elevation changes a measurement walk can contain.
    """
    return reference_hpa - altitude_m * HPA_PER_METRE


def altitude_from_pressure(pressure_hpa: float,
                           reference_hpa: float = SEA_LEVEL_HPA) -> float:
    """Altitude (m) relative to where the reference pressure was taken."""
    return (reference_hpa - pressure_hpa) / HPA_PER_METRE


@dataclass
class BarometerModel:
    """Synthesises a phone barometer's pressure stream.

    ``noise_std_hpa`` is per-sample sensor noise (~0.02 hPa ≈ 0.17 m on
    modern phones); ``drift_hpa_per_s`` a slow weather/sensor drift.
    """

    rng: np.random.Generator
    noise_std_hpa: float = 0.02
    drift_hpa_per_s: float = 2e-4
    reference_hpa: float = SEA_LEVEL_HPA

    def synthesize(self, timestamps: Sequence[float],
                   altitudes_m: Sequence[float]) -> np.ndarray:
        """Pressure samples (hPa) for a true altitude track."""
        ts = np.asarray(timestamps, dtype=float)
        alts = np.asarray(altitudes_m, dtype=float)
        if ts.shape != alts.shape or ts.ndim != 1:
            raise ConfigurationError("timestamps and altitudes must align")
        true_p = np.array([
            pressure_at_altitude(a, self.reference_hpa) for a in alts
        ])
        drift = self.drift_hpa_per_s * (ts - ts[0]) * float(
            self.rng.choice([-1.0, 1.0])
        )
        noise = self.rng.normal(0.0, self.noise_std_hpa, size=len(ts))
        return true_p + drift + noise

    def estimate_relative_altitude(
        self, pressure_hpa: Sequence[float], smooth_window: int = 9
    ) -> np.ndarray:
        """Relative altitude track (m, zeroed at the first sample).

        Smooths the pressure first; the residual drift over a < 10 s
        measurement is centimetres and ignored, as phone apps do.
        """
        p = moving_average(np.asarray(pressure_hpa, dtype=float),
                           smooth_window)
        alt = np.array([altitude_from_pressure(v, self.reference_hpa)
                        for v in p])
        return alt - alt[0]
