"""Phone→earth coordinate alignment (Sec. 5.2 of the paper).

LocBLE makes its motion tracker independent of phone posture by rotating
phone-frame sensor vectors into the earth frame ("the well-known coordinate
alignment [22]"). We implement the standard construction: estimate gravity
in the phone frame, build the rotation that maps it to earth-Z, and resolve
the horizontal-plane yaw with the magnetometer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GeometryError

__all__ = [
    "rotation_matrix",
    "euler_from_matrix",
    "Posture",
    "align_to_earth",
    "gravity_direction",
]

GRAVITY_MS2 = 9.80665


def rotation_matrix(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Intrinsic Z-Y-X (yaw-pitch-roll) rotation: earth = R @ phone."""
    cr, sr = math.cos(roll), math.sin(roll)
    cp, sp = math.cos(pitch), math.sin(pitch)
    cy, sy = math.cos(yaw), math.sin(yaw)
    rz = np.array([[cy, -sy, 0.0], [sy, cy, 0.0], [0.0, 0.0, 1.0]])
    ry = np.array([[cp, 0.0, sp], [0.0, 1.0, 0.0], [-sp, 0.0, cp]])
    rx = np.array([[1.0, 0.0, 0.0], [0.0, cr, -sr], [0.0, sr, cr]])
    return rz @ ry @ rx


def euler_from_matrix(r: np.ndarray) -> Tuple[float, float, float]:
    """Recover (roll, pitch, yaw) from a Z-Y-X rotation matrix."""
    if r.shape != (3, 3):
        raise GeometryError("rotation matrix must be 3x3")
    pitch = math.asin(max(-1.0, min(1.0, -r[2, 0])))
    if abs(math.cos(pitch)) > 1e-9:
        roll = math.atan2(r[2, 1], r[2, 2])
        yaw = math.atan2(r[1, 0], r[0, 0])
    else:  # gimbal lock: split is arbitrary; put everything into roll
        roll = math.atan2(-r[0, 1], r[1, 1])
        yaw = 0.0
    return roll, pitch, yaw


@dataclass(frozen=True)
class Posture:
    """How the user holds the phone: a fixed rotation from earth to phone."""

    roll: float = 0.0
    pitch: float = 0.0
    yaw: float = 0.0

    def earth_to_phone(self) -> np.ndarray:
        return rotation_matrix(self.roll, self.pitch, self.yaw).T

    def phone_to_earth(self) -> np.ndarray:
        return rotation_matrix(self.roll, self.pitch, self.yaw)


def gravity_direction(accel_phone: np.ndarray) -> np.ndarray:
    """Unit gravity vector in the phone frame from a low-passed accel sample.

    At rest the accelerometer reads ``+g`` opposite to gravity; the mean of a
    window of samples points along phone-frame "up".
    """
    v = np.asarray(accel_phone, dtype=float)
    n = np.linalg.norm(v)
    if n < 1e-9:
        raise GeometryError("accelerometer vector is zero; cannot find gravity")
    return v / n


def align_to_earth(
    accel_phone: np.ndarray, gravity_phone: np.ndarray, mag_phone: np.ndarray
) -> np.ndarray:
    """Rotate a phone-frame acceleration into the earth (ENU-like) frame.

    ``gravity_phone`` is the estimated up direction in the phone frame (from
    :func:`gravity_direction` over a smoothing window); ``mag_phone`` the
    magnetometer vector. We build earth axes: Z = up, E = mag × up
    (magnetic east), N = up × E, and project.
    """
    up = gravity_direction(gravity_phone)
    mag = np.asarray(mag_phone, dtype=float)
    east = np.cross(mag, up)
    n = np.linalg.norm(east)
    if n < 1e-9:
        raise GeometryError("magnetometer parallel to gravity; heading undefined")
    east /= n
    north = np.cross(up, east)
    basis = np.vstack([east, north, up])  # rows are earth axes in phone frame
    return basis @ np.asarray(accel_phone, dtype=float)
