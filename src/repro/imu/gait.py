"""Accelerometer gait synthesis.

Walking produces a near-periodic vertical acceleration at the *step*
frequency (one peak per step, ~1.4–2.2 Hz). The step counter (Sec. 5.2.1)
only needs the waveform's peak structure, so we synthesise user-acceleration
magnitude (gravity removed, in g) as a fundamental plus a second harmonic
with amplitude/phase jitter and sensor noise — matching the shape of the raw
trace in the paper's Fig. 8(a).

Step length and step frequency are coupled through the walker's speed; the
inverse relation (frequency → length) is what the step-length model in
:mod:`repro.motion.steplength` exploits, "inferring step length by inspecting
the step frequency" [26].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GaitModel", "step_frequency_for_speed", "step_length_for_frequency"]

#: Weinberg-style linear step model: length = A + B * frequency.
_STEP_A = 0.25
_STEP_B = 0.3


def step_length_for_frequency(freq_hz: float) -> float:
    """Step length (m) as a linear function of step frequency (Hz)."""
    if freq_hz <= 0:
        raise ConfigurationError("step frequency must be positive")
    return _STEP_A + _STEP_B * freq_hz


def step_frequency_for_speed(speed_ms: float) -> float:
    """Invert speed = length(freq) * freq for the step frequency.

    Solves ``B f^2 + A f - v = 0`` for the positive root.
    """
    if speed_ms <= 0:
        raise ConfigurationError("speed must be positive")
    disc = _STEP_A * _STEP_A + 4.0 * _STEP_B * speed_ms
    return (-_STEP_A + math.sqrt(disc)) / (2.0 * _STEP_B)


@dataclass
class GaitModel:
    """Synthesises the user-acceleration magnitude signal for a walk.

    ``amplitude_g`` is the fundamental's amplitude; real phone traces run
    0.2–0.5 g depending on pocket/hand carry. Jitter parameters give the
    cycle-to-cycle variability that makes naive peak counting overcount.
    """

    rng: np.random.Generator
    amplitude_g: float = 0.35
    harmonic_ratio: float = 0.3
    amplitude_jitter: float = 0.15
    noise_std_g: float = 0.04

    def synthesize(
        self,
        timestamps: np.ndarray,
        walking: np.ndarray,
        step_freq_hz: np.ndarray,
    ) -> Tuple[np.ndarray, List[float]]:
        """Generate the accel signal and the ground-truth step times.

        ``walking`` is a boolean mask (is the user mid-walk at sample i);
        ``step_freq_hz`` the instantaneous step frequency. Returns the signal
        and the list of true step-event times (phase crossings of the gait
        cycle), which experiments use as step-detection ground truth.
        """
        timestamps = np.asarray(timestamps, dtype=float)
        if timestamps.ndim != 1 or len(timestamps) < 2:
            raise ConfigurationError("need a 1-D timestamp array of length >= 2")
        walking = np.asarray(walking, dtype=bool)
        step_freq_hz = np.asarray(step_freq_hz, dtype=float)
        if walking.shape != timestamps.shape or step_freq_hz.shape != timestamps.shape:
            raise ConfigurationError("mask/frequency arrays must match timestamps")

        signal = np.zeros_like(timestamps)
        step_times: List[float] = []
        phase = 0.0
        cycle_amp = self._draw_amplitude()
        for i in range(len(timestamps)):
            if i > 0:
                dt = timestamps[i] - timestamps[i - 1]
                if walking[i]:
                    new_phase = phase + 2.0 * math.pi * step_freq_hz[i] * dt
                    # One step per 2*pi of phase; peak at phase = pi/2.
                    if (phase % (2.0 * math.pi)) <= math.pi / 2.0 < (
                        phase % (2.0 * math.pi)
                    ) + (new_phase - phase):
                        step_times.append(timestamps[i])
                        cycle_amp = self._draw_amplitude()
                    phase = new_phase
            if walking[i]:
                signal[i] = cycle_amp * (
                    math.sin(phase)
                    + self.harmonic_ratio * math.sin(2.0 * phase)
                )
        signal += self.rng.normal(0.0, self.noise_std_g, size=len(signal))
        return signal, step_times

    def _draw_amplitude(self) -> float:
        jitter = self.rng.normal(0.0, self.amplitude_jitter)
        return self.amplitude_g * max(0.4, 1.0 + jitter)
