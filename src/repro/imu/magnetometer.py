"""Magnetometer heading synthesis.

Indoor magnetic headings wander (steel, wiring) but are *locally* stable —
"the magnetic field reading is known to fluctuate in indoor environments,
but it is accurate over a short period time" (Sec. 5.2.2). We model the
reported heading as the true walking heading plus a slowly varying bounded
random-walk disturbance plus white noise, with heading transitions through
turns smoothed over the turn duration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.world.geometry import wrap_angle

__all__ = ["MagnetometerModel"]


@dataclass
class MagnetometerModel:
    """Synthesises the magnetic-heading signal (radians)."""

    rng: np.random.Generator
    noise_std_rad: float = math.radians(2.0)
    drift_std_rad: float = math.radians(0.3)   # per-sample random-walk step
    drift_bound_rad: float = math.radians(8.0)  # indoor disturbance cap
    declination_rad: float = 0.0

    def synthesize(self, timestamps: np.ndarray,
                   true_heading: np.ndarray) -> np.ndarray:
        """Reported heading for each sample, wrapped to (-pi, pi]."""
        timestamps = np.asarray(timestamps, dtype=float)
        true_heading = np.asarray(true_heading, dtype=float)
        if timestamps.shape != true_heading.shape:
            raise ConfigurationError("timestamps and headings must align")
        n = len(timestamps)
        drift = np.empty(n)
        d = float(self.rng.uniform(-self.drift_bound_rad / 2, self.drift_bound_rad / 2))
        for i in range(n):
            d += float(self.rng.normal(0.0, self.drift_std_rad))
            d = max(-self.drift_bound_rad, min(self.drift_bound_rad, d))
            drift[i] = d
        noisy = (
            true_heading
            + self.declination_rad
            + drift
            + self.rng.normal(0.0, self.noise_std_rad, size=n)
        )
        return np.array([wrap_angle(h) for h in noisy])


def smooth_heading_through_turns(
    timestamps: np.ndarray,
    raw_heading: np.ndarray,
    turn_times: np.ndarray,
    turn_duration_s: float = 0.9,
) -> np.ndarray:
    """Replace step-function heading changes with smooth turn transitions.

    Piecewise-linear trajectories change heading instantaneously at a
    waypoint; a human body does not. Within ``turn_duration_s`` around each
    turn time we interpolate the heading with a raised-cosine ramp so the
    synthetic magnetometer matches a real turn profile.
    """
    timestamps = np.asarray(timestamps, dtype=float)
    heading = np.asarray(raw_heading, dtype=float).copy()
    for tt in np.atleast_1d(turn_times):
        t0, t1 = tt - turn_duration_s / 2.0, tt + turn_duration_s / 2.0
        before = heading[timestamps < t0]
        after = heading[timestamps > t1]
        if len(before) == 0 or len(after) == 0:
            continue
        h0, h1 = before[-1], after[0]
        delta = wrap_angle(h1 - h0)
        mask = (timestamps >= t0) & (timestamps <= t1)
        u = (timestamps[mask] - t0) / (t1 - t0)
        ramp = (1.0 - np.cos(math.pi * u)) / 2.0
        heading[mask] = np.array([wrap_angle(h0 + delta * r) for r in ramp])
    return heading
