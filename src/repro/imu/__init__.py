"""Inertial sensor substrate: gait, gyro, magnetometer synthesis + alignment."""

from repro.imu.alignment import (
    Posture, align_to_earth, euler_from_matrix, rotation_matrix,
)
from repro.imu.barometer import (
    BarometerModel, altitude_from_pressure, pressure_at_altitude,
)
from repro.imu.gait import (
    GaitModel, step_frequency_for_speed, step_length_for_frequency,
)
from repro.imu.gyro import GyroModel, TurnEvent
from repro.imu.magnetometer import MagnetometerModel, smooth_heading_through_turns
from repro.imu.sensors import ImuSynthesizer, SynthesizedImu

__all__ = [
    "Posture", "align_to_earth", "euler_from_matrix", "rotation_matrix",
    "GaitModel", "step_frequency_for_speed", "step_length_for_frequency",
    "GyroModel", "TurnEvent", "MagnetometerModel",
    "smooth_heading_through_turns", "ImuSynthesizer", "SynthesizedImu",
    "BarometerModel", "altitude_from_pressure", "pressure_at_altitude",
]
