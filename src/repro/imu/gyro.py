"""Gyroscope turn-bump synthesis.

A pedestrian turn shows up on the yaw-rate axis as a smooth "bump" whose
integral equals the turn angle — the signature the paper's turn detector
looks for (Sec. 5.2.2, Fig. 8b). We synthesise each turn as a raised-cosine
rate pulse of configurable duration, plus gyro bias and white noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GyroModel", "TurnEvent"]


@dataclass(frozen=True)
class TurnEvent:
    """Ground truth for one turn: when it happens and by how much (rad)."""

    time: float
    angle_rad: float
    duration_s: float = 0.9


@dataclass
class GyroModel:
    """Synthesises the z-axis (yaw) angular-rate signal."""

    rng: np.random.Generator
    noise_std_rad_s: float = 0.05
    bias_rad_s: float = 0.005
    sway_amp_rad_s: float = 0.06  # small oscillation synced with gait

    def synthesize(
        self,
        timestamps: np.ndarray,
        turns: List[TurnEvent],
        walking: np.ndarray = None,
    ) -> np.ndarray:
        """Yaw-rate signal with one raised-cosine bump per turn."""
        timestamps = np.asarray(timestamps, dtype=float)
        if timestamps.ndim != 1:
            raise ConfigurationError("timestamps must be 1-D")
        rate = np.full_like(timestamps, self.bias_rad_s)
        for turn in turns:
            if turn.duration_s <= 0:
                raise ConfigurationError("turn duration must be positive")
            t0 = turn.time - turn.duration_s / 2.0
            t1 = turn.time + turn.duration_s / 2.0
            mask = (timestamps >= t0) & (timestamps <= t1)
            if not np.any(mask):
                continue
            # Raised cosine with unit integral over [t0, t1].
            u = (timestamps[mask] - t0) / turn.duration_s
            pulse = (1.0 - np.cos(2.0 * math.pi * u)) / turn.duration_s
            rate[mask] += turn.angle_rad * pulse
        if walking is not None:
            walking = np.asarray(walking, dtype=bool)
            sway = self.sway_amp_rad_s * np.sin(
                2.0 * math.pi * 0.9 * timestamps + self.rng.uniform(0, 2 * math.pi)
            )
            rate = rate + np.where(walking, sway, 0.0)
        rate += self.rng.normal(0.0, self.noise_std_rad_s, size=len(rate))
        return rate
