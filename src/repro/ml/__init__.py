"""Learning substrate: SVMs, trees, forests, scaling, metrics, CV."""

from repro.ml.forest import RandomForestClassifier
from repro.ml.gridsearch import GridSearch
from repro.ml.kernels import (
    KernelSVM,
    MultiClassKernelSVM,
    linear_kernel,
    poly_kernel,
    rbf_kernel,
)
from repro.ml.metrics import accuracy, confusion_matrix, precision_recall_f1
from repro.ml.model_selection import (
    cross_val_accuracy, k_fold_indices, train_test_split,
)
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVM, MultiClassSVM
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "RandomForestClassifier", "GridSearch", "KernelSVM", "MultiClassKernelSVM",
    "linear_kernel", "poly_kernel", "rbf_kernel", "accuracy",
    "confusion_matrix", "precision_recall_f1", "cross_val_accuracy",
    "k_fold_indices", "train_test_split", "StandardScaler", "LinearSVM",
    "MultiClassSVM", "DecisionTreeClassifier",
]
