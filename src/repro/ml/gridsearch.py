"""Exhaustive hyper-parameter search with cross-validation.

The paper's model selection ("the most accurate for the various classifiers
we tried") implies exactly this loop; :class:`GridSearch` makes it a
reusable utility for tuning the EnvAware classifier or any fit/predict
model in this library.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.model_selection import cross_val_accuracy

__all__ = ["GridSearch"]


@dataclass
class GridSearch:
    """Cross-validated grid search over a model factory's keyword grid.

    ``factory(**params)`` must return a fit/predict model. After
    :meth:`fit`, ``best_params_`` / ``best_score_`` hold the winner and
    ``results_`` every evaluated combination.
    """

    factory: Callable[..., Any]
    grid: Dict[str, Sequence]
    k_folds: int = 3
    best_params_: Optional[Dict[str, Any]] = field(default=None, init=False)
    best_score_: float = field(default=float("-inf"), init=False)
    results_: List[Dict[str, Any]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ConfigurationError("grid must contain at least one axis")
        if any(len(v) == 0 for v in self.grid.values()):
            raise ConfigurationError("every grid axis needs >= 1 value")

    def _combinations(self):
        keys = sorted(self.grid)
        for values in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, values))

    def fit(self, x: np.ndarray, y: Sequence,
            rng: np.random.Generator) -> "GridSearch":
        """Evaluate every combination by k-fold CV accuracy."""
        x = np.asarray(x)
        y = np.asarray(y)
        self.results_ = []
        for params in self._combinations():
            scores = cross_val_accuracy(
                lambda p=params: self.factory(**p), x, y,
                k=self.k_folds, rng=rng,
            )
            mean_score = float(np.mean(scores))
            self.results_.append({"params": params, "score": mean_score})
            if mean_score > self.best_score_:
                self.best_score_ = mean_score
                self.best_params_ = params
        return self

    def best_model(self):
        """A fresh, unfitted model built with the winning parameters."""
        if self.best_params_ is None:
            raise NotFittedError("GridSearch.fit must run first")
        return self.factory(**self.best_params_)
