"""Kernel functions and a kernelised SVM (the "various kernels" the paper tried).

Sec. 4.1 reports trying "SVM with various kernels" before settling on the
linear one. We provide linear, RBF and polynomial kernels plus a simple
kernel SVM trained by kernelised Pegasos so the classifier comparison in the
EnvAware benchmark can reproduce that model-selection step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError

__all__ = ["linear_kernel", "rbf_kernel", "poly_kernel", "KernelSVM",
           "MultiClassKernelSVM"]

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gram matrix of dot products: K[i, j] = a_i . b_j."""
    return np.asarray(a, dtype=float) @ np.asarray(b, dtype=float).T


def rbf_kernel(gamma: float = 0.5) -> Kernel:
    """Gaussian RBF kernel factory: K = exp(-gamma ||a - b||^2)."""
    if gamma <= 0:
        raise ConfigurationError("gamma must be positive")

    def k(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        aa = np.sum(a * a, axis=1)[:, None]
        bb = np.sum(b * b, axis=1)[None, :]
        d2 = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
        return np.exp(-gamma * d2)

    return k


def poly_kernel(degree: int = 3, coef0: float = 1.0) -> Kernel:
    """Polynomial kernel factory: K = (a . b + coef0)^degree."""
    if degree < 1:
        raise ConfigurationError("degree must be >= 1")

    def k(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (linear_kernel(a, b) + coef0) ** degree

    return k


@dataclass
class KernelSVM:
    """Binary kernel SVM via kernelised Pegasos (labels ±1)."""

    kernel: Kernel
    lam: float = 1e-2
    epochs: int = 20
    seed: int = 7
    alphas_: Optional[np.ndarray] = field(default=None, init=False)
    x_train_: Optional[np.ndarray] = field(default=None, init=False)
    y_train_: Optional[np.ndarray] = field(default=None, init=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KernelSVM":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ConfigurationError("binary SVM labels must be -1/+1")
        n = len(x)
        gram = self.kernel(x, x)
        alphas = np.zeros(n)
        rng = np.random.default_rng(self.seed)
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                decision = (alphas * y) @ gram[:, i] / (self.lam * t)
                if y[i] * decision < 1.0:
                    alphas[i] += 1.0
        self.alphas_ = alphas
        self.x_train_ = x
        self.y_train_ = y
        self._t = t
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.alphas_ is None:
            raise NotFittedError("KernelSVM.fit must be called first")
        k = self.kernel(self.x_train_, np.asarray(x, dtype=float))
        return (self.alphas_ * self.y_train_) @ k / (self.lam * self._t)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(x) >= 0.0, 1, -1)


@dataclass
class MultiClassKernelSVM:
    """One-vs-rest wrapper around :class:`KernelSVM`."""

    kernel: Kernel
    lam: float = 1e-2
    epochs: int = 20
    seed: int = 7
    classes_: List = field(default_factory=list, init=False)
    _machines: List[KernelSVM] = field(default_factory=list, init=False)

    def fit(self, x: np.ndarray, y: Sequence) -> "MultiClassKernelSVM":
        y = np.asarray(y)
        self.classes_ = sorted(set(y.tolist()))
        if len(self.classes_) < 2:
            raise ConfigurationError("need at least two classes")
        self._machines = []
        for k, cls in enumerate(self.classes_):
            labels = np.where(y == cls, 1.0, -1.0)
            m = KernelSVM(self.kernel, lam=self.lam, epochs=self.epochs,
                          seed=self.seed + k)
            m.fit(np.asarray(x, dtype=float), labels)
            self._machines.append(m)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._machines:
            raise NotFittedError("MultiClassKernelSVM.fit must be called first")
        scores = np.column_stack([m.decision_function(x) for m in self._machines])
        idx = np.argmax(scores, axis=1)
        return np.array([self.classes_[i] for i in idx])
