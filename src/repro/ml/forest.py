"""Random forest over the CART tree (the paper's third candidate classifier)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


@dataclass
class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with sqrt-feature splits."""

    n_trees: int = 25
    max_depth: int = 12
    min_samples_leaf: int = 2
    seed: int = 7
    classes_: List = field(default_factory=list, init=False)
    _trees: List[DecisionTreeClassifier] = field(default_factory=list, init=False)

    def fit(self, x: np.ndarray, y: Sequence) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if self.n_trees < 1:
            raise ConfigurationError("n_trees must be >= 1")
        self.classes_ = sorted(set(y.tolist()))
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        max_features = max(1, int(math.sqrt(d)))
        self._trees = []
        for k in range(self.n_trees):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed + 1000 + k,
            )
            tree.fit(x[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise NotFittedError("RandomForestClassifier.fit must be called first")
        votes = np.stack([t.predict(x) for t in self._trees])
        out = []
        for col in range(votes.shape[1]):
            vals, counts = np.unique(votes[:, col], return_counts=True)
            out.append(vals[np.argmax(counts)])
        return np.array(out)
