"""CART decision tree (one of the classifiers the paper benchmarked against).

Axis-aligned binary splits chosen by Gini impurity, with depth / leaf-size
stopping rules. Supports feature subsampling per split so the random forest
can reuse it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    prediction: Optional[int] = None  # class index, set on leaves

    @property
    def is_leaf(self) -> bool:
        return self.prediction is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


@dataclass
class DecisionTreeClassifier:
    """Gini-impurity CART classifier."""

    max_depth: int = 12
    min_samples_leaf: int = 2
    max_features: Optional[int] = None  # per-split subsample; None = all
    seed: int = 7
    classes_: List = field(default_factory=list, init=False)
    _root: Optional[_Node] = field(default=None, init=False)

    def fit(self, x: np.ndarray, y: Sequence) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2 or len(x) != len(y):
            raise ConfigurationError("x must be 2-D and align with y")
        if self.max_depth < 1 or self.min_samples_leaf < 1:
            raise ConfigurationError("invalid stopping parameters")
        self.classes_ = sorted(set(y.tolist()))
        y_idx = np.array([self.classes_.index(v) for v in y.tolist()])
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(x, y_idx, depth=0, rng=rng)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int,
              rng: np.random.Generator) -> _Node:
        counts = np.bincount(y, minlength=len(self.classes_))
        majority = int(np.argmax(counts))
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or counts.max() == len(y)
        ):
            return _Node(prediction=majority)

        n_features = x.shape[1]
        if self.max_features is None:
            feature_pool = np.arange(n_features)
        else:
            k = min(self.max_features, n_features)
            feature_pool = rng.choice(n_features, size=k, replace=False)

        best = (None, None, _gini(counts))  # (feature, threshold, impurity)
        for f in feature_pool:
            order = np.argsort(x[:, f], kind="stable")
            xs, ys = x[order, f], y[order]
            left_counts = np.zeros(len(self.classes_))
            right_counts = counts.astype(float).copy()
            for i in range(len(ys) - 1):
                left_counts[ys[i]] += 1
                right_counts[ys[i]] -= 1
                if xs[i] == xs[i + 1]:
                    continue
                nl, nr = i + 1, len(ys) - i - 1
                if nl < self.min_samples_leaf or nr < self.min_samples_leaf:
                    continue
                impurity = (nl * _gini(left_counts)
                            + nr * _gini(right_counts)) / len(ys)
                if impurity < best[2] - 1e-12:
                    best = (int(f), (xs[i] + xs[i + 1]) / 2.0, impurity)

        if best[0] is None:
            return _Node(prediction=majority)
        feature, threshold, _ = best
        mask = x[:, feature] <= threshold
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(x[mask], y[mask], depth + 1, rng)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, rng)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier.fit must be called first")
        x = np.asarray(x, dtype=float)
        out = []
        for row in x:
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out.append(self.classes_[node.prediction])
        return np.array(out)

    def depth(self) -> int:
        """Actual depth of the grown tree (0 for a single leaf)."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier.fit must be called first")
        return walk(self._root)
