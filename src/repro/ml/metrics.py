"""Classification metrics: confusion matrix, precision/recall/F1, accuracy.

The paper reports EnvAware at "94.7% precision and 94.5% recall for our
three-type classification" — macro-averaged over the three classes, which is
what :func:`precision_recall_f1` computes by default.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["confusion_matrix", "accuracy", "precision_recall_f1"]


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Sequence = None
) -> Tuple[np.ndarray, List]:
    """Confusion matrix C[i, j] = #samples of true class i predicted as j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ConfigurationError("y_true and y_pred must align")
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    labels = list(labels)
    index = {lab: i for i, lab in enumerate(labels)}
    c = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        c[index[t], index[p]] += 1
    return c, labels


def accuracy(y_true: Sequence, y_pred: Sequence) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ConfigurationError("y_true and y_pred must align")
    if y_true.size == 0:
        raise ConfigurationError("cannot score an empty prediction set")
    return float(np.mean(y_true == y_pred))


def precision_recall_f1(
    y_true: Sequence, y_pred: Sequence, average: str = "macro"
) -> Dict[str, float]:
    """Macro- or micro-averaged precision, recall and F1.

    Classes absent from predictions contribute precision 0 (macro mode), the
    conservative convention.
    """
    if average not in ("macro", "micro"):
        raise ConfigurationError("average must be 'macro' or 'micro'")
    c, labels = confusion_matrix(y_true, y_pred)
    tp = np.diag(c).astype(float)
    fp = c.sum(axis=0) - tp
    fn = c.sum(axis=1) - tp
    if average == "micro":
        precision = tp.sum() / max(tp.sum() + fp.sum(), 1e-12)
        recall = tp.sum() / max(tp.sum() + fn.sum(), 1e-12)
    else:
        with np.errstate(invalid="ignore", divide="ignore"):
            per_p = np.where(tp + fp > 0, tp / np.maximum(tp + fp, 1e-12), 0.0)
            per_r = np.where(tp + fn > 0, tp / np.maximum(tp + fn, 1e-12), 0.0)
        precision = float(np.mean(per_p))
        recall = float(np.mean(per_r))
    f1 = 0.0
    if precision + recall > 0:
        f1 = 2.0 * precision * recall / (precision + recall)
    return {"precision": float(precision), "recall": float(recall), "f1": float(f1)}
