"""Linear support vector machine (EnvAware's classifier, Sec. 4.1).

The paper "chose SVM with a linear kernel ... since it outperforms other
algorithms in the ensemble". We train the binary hinge-loss SVM with the
Pegasos primal sub-gradient method (deterministic given an RNG) and build
multi-class on top with one-vs-rest, scoring by decision margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError

__all__ = ["LinearSVM", "MultiClassSVM"]


@dataclass
class LinearSVM:
    """Binary linear SVM trained with Pegasos (labels must be ±1).

    ``lam`` is the L2 regularisation strength (Pegasos λ); ``epochs`` full
    passes over the data are made with per-step learning rate 1/(λ t).
    """

    lam: float = 1e-3
    epochs: int = 30
    seed: int = 7
    weights_: Optional[np.ndarray] = field(default=None, init=False)
    bias_: float = field(default=0.0, init=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ConfigurationError("x must be a 2-D matrix")
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ConfigurationError("binary SVM labels must be -1/+1")
        if self.lam <= 0:
            raise ConfigurationError("lam must be positive")
        n, d = x.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for i in order:
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = y[i] * (x[i] @ w + b)
                if margin < 1.0:
                    w = (1.0 - eta * self.lam) * w + eta * y[i] * x[i]
                    b += eta * y[i]
                else:
                    w = (1.0 - eta * self.lam) * w
                # Pegasos projection keeps the solution inside the ball the
                # optimum provably lives in. The bias is part of that
                # solution: projecting w alone leaves b unregularised and
                # unbounded (it grows without limit on skewed label streams,
                # silently overruling the features), so project the
                # augmented vector (w, b) to ||(w, b)|| <= 1/sqrt(lam).
                norm = np.sqrt(w @ w + b * b)
                cap = 1.0 / np.sqrt(self.lam)
                if norm > cap:
                    scale = cap / norm
                    w *= scale
                    b *= scale
        self.weights_ = w
        self.bias_ = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("LinearSVM.fit must be called first")
        return np.asarray(x, dtype=float) @ self.weights_ + self.bias_

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(x) >= 0.0, 1, -1)


@dataclass
class MultiClassSVM:
    """One-vs-rest multi-class linear SVM over string or int labels."""

    lam: float = 1e-3
    epochs: int = 30
    seed: int = 7
    classes_: List = field(default_factory=list, init=False)
    _machines: List[LinearSVM] = field(default_factory=list, init=False)

    def fit(self, x: np.ndarray, y: Sequence) -> "MultiClassSVM":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        self.classes_ = sorted(set(y.tolist()))
        if len(self.classes_) < 2:
            raise ConfigurationError("need at least two classes")
        self._machines = []
        for k, cls in enumerate(self.classes_):
            labels = np.where(y == cls, 1.0, -1.0)
            m = LinearSVM(lam=self.lam, epochs=self.epochs, seed=self.seed + k)
            m.fit(x, labels)
            self._machines.append(m)
        return self

    def decision_matrix(self, x: np.ndarray) -> np.ndarray:
        """Per-class margins, shape (n_samples, n_classes)."""
        if not self._machines:
            raise NotFittedError("MultiClassSVM.fit must be called first")
        return np.column_stack([m.decision_function(x) for m in self._machines])

    def predict(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_matrix(x)
        # Ties break deterministically to the lowest class index (argmax is
        # first-wins), i.e. the smallest label in sort order — a sample
        # sitting on an exactly symmetric margin always classifies the same
        # way across runs and platforms. classes_ is sorted at fit time.
        idx = np.argmax(scores, axis=1)
        return np.array([self.classes_[i] for i in idx])

    def margin(self, x: np.ndarray) -> np.ndarray:
        """Winning-class margin per sample — a cheap prediction confidence."""
        return self.decision_matrix(x).max(axis=1)
