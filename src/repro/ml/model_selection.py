"""Dataset splitting and cross-validation utilities."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.metrics import accuracy

__all__ = ["train_test_split", "k_fold_indices", "cross_val_accuracy"]


def train_test_split(
    x: np.ndarray,
    y: Sequence,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (x_train, x_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError("test_fraction must be in (0, 1)")
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ConfigurationError("x and y must align")
    n = len(x)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ConfigurationError("split leaves no training data")
    order = rng.permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], x[test_idx], y[train_idx], y[test_idx]


def k_fold_indices(
    n: int, k: int, rng: np.random.Generator
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) for k shuffled folds."""
    if k < 2 or k > n:
        raise ConfigurationError("k must be in [2, n]")
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train_idx, test_idx


def cross_val_accuracy(
    model_factory,
    x: np.ndarray,
    y: Sequence,
    k: int,
    rng: np.random.Generator,
) -> List[float]:
    """K-fold accuracy of ``model_factory()`` instances (fit/predict API)."""
    x = np.asarray(x)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in k_fold_indices(len(x), k, rng):
        model = model_factory()
        model.fit(x[train_idx], y[train_idx])
        scores.append(accuracy(y[test_idx], model.predict(x[test_idx])))
    return scores
