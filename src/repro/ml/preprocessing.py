"""Feature standardisation (the ``sklearn.preprocessing.StandardScaler`` role).

EnvAware's feature vector is "composed of the standardized 9 values"
(Sec. 4.1) — zero mean, unit variance per feature, with the statistics
learned on training data and reapplied at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import NotFittedError

__all__ = ["StandardScaler"]


@dataclass
class StandardScaler:
    """Per-feature standardisation to zero mean and unit variance."""

    mean_: Optional[np.ndarray] = field(default=None, init=False)
    scale_: Optional[np.ndarray] = field(default=None, init=False)

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant features scale to 1 so they map to exactly zero.
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.fit must be called first")
        x = np.asarray(x, dtype=float)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.fit must be called first")
        return np.asarray(x, dtype=float) * self.scale_ + self.mean_
