"""Per-shard crash containment and point-in-time recovery for the fleet.

:class:`FleetSupervisor` wraps a :class:`~repro.fleet.TrackingFleet` and
speaks the same contract the gateway expects of its ``fleet`` attribute
(``config`` / ``ingest_scans`` / ``ingest_imu`` / ``tick`` / ``stats`` /
``total_sessions``), so it drops in transparently:
``IngestionGateway(cfg, FleetSupervisor(fleet, store))``. What it adds is
the blast-radius rule a serving system needs: **a shard worker exception
mid-tick fails that shard, not the fleet.** The failed shard is rebuilt
from the last good :class:`~repro.durability.store.CheckpointStore`
snapshot, the ticks it missed are re-driven from the supervisor's
in-memory ingest journal, and the healthy shards never stop serving.
Restart scheduling reuses the service layer's proven reflexes — a
per-shard :class:`~repro.service.breaker.ExponentialBackoff` on the
stream clock, and a :class:`~repro.service.breaker.CircuitBreaker` that
stops burning restore work on a shard that re-fails every probe.

The journal is the containment-scope twin of the gateway trace: it holds
only the ticks since the last durable checkpoint (trimmed on every save),
so shard recovery needs no file I/O — snapshot payload plus journal
suffix reproduces the shard's state snapshot-identically, the same
equivalence contract migration is judged by.

:func:`recover` is the whole-process form of the same ladder: after a
crash (simulated by the chaos harness, real in production) it loads the
newest verifiable fleet snapshot from the store, reads the crashed run's
trace with :func:`~repro.gateway.trace.recover_trace` (unsealed, possibly
torn-tail), re-drives the trace suffix past the checkpoint, and verifies
every re-driven tick's snapshot digest against the digest the original
process recorded before dying.

Known limitation: a live migration between checkpoints moves a session
across shards without an entry in the ingest journal, so a shard crash in
that window re-drives the mover's scans to its hash-home shard. Run
``rebalance()`` (or checkpoint) right after migrating; the whole-process
:func:`recover` path does not share this limit because the trace re-drive
recreates the pre-migration placement exactly.

Everything here follows the event ritual: each ``supervisor.<name>`` obs
event increments a same-named :mod:`repro.perf` counter (and the local
``counters`` mirror) at the same call site — the parity the chaos
harness audits across kill/recover cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import obs, perf
from repro.errors import ConfigurationError, DataQualityError, ReproError
from repro.fleet import TrackingFleet
from repro.fleet.worker import ShardWorker
from repro.gateway.gateway import IngestionGateway
from repro.gateway.trace import (
    TraceRecovery,
    _gateway_from_meta,
    _tick_samples,
    recover_trace,
    snapshot_digest,
)
from repro.service.breaker import (
    BackoffConfig,
    BreakerConfig,
    CircuitBreaker,
    ExponentialBackoff,
)
from repro.service.session import PipelineFactory, SessionSnapshot, \
    default_pipeline_factory
from repro.durability.store import CheckpointStore
from repro.types import ImuSample, RssiSample

__all__ = ["FleetSupervisor", "RecoveryReport", "recover"]

#: The snapshot kind the supervisor saves fleet checkpoints under.
FLEET_SNAPSHOT_KIND = "fleet"


class FleetSupervisor:
    """Gateway-compatible fleet wrapper that survives shard crashes."""

    def __init__(
        self,
        fleet: Optional[TrackingFleet] = None,
        store: Optional[CheckpointStore] = None,
        checkpoint_every: int = 16,
        backoff: Optional[BackoffConfig] = None,
        breaker: Optional[BreakerConfig] = None,
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ):
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        self.fleet = fleet or TrackingFleet()
        self.store = store
        self.checkpoint_every = int(checkpoint_every)
        self._pipeline_factory = pipeline_factory
        n = self.fleet.config.n_shards
        self.failed: Dict[int, str] = {}  # shard id -> failure reason
        self.restarts = 0
        self.ticks = 0
        self.counters: Dict[str, int] = {}
        self._backoffs = [
            ExponentialBackoff(backoff or BackoffConfig(
                base_s=1.0, factor=2.0, max_s=60.0), key=f"shard:{i}")
            for i in range(n)
        ]
        self._breakers = [
            CircuitBreaker(breaker or BreakerConfig(
                failure_threshold=5, cooldown_s=30.0), key=f"shard:{i}")
            for i in range(n)
        ]
        #: Ticks since the last checkpoint: ``(t, scans, imu)`` — the
        #: re-drive source for a shard restart.
        self._journal: List[Tuple[float, List[RssiSample],
                                  List[ImuSample]]] = []
        self._pending_scans: List[RssiSample] = []
        self._pending_imu: List[ImuSample] = []
        #: The last checkpoint payload saved (or restored), in memory —
        #: shard restart must not depend on disk being healthy.
        self._last_cp: Optional[Dict[str, Any]] = None
        #: Scripted faults: shard id -> exception to raise on next step.
        self._injected: Dict[int, BaseException] = {}

    # -- the gateway's fleet contract ----------------------------------------

    @property
    def config(self):
        return self.fleet.config

    @property
    def workers(self) -> List[ShardWorker]:
        return self.fleet.workers

    @property
    def total_sessions(self) -> int:
        return self.fleet.total_sessions

    def ingest_scans(self, samples) -> int:
        samples = list(samples)
        self._pending_scans.extend(samples)
        return self.fleet.ingest_scans(samples)

    def ingest_imu(self, samples) -> int:
        samples = list(samples)
        self._pending_imu.extend(samples)
        return self.fleet.ingest_imu(samples)

    def tick(self, t: float) -> Dict[str, SessionSnapshot]:
        """Step every healthy shard; contain, restart, re-drive the rest.

        Mirrors :meth:`~repro.fleet.TrackingFleet.tick` (shard order,
        deterministic merge) with each worker stepped inside its own
        containment boundary. A failing worker is marked failed and the
        remaining shards still produce this tick's snapshots; the failed
        shard rejoins via :meth:`_restart_shard` once its backoff and
        breaker admit the attempt.
        """
        t = float(t)
        self._journal.append(
            (t, self._pending_scans, self._pending_imu))
        self._pending_scans, self._pending_imu = [], []
        merged: Dict[str, SessionSnapshot] = {}
        for worker in list(self.fleet.workers):
            shard = worker.shard_id
            if shard in self.failed:
                if (self._backoffs[shard].ready(t)
                        and self._breakers[shard].allow(t)):
                    restarted = self._restart_shard(shard, t)
                    if restarted is not None:
                        merged.update(restarted.tick(
                            t, batch=self.fleet.config.batch_ticks))
                continue
            try:
                fault = self._injected.pop(shard, None)
                if fault is not None:
                    raise fault
                merged.update(worker.tick(
                    t, batch=self.fleet.config.batch_ticks))
            except ReproError as exc:
                self._fail_shard(shard, t, exc, typed=True)
            except Exception as exc:  # noqa: BLE001 — containment boundary
                self._fail_shard(shard, t, exc, typed=False)
        self.ticks += 1
        perf.count("fleet.ticks")
        if self.ticks % self.checkpoint_every == 0:
            self.checkpoint_now(t)
        return merged

    def stats(self) -> Dict[str, Any]:
        out = self.fleet.stats()
        out["supervisor"] = {
            "failed_shards": sorted(self.failed),
            "restarts": self.restarts,
            "ticks": self.ticks,
            "journal_ticks": len(self._journal),
            "counters": dict(self.counters),
        }
        return out

    # -- faults and containment ----------------------------------------------

    def inject_crash(self, shard_id: int,
                     exc: Optional[BaseException] = None) -> None:
        """Script the next step of ``shard_id`` to raise (chaos hook)."""
        if not 0 <= shard_id < self.fleet.config.n_shards:
            raise ConfigurationError(
                f"shard {shard_id} out of range "
                f"[0, {self.fleet.config.n_shards})")
        self._injected[shard_id] = exc or RuntimeError(
            f"injected crash on shard {shard_id}")

    def _fail_shard(self, shard: int, t: float, exc: BaseException,
                    typed: bool) -> None:
        reason = f"{type(exc).__name__}: {exc}"
        self.failed[shard] = reason
        self._backoffs[shard].on_failure(t)
        self._breakers[shard].record_failure(t)
        self._event("shard_failed", severity="error", shard=shard, t=t,
                    typed=typed, error=type(exc).__name__)

    # -- restart: snapshot + journal re-drive --------------------------------

    def _restart_shard(self, shard: int, t: float) -> Optional[ShardWorker]:
        """Rebuild one shard from the last snapshot and its missed ticks.

        Returns the restarted worker (installed, caught up to just before
        ``t``, with this tick's ingest already delivered) ready for the
        caller to step — or ``None`` when the restart itself failed, in
        which case backoff/breaker schedule the next attempt.
        """
        try:
            if self._last_cp is not None:
                worker = ShardWorker.restore(
                    self._last_cp["fleet"]["workers"][shard],
                    pipeline_factory=self._pipeline_factory)
            else:
                # No checkpoint yet: the shard restarts empty and the
                # journal (which reaches back to tick 0) rebuilds it.
                worker = ShardWorker(shard, self.fleet.config.service,
                                     self._pipeline_factory)
            self.fleet.workers[shard] = worker
            redriven = self._redrive(worker, t)
        except ReproError as exc:
            self._backoffs[shard].on_failure(t)
            self._breakers[shard].record_failure(t)
            self._event("restart_failed", severity="error", shard=shard,
                        t=t, error=type(exc).__name__, detail=str(exc))
            return None
        del self.failed[shard]
        self._backoffs[shard].reset()
        self._breakers[shard].record_success(t)
        self.restarts += 1
        self._event("shard_restarted", severity="info", shard=shard, t=t,
                    redriven_ticks=redriven, sessions=worker.n_sessions)
        return worker

    def _redrive(self, worker: ShardWorker, t: float) -> int:
        """Replay the journal into a freshly restored worker.

        Entries strictly before ``t`` are ingested *and* ticked (the
        worker missed those steps entirely); the current tick's entry is
        ingested only — the caller steps it together with the healthy
        shards, keeping one shared tick cadence.
        """
        redriven = 0
        for jt, scans, imu in self._journal:
            mine = [s for s in scans if self._routes_here(worker, s)]
            if mine:
                worker.ingest_scans(mine)
            if imu:
                worker.ingest_imu(imu)
            if jt < t:
                worker.tick(jt, batch=self.fleet.config.batch_ticks)
                redriven += 1
        return redriven

    def _routes_here(self, worker: ShardWorker, sample: RssiSample) -> bool:
        """Would this scan have been routed to the restored shard?

        A beacon already live in the restored snapshot belongs here; a
        beacon live on *another* shard does not (it was served there all
        along); an unknown beacon goes to its router shard — the same
        decision :meth:`~repro.fleet.TrackingFleet.ingest_scans` made
        when the sample first arrived.
        """
        beacon = sample.beacon_id
        if beacon in worker.service.sessions:
            return True
        for other in self.fleet.workers:
            if other is not worker and beacon in other.service.sessions:
                return False
        return self.fleet.router.shard_for(beacon) == worker.shard_id

    # -- checkpointing --------------------------------------------------------

    def checkpoint_now(self, t: Optional[float] = None) -> bool:
        """Snapshot the fleet to the store and trim the journal.

        Skipped (False) while any shard is failed — a checkpoint must
        capture a consistent fleet, and a failed worker's in-memory state
        is exactly what we refuse to trust. The journal keeps growing in
        that window so the eventual restart can still re-drive it.
        """
        if self.failed:
            self._event("checkpoint_deferred", severity="warning",
                        failed_shards=sorted(self.failed), t=t)
            return False
        payload = {"tick": self.ticks, "fleet": self.fleet.checkpoint()}
        self._last_cp = payload
        self._journal = []
        if self.store is not None:
            info = self.store.save(FLEET_SNAPSHOT_KIND, payload,
                                   tick=self.ticks)
            self._event("checkpointed", severity="info", tick=self.ticks,
                        seq=info.seq, bytes=info.n_bytes)
        else:
            self._event("checkpointed", severity="info", tick=self.ticks,
                        seq=None, bytes=None)
        return True

    # -- the event ritual -----------------------------------------------------

    def _event(self, name: str, severity: str = "info", n: int = 1,
               **fields: Any) -> None:
        """``supervisor.<name>``: local counter + perf + obs, in lockstep."""
        self.counters[name] = self.counters.get(name, 0) + n
        perf.count(f"supervisor.{name}", n)
        obs.emit(f"supervisor.{name}", severity=severity,
                 component="supervisor", n=n, **fields)


@dataclass(frozen=True)
class RecoveryReport:
    """What whole-process :func:`recover` did, for the chaos gate.

    ``redriven_ticks`` counts trace ticks re-applied past the checkpoint;
    ``digest_mismatches`` lists ``(tick_index, t, recorded, replayed)``
    for any re-driven tick whose snapshot digest diverged from what the
    crashed process recorded — non-empty means the recovered state is
    *not* point-in-time-identical and must not be trusted.
    """

    checkpoint_seq: int
    checkpoint_tick: int
    trace_ticks: int
    redriven_ticks: int
    trace_recovery: TraceRecovery
    quarantined: Tuple[Tuple[str, str], ...] = ()
    digest_mismatches: Tuple[Tuple[int, float, str, str], ...] = ()

    @property
    def identical(self) -> bool:
        """Did every re-driven tick reproduce its recorded digest?"""
        return not self.digest_mismatches


def recover(
    store_root: str,
    trace_path: str,
    pipeline_factory: PipelineFactory = default_pipeline_factory,
    store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 16,
    trace_start_tick: int = 0,
) -> Tuple[IngestionGateway, RecoveryReport]:
    """Point-in-time recovery after a process crash: snapshot + trace suffix.

    The ladder, each rung typed and evented:

    1. ``restore_latest("fleet")`` from the :class:`CheckpointStore` —
       corrupt snapshots are quarantined on the way to the newest one
       that verifies.
    2. :func:`~repro.gateway.trace.recover_trace` on the crashed run's
       trace — unsealed is expected, at most one torn final line is
       dropped, everything kept is hash-verified.
    3. Rebuild the gateway topology from the trace header, install the
       restored fleet (wrapped in a fresh :class:`FleetSupervisor` when
       the store is provided — recovery re-arms the protection that made
       it possible), and re-drive every trace tick past the checkpoint.
    4. Verify each re-driven tick's snapshot digest against the one the
       original process recorded *before* it died — the recovered state
       is accepted only as far as it is provably identical.

    ``trace_start_tick`` supports runs that already survived one crash: a
    resumed process starts a *fresh* trace segment whose first record is
    run tick ``trace_start_tick``, not 0. Recovery refuses (typed) when
    the snapshot predates the segment — the ticks between them exist in
    no readable trace, so catch-up cannot be verified.

    Returns the caught-up gateway and the :class:`RecoveryReport`;
    raises :class:`~repro.errors.DataQualityError` when no verifiable
    snapshot exists or the trace is corrupt beyond its torn tail.
    """
    store = store or CheckpointStore(store_root)
    restored = store.restore_latest(FLEET_SNAPSHOT_KIND)
    payload = restored.payload
    if (not isinstance(payload, dict) or "fleet" not in payload
            or not isinstance(payload.get("tick"), int)):
        shape = (sorted(payload) if isinstance(payload, dict)
                 else type(payload).__name__)
        raise DataQualityError(
            f"fleet snapshot seq {restored.info.seq} does not hold a "
            f"supervisor checkpoint (got {shape!r})")
    meta, tick_records, trace_recovery = recover_trace(trace_path)
    gateway = _gateway_from_meta(meta, pipeline_factory)
    fleet = TrackingFleet.restore(payload["fleet"],
                                  pipeline_factory=pipeline_factory)
    supervisor = FleetSupervisor(fleet, store=store,
                                 checkpoint_every=checkpoint_every,
                                 pipeline_factory=pipeline_factory)
    supervisor.ticks = int(payload["tick"])
    gateway.fleet = supervisor
    checkpoint_tick = int(payload["tick"])
    if checkpoint_tick < int(trace_start_tick):
        raise DataQualityError(
            f"fleet snapshot is at tick {checkpoint_tick} but the trace "
            f"segment begins at tick {trace_start_tick}: the gap exists in "
            f"no readable trace, so point-in-time catch-up is impossible")
    mismatches: List[Tuple[int, float, str, str]] = []
    redriven = 0
    for index, record in enumerate(tick_records):
        if int(trace_start_tick) + index < checkpoint_tick:
            continue  # already inside the snapshot
        scans, imu = _tick_samples(record, trace_path, index)
        gateway.enqueue_scans(scans)
        gateway.enqueue_imu(imu)
        snapshots = gateway.tick(float(record["t"]))
        redriven += 1
        replayed = snapshot_digest(snapshots)
        recorded = record.get("snap")
        if replayed != recorded:
            mismatches.append((index, float(record["t"]),
                               str(recorded), replayed))
    report = RecoveryReport(
        checkpoint_seq=restored.info.seq,
        checkpoint_tick=checkpoint_tick,
        trace_ticks=len(tick_records),
        redriven_ticks=redriven,
        trace_recovery=trace_recovery,
        quarantined=restored.skipped,
        digest_mismatches=tuple(mismatches),
    )
    perf.count("supervisor.recovered")
    obs.emit(
        "supervisor.recovered",
        severity="error" if mismatches else "info",
        component="supervisor",
        n=1,
        checkpoint_seq=report.checkpoint_seq,
        checkpoint_tick=checkpoint_tick,
        redriven=redriven,
        torn_line=trace_recovery.torn_line,
        mismatches=len(mismatches),
    )
    return gateway, report
