"""Seeded crash chaos: kill the process, corrupt the disk, prove recovery.

``python -m repro chaos`` runs the acceptance experiment for the whole
durability layer. One seeded workload is driven twice:

* **Baseline** — an uninterrupted gateway→supervisor→fleet run recording
  a sealed trace and the per-tick snapshot digests. This is the ground
  truth a crashed-and-recovered run must be bit-identical to.
* **Chaos** — the same workload with scripted disasters: in-process
  shard-worker crashes (contained and restarted by the
  :class:`~repro.durability.supervisor.FleetSupervisor`), SIGKILL-style
  process deaths at seeded ticks (the gateway, supervisor and trace
  writer are abandoned mid-run — no ``close()``, no seal), torn final
  trace writes (the file is truncated mid-line or left with a partial
  appended record), and bit-flips injected into snapshot files in the
  :class:`~repro.durability.store.CheckpointStore`. After each kill the
  run comes back through :func:`~repro.durability.supervisor.recover`
  (snapshot + verified trace suffix) and the lost tail — at most the one
  torn record per kill — is re-driven from the workload, modelling
  at-least-once client retransmission.

The gates, each of which fails the run:

1. **Zero untyped errors** — every exception that reaches the harness
   must be a :class:`~repro.errors.ReproError`; anything else is a bug.
2. **Digest-identical recovery** — every re-driven tick inside
   :func:`recover` must reproduce the digest the dying process recorded,
   and the chaos run's final-tick snapshot digest must equal the
   baseline's.
3. **Bounded loss** — across the whole run, at most one trace record
   (the torn line) may be lost per kill, and each is re-driven anyway.
4. **Counter parity** — every ``durability.*`` / ``supervisor.*`` obs
   event volume must equal its same-named :mod:`repro.perf` counter
   delta (the emit-ritual audit, extended to the recovery path).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs, perf
from repro.errors import ConfigurationError, ReproError
from repro.fleet import FleetConfig, TrackingFleet
from repro.gateway.gateway import GatewayConfig, IngestionGateway
from repro.gateway.trace import (
    TraceWriter,
    recover_trace,
    replay,
    snapshot_digest,
    trace_meta,
)
from repro.durability.store import CheckpointStore
from repro.durability.supervisor import (
    FleetSupervisor,
    RecoveryReport,
    recover,
)
from repro.sim.load import LoadConfig, generate_load

__all__ = ["ChaosConfig", "ChaosResult", "run_chaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment: workload size, disaster schedule, policies."""

    seed: int = 0
    ticks: int = 36
    tick_s: float = 1.0
    n_beacons: int = 8
    n_shards: int = 2
    #: SIGKILL-simulated process deaths (each followed by a recovery).
    kills: int = 2
    #: In-process shard-worker crashes (contained, not process-fatal).
    shard_crashes: int = 2
    checkpoint_every: int = 4
    #: Probability a kill additionally tears the trace's final write.
    torn_write_prob: float = 0.5
    #: Probability a kill additionally bit-flips the newest snapshot.
    bitflip_prob: float = 0.5
    #: Store/trace write policy; ``"flush"`` is faster for smoke tests.
    durability: str = "fsync"
    #: Also verify the sealed baseline trace replays identically, and
    #: that every crashed segment trace is still readable.
    replay_check: bool = False

    def __post_init__(self) -> None:
        if self.ticks < 12:
            raise ConfigurationError("ticks must be >= 12")
        if self.kills < 0 or self.shard_crashes < 0:
            raise ConfigurationError("kills/shard_crashes must be >= 0")
        if self.checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        if not 0.0 <= self.torn_write_prob <= 1.0:
            raise ConfigurationError("torn_write_prob must be in [0, 1]")
        if not 0.0 <= self.bitflip_prob <= 1.0:
            raise ConfigurationError("bitflip_prob must be in [0, 1]")
        if self.durability not in ("flush", "fsync"):
            raise ConfigurationError(
                "durability must be 'flush' or 'fsync'")
        third = self.ticks // 3
        if self.kills and third + self.checkpoint_every + 3 > self.ticks - 2:
            raise ConfigurationError(
                "ticks too short for the kill schedule: grow ticks or "
                "shrink checkpoint_every")


@dataclass
class ChaosResult:
    """Everything one chaos run measured, plus the pass/fail gates."""

    config: ChaosConfig = field(default_factory=ChaosConfig)
    kill_ticks: Tuple[int, ...] = ()
    shard_crash_ticks: Tuple[Tuple[int, int], ...] = ()  # (tick, shard)
    torn_injected: int = 0
    bitflips_injected: int = 0
    baseline_final_digest: str = ""
    chaos_final_digest: str = ""
    lost_ticks: int = 0
    untyped_errors: List[str] = field(default_factory=list)
    recoveries: List[RecoveryReport] = field(default_factory=list)
    quarantined_files: int = 0
    shard_restarts: int = 0
    parity_failures: List[str] = field(default_factory=list)
    replay_identical: Optional[bool] = None
    segment_traces_readable: Optional[bool] = None

    @property
    def digests_identical(self) -> bool:
        return (self.baseline_final_digest == self.chaos_final_digest
                and all(r.identical for r in self.recoveries))

    @property
    def loss_bounded(self) -> bool:
        """At most the one torn trace record per kill may be lost."""
        return self.lost_ticks <= len(self.kill_ticks)

    @property
    def passed(self) -> bool:
        gates = (not self.untyped_errors and self.digests_identical
                 and self.loss_bounded and not self.parity_failures)
        if self.replay_identical is not None:
            gates = gates and self.replay_identical
        if self.segment_traces_readable is not None:
            gates = gates and self.segment_traces_readable
        return bool(gates)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "kill_ticks": list(self.kill_ticks),
            "shard_crash_ticks": [list(p) for p in self.shard_crash_ticks],
            "torn_injected": self.torn_injected,
            "bitflips_injected": self.bitflips_injected,
            "baseline_final_digest": self.baseline_final_digest,
            "chaos_final_digest": self.chaos_final_digest,
            "digests_identical": self.digests_identical,
            "lost_ticks": self.lost_ticks,
            "loss_bounded": self.loss_bounded,
            "untyped_errors": list(self.untyped_errors),
            "recoveries": [
                {
                    "checkpoint_seq": r.checkpoint_seq,
                    "checkpoint_tick": r.checkpoint_tick,
                    "redriven_ticks": r.redriven_ticks,
                    "torn_line": r.trace_recovery.torn_line,
                    "quarantined": len(r.quarantined),
                    "identical": r.identical,
                }
                for r in self.recoveries
            ],
            "quarantined_files": self.quarantined_files,
            "shard_restarts": self.shard_restarts,
            "parity_failures": list(self.parity_failures),
            "replay_identical": self.replay_identical,
            "segment_traces_readable": self.segment_traces_readable,
        }


class _VolumeSink:
    """Sums each event's ``n`` field (default 1) per event name."""

    def __init__(self) -> None:
        self.volumes: Dict[str, int] = {}

    def write(self, event: Any) -> None:
        n = event.fields.get("n", 1)
        if not isinstance(n, int) or isinstance(n, bool):
            n = 1
        self.volumes[event.name] = self.volumes.get(event.name, 0) + n


def _schedule(
    config: ChaosConfig, rng: np.random.Generator
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Seeded disaster schedule, disjoint by design.

    Shard crashes land in the first third of the run and kills in the
    back two-thirds, separated by at least one checkpoint interval —
    so every trace record a kill's recovery re-drives was produced by a
    fully healthy fleet and its digest is comparable. (A shard crash
    *concurrent* with a kill is a real scenario, but its recovered
    digests are legitimately degraded — that composition is exercised by
    the supervisor tests, not gated on digest identity here.)
    """
    third = config.ticks // 3
    crash_ticks: List[Tuple[int, int]] = []
    if config.shard_crashes and third > 3:
        ticks = rng.choice(np.arange(2, third),
                           size=min(config.shard_crashes, third - 3),
                           replace=False)
        crash_ticks = sorted(
            (int(t), int(rng.integers(0, config.n_shards)))
            for t in ticks
        )
    kill_lo = third + config.checkpoint_every + 3
    kill_hi = config.ticks - 2
    kill_ticks: List[int] = []
    if config.kills and kill_hi > kill_lo:
        pool = np.arange(kill_lo, kill_hi)
        picked = rng.choice(pool, size=min(config.kills, len(pool)),
                            replace=False)
        kill_ticks = sorted(int(t) for t in picked)
        # Each recovery needs at least one live tick before the next
        # kill; thin out adjacent picks.
        thinned = []
        for t in kill_ticks:
            if not thinned or t - thinned[-1] >= 2:
                thinned.append(t)
        kill_ticks = thinned
    return kill_ticks, crash_ticks


def _tear_trace(path: str, rng: np.random.Generator) -> bool:
    """Simulate a torn final write: truncate mid-line or append a partial.

    Returns True when the file was actually modified.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if rng.random() < 0.5:
        # Tear the last committed line: drop 1..len-1 of its bytes.
        body = data.rstrip(b"\n")
        last_nl = body.rfind(b"\n")
        last_line = body[last_nl + 1:]
        if len(last_line) < 2:
            return False
        cut = int(rng.integers(1, len(last_line)))
        torn = body[:len(body) - cut]
        with open(path, "wb") as fh:
            fh.write(torn)
        return True
    # A write that died mid-record: partial JSON, no newline.
    fragment = b'{"kind":"tick","t":9' + b"9" * int(rng.integers(1, 8))
    with open(path, "ab") as fh:
        fh.write(fragment)
    return True


def _bitflip_snapshot(root: str, rng: np.random.Generator) -> bool:
    """Flip one byte in the newest fleet snapshot (if an older one exists).

    Recovery must quarantine the flipped file and fall back; flipping the
    *only* snapshot would make the run legitimately unrecoverable, which
    is not the property under test here (the fuzz suite covers it).
    """
    names = sorted(
        (n for n in os.listdir(root)
         if n.startswith("fleet-") and n.endswith(".ckpt.json")),
        reverse=True,
    )
    if len(names) < 2:
        return False
    path = os.path.join(root, names[0])
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    if not data:
        return False
    pos = int(rng.integers(0, len(data)))
    data[pos] ^= 0x01 if data[pos] != 0x0B else 0x02
    with open(path, "wb") as fh:
        fh.write(bytes(data))
    return True


def _build_stack(
    config: ChaosConfig,
    store: Optional[CheckpointStore],
) -> Tuple[IngestionGateway, FleetSupervisor]:
    fleet = TrackingFleet(FleetConfig(n_shards=config.n_shards))
    supervisor = FleetSupervisor(
        fleet, store=store, checkpoint_every=config.checkpoint_every)
    gateway = IngestionGateway(GatewayConfig(), supervisor)
    return gateway, supervisor


def run_chaos(config: Optional[ChaosConfig] = None,
              workdir: Optional[str] = None) -> ChaosResult:
    """Run the full chaos experiment; see the module docstring for gates.

    ``workdir`` holds the baseline trace, the chaos segment traces and
    the checkpoint store; a temp directory is created (and the artifacts
    kept for inspection) when not given.
    """
    config = config or ChaosConfig()
    if workdir is None:
        import tempfile
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    rng = np.random.default_rng((config.seed, 104729))
    result = ChaosResult(config=config)
    kill_ticks, crash_ticks = _schedule(config, rng)
    result.kill_ticks = tuple(kill_ticks)
    result.shard_crash_ticks = tuple(crash_ticks)
    crash_by_tick = {t: shard for t, shard in crash_ticks}

    stream = generate_load(LoadConfig(
        duration_s=config.ticks * config.tick_s,
        tick_s=config.tick_s,
        seed=config.seed,
        n_beacons=config.n_beacons,
        template_beacons=min(2, config.n_beacons),
        rate_hz=3.0,
    ))
    ticks = list(stream.ticks)[:config.ticks]

    sink = _VolumeSink()
    obs.add_sink(sink)
    watched_prefixes = ("durability.", "supervisor.")
    # Parity is judged on counter *deltas* over exactly the window the
    # volume sink observes, so a prior run in the same process (e.g.
    # earlier tests) cannot skew the audit.
    perf_before = dict(perf.snapshot()["counters"])

    baseline_path = os.path.join(workdir, "baseline.trace")
    store_root = os.path.join(workdir, "store")
    segment_path = (lambda i: os.path.join(workdir, f"chaos-{i}.trace"))

    def drive_one(gateway: IngestionGateway, k: int):
        t, scans, imu = ticks[k]
        gateway.enqueue_scans(list(scans))
        gateway.enqueue_imu(list(imu))
        return gateway.tick(float(t))

    try:
        # ---- baseline: the uninterrupted ground truth --------------------
        gateway, _ = _build_stack(config, store=None)
        with TraceWriter(baseline_path, meta=trace_meta(gateway),
                         durability=config.durability) as writer:
            gateway.tap = writer
            snaps: Dict[str, Any] = {}
            for k in range(len(ticks)):
                snaps = drive_one(gateway, k)
        result.baseline_final_digest = snapshot_digest(snaps)

        # ---- chaos: same workload, scripted disasters --------------------
        store = CheckpointStore(store_root, durability=config.durability)
        gateway, supervisor = _build_stack(config, store)
        segment = 0
        writer = TraceWriter(segment_path(segment),
                             meta=trace_meta(gateway),
                             durability=config.durability)
        gateway.tap = writer
        trace_offset = 0
        supervisor.checkpoint_now()  # tick-0 snapshot: always restorable
        driven = 0
        snaps = {}
        kills_pending = list(kill_ticks)
        while driven < len(ticks):
            if kills_pending and driven == kills_pending[0]:
                kills_pending.pop(0)
                # SIGKILL: abandon everything mid-run. No close(), no
                # seal — exactly the artifacts a dead process leaves.
                del gateway, supervisor, writer
                if rng.random() < config.torn_write_prob:
                    if _tear_trace(segment_path(segment), rng):
                        result.torn_injected += 1
                if rng.random() < config.bitflip_prob:
                    if _bitflip_snapshot(store_root, rng):
                        result.bitflips_injected += 1
                gateway, report = recover(
                    store_root, segment_path(segment),
                    store=CheckpointStore(store_root,
                                          durability=config.durability),
                    checkpoint_every=config.checkpoint_every,
                    trace_start_tick=trace_offset,
                )
                result.recoveries.append(report)
                result.quarantined_files += len(report.quarantined)
                covered = report.checkpoint_tick + report.redriven_ticks
                result.lost_ticks += max(driven - covered, 0)
                supervisor = gateway.fleet
                segment += 1
                writer = TraceWriter(segment_path(segment),
                                     meta=trace_meta(gateway),
                                     durability=config.durability)
                gateway.tap = writer
                trace_offset = covered
                supervisor.checkpoint_now()
                # At-least-once retransmission: the torn tick (if any)
                # is re-driven from the workload.
                driven = covered
                continue
            shard = crash_by_tick.get(driven)
            if shard is not None:
                supervisor.inject_crash(shard)
            snaps = drive_one(gateway, driven)
            driven += 1
        writer.close()  # the run finally completed: seal the last segment
        result.chaos_final_digest = snapshot_digest(snaps)
        result.shard_restarts = supervisor.restarts
        if supervisor.failed:
            result.untyped_errors.append(
                f"shards still failed at end of run: "
                f"{sorted(supervisor.failed)}")
    except ReproError as exc:
        # Typed errors are refusals with provenance, but the chaos
        # schedule is built so recovery always succeeds — reaching here
        # still fails the run, just in the typed bucket.
        result.untyped_errors.append(
            f"typed-but-fatal: {type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 — the gate this harness exists for
        result.untyped_errors.append(f"{type(exc).__name__}: {exc}")
    finally:
        obs.remove_sink(sink)

    # ---- gate 4: obs↔perf parity over the durability/supervisor families
    for name in sorted(sink.volumes):
        if not name.startswith(watched_prefixes):
            continue
        delta = perf.counter_value(name) - perf_before.get(name, 0)
        if sink.volumes[name] != delta:
            result.parity_failures.append(
                f"{name}: events {sink.volumes[name]} != counter {delta}")

    # ---- optional replay check over the recorded artifacts ---------------
    if config.replay_check and not result.untyped_errors:
        replayed = replay(baseline_path)
        result.replay_identical = replayed.identical
        readable = True
        for i in range(len(result.recoveries) + 1):
            path = segment_path(i)
            if not os.path.exists(path):
                continue
            try:
                recover_trace(path)
            except ReproError:
                readable = False
        result.segment_traces_readable = readable
    return result


def format_report(result: ChaosResult) -> str:
    """Human-readable chaos report for the CLI."""
    lines = [
        "chaos: %s" % ("PASS" if result.passed else "FAIL"),
        f"  kills at ticks {list(result.kill_ticks)}; shard crashes "
        f"{[list(p) for p in result.shard_crash_ticks]}",
        f"  injected: {result.torn_injected} torn trace writes, "
        f"{result.bitflips_injected} snapshot bit-flips",
        f"  recoveries: {len(result.recoveries)} "
        f"(quarantined {result.quarantined_files} files); "
        f"shard restarts: {result.shard_restarts}",
        f"  lost ticks: {result.lost_ticks} "
        f"(bounded: {result.loss_bounded})",
        f"  digests identical: {result.digests_identical} "
        f"(baseline {result.baseline_final_digest[:12]}…, "
        f"chaos {result.chaos_final_digest[:12]}…)",
        f"  untyped errors: {len(result.untyped_errors)}",
        f"  parity failures: {len(result.parity_failures)}",
    ]
    for err in result.untyped_errors:
        lines.append(f"    ! {err}")
    for fail in result.parity_failures:
        lines.append(f"    ! parity {fail}")
    if result.replay_identical is not None:
        lines.append(f"  baseline replay identical: "
                     f"{result.replay_identical}")
    if result.segment_traces_readable is not None:
        lines.append(f"  crashed segment traces readable: "
                     f"{result.segment_traces_readable}")
    return "\n".join(lines)
