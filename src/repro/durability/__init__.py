"""Crash-safe durability: the layer that makes checkpoints survive hardware.

Every layer below proves its state round-trips bit-identically through a
JSON checkpoint; this package gives those checkpoints a disk to live on
and a process to come back to:

* :mod:`~repro.durability.store` — :class:`CheckpointStore`: atomic
  (tmp + fsync + rename) snapshot files with embedded BLAKE2b digests, a
  digested manifest, retention rotation, and quarantine-don't-delete for
  anything that fails verification.
* :mod:`~repro.durability.supervisor` — :class:`FleetSupervisor`:
  per-shard crash containment over a
  :class:`~repro.fleet.TrackingFleet` (a worker exception fails the
  shard, not the fleet), backoff/breaker-scheduled restart from the last
  good snapshot with journal re-drive, and :func:`recover` — whole-process
  point-in-time recovery from snapshot + verified trace suffix.
* :mod:`~repro.durability.chaos` — the seeded kill/corrupt/recover
  harness behind ``python -m repro chaos``, gating on zero untyped
  errors, bounded loss and digest-identical recovered state.
"""

from repro.durability.chaos import ChaosConfig, ChaosResult, run_chaos
from repro.durability.store import (
    CheckpointStore,
    RestoredSnapshot,
    SnapshotInfo,
)
from repro.durability.supervisor import (
    FleetSupervisor,
    RecoveryReport,
    recover,
)

__all__ = [
    "CheckpointStore",
    "SnapshotInfo",
    "RestoredSnapshot",
    "FleetSupervisor",
    "RecoveryReport",
    "recover",
    "ChaosConfig",
    "ChaosResult",
    "run_chaos",
]
