"""Atomic on-disk checkpoint store: the layer that survives the hardware.

Every prior layer's ``checkpoint()``/``restore()`` pair proves a JSON dict
round-trips bit-identically — but the dict lived in memory, so a process
crash lost the whole fleet state. :class:`CheckpointStore` gives those
dicts a crash-safe home with the classic durability ladder:

* **Atomic visibility.** A snapshot is written to a temp file, flushed,
  (optionally) fsynced, then ``os.replace``\\ d into its final name and the
  directory entry fsynced — a crash at any instant leaves either the old
  state or the new one on disk, never a torn file under the final name.
* **Self-verifying files.** Each snapshot file carries a BLAKE2b digest
  over the canonical JSON of its own body, so corruption (bit rot, torn
  copies, a hostile edit) is detected per file with no external state.
* **A digested manifest.** ``MANIFEST-<kind>.json`` records the retained
  snapshots' digests and is itself digest-protected; restore cross-checks
  file against manifest, so a swap of one valid old snapshot for another
  (a rollback attack / restore-from-the-wrong-backup accident) is caught.
  A manifest that lags one ``save`` — the legal crash window between the
  two renames — is recognised and repaired, not refused.
* **Quarantine, don't delete.** A snapshot that fails verification is
  *moved* to ``quarantine/`` with a ``.reason`` sidecar, never deleted:
  corrupt state is forensic evidence, and the incident you are recovering
  from is exactly when you cannot afford to destroy it.
* **Retention rotation.** Only the newest ``retain`` verified snapshots
  per kind are kept live; older ones are deleted *after* a newer one is
  durably visible (quarantined files are exempt — rotation never touches
  evidence).

Everything a disk can contain is *data*: every refusal is a typed
:class:`~repro.errors.DataQualityError` (or
:class:`~repro.errors.ConfigurationError` for an unusable root path), and
every action emits a ``durability.<name>`` obs event paired with a
same-named :mod:`repro.perf` counter at the same call site — the parity
the chaos harness audits.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import obs, perf
from repro.errors import ConfigurationError, DataQualityError

__all__ = ["CheckpointStore", "SnapshotInfo", "RestoredSnapshot"]

#: Schema version written into every snapshot file and manifest.
STORE_FORMAT = 1

#: Hex chars of blake2b kept per digest (16 bytes).
_DIGEST_LEN = 32

#: Kinds are path components; keep them boring so the store cannot be
#: talked into writing outside its root.
_KIND_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")

_SNAPSHOT_RE = re.compile(r"^(?P<kind>[a-z0-9][a-z0-9_-]*)-(?P<seq>\d{8})"
                          r"\.ckpt\.json$")


def _canonical(body: Dict[str, Any]) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def _digest(body: Dict[str, Any]) -> str:
    return blake2b(_canonical(body).encode("utf-8"),
                   digest_size=_DIGEST_LEN // 2).hexdigest()


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (rename durability); no-op where unsupported."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class SnapshotInfo:
    """One verified snapshot's identity on disk."""

    kind: str
    seq: int
    tick: Optional[int]
    path: str
    digest: str
    n_bytes: int


@dataclass(frozen=True)
class RestoredSnapshot:
    """What :meth:`CheckpointStore.restore_latest` recovered.

    ``skipped`` lists every newer-but-unverifiable snapshot that was
    quarantined on the way down to this one, as ``(filename, reason)``
    pairs — an empty tuple means the newest snapshot verified first try.
    """

    info: SnapshotInfo
    payload: Any
    skipped: Tuple[Tuple[str, str], ...] = ()


class CheckpointStore:
    """Persists checkpoint dicts of any ``kind`` atomically under one root."""

    def __init__(self, root: str, retain: int = 4,
                 durability: str = "fsync"):
        if retain < 1:
            raise ConfigurationError("retain must be >= 1")
        if durability not in ("flush", "fsync"):
            raise ConfigurationError(
                f"durability must be 'flush' or 'fsync', got {durability!r}")
        self.root = Path(root)
        self.retain = int(retain)
        self.durability = durability
        #: Local mirror of the ``durability.*`` perf counters (parity).
        self.counters: Dict[str, int] = {}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            (self.root / "quarantine").mkdir(exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot create checkpoint store at {str(self.root)!r}: "
                f"{exc}")

    # -- saving --------------------------------------------------------------

    def save(self, kind: str, payload: Any,
             tick: Optional[int] = None) -> SnapshotInfo:
        """Durably persist one snapshot; returns its on-disk identity.

        The snapshot becomes visible atomically (temp file → fsync →
        rename → directory fsync under the default ``"fsync"`` policy),
        then the manifest is rewritten the same way, then retention
        rotates out snapshots older than the newest ``retain``.
        """
        self._check_kind(kind)
        if tick is not None:
            tick = int(tick)
        seq = self._next_seq(kind)
        body = {
            "format": STORE_FORMAT,
            "kind": kind,
            "seq": seq,
            "tick": tick,
            "payload": payload,
        }
        try:
            body["digest"] = _digest(body)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"snapshot payload for kind {kind!r} is not "
                f"JSON-serialisable: {exc}")
        name = f"{kind}-{seq:08d}.ckpt.json"
        data = _canonical(body)
        self._atomic_write(name, data)
        info = SnapshotInfo(kind=kind, seq=seq, tick=tick,
                            path=str(self.root / name),
                            digest=body["digest"], n_bytes=len(data))
        self._rewrite_manifest(kind)
        self._rotate(kind)
        self._event("saved", severity="info", kind=kind, seq=seq,
                    tick=tick, bytes=info.n_bytes)
        return info

    # -- restoring -----------------------------------------------------------

    def restore_latest(self, kind: str) -> RestoredSnapshot:
        """The newest snapshot of ``kind`` that verifies, or a typed refusal.

        Candidates are scanned newest-first; each one that fails
        verification (unparseable, digest mismatch, manifest
        disagreement) is quarantined — moved, never deleted — and the
        scan continues. When nothing verifies, the
        :class:`~repro.errors.DataQualityError` names every candidate and
        why it was refused.
        """
        self._check_kind(kind)
        manifest = self._load_manifest(kind)
        skipped: List[Tuple[str, str]] = []
        for name, seq in self._scan(kind):
            reason = None
            body = self._verify_file(name)
            if isinstance(body, str):
                reason = body
            elif manifest is not None:
                listed = manifest.get(seq)
                if listed is not None and listed != body["digest"]:
                    reason = (f"digest disagrees with manifest "
                              f"(file {body['digest']}, manifest {listed})")
                elif listed is None and seq < max(manifest, default=seq + 1):
                    # Not the legal one-save lag: an *older* snapshot the
                    # manifest never recorded is foreign state.
                    reason = "snapshot absent from a newer manifest"
                elif listed is None:
                    self._event("manifest_lag", severity="info", kind=kind,
                                seq=seq)
            if reason is not None:
                self._quarantine(name, reason)
                skipped.append((name, reason))
                continue
            payload = body["payload"]
            tick = body["tick"]
            info = SnapshotInfo(
                kind=kind, seq=seq, tick=None if tick is None else int(tick),
                path=str(self.root / name), digest=body["digest"],
                n_bytes=len(_canonical(body)),
            )
            if skipped:
                # Newer snapshots were refused on the way here; heal the
                # manifest so the survivor is what it now attests to.
                self._rewrite_manifest(kind)
            self._event("restored", severity="info", kind=kind, seq=seq,
                        tick=info.tick, skipped=len(skipped))
            return RestoredSnapshot(info=info, payload=payload,
                                    skipped=tuple(skipped))
        detail = "; ".join(f"{n}: {r}" for n, r in skipped) or "none on disk"
        self._event("restore_failed", severity="error", kind=kind,
                    candidates=len(skipped))
        raise DataQualityError(
            f"no verifiable {kind!r} snapshot in store "
            f"{str(self.root)!r} ({detail})")

    def latest(self, kind: str) -> Optional[SnapshotInfo]:
        """The newest *verifiable* snapshot's identity, without side effects.

        A read-only probe: nothing is quarantined, the manifest is not
        rewritten. ``None`` when no candidate verifies.
        """
        self._check_kind(kind)
        manifest = self._load_manifest(kind)
        for name, seq in self._scan(kind):
            body = self._verify_file(name)
            if isinstance(body, str):
                continue
            if manifest is not None and manifest.get(seq) not in (
                    None, body["digest"]):
                continue
            tick = body["tick"]
            return SnapshotInfo(
                kind=kind, seq=seq, tick=None if tick is None else int(tick),
                path=str(self.root / name), digest=body["digest"],
                n_bytes=len(_canonical(body)),
            )
        return None

    def verify(self) -> Dict[str, List[Tuple[str, Optional[str]]]]:
        """Audit every snapshot file; ``{kind: [(file, problem-or-None)]}``.

        Read-only like :meth:`latest` — an operator's ``fsck`` for the
        store, not a mutation.
        """
        report: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        for entry in sorted(p.name for p in self.root.iterdir()
                            if p.is_file()):
            match = _SNAPSHOT_RE.match(entry)
            if match is None:
                continue
            body = self._verify_file(entry)
            problem = body if isinstance(body, str) else None
            report.setdefault(match.group("kind"), []).append(
                (entry, problem))
        return report

    # -- internals: verification and quarantine ------------------------------

    def _verify_file(self, name: str) -> Any:
        """Parse + digest-check one snapshot file.

        Returns the verified body dict, or a ``str`` reason when the file
        is refused (the caller decides whether that means quarantine).
        """
        path = self.root / name
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as exc:
            return f"unreadable: {exc}"
        except UnicodeDecodeError as exc:
            return f"not UTF-8 (bit rot?): {exc}"
        try:
            body = json.loads(raw)
        except ValueError as exc:
            return f"not JSON (torn write?): {exc}"
        if not isinstance(body, dict):
            return "snapshot body must be a JSON object"
        if body.get("format") != STORE_FORMAT:
            return f"unsupported store format {body.get('format')!r}"
        recorded = body.get("digest")
        if not isinstance(recorded, str):
            return "missing digest"
        check = {k: v for k, v in body.items() if k != "digest"}
        try:
            actual = _digest(check)
        except (TypeError, ValueError) as exc:
            return f"undigestable body: {exc}"
        if actual != recorded:
            return (f"digest mismatch (recorded {recorded}, "
                    f"actual {actual})")
        match = _SNAPSHOT_RE.match(name)
        if match is None or body.get("kind") != match.group("kind") \
                or body.get("seq") != int(match.group("seq")):
            return "snapshot identity disagrees with its filename"
        return body

    def _quarantine(self, name: str, reason: str) -> None:
        """Move a refused file into ``quarantine/`` with a reason sidecar."""
        src = self.root / name
        dst = self.root / "quarantine" / name
        suffix = 1
        while dst.exists():
            suffix += 1
            dst = self.root / "quarantine" / f"{name}.{suffix}"
        try:
            os.replace(str(src), str(dst))
            dst.with_name(dst.name + ".reason").write_text(
                reason + "\n", encoding="utf-8")
        except OSError:
            pass  # best effort: quarantine must never block recovery
        self._event("quarantined", severity="warning", file=name,
                    reason=reason)

    # -- internals: layout ---------------------------------------------------

    def _scan(self, kind: str) -> List[Tuple[str, int]]:
        """Snapshot files of ``kind``, newest (highest seq) first."""
        out: List[Tuple[str, int]] = []
        for path in self.root.iterdir():
            if not path.is_file():
                continue
            match = _SNAPSHOT_RE.match(path.name)
            if match is not None and match.group("kind") == kind:
                out.append((path.name, int(match.group("seq"))))
        return sorted(out, key=lambda item: -item[1])

    def _next_seq(self, kind: str) -> int:
        scan = self._scan(kind)
        live = scan[0][1] if scan else 0
        quarantined = 0
        for path in (self.root / "quarantine").iterdir():
            match = _SNAPSHOT_RE.match(path.name.split(".ckpt.json")[0]
                                       + ".ckpt.json")
            if match is not None and match.group("kind") == kind:
                quarantined = max(quarantined, int(match.group("seq")))
        return max(live, quarantined) + 1

    def _atomic_write(self, name: str, data: str) -> None:
        tmp = self.root / f".tmp-{name}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(data + "\n")
                fh.flush()
                if self.durability == "fsync":
                    os.fsync(fh.fileno())
            os.replace(str(tmp), str(self.root / name))
            if self.durability == "fsync":
                _fsync_dir(self.root)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write snapshot {name!r} in "
                f"{str(self.root)!r}: {exc}")

    # -- internals: manifest -------------------------------------------------

    def _manifest_name(self, kind: str) -> str:
        return f"MANIFEST-{kind}.json"

    def _load_manifest(self, kind: str) -> Optional[Dict[int, str]]:
        """``{seq: digest}`` from the manifest, or None when unusable.

        A corrupt manifest is quarantined (it is evidence too) and
        restore falls back to the snapshots' self-digests.
        """
        path = self.root / self._manifest_name(kind)
        if not path.exists():
            return None
        try:
            body = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            self._quarantine(self._manifest_name(kind),
                             f"manifest unreadable: {exc}")
            return None
        if (not isinstance(body, dict)
                or body.get("format") != STORE_FORMAT
                or not isinstance(body.get("entries"), list)
                or not isinstance(body.get("digest"), str)):
            self._quarantine(self._manifest_name(kind),
                             "manifest shape invalid")
            return None
        check = {k: v for k, v in body.items() if k != "digest"}
        if _digest(check) != body["digest"]:
            self._quarantine(self._manifest_name(kind),
                             "manifest digest mismatch")
            return None
        out: Dict[int, str] = {}
        for entry in body["entries"]:
            if (isinstance(entry, dict)
                    and isinstance(entry.get("seq"), int)
                    and isinstance(entry.get("digest"), str)):
                out[entry["seq"]] = entry["digest"]
        return out

    def _rewrite_manifest(self, kind: str) -> None:
        entries = []
        for name, seq in reversed(self._scan(kind)):
            body = self._verify_file(name)
            if isinstance(body, str):
                continue  # restore/rotation will deal with it
            entries.append({"seq": seq, "file": name,
                            "digest": body["digest"],
                            "tick": body["tick"]})
        manifest = {"format": STORE_FORMAT, "kind": kind,
                    "entries": entries}
        manifest["digest"] = _digest(manifest)
        self._atomic_write(self._manifest_name(kind), _canonical(manifest))

    # -- internals: retention ------------------------------------------------

    def _rotate(self, kind: str) -> None:
        """Delete verified snapshots beyond ``retain`` (never quarantine)."""
        scan = self._scan(kind)
        for name, seq in scan[self.retain:]:
            body = self._verify_file(name)
            if isinstance(body, str):
                # Unverifiable: rotation quarantines rather than deletes,
                # so corruption cannot be aged out of the evidence trail.
                self._quarantine(name, f"refused during rotation: {body}")
                continue
            try:
                (self.root / name).unlink()
            except OSError:
                continue
            self._event("rotated", severity="debug", kind=kind, seq=seq)
        if len(scan) > self.retain:
            self._rewrite_manifest(kind)

    # -- internals: the counter/event parity ritual --------------------------

    def _event(self, name: str, severity: str = "info", n: int = 1,
               **fields: Any) -> None:
        """``durability.<name>``: local counter + perf + obs, in lockstep."""
        self.counters[name] = self.counters.get(name, 0) + n
        perf.count(f"durability.{name}", n)
        obs.emit(f"durability.{name}", severity=severity,
                 component="durability", n=n, **fields)

    def _check_kind(self, kind: str) -> None:
        if not isinstance(kind, str) or not _KIND_RE.match(kind):
            raise ConfigurationError(
                f"snapshot kind must match {_KIND_RE.pattern!r}, "
                f"got {kind!r}")
