"""Circuit breaker and retry backoff for per-beacon solve supervision.

Two failure regimes need two different reflexes:

* A *transient* solve failure (too few samples after a scan gap, a trace
  the sanitizer could not save this batch) will usually fix itself once
  more data arrives — retry, but back off exponentially so a session stuck
  in a bad spot does not burn a solve attempt every step.
* A *structural* failure (:class:`~repro.errors.DegenerateGeometryError`:
  the observer stopped walking, the geometry cannot constrain a solution)
  will fail the same way on every retry no matter how much data arrives —
  repeating the full regression is pure waste. The
  :class:`CircuitBreaker` trips after ``failure_threshold`` consecutive
  structural failures, sheds all solve work while OPEN, and probes with a
  single solve once per cooldown (HALF_OPEN) until one succeeds.

Both are deterministic: the backoff's jitter is derived from a stable hash
of ``(key, attempt)``, not a live RNG, so a checkpointed session resumes
with bit-identical retry scheduling. Clocks are the *stream* clock (the
``t`` the service is stepped with), never wall time.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro import obs, perf
from repro.errors import ConfigurationError, DataQualityError
from repro.service.checkpoint import require_finite, restore_guard

__all__ = [
    "BreakerConfig",
    "BackoffConfig",
    "CircuitBreaker",
    "ExponentialBackoff",
    "MAX_BACKOFF_ATTEMPT",
]

#: Checkpoint schema version for both classes in this module.
BREAKER_CHECKPOINT_FORMAT = 1

#: Failure streaks are clamped here. Every sane config saturates its delay
#: at ``max_s`` orders of magnitude earlier, so the clamp never changes a
#: schedule that matters — it exists because ``factor ** attempt`` in float
#: arithmetic raises :class:`OverflowError` past ``~2**1024`` (attempt
#: ~1025 at the default factor 2.0), i.e. a session that never recovers
#: would crash its supervisor after a long soak. Past the clamp the delay
#: (including its hash-derived jitter) is frozen at the clamp's value.
MAX_BACKOFF_ATTEMPT = 10_000


def _unit_hash(key: str, attempt: int) -> float:
    """A stable uniform-ish value in [0, 1) from (key, attempt).

    ``blake2b`` rather than ``hash()``: the builtin is salted per process,
    which would make retry schedules differ across a kill-and-resume.
    """
    digest = hashlib.blake2b(
        f"{key}:{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class BackoffConfig:
    """Exponential backoff with deterministic jitter.

    Delay after the ``k``-th consecutive failure is
    ``min(base_s * factor**(k-1), max_s)`` scaled by a jitter factor in
    ``[1 - jitter_frac, 1 + jitter_frac)`` derived from the session key.
    """

    base_s: float = 1.0
    factor: float = 2.0
    max_s: float = 30.0
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if not (math.isfinite(self.base_s) and self.base_s > 0):
            raise ConfigurationError("base_s must be finite and > 0")
        if not (math.isfinite(self.factor) and self.factor >= 1.0):
            raise ConfigurationError("factor must be finite and >= 1")
        if not (math.isfinite(self.max_s) and self.max_s >= self.base_s):
            raise ConfigurationError("max_s must be finite and >= base_s")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigurationError("jitter_frac must be in [0, 1)")


class ExponentialBackoff:
    """Schedules retries after transient failures on the stream clock."""

    def __init__(self, config: Optional[BackoffConfig] = None, key: str = ""):
        self.config = config or BackoffConfig()
        self.key = key
        self.attempt = 0
        self.next_ready_t: Optional[float] = None

    def ready(self, t: float) -> bool:
        """May a retry run at stream time ``t``?"""
        return self.next_ready_t is None or t >= self.next_ready_t

    def delay_for(self, attempt: int) -> float:
        """The (jittered, capped) delay scheduled after failure ``attempt``.

        Saturation is decided in log space *before* the power is evaluated:
        once ``(attempt - 1) · log(factor)`` provably exceeds
        ``log(max_s / base_s)`` the uncapped delay would only be clamped to
        ``max_s`` anyway, so the overflow-prone ``factor ** (attempt - 1)``
        is never computed for large streaks. Below saturation the original
        expression is evaluated unchanged, keeping historical schedules
        bit-identical.
        """
        cfg = self.config
        attempt = min(attempt, MAX_BACKOFF_ATTEMPT)
        log_factor = math.log(cfg.factor)
        # +1.0 margin: only short-circuit when the uncapped delay exceeds
        # max_s by at least a factor of e, so float rounding near the
        # boundary can never flip a sub-cap delay to the capped value.
        if log_factor > 0.0 and (
            (attempt - 1) * log_factor > math.log(cfg.max_s / cfg.base_s) + 1.0
        ):
            raw = cfg.max_s
        else:
            raw = min(cfg.base_s * cfg.factor ** (attempt - 1), cfg.max_s)
        jitter = 1.0 + cfg.jitter_frac * (2.0 * _unit_hash(self.key, attempt) - 1.0)
        return raw * jitter

    def on_failure(self, t: float) -> float:
        """Record a transient failure; returns the scheduled delay."""
        self.attempt = min(self.attempt + 1, MAX_BACKOFF_ATTEMPT)
        delay = self.delay_for(self.attempt)
        self.next_ready_t = t + delay
        return delay

    def reset(self) -> None:
        """A success clears the failure streak and any pending delay."""
        self.attempt = 0
        self.next_ready_t = None

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "format": BREAKER_CHECKPOINT_FORMAT,
            "key": self.key,
            "attempt": self.attempt,
            "next_ready_t": self.next_ready_t,
        }

    @classmethod
    def restore(
        cls, cp: Dict[str, Any], config: Optional[BackoffConfig] = None
    ) -> "ExponentialBackoff":
        if not isinstance(cp, dict) or cp.get("format") != BREAKER_CHECKPOINT_FORMAT:
            raise DataQualityError("unsupported backoff checkpoint")
        with restore_guard("backoff"):
            backoff = cls(config, key=str(cp["key"]))
            attempt = int(cp["attempt"])
            if attempt < 0:
                raise DataQualityError(
                    f"backoff checkpoint: attempt must be >= 0, got {attempt}"
                )
            backoff.attempt = min(attempt, MAX_BACKOFF_ATTEMPT)
            backoff.next_ready_t = require_finite(
                "backoff", "next_ready_t", cp["next_ready_t"], allow_none=True
            )
        return backoff


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/cooldown policy for the per-beacon solve circuit breaker.

    ``failure_threshold`` consecutive structural failures open the circuit
    for ``cooldown_s``; every failed HALF_OPEN probe re-opens it with the
    cooldown escalated by ``cooldown_factor`` (capped at
    ``max_cooldown_s``), so a persistently degenerate session converges to
    one probe solve per ``max_cooldown_s``.
    """

    failure_threshold: int = 3
    cooldown_s: float = 10.0
    cooldown_factor: float = 2.0
    max_cooldown_s: float = 120.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if not (math.isfinite(self.cooldown_s) and self.cooldown_s > 0):
            raise ConfigurationError("cooldown_s must be finite and > 0")
        if not (math.isfinite(self.cooldown_factor)
                and self.cooldown_factor >= 1.0):
            raise ConfigurationError("cooldown_factor must be >= 1")
        if not (math.isfinite(self.max_cooldown_s)
                and self.max_cooldown_s >= self.cooldown_s):
            raise ConfigurationError("max_cooldown_s must be >= cooldown_s")


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN breaker over structural solve failures."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"
    STATES = (CLOSED, OPEN, HALF_OPEN)

    def __init__(self, config: Optional[BreakerConfig] = None, key: str = ""):
        self.config = config or BreakerConfig()
        self.key = key
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_t: Optional[float] = None
        self._cooldown_s = self.config.cooldown_s

    def allow(self, t: float) -> bool:
        """May a solve attempt run at stream time ``t``?

        While OPEN, returns False (work is shed) until the cooldown
        elapses, at which point the breaker moves to HALF_OPEN and admits
        a single probe attempt; the probe's outcome (via
        :meth:`record_success` / :meth:`record_failure`) decides whether
        the circuit closes or re-opens.
        """
        if self.state == self.OPEN:
            if t - self._opened_t >= self._cooldown_s:
                self.state = self.HALF_OPEN
                perf.count("service.breaker_probes")
                obs.emit("breaker.probe", severity="debug",
                         component="service", key=self.key, t=t)
                return True
            return False
        return True

    def record_success(self, t: float) -> None:
        """A solve succeeded: close the circuit and reset escalation."""
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            perf.count("service.breaker_closes")
            obs.emit("breaker.close", severity="info",
                     component="service", key=self.key, t=t)
        self.state = self.CLOSED
        self._opened_t = None
        self._cooldown_s = self.config.cooldown_s

    def record_failure(self, t: float) -> bool:
        """A structural failure at ``t``; returns True if the circuit opened."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # The probe failed: re-open with an escalated cooldown.
            self._cooldown_s = min(
                self._cooldown_s * self.config.cooldown_factor,
                self.config.max_cooldown_s,
            )
            self._open(t)
            return True
        if (self.state == self.CLOSED
                and self.consecutive_failures >= self.config.failure_threshold):
            self._open(t)
            return True
        return False

    def _open(self, t: float) -> None:
        self.state = self.OPEN
        self._opened_t = t
        self.trips += 1
        perf.count("service.breaker_trips")
        obs.emit(
            "breaker.trip",
            severity="warning",
            component="service",
            key=self.key,
            t=t,
            consecutive_failures=self.consecutive_failures,
            cooldown_s=self._cooldown_s,
        )

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "format": BREAKER_CHECKPOINT_FORMAT,
            "key": self.key,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "opened_t": self._opened_t,
            "cooldown_s": self._cooldown_s,
        }

    @classmethod
    def restore(
        cls, cp: Dict[str, Any], config: Optional[BreakerConfig] = None
    ) -> "CircuitBreaker":
        if not isinstance(cp, dict) or cp.get("format") != BREAKER_CHECKPOINT_FORMAT:
            raise DataQualityError("unsupported breaker checkpoint")
        with restore_guard("breaker"):
            if cp["state"] not in cls.STATES:
                raise DataQualityError(
                    f"unknown breaker state {cp['state']!r}"
                )
            breaker = cls(config, key=str(cp["key"]))
            breaker.state = cp["state"]
            breaker.consecutive_failures = int(cp["consecutive_failures"])
            breaker.trips = int(cp["trips"])
            if breaker.consecutive_failures < 0 or breaker.trips < 0:
                raise DataQualityError(
                    "breaker checkpoint: counters must be >= 0"
                )
            breaker._opened_t = require_finite(
                "breaker", "opened_t", cp["opened_t"], allow_none=True
            )
            cooldown = require_finite("breaker", "cooldown_s", cp["cooldown_s"])
            if cooldown <= 0.0:
                raise DataQualityError(
                    f"breaker checkpoint: cooldown_s must be > 0, "
                    f"got {cooldown!r}"
                )
            breaker._cooldown_s = cooldown
            # Cross-field consistency: an OPEN circuit without its opening
            # time would crash the next allow(t) on `t - None`. Reject the
            # checkpoint as data, not at first use.
            if breaker.state == cls.OPEN and breaker._opened_t is None:
                raise DataQualityError(
                    "breaker checkpoint: state 'open' requires opened_t"
                )
        return breaker
