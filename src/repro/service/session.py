"""One supervised per-beacon tracking session over a live scan stream.

A :class:`TrackingSession` is the temporal half of robustness: where
:meth:`LocBLE.estimate <repro.core.pipeline.LocBLE.estimate>` hardens one
*batch* against dirty inputs, the session hardens a *lifetime* of batches
against the stream-level pathologies real deployments exhibit — multi-minute
scan gaps, standstill observers whose geometry cannot solve, solve storms
after bursty loss. It owns:

* a bounded, drop-oldest RSS buffer (:mod:`repro.service.buffers`);
* the solve loop: periodic :class:`~repro.core.pipeline.LocBLE` regressions
  over a sliding window, retried with exponential backoff on transient
  errors and circuit-broken on repeated
  :class:`~repro.errors.DegenerateGeometryError`
  (:mod:`repro.service.breaker`);
* a :class:`~repro.core.tracking.BeaconTracker` Kalman filter fusing
  accepted fixes and coasting through gaps;
* the :class:`~repro.service.health.HealthMachine` summarizing it all.

Everything is checkpointable: :meth:`TrackingSession.checkpoint` emits a
JSON-safe dict from which :meth:`TrackingSession.restore` resumes
**bit-identically** — the same future ingest/step sequence yields the same
``TrackState`` sequence, verified continuously by :mod:`repro.sim.soak`.

Frame caveat: each solve's measurement frame is anchored at the start of its
IMU window, so fixes stay mutually consistent only while the window covers
the whole walk (the paper's measurement-walk use case). Once stream time
exceeds ``window_s`` the anchor slides; the supervision machinery is
unaffected, but absolute track coordinates are then only window-relative.
"""

from __future__ import annotations

import dataclasses
import math
from bisect import bisect_left
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional

from repro import obs, perf
from repro.core.estimator import FitRequest, FitResult, WarmStartState
from repro.core.pipeline import LocBLE, PreparedEstimate
from repro.core.tracking import BeaconTracker, TrackState
from repro.errors import (
    ConfigurationError,
    DataQualityError,
    DegenerateGeometryError,
    EstimationError,
    InsufficientDataError,
)
from repro.service.breaker import (
    BackoffConfig,
    BreakerConfig,
    CircuitBreaker,
    ExponentialBackoff,
)
from repro.service.buffers import BoundedBuffer
from repro.service.checkpoint import restore_guard
from repro.obs.provenance import FixProvenance
from repro.service.health import HealthConfig, HealthMachine, SessionState
from repro.types import ImuTrace, LocationEstimate, RssiSample, RssiTrace

__all__ = ["SessionConfig", "SessionSnapshot", "TrackingSession",
           "PendingSolve"]

#: Checkpoint schema version written by :meth:`TrackingSession.checkpoint`.
SESSION_CHECKPOINT_FORMAT = 1

#: A pipeline factory builds the (stateless-per-solve) estimation pipeline a
#: restored session runs on; it must be deterministic for bit-identical
#: resume. The default is repair-mode LocBLE — streams are dirty by nature.
PipelineFactory = Callable[[], LocBLE]


def default_pipeline_factory() -> LocBLE:
    return LocBLE(sanitize="repair")


@dataclass(frozen=True)
class SessionConfig:
    """Supervision policy for one tracking session.

    ``window_s`` bounds the sliding RSS/IMU solve window; ``solve_period_s``
    the cadence of regression attempts; ``min_confidence`` the residual-test
    confidence below which an accepted fix still counts as *degraded*.
    ``rss_buffer`` caps buffered scans (drop-oldest beyond it).
    ``process_accel_std`` / ``default_fix_std`` parameterize the Kalman
    tracker; nested configs drive the health machine, circuit breaker and
    retry backoff.

    ``warm_start`` carries each accepted fix's solver state into the next
    solve so consecutive overlapping windows skip the cold exponent-grid
    search; states older than ``warm_max_age_s`` are dropped. Once the
    measurement frame's anchor starts sliding (stream time beyond
    ``window_s``) the warm position seed is offset by the inter-tick walk;
    the solver's acceptance guard rejects any warm fit whose residuals blow
    up and re-runs cold, so warm-starting is latency-only, never accuracy.
    """

    window_s: float = 60.0
    solve_period_s: float = 2.0
    min_confidence: float = 0.1
    rss_buffer: int = 1024
    min_imu_samples: int = 16
    process_accel_std: float = 0.5
    default_fix_std: float = 2.0
    warm_start: bool = True
    warm_max_age_s: float = 30.0
    #: Which solver backend the session's pipeline solves with (a name
    #: from :func:`repro.core.solvers.available_backends`). Checkpoints
    #: written before this field existed restore as ``"elliptical"`` —
    #: the only behaviour that existed then.
    solver: str = "elliptical"
    health: HealthConfig = field(default_factory=HealthConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    backoff: BackoffConfig = field(default_factory=BackoffConfig)

    def __post_init__(self) -> None:
        from repro.core.solvers import available_backends

        if self.solver not in available_backends():
            raise ConfigurationError(
                f"unknown solver {self.solver!r}; "
                f"available: {', '.join(available_backends())}"
            )
        if not (math.isfinite(self.window_s) and self.window_s > 0):
            raise ConfigurationError("window_s must be finite and > 0")
        if not (math.isfinite(self.solve_period_s) and self.solve_period_s > 0):
            raise ConfigurationError("solve_period_s must be finite and > 0")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigurationError("min_confidence must be in [0, 1]")
        if self.rss_buffer < 8:
            raise ConfigurationError("rss_buffer must be >= 8")
        if self.min_imu_samples < 2:
            raise ConfigurationError("min_imu_samples must be >= 2")
        if not (math.isfinite(self.warm_max_age_s) and self.warm_max_age_s > 0):
            raise ConfigurationError("warm_max_age_s must be finite and > 0")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SessionConfig":
        d = dict(d)
        return cls(
            health=HealthConfig(**d.pop("health")),
            breaker=BreakerConfig(**d.pop("breaker")),
            backoff=BackoffConfig(**d.pop("backoff")),
            **d,
        )


@dataclass
class PendingSolve:
    """A solve this session has prepared and gated, awaiting its batched fit.

    Produced by :meth:`TrackingSession.begin_step`; the service stacks the
    ``request`` of every due session into one
    :func:`repro.core.estimator.fit_batch` call and hands each result back
    through :meth:`TrackingSession.resolve_solve`.
    """

    t: float
    prepared: PreparedEstimate
    request: FitRequest


@dataclass(frozen=True)
class SessionSnapshot:
    """What one session looks like after a :meth:`TrackingSession.step`."""

    beacon_id: str
    t: float
    state: str
    breaker_state: str
    fix_age_s: float
    track: Optional[TrackState]
    estimate: Optional[LocationEstimate]
    buffered: int
    shed: int


class TrackingSession:
    """Supervised tracking of one beacon over incrementally arriving scans."""

    def __init__(
        self,
        beacon_id: str,
        config: Optional[SessionConfig] = None,
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ):
        self.beacon_id = beacon_id
        self.config = config or SessionConfig()
        self._pipeline_factory = pipeline_factory
        self.pipeline = pipeline_factory()
        # A non-default config.solver is authoritative over the factory's
        # pipeline (the factory predates solver selection); a custom
        # factory that sets its own solver keeps it when the config stays
        # at the default.
        if (self.config.solver != "elliptical"
                and isinstance(self.pipeline, LocBLE)
                and self.pipeline.solver != self.config.solver):
            self.pipeline = dataclasses.replace(
                self.pipeline, solver=self.config.solver
            )
        self.tracker = self._new_tracker()
        self.health = HealthMachine(self.config.health)
        self.breaker = CircuitBreaker(self.config.breaker, key=beacon_id)
        self.backoff = ExponentialBackoff(self.config.backoff, key=beacon_id)
        self.rss = BoundedBuffer[RssiSample](
            self.config.rss_buffer, name=f"rss.{beacon_id}"
        )
        self.last_solve_t: Optional[float] = None
        self.last_estimate: Optional[LocationEstimate] = None
        self._last_env_change_t: Optional[float] = None
        self._warm: Optional[WarmStartState] = None
        self.counters: Dict[str, int] = {
            "solves_attempted": 0,
            "solves_shed": 0,
            "solves_skipped_nodata": 0,
            "solves_degenerate": 0,
            "solves_transient_failures": 0,
            "fixes_accepted": 0,
            "fixes_degraded": 0,
            "tracks_dropped": 0,
        }

    def _new_tracker(self) -> BeaconTracker:
        return BeaconTracker(
            process_accel_std=self.config.process_accel_std,
            default_fix_std=self.config.default_fix_std,
        )

    # -- ingestion -----------------------------------------------------------

    def ingest(self, samples: Iterable[RssiSample]) -> int:
        """Buffer scan samples for this beacon; returns how many were taken.

        Non-finite timestamps are refused at the door (counted, not raised):
        a poisoned timestamp would corrupt the time-windowing that every
        later decision depends on. RSSI values are *not* screened here — the
        repair-mode pipeline sanitizes them per solve, and dropping them
        early would hide the degradation from the sanitization report.

        Stream order is a *sort-or-refuse* policy: a sample older than the
        buffer head (the reordered-scan-callback pathology
        :func:`repro.sim.faults.inject_clock_faults` deliberately emits) is
        **repaired** by sorted insertion so the buffer — and therefore every
        solve window sliced from it — stays time-ordered; an exact duplicate
        of a buffered sample (same timestamp, RSSI and channel — the
        signature of a retried delivery) is **refused**. Both paths are
        counted (``ingest_reordered`` / ``ingest_duplicate``) and evented,
        never silent.
        """
        taken = 0
        for s in samples:
            if not math.isfinite(s.timestamp):
                self._count("ingest_rejected_nonfinite_t")
                perf.count("service.ingest_rejected")
                obs.emit(
                    "session.ingest_rejected",
                    severity="warning",
                    component="service",
                    beacon=self.beacon_id,
                    reason="nonfinite-timestamp",
                )
                continue
            last = self.rss.last()
            if last is None or s.timestamp >= last.timestamp:
                # In-order fast path. A tie with the buffer head is only a
                # duplicate when the payload matches too; otherwise it is a
                # distinct same-instant reading and appends in arrival
                # order.
                if (last is not None and s.timestamp == last.timestamp
                        and self._is_duplicate(s)):
                    self._count("ingest_duplicate")
                    perf.count("service.ingest_duplicate")
                    obs.emit(
                        "ingest.duplicate",
                        severity="debug",
                        component="service",
                        beacon=self.beacon_id,
                        t=s.timestamp,
                    )
                    continue
                self.rss.append(s)
                taken += 1
                continue
            if self._is_duplicate(s):
                self._count("ingest_duplicate")
                perf.count("service.ingest_duplicate")
                obs.emit(
                    "ingest.duplicate",
                    severity="debug",
                    component="service",
                    beacon=self.beacon_id,
                    t=s.timestamp,
                )
                continue
            self.rss.insert_by(s, key=lambda x: x.timestamp)
            taken += 1
            self._count("ingest_reordered")
            perf.count("service.ingest_reordered")
            obs.emit(
                "ingest.reordered",
                severity="debug",
                component="service",
                beacon=self.beacon_id,
                t=s.timestamp,
                behind_s=last.timestamp - s.timestamp,
            )
        return taken

    def _is_duplicate(self, s: RssiSample) -> bool:
        """Is an identical sample (t, rssi, channel) already buffered?

        Only called off the fast path (``s.timestamp <=`` buffer head), so
        the scan it does is proportional to how disordered the stream
        actually is, not to its rate.
        """
        return any(
            b.timestamp == s.timestamp
            and b.rssi == s.rssi
            and b.channel == s.channel
            for b in self.rss
            if b.timestamp == s.timestamp
        )

    # -- the supervised solve loop ------------------------------------------

    def step(self, t: float, imu: ImuTrace) -> SessionSnapshot:
        """Advance the session to stream time ``t``.

        Runs at most one solve attempt (respecting the solve period, the
        circuit breaker and the retry backoff), updates the health machine,
        and returns a snapshot whose ``track`` is the Kalman belief at ``t``
        — coasted via ``predict`` when no fresh fix was accepted. Never
        raises on data: every failure mode is a typed, counted, supervised
        event. Caller bugs (non-finite ``t``) still raise.
        """
        if not math.isfinite(t):
            raise ConfigurationError("step time must be finite")

        self._age_out(t)
        due = (
            self.last_solve_t is None
            or t - self.last_solve_t >= self.config.solve_period_s
        )
        if due:
            window = self._window(t)
            imu_window = self._imu_window(imu, t)
            if (len(window) < self.pipeline.estimator.min_samples
                    or len(imu_window) < self.config.min_imu_samples):
                self._count("solves_skipped_nodata")
                perf.count("service.solves_skipped_nodata")
                obs.emit(
                    "session.solve_skipped",
                    severity="debug",
                    component="service",
                    beacon=self.beacon_id,
                    t=t,
                    rss_window=len(window),
                    imu_window=len(imu_window),
                )
            elif not (self.breaker.allow(t) and self.backoff.ready(t)):
                self._count("solves_shed")
                perf.count("service.solves_shed")
                obs.emit(
                    "session.solve_shed",
                    severity="info",
                    component="service",
                    beacon=self.beacon_id,
                    t=t,
                    breaker_state=self.breaker.state,
                    backoff_attempt=self.backoff.attempt,
                )
            else:
                self._attempt_solve(t, window, imu_window)

        return self.finish_step(t)

    def begin_step(self, t: float, imu: ImuTrace) -> Optional[PendingSolve]:
        """First half of a batched step: gating plus solve preparation.

        Runs everything :meth:`step` would up to the solve itself — buffer
        aging, the solve-period/breaker/backoff gates, window assembly, and
        the pipeline's pre-solve stages. Returns ``None`` when no solve is
        due this tick (or preparation failed, recorded exactly as a
        sequential solve failure would be); otherwise a
        :class:`PendingSolve` whose request joins the service-wide
        :func:`~repro.core.estimator.fit_batch`. The caller must finish the
        tick with :meth:`resolve_solve` (when pending) and
        :meth:`finish_step`.
        """
        if not math.isfinite(t):
            raise ConfigurationError("step time must be finite")

        self._age_out(t)
        due = (
            self.last_solve_t is None
            or t - self.last_solve_t >= self.config.solve_period_s
        )
        if not due:
            return None
        window = self._window(t)
        imu_window = self._imu_window(imu, t)
        if (len(window) < self.pipeline.estimator.min_samples
                or len(imu_window) < self.config.min_imu_samples):
            self._count("solves_skipped_nodata")
            perf.count("service.solves_skipped_nodata")
            obs.emit(
                "session.solve_skipped",
                severity="debug",
                component="service",
                beacon=self.beacon_id,
                t=t,
                rss_window=len(window),
                imu_window=len(imu_window),
            )
            return None
        if not (self.breaker.allow(t) and self.backoff.ready(t)):
            self._count("solves_shed")
            perf.count("service.solves_shed")
            obs.emit(
                "session.solve_shed",
                severity="info",
                component="service",
                beacon=self.beacon_id,
                t=t,
                breaker_state=self.breaker.state,
                backoff_attempt=self.backoff.attempt,
            )
            return None

        if not getattr(self.pipeline, "uses_batched_solver", True):
            # Sequential-only backend (particle, EKF): there is no
            # cross-session batched solve to join, so run the full solve
            # inline — outcome accounting is identical to :meth:`step`.
            self._attempt_solve(t, window, imu_window)
            return None

        self._count("solves_attempted")
        perf.count("service.solves_attempted")
        try:
            prepared = self.pipeline.prepare_estimate(window, imu_window)
        except DegenerateGeometryError as exc:
            self._solve_degenerate(t, exc)
            self.last_solve_t = t
            return None
        except (DataQualityError, InsufficientDataError, EstimationError) as exc:
            self._solve_transient(t, exc)
            self.last_solve_t = t
            return None
        except BaseException:
            self.last_solve_t = t
            raise
        return PendingSolve(
            t=t,
            prepared=prepared,
            request=prepared.request(warm=self._usable_warm(t)),
        )

    def resolve_solve(
        self, pending: PendingSolve, fit: "FitResult | BaseException"
    ) -> None:
        """Second half of a batched step: consume the batched fit result.

        ``fit`` is this session's slot from ``fit_batch(...,
        return_exceptions=True)`` — either a
        :class:`~repro.core.estimator.FitResult` or the exception its solve
        raised. Failure classification, breaker/backoff bookkeeping, fix
        acceptance and provenance emission match :meth:`step`'s sequential
        path exactly.
        """
        t = pending.t
        try:
            with obs.span(
                "session.solve", component="service", beacon=self.beacon_id
            ):
                if isinstance(fit, BaseException):
                    raise fit
                est = self.pipeline.complete_estimate(pending.prepared, fit)
                self.tracker.update(t, est)
        except DegenerateGeometryError as exc:
            self._solve_degenerate(t, exc)
        except (DataQualityError, InsufficientDataError, EstimationError) as exc:
            self._solve_transient(t, exc)
        else:
            self._solve_succeeded(t, est)
        finally:
            self.last_solve_t = t

    def finish_step(self, t: float) -> SessionSnapshot:
        """Tail of a step: health tick, LOST handling, and the snapshot."""
        prev_state = self.health.state
        self.health.on_tick(t)
        if (self.health.state == SessionState.LOST
                and prev_state != SessionState.LOST):
            # The coasted belief stopped meaning anything; drop the track
            # so a later re-acquisition starts from the fresh fix.
            self.tracker = self._new_tracker()
            self.last_estimate = None
            self._count("tracks_dropped")
            perf.count("service.tracks_dropped")
            obs.emit(
                "session.track_dropped",
                severity="warning",
                component="service",
                beacon=self.beacon_id,
                t=t,
                fix_age_s=self.health.fix_age(t),
            )

        return self._snapshot(t)

    def _attempt_solve(
        self, t: float, window: RssiTrace, imu_window: ImuTrace
    ) -> None:
        self._count("solves_attempted")
        perf.count("service.solves_attempted")
        try:
            with obs.span(
                "session.solve", component="service", beacon=self.beacon_id
            ):
                est = self.pipeline.estimate(
                    window, imu_window, warm=self._usable_warm(t))
                self.tracker.update(t, est)
        except DegenerateGeometryError as exc:
            self._solve_degenerate(t, exc)
        except (DataQualityError, InsufficientDataError, EstimationError) as exc:
            self._solve_transient(t, exc)
        else:
            self._solve_succeeded(t, est)
        finally:
            self.last_solve_t = t

    # -- solve outcome handlers (shared by step and the batched path) ---------

    def _solve_degenerate(self, t: float, exc: Exception) -> None:
        self._count("solves_degenerate")
        perf.count("service.solves_degenerate")
        obs.emit(
            "session.solve_degenerate",
            severity="warning",
            component="service",
            beacon=self.beacon_id,
            t=t,
            error=str(exc),
        )
        self.breaker.record_failure(t)

    def _solve_transient(self, t: float, exc: Exception) -> None:
        self._count("solves_transient_failures")
        perf.count("service.solves_transient_failures")
        obs.emit(
            "session.solve_transient",
            severity="warning",
            component="service",
            beacon=self.beacon_id,
            t=t,
            error=type(exc).__name__,
        )
        self.backoff.on_failure(t)

    def _solve_succeeded(self, t: float, est: LocationEstimate) -> None:
        self.breaker.record_success(t)
        self.backoff.reset()
        self.last_estimate = est
        self._store_warm(t, est)
        good = self._fix_quality(est)
        self.health.on_fix(t, good)
        self._count("fixes_accepted")
        perf.count("service.fixes_accepted")
        self._emit_provenance(t, est, good)
        if not good:
            self._count("fixes_degraded")
            perf.count("service.fixes_degraded")

    # -- warm-start state -----------------------------------------------------

    def _usable_warm(self, t: float) -> Optional[WarmStartState]:
        """The carried warm state, unless disabled or aged out."""
        if not self.config.warm_start or self._warm is None:
            return None
        born = self._warm.stream_t
        if born is not None and t - born > self.config.warm_max_age_s:
            return None
        return self._warm

    def _store_warm(self, t: float, est: LocationEstimate) -> None:
        warm = getattr(est.diagnostics, "warm", None)
        if warm is None:
            self._warm = None
        else:
            self._warm = dataclasses.replace(warm, stream_t=t)

    def _emit_provenance(
        self, t: float, est: LocationEstimate, good: bool
    ) -> None:
        """Complete and emit the fix's provenance record (stream layer).

        Emitted at the same site as the ``service.fixes_accepted`` perf
        counter, so event volume and counter stay exactly in step — the
        soak harness asserts on that equality.
        """
        prov = getattr(est.diagnostics, "provenance", None)
        if prov is None:
            prov = FixProvenance()  # pipeline predates provenance: still loud
        prov = prov.with_stream(
            beacon_id=self.beacon_id,
            stream_t=t,
            buffered=len(self.rss),
            shed=self.rss.shed,
            degraded=not good,
        )
        obs.emit(
            "fix.provenance",
            severity="info",
            component="service",
            **prov.to_fields(),
        )

    def _fix_quality(self, est: LocationEstimate) -> bool:
        """Is this accepted fix *good* (vs merely usable)?

        Driven by the estimate's confidence and its
        :class:`~repro.robustness.EstimateDiagnostics`: a fallback result or
        a fresh EnvAware regression restart marks the fix degraded — the
        regression is warming up again and its output is not yet trusted.
        """
        diag = est.diagnostics
        if diag is not None and getattr(diag, "fallback", None) is not None:
            return False
        env_restart = False
        changes = tuple(getattr(diag, "env_changes", ()) or ()) if diag else ()
        if changes:
            newest = max(changes)
            if (self._last_env_change_t is None
                    or newest > self._last_env_change_t):
                env_restart = True
                self._last_env_change_t = newest
        if env_restart:
            return False
        return est.confidence >= self.config.min_confidence

    # -- windows -------------------------------------------------------------

    def _age_out(self, t: float) -> None:
        horizon = t - self.config.window_s
        self.rss.drop_while(lambda s: s.timestamp < horizon)

    def _window(self, t: float) -> RssiTrace:
        return RssiTrace([s for s in self.rss if s.timestamp <= t])

    def _imu_window(self, imu: ImuTrace, t: float) -> ImuTrace:
        ts = [s.timestamp for s in imu.samples]
        lo = bisect_left(ts, t - self.config.window_s)
        hi = bisect_left(ts, t)
        return ImuTrace(imu.samples[lo:hi])

    # -- reporting -----------------------------------------------------------

    def _snapshot(self, t: float) -> SessionSnapshot:
        track: Optional[TrackState] = None
        if (self.tracker.initialized
                and self.health.state != SessionState.LOST):
            track = self.tracker.predict(t)
        return SessionSnapshot(
            beacon_id=self.beacon_id,
            t=t,
            state=self.health.state,
            breaker_state=self.breaker.state,
            fix_age_s=self.health.fix_age(t),
            track=track,
            estimate=self.last_estimate,
            buffered=len(self.rss),
            shed=self.rss.shed,
        )

    def _count(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """The complete session state as a JSON-safe dict.

        Covers the Kalman state/covariance, the RSS ring buffer, breaker and
        backoff state, the health machine, counters, and the solve schedule
        — everything needed for :meth:`restore` to continue bit-identically.
        """
        return {
            "format": SESSION_CHECKPOINT_FORMAT,
            "beacon_id": self.beacon_id,
            "config": self.config.to_dict(),
            "tracker": self.tracker.checkpoint(),
            "health": self.health.checkpoint(),
            "breaker": self.breaker.checkpoint(),
            "backoff": self.backoff.checkpoint(),
            "rss": [[s.timestamp, s.rssi, s.channel] for s in self.rss],
            "rss_shed": self.rss.shed,
            "last_solve_t": self.last_solve_t,
            "last_env_change_t": self._last_env_change_t,
            "counters": dict(self.counters),
            # Warm-start state: floats round-trip bit-exactly through JSON
            # (repr-based), so a restored session's next warm solve is
            # bit-identical to the uninterrupted one.
            "warm": None if self._warm is None else self._warm.to_dict(),
        }

    @classmethod
    def restore(
        cls,
        cp: Dict[str, Any],
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ) -> "TrackingSession":
        """Rebuild a session from a :meth:`checkpoint` dict.

        ``pipeline_factory`` must rebuild the same estimation pipeline the
        checkpointed session ran (pipelines hold trained models and are not
        serialized); the default repair-mode factory matches the default
        construction path.
        """
        if not isinstance(cp, dict) or cp.get("format") != SESSION_CHECKPOINT_FORMAT:
            raise DataQualityError("unsupported session checkpoint")
        with restore_guard("session"):
            session = cls(
                str(cp["beacon_id"]),
                config=SessionConfig.from_dict(cp["config"]),
                pipeline_factory=pipeline_factory,
            )
            session.tracker = BeaconTracker.restore(cp["tracker"])
            session.health = HealthMachine.restore(
                cp["health"], session.config.health
            )
            session.breaker = CircuitBreaker.restore(
                cp["breaker"], session.config.breaker
            )
            session.backoff = ExponentialBackoff.restore(
                cp["backoff"], session.config.backoff
            )
            for row in cp["rss"]:
                t, rssi, channel = row
                session.rss.append(
                    RssiSample(float(t), float(rssi), session.beacon_id,
                               int(channel))
                )
            session.rss.shed = int(cp["rss_shed"])
            last = cp["last_solve_t"]
            session.last_solve_t = None if last is None else float(last)
            env_t = cp["last_env_change_t"]
            session._last_env_change_t = (
                None if env_t is None else float(env_t)
            )
            session.counters.update(
                {str(k): int(v) for k, v in cp["counters"].items()}
            )
            warm = cp.get("warm")  # absent in pre-warm-start checkpoints
            session._warm = (
                None if warm is None else WarmStartState.from_dict(warm)
            )
        perf.count("service.restores")
        obs.emit(
            "session.restored",
            severity="info",
            component="service",
            beacon=session.beacon_id,
            buffered=len(session.rss),
            last_solve_t=session.last_solve_t,
        )
        return session
