"""The multi-beacon supervised streaming tracking service.

:class:`TrackingService` is the process-level entry point the ROADMAP's
production system needs: many concurrent per-beacon
:class:`~repro.service.session.TrackingSession`\\ s fed from one scan/IMU
ingest path, stepped on a shared stream clock, checkpointed and restored as
a unit. Design rules:

* **Bounded everything.** The shared IMU buffer and every per-beacon RSS
  buffer are fixed-capacity drop-oldest rings; the session table itself is
  capped (``max_sessions``) with counted shedding of surplus beacons, so a
  beacon-spam storm degrades predictably instead of exhausting memory.
* **Deterministic supervision.** Sessions are stepped in sorted beacon-id
  order, retry jitter is hash-derived, and all clocks are stream time —
  a checkpoint/restore cycle replays bit-identically.
* **Typed failure only.** ``ingest_*``/``step`` never raise on data; every
  failure mode is a counted, supervised event reported through
  :mod:`repro.perf` and :meth:`stats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from repro import obs, perf
from repro.core.estimator import fit_batch
from repro.errors import ConfigurationError, DataQualityError
from repro.service.buffers import BoundedBuffer
from repro.service.checkpoint import restore_guard
from repro.service.session import (
    PipelineFactory,
    SessionConfig,
    SessionSnapshot,
    TrackingSession,
    default_pipeline_factory,
)
from repro.types import ImuSample, ImuTrace, RssiSample

__all__ = ["ServiceConfig", "TrackingService"]

#: Checkpoint schema version written by :meth:`TrackingService.checkpoint`.
SERVICE_CHECKPOINT_FORMAT = 1

#: How many distinct refused beacon ids the service remembers for the
#: ``sessions_shed`` dedup. Beyond this (a beacon-id spam storm well past
#: the session cap) a repeat offender may be double counted rather than the
#: set growing without bound — "bounded everything" wins over exactness.
SHED_ID_MEMORY = 4096


@dataclass(frozen=True)
class ServiceConfig:
    """Capacity and supervision policy for the whole service.

    ``imu_buffer`` caps the shared observer-IMU ring (at 50 Hz the default
    holds ~5.5 minutes); ``imu_window_s`` ages IMU samples out once no
    session's solve window can reach them. ``max_sessions`` bounds the
    session table — scans for further beacons are shed (counted) rather
    than growing without limit.
    """

    session: SessionConfig = field(default_factory=SessionConfig)
    imu_buffer: int = 16384
    imu_window_s: float = 75.0
    max_sessions: int = 256

    def __post_init__(self) -> None:
        if self.imu_buffer < 2:
            raise ConfigurationError("imu_buffer must be >= 2")
        if not (math.isfinite(self.imu_window_s)
                and self.imu_window_s >= self.session.window_s):
            raise ConfigurationError(
                "imu_window_s must be finite and >= the session window"
            )
        if self.max_sessions < 1:
            raise ConfigurationError("max_sessions must be >= 1")


class TrackingService:
    """Supervises many concurrent per-beacon tracking sessions."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ):
        self.config = config or ServiceConfig()
        self._pipeline_factory = pipeline_factory
        self.sessions: Dict[str, TrackingSession] = {}
        self.imu = BoundedBuffer[ImuSample](self.config.imu_buffer, name="imu")
        #: Distinct beacons refused at the session cap (not samples — see
        #: :attr:`shed_samples` for the sample count).
        self.sessions_shed = 0
        #: Scan samples dropped because their beacon was refused.
        self.shed_samples = 0
        self._shed_beacons: set = set()
        self.restores = 0

    # -- ingestion -----------------------------------------------------------

    def ingest_scans(self, samples: Iterable[RssiSample]) -> int:
        """Route scan samples to their beacon's session; returns how many
        were buffered.

        Unknown beacons get a fresh session — up to ``max_sessions``, beyond
        which their traffic is shed with a counted
        ``service.session_shed`` event. ``sessions_shed`` counts *distinct*
        refused beacons; ``shed_samples`` the samples dropped with them.
        """
        taken = 0
        by_beacon: Dict[str, list] = {}
        for s in samples:
            by_beacon.setdefault(s.beacon_id, []).append(s)
        for beacon_id in sorted(by_beacon):
            session = self.sessions.get(beacon_id)
            if session is None:
                if len(self.sessions) >= self.config.max_sessions:
                    n = len(by_beacon[beacon_id])
                    self.shed_samples += n
                    perf.count("service.shed_samples", n)
                    if beacon_id not in self._shed_beacons:
                        if len(self._shed_beacons) < SHED_ID_MEMORY:
                            self._shed_beacons.add(beacon_id)
                        self.sessions_shed += 1
                        perf.count("service.sessions_shed")
                    obs.emit(
                        "service.session_shed",
                        severity="warning",
                        component="service",
                        beacon=str(beacon_id),
                        samples=n,
                        max_sessions=self.config.max_sessions,
                    )
                    continue
                session = TrackingSession(
                    beacon_id,
                    config=self.config.session,
                    pipeline_factory=self._pipeline_factory,
                )
                self.sessions[beacon_id] = session
                perf.count("service.sessions_created")
            taken += session.ingest(by_beacon[beacon_id])
        return taken

    def ingest_imu(self, samples: Iterable[ImuSample]) -> int:
        """Buffer observer IMU samples shared by every session."""
        taken = 0
        for s in samples:
            if not math.isfinite(s.timestamp):
                perf.count("service.ingest_rejected")
                obs.emit(
                    "service.imu_rejected",
                    severity="warning",
                    component="service",
                    reason="nonfinite-timestamp",
                )
                continue
            self.imu.append(s)
            taken += 1
        return taken

    # -- stepping ------------------------------------------------------------

    def step(self, t: float) -> Dict[str, SessionSnapshot]:
        """Advance every session to stream time ``t``.

        Sessions are stepped in sorted beacon-id order (determinism), each
        against the shared IMU window. Returns per-beacon snapshots.
        """
        if not math.isfinite(t):
            raise ConfigurationError("step time must be finite")
        horizon = t - self.config.imu_window_s
        self.imu.drop_while(lambda s: s.timestamp < horizon)
        imu_trace = ImuTrace(self.imu.items())
        out: Dict[str, SessionSnapshot] = {}
        for beacon_id in sorted(self.sessions):
            out[beacon_id] = self.sessions[beacon_id].step(t, imu_trace)
        return out

    @perf.profiled("service.TrackingService.tick_batch")
    def tick_batch(self, t: float) -> Dict[str, SessionSnapshot]:
        """Advance every session to ``t`` with ONE batched solve dispatch.

        The cross-session batching path: each due session prepares its
        solve (:meth:`TrackingSession.begin_step`), all prepared requests
        go through a single :func:`repro.core.estimator.fit_batch` call —
        one NumPy program for the whole shard tick instead of N Python
        solver loops — and the results are resolved back per session.
        Produces bit-identical snapshots to :meth:`step` (the sequential
        warm solve is itself a batch of one through the same kernel), so
        the two paths are interchangeable tick by tick.
        """
        if not math.isfinite(t):
            raise ConfigurationError("step time must be finite")
        horizon = t - self.config.imu_window_s
        self.imu.drop_while(lambda s: s.timestamp < horizon)
        imu_trace = ImuTrace(self.imu.items())

        pending = []
        for beacon_id in sorted(self.sessions):
            p = self.sessions[beacon_id].begin_step(t, imu_trace)
            if p is not None:
                pending.append((self.sessions[beacon_id], p))

        if pending:
            fits = fit_batch([p.request for _, p in pending],
                             return_exceptions=True)
            perf.count("service.batch_solves", len(pending))
            for (session, p), fit in zip(pending, fits):
                session.resolve_solve(p, fit)

        out: Dict[str, SessionSnapshot] = {}
        for beacon_id in sorted(self.sessions):
            out[beacon_id] = self.sessions[beacon_id].finish_step(t)
        return out

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Aggregated service health for dashboards and the soak harness."""
        counters: Dict[str, int] = {}
        for session in self.sessions.values():
            for name, value in session.counters.items():
                counters[name] = counters.get(name, 0) + value
        return {
            "sessions": len(self.sessions),
            "sessions_shed": self.sessions_shed,
            "shed_samples": self.shed_samples,
            "restores": self.restores,
            "imu": self.imu.stats(),
            "rss_shed": sum(s.rss.shed for s in self.sessions.values()),
            "states": {
                beacon_id: s.health.state
                for beacon_id, s in sorted(self.sessions.items())
            },
            "breakers": {
                beacon_id: s.breaker.state
                for beacon_id, s in sorted(self.sessions.items())
            },
            "counters": counters,
        }

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Serialize the whole service — sessions, buffers, shed counts —
        as one JSON-safe dict (see ``docs/streaming.md`` for the format and
        compatibility policy)."""
        return {
            "format": SERVICE_CHECKPOINT_FORMAT,
            "config": {
                "imu_buffer": self.config.imu_buffer,
                "imu_window_s": self.config.imu_window_s,
                "max_sessions": self.config.max_sessions,
                "session": self.config.session.to_dict(),
            },
            "imu": [
                [s.timestamp, s.accel, s.gyro_z, s.mag_heading]
                for s in self.imu
            ],
            "imu_shed": self.imu.shed,
            "sessions_shed": self.sessions_shed,
            "shed_samples": self.shed_samples,
            "shed_beacon_ids": sorted(self._shed_beacons),
            "restores": self.restores,
            "sessions": {
                beacon_id: session.checkpoint()
                for beacon_id, session in sorted(self.sessions.items())
            },
        }

    @classmethod
    def restore(
        cls,
        cp: Dict[str, Any],
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ) -> "TrackingService":
        """Rebuild a service from a :meth:`checkpoint` dict.

        A restored service continues bit-identically: feeding it the same
        future ingest/step sequence yields the same snapshots an
        uninterrupted service would have produced.
        """
        if not isinstance(cp, dict) or cp.get("format") != SERVICE_CHECKPOINT_FORMAT:
            raise DataQualityError("unsupported service checkpoint")
        with restore_guard("service"):
            cfg = cp["config"]
            service = cls(
                ServiceConfig(
                    session=SessionConfig.from_dict(cfg["session"]),
                    imu_buffer=int(cfg["imu_buffer"]),
                    imu_window_s=float(cfg["imu_window_s"]),
                    max_sessions=int(cfg["max_sessions"]),
                ),
                pipeline_factory=pipeline_factory,
            )
            for row in cp["imu"]:
                t, accel, gyro_z, mag_heading = row
                service.imu.append(
                    ImuSample(float(t), float(accel), float(gyro_z),
                              float(mag_heading))
                )
            service.imu.shed = int(cp["imu_shed"])
            if "shed_samples" in cp:
                service.sessions_shed = int(cp["sessions_shed"])
                service.shed_samples = int(cp["shed_samples"])
                service._shed_beacons = {
                    str(b) for b in cp.get("shed_beacon_ids", ())
                }
            else:
                # Pre-split checkpoint: the old `sessions_shed` counted
                # samples, and the distinct-beacon count was never recorded.
                service.shed_samples = int(cp["sessions_shed"])
                service.sessions_shed = 0
            service.restores = int(cp["restores"]) + 1
            for beacon_id, session_cp in cp["sessions"].items():
                service.sessions[str(beacon_id)] = TrackingSession.restore(
                    session_cp, pipeline_factory=pipeline_factory
                )
        perf.count("service.service_restores")
        obs.emit(
            "service.restored",
            severity="info",
            component="service",
            sessions=len(service.sessions),
            restores=service.restores,
        )
        return service
