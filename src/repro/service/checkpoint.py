"""Checkpoint restore hardening shared by every supervised layer.

The restore contract (see ``docs/streaming.md``) is that a malformed,
truncated or cross-field-inconsistent checkpoint is *data*, not a caller
bug: ``restore`` must diagnose it with a typed
:class:`~repro.errors.DataQualityError` (or
:class:`~repro.errors.ConfigurationError` when the embedded config is
invalid), never leak a ``KeyError``/``TypeError``/``ValueError`` from the
parsing internals. :func:`restore_guard` enforces that contract in one
place so each layer's ``restore`` can be written against the happy path;
:func:`require_finite` covers the recurring cross-field case of a numeric
field that must be a finite float (or, optionally, absent).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigurationError, DataQualityError

__all__ = ["restore_guard", "require_finite"]


@contextmanager
def restore_guard(what: str) -> Iterator[None]:
    """Convert parsing accidents inside a ``restore`` into typed errors.

    Typed diagnoses (:class:`DataQualityError`, :class:`ConfigurationError`)
    pass through untouched; the untyped exceptions a corrupted dict provokes
    (missing keys, ``float(None)``, wrong shapes, arithmetic overflow) are
    re-raised as ``DataQualityError`` naming the layer, with the original
    exception chained for forensics.
    """
    try:
        yield
    except (DataQualityError, ConfigurationError):
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError,
            OverflowError) as exc:
        raise DataQualityError(
            f"malformed {what} checkpoint: {type(exc).__name__}: {exc}"
        ) from exc


def require_finite(
    what: str, field: str, value: object, allow_none: bool = False
) -> Optional[float]:
    """Parse a checkpoint field that must be a finite float.

    With ``allow_none`` a ``None`` passes through (the field is legitimately
    unset, e.g. a breaker that never opened); anything else must convert to
    a finite float or the checkpoint is rejected as inconsistent.
    """
    if value is None:
        if allow_none:
            return None
        raise DataQualityError(f"{what} checkpoint: {field} must not be null")
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise DataQualityError(
            f"{what} checkpoint: {field} is not a number: {value!r}"
        ) from exc
    if not math.isfinite(out):
        raise DataQualityError(
            f"{what} checkpoint: {field} must be finite, got {out!r}"
        )
    return out
