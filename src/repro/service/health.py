"""Per-session health state machine for the streaming tracking service.

A long-lived :class:`~repro.service.session.TrackingSession` is never simply
"working" or "broken" — beacons drop out of range for minutes at a time
(the BLEBeacon dataset's multi-minute scan gaps), regressions restart when
EnvAware detects an environment change, and a burst of degraded solves is
routine. The machine below names those regimes explicitly so supervisors,
dashboards and the soak harness can reason about them:

``ACQUIRING → HEALTHY ⇄ DEGRADED → STALE → LOST``

* ``ACQUIRING`` — no accepted fix yet; the session is warming up.
* ``HEALTHY`` — recent full-pipeline fixes of acceptable confidence.
* ``DEGRADED`` — fixes still arrive but are low-confidence, sanitizer-heavy
  or freshly restarted by EnvAware; the track is usable but suspect.
* ``STALE`` — no accepted fix for ``stale_after_s``; the Kalman tracker
  coasts on :meth:`~repro.core.tracking.BeaconTracker.predict`.
* ``LOST`` — stale for ``lost_after_s``; the coasted state is no longer
  meaningful and the track is dropped until re-acquisition.

A good fix re-acquires from any state (LOST included — the state machine
does not latch); time-based decay only ever moves toward ``LOST``. Dwell
time per state is accumulated both locally (checkpointable, reported by the
soak harness) and into :mod:`repro.perf` timers under
``service.dwell.<STATE>``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import obs, perf
from repro.errors import ConfigurationError, DataQualityError
from repro.service.checkpoint import restore_guard

__all__ = ["SessionState", "HealthConfig", "HealthMachine"]

#: Checkpoint schema version written by :meth:`HealthMachine.checkpoint`.
HEALTH_CHECKPOINT_FORMAT = 1

#: Transitions retained for reporting; older ones age out deterministically.
MAX_TRANSITIONS = 256


class SessionState:
    """Lifecycle states of one tracking session (string constants)."""

    ACQUIRING = "ACQUIRING"
    HEALTHY = "HEALTHY"
    DEGRADED = "DEGRADED"
    STALE = "STALE"
    LOST = "LOST"

    ALL = (ACQUIRING, HEALTHY, DEGRADED, STALE, LOST)


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds driving the session health machine.

    ``stale_after_s`` is the fix age beyond which a session stops being
    trusted (HEALTHY/DEGRADED → STALE); ``lost_after_s`` the age at which
    the coasted track is dropped entirely (STALE → LOST).
    ``recover_after`` consecutive good fixes take DEGRADED back to HEALTHY
    (re-acquisition from STALE/LOST is immediate — one good fix proves the
    beacon is back).
    """

    stale_after_s: float = 8.0
    lost_after_s: float = 90.0
    recover_after: int = 1

    def __post_init__(self) -> None:
        if not (math.isfinite(self.stale_after_s) and self.stale_after_s > 0):
            raise ConfigurationError("stale_after_s must be finite and > 0")
        if not (math.isfinite(self.lost_after_s)
                and self.lost_after_s > self.stale_after_s):
            raise ConfigurationError(
                "lost_after_s must be finite and > stale_after_s"
            )
        if self.recover_after < 1:
            raise ConfigurationError("recover_after must be >= 1")


class HealthMachine:
    """Drives one session's state from fix events and the passage of time.

    Deterministic by construction: transitions depend only on the sequence
    of :meth:`on_fix` / :meth:`on_tick` calls, so a checkpointed machine
    replays bit-identically after :meth:`restore`.
    """

    def __init__(self, config: Optional[HealthConfig] = None, t0: float = 0.0):
        self.config = config or HealthConfig()
        self.state = SessionState.ACQUIRING
        self._entered_t = float(t0)
        self._last_good_t: Optional[float] = None
        self._good_streak = 0
        self._dwell = {s: 0.0 for s in SessionState.ALL}
        self.transitions: List[Tuple[float, str, str]] = []

    # -- events --------------------------------------------------------------

    def on_fix(self, t: float, good: bool) -> None:
        """Record one accepted solve at time ``t``.

        ``good`` means the full pipeline ran at acceptable confidence with
        no fresh EnvAware restart; anything else is a degraded fix.
        """
        if good:
            self._last_good_t = t
            self._good_streak += 1
            if self.state == SessionState.DEGRADED:
                if self._good_streak >= self.config.recover_after:
                    self._transition(t, SessionState.HEALTHY)
            elif self.state != SessionState.HEALTHY:
                self._transition(t, SessionState.HEALTHY)
        else:
            self._good_streak = 0
            if self.state in (SessionState.HEALTHY, SessionState.DEGRADED):
                if self.state == SessionState.HEALTHY:
                    self._transition(t, SessionState.DEGRADED)
            # ACQUIRING / STALE / LOST: a degraded fix neither acquires nor
            # re-acquires — the session keeps waiting for a trustworthy one.

    def on_tick(self, t: float) -> None:
        """Advance time-based decay (call once per service step)."""
        if self._last_good_t is None:
            return  # still acquiring; nothing to go stale from
        age = t - self._last_good_t
        if (self.state in (SessionState.HEALTHY, SessionState.DEGRADED)
                and age > self.config.stale_after_s):
            self._good_streak = 0
            self._transition(t, SessionState.STALE)
        if self.state == SessionState.STALE and age > self.config.lost_after_s:
            self._transition(t, SessionState.LOST)

    def fix_age(self, t: float) -> float:
        """Seconds since the last good fix (inf while acquiring)."""
        if self._last_good_t is None:
            return float("inf")
        return t - self._last_good_t

    def dwell(self, t: Optional[float] = None) -> Dict[str, float]:
        """Accumulated seconds per state; ``t`` adds the open interval."""
        out = dict(self._dwell)
        if t is not None:
            out[self.state] += max(t - self._entered_t, 0.0)
        return out

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "format": HEALTH_CHECKPOINT_FORMAT,
            "state": self.state,
            "entered_t": self._entered_t,
            "last_good_t": self._last_good_t,
            "good_streak": self._good_streak,
            "dwell": dict(self._dwell),
            "transitions": [list(tr) for tr in self.transitions],
        }

    @classmethod
    def restore(
        cls, cp: Dict[str, Any], config: Optional[HealthConfig] = None
    ) -> "HealthMachine":
        if not isinstance(cp, dict) or cp.get("format") != HEALTH_CHECKPOINT_FORMAT:
            raise DataQualityError("unsupported health-machine checkpoint")
        with restore_guard("health-machine"):
            if cp["state"] not in SessionState.ALL:
                raise DataQualityError(
                    f"unknown session state {cp['state']!r}"
                )
            machine = cls(config)
            machine.state = cp["state"]
            machine._entered_t = float(cp["entered_t"])
            last = cp["last_good_t"]
            machine._last_good_t = None if last is None else float(last)
            machine._good_streak = int(cp["good_streak"])
            machine._dwell = {s: float(cp["dwell"].get(s, 0.0))
                              for s in SessionState.ALL}
            machine.transitions = [
                (float(t), str(a), str(b)) for t, a, b in cp["transitions"]
            ]
        return machine

    # -- internals -----------------------------------------------------------

    def _transition(self, t: float, new_state: str) -> None:
        spent = max(t - self._entered_t, 0.0)
        self._dwell[self.state] += spent
        perf.record(f"service.dwell.{self.state}", spent)
        perf.count(f"service.transitions.{self.state}->{new_state}")
        obs.emit(
            "health.transition",
            severity=("warning" if new_state in (SessionState.STALE,
                                                 SessionState.LOST)
                      else "info"),
            component="service",
            t=t,
            previous=self.state,
            new=new_state,
            dwell_s=spent,
        )
        self.transitions.append((t, self.state, new_state))
        if len(self.transitions) > MAX_TRANSITIONS:
            del self.transitions[: len(self.transitions) - MAX_TRANSITIONS]
        self.state = new_state
        self._entered_t = t
