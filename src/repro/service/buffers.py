"""Bounded ingestion buffers with an explicit, observable overflow policy.

A streaming tracker that buffers scans unboundedly dies slowly under burst
traffic; one that drops silently lies about its inputs. These buffers do
neither: capacity is fixed at construction, overflow policy is explicit
(*drop-oldest* — the newest measurement is always the most valuable for a
tracker), and every shed sample is counted locally, counted into
:mod:`repro.perf` (``service.shed.<name>``) and logged (first shed per
buffer at WARNING, the rest at DEBUG so a sustained storm cannot flood the
log).
"""

from __future__ import annotations

import logging
from bisect import bisect_right
from collections import deque
from typing import (
    Any, Callable, Deque, Generic, Iterable, Iterator, List, Optional,
    TypeVar,
)

from repro import obs, perf
from repro.errors import ConfigurationError

__all__ = ["DROP_OLDEST", "BoundedBuffer"]

logger = logging.getLogger("repro.service")

#: The only overflow policy implemented: evict the oldest buffered item.
DROP_OLDEST = "drop-oldest"

T = TypeVar("T")


class BoundedBuffer(Generic[T]):
    """A fixed-capacity FIFO that sheds the oldest item on overflow."""

    def __init__(self, maxlen: int, name: str = "buffer"):
        if maxlen < 1:
            raise ConfigurationError("buffer maxlen must be >= 1")
        self.maxlen = int(maxlen)
        self.name = name
        self.policy = DROP_OLDEST
        self.shed = 0
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.maxlen

    def _shed_oldest(self) -> None:
        """Evict the oldest item with the full count/perf/event/log ritual.

        Every shed path (``append``, ``extend``, ``insert_by``) funnels
        through here, so per-item shed accounting is identical no matter
        how the item arrived — the parity the gateway's queue reuse and
        ``tests/test_service.py`` depend on.
        """
        self._items.popleft()
        self.shed += 1
        perf.count(f"service.shed.{self.name}")
        obs.emit(
            "buffer.shed",
            severity="warning" if self.shed == 1 else "debug",
            component="service",
            buffer=self.name,
            maxlen=self.maxlen,
            shed_total=self.shed,
            policy=self.policy,
        )
        level = logging.WARNING if self.shed == 1 else logging.DEBUG
        logger.log(
            level,
            "buffer %r full (maxlen=%d): shed oldest sample "
            "(%d shed so far, policy=%s)",
            self.name, self.maxlen, self.shed, self.policy,
        )

    def append(self, item: T) -> None:
        """Add one item, shedding the oldest when at capacity."""
        if len(self._items) >= self.maxlen:
            self._shed_oldest()
        self._items.append(item)

    def extend(self, items: Iterable[T]) -> int:
        """Append many items; returns how many were added.

        Exactly equivalent to calling :meth:`append` per item: each
        overflow sheds (and counts, and events) individually, so a batch
        arrival is indistinguishable from the same items arriving one by
        one in every ledger.
        """
        n = 0
        for item in items:
            self.append(item)
            n += 1
        return n

    def last(self) -> Optional[T]:
        """The newest buffered item, or ``None`` when empty."""
        return self._items[-1] if self._items else None

    def insert_by(self, item: T, key: "Callable[[T], Any]") -> None:
        """Insert keeping non-decreasing ``key`` order (late stragglers).

        Equal keys insert *after* existing ones, preserving arrival order
        among ties. Overflow semantics match :meth:`append` exactly: at
        capacity the oldest item is shed first — which may be the inserted
        item itself if it would sort before everything buffered (a
        straggler older than the whole ring is dropped, counted, the same
        way capacity pressure drops it).
        """
        keys = [key(existing) for existing in self._items]
        self._items.insert(bisect_right(keys, key(item)), item)
        if len(self._items) > self.maxlen:
            self._shed_oldest()

    def items(self) -> List[T]:
        """A snapshot list, oldest first."""
        return list(self._items)

    def drop_while(self, pred: "Callable[[T], bool]") -> int:
        """Evict leading items matching ``pred`` (time-based aging, not shed).

        Returns the number evicted. Aged-out items are *expected* attrition
        (they left the estimation window) and are deliberately not counted
        as shed — shed means capacity pressure.
        """
        n = 0
        while self._items and pred(self._items[0]):
            self._items.popleft()
            n += 1
        return n

    def clear(self) -> None:
        self._items.clear()

    def stats(self) -> "dict[str, Any]":
        return {
            "name": self.name,
            "len": len(self._items),
            "maxlen": self.maxlen,
            "shed": self.shed,
            "policy": self.policy,
        }
