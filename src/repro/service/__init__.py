"""Supervised streaming tracking: session lifecycle, breakers, checkpoints.

The temporal half of robustness (see ``docs/streaming.md``): long-lived
per-beacon tracking sessions over incrementally arriving scan/IMU batches,
each with a health state machine (``ACQUIRING → HEALTHY → DEGRADED → STALE
→ LOST``), exponential-backoff retries, a per-beacon circuit breaker, and
bit-identical checkpoint/restore. Drive it through
:class:`~repro.sim.soak` / ``python -m repro soak`` for long-horizon fault
testing.
"""

from repro.service.breaker import (
    BackoffConfig,
    BreakerConfig,
    CircuitBreaker,
    ExponentialBackoff,
)
from repro.service.buffers import DROP_OLDEST, BoundedBuffer
from repro.service.health import HealthConfig, HealthMachine, SessionState
from repro.service.service import ServiceConfig, TrackingService
from repro.service.session import (
    SessionConfig,
    SessionSnapshot,
    TrackingSession,
    default_pipeline_factory,
)

__all__ = [
    "BackoffConfig",
    "BreakerConfig",
    "CircuitBreaker",
    "ExponentialBackoff",
    "DROP_OLDEST",
    "BoundedBuffer",
    "HealthConfig",
    "HealthMachine",
    "SessionState",
    "ServiceConfig",
    "TrackingService",
    "SessionConfig",
    "SessionSnapshot",
    "TrackingSession",
    "default_pipeline_factory",
]
