"""Attenuating obstacles: walls, racks, glass, human bodies.

Each obstacle is a segment with a *blocking coefficient* — the excess path
loss (dB) it adds when the direct beacon→observer ray crosses it — plus the
environment class it induces (Sec. 4.1 of the paper distinguishes low
coefficient blockers, p-LOS, from high-coefficient ones, NLOS).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ConfigurationError
from repro.types import EnvClass, Vec2
from repro.world.geometry import Segment

__all__ = ["Material", "MATERIALS", "Obstacle"]


@dataclass(frozen=True)
class Material:
    """Signal-blocking material with its excess attenuation.

    ``attenuation_db`` is the mean insertion loss of one crossing at 2.4 GHz
    (values in the range reported for indoor propagation surveys);
    ``attenuation_std_db`` models per-deployment variability; ``env_class``
    is the propagation class a blocker of this material induces.
    """

    name: str
    attenuation_db: float
    attenuation_std_db: float
    env_class: str

    def __post_init__(self) -> None:
        if self.attenuation_db < 0:
            raise ConfigurationError("attenuation must be non-negative")
        if self.env_class not in (EnvClass.P_LOS, EnvClass.NLOS):
            raise ConfigurationError(
                "a blocking material induces P_LOS or NLOS, got "
                f"{self.env_class!r}"
            )


#: Catalogue of the blocker types the paper names (Sec. 4.1).
MATERIALS: Dict[str, Material] = {
    "glass": Material("glass", 3.0, 1.0, EnvClass.P_LOS),
    "wood_door": Material("wood_door", 4.0, 1.5, EnvClass.P_LOS),
    "human_body": Material("human_body", 5.0, 2.0, EnvClass.P_LOS),
    "drywall": Material("drywall", 6.0, 2.0, EnvClass.P_LOS),
    "shelf_rack": Material("shelf_rack", 7.0, 2.5, EnvClass.NLOS),
    "concrete_wall": Material("concrete_wall", 12.0, 3.0, EnvClass.NLOS),
    "cinder_wall": Material("cinder_wall", 13.0, 3.0, EnvClass.NLOS),
    "metal_board": Material("metal_board", 16.0, 4.0, EnvClass.NLOS),
    "server_rack": Material("server_rack", 9.0, 3.0, EnvClass.NLOS),
}


@dataclass
class Obstacle:
    """A wall-like blocker placed in the floorplan.

    ``mobile`` marks obstacles that move during a measurement (passers-by in
    the Fig. 5 experiment); the floorplan can relocate them over time.
    """

    segment: Segment
    material: Material
    name: str = ""
    mobile: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.material.name

    def blocks(self, a: Vec2, b: Vec2) -> bool:
        """True if the direct ray a→b crosses this obstacle."""
        return self.segment.intersects(Segment(a, b))

    def moved_to(self, a: Vec2, b: Vec2) -> "Obstacle":
        """A copy of this obstacle relocated to the segment a-b."""
        return replace(self, segment=Segment(a, b))


def wall(x1: float, y1: float, x2: float, y2: float, material: str) -> Obstacle:
    """Convenience constructor: an obstacle from coordinates and material name."""
    if material not in MATERIALS:
        raise ConfigurationError(
            f"unknown material {material!r}; choose from {sorted(MATERIALS)}"
        )
    return Obstacle(Segment(Vec2(x1, y1), Vec2(x2, y2)), MATERIALS[material])
