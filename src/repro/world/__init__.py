"""Geometry substrate: floorplans, obstacles and walking trajectories."""

from repro.world.builder import (
    apartment_layout,
    office_layout,
    random_clutter,
    store_layout,
)
from repro.world.floorplan import Floorplan, LinkState
from repro.world.geometry import (
    Segment, point_segment_distance, segments_intersect, wrap_angle,
)
from repro.world.obstacles import MATERIALS, Material, Obstacle, wall
from repro.world.trajectory import (
    DEFAULT_WALK_SPEED,
    Trajectory,
    l_shape,
    random_waypoint_walk,
    straight_walk,
)

__all__ = [
    "Floorplan", "LinkState", "Segment", "point_segment_distance",
    "segments_intersect", "wrap_angle", "MATERIALS", "Material", "Obstacle",
    "wall", "DEFAULT_WALK_SPEED", "Trajectory", "l_shape",
    "apartment_layout", "office_layout", "random_clutter", "store_layout",
    "random_waypoint_walk", "straight_walk",
]
