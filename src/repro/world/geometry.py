"""2-D geometric primitives for floorplans and signal-path analysis.

The channel simulator needs exactly two geometric queries: "does the segment
from the beacon to the observer cross this wall?" (LOS classification) and
"how far apart are they?". Everything here serves those queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import GeometryError
from repro.types import Vec2

__all__ = ["Segment", "segments_intersect", "point_segment_distance"]

_EPS = 1e-12


@dataclass(frozen=True)
class Segment:
    """A line segment between two points."""

    a: Vec2
    b: Vec2

    def __post_init__(self) -> None:
        if self.a.distance_to(self.b) < _EPS:
            raise GeometryError(f"degenerate segment at {self.a}")

    @property
    def length(self) -> float:
        return self.a.distance_to(self.b)

    def direction(self) -> Vec2:
        return (self.b - self.a).normalized()

    def midpoint(self) -> Vec2:
        return Vec2((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def point_at(self, t: float) -> Vec2:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return self.a + (self.b - self.a) * t

    def intersects(self, other: "Segment") -> bool:
        return segments_intersect(self.a, self.b, other.a, other.b)

    def intersection(self, other: "Segment") -> Optional[Vec2]:
        """Intersection point with ``other``, or None if they do not cross.

        Collinear overlapping segments return the midpoint of the overlap of
        the endpoints projected on the shared line — sufficient for wall
        crossing queries, which never depend on collinear geometry.
        """
        r = self.b - self.a
        s = other.b - other.a
        denom = r.cross(s)
        qp = other.a - self.a
        if abs(denom) < _EPS:
            if abs(qp.cross(r)) > _EPS:
                return None  # parallel, non-collinear
            # Collinear: project other's endpoints onto this segment.
            rr = r.dot(r)
            t0 = qp.dot(r) / rr
            t1 = (other.b - self.a).dot(r) / rr
            lo, hi = min(t0, t1), max(t0, t1)
            lo, hi = max(lo, 0.0), min(hi, 1.0)
            if lo > hi:
                return None
            return self.point_at((lo + hi) / 2.0)
        t = qp.cross(s) / denom
        u = qp.cross(r) / denom
        if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
            return self.point_at(min(max(t, 0.0), 1.0))
        return None

    def distance_to_point(self, p: Vec2) -> float:
        return point_segment_distance(p, self.a, self.b)


def segments_intersect(p1: Vec2, p2: Vec2, q1: Vec2, q2: Vec2) -> bool:
    """True if segment p1-p2 intersects segment q1-q2 (touching counts)."""

    def orient(a: Vec2, b: Vec2, c: Vec2) -> int:
        v = (b - a).cross(c - a)
        if v > _EPS:
            return 1
        if v < -_EPS:
            return -1
        return 0

    def on_segment(a: Vec2, b: Vec2, c: Vec2) -> bool:
        return (
            min(a.x, b.x) - _EPS <= c.x <= max(a.x, b.x) + _EPS
            and min(a.y, b.y) - _EPS <= c.y <= max(a.y, b.y) + _EPS
        )

    o1 = orient(p1, p2, q1)
    o2 = orient(p1, p2, q2)
    o3 = orient(q1, q2, p1)
    o4 = orient(q1, q2, p2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(p1, p2, q1):
        return True
    if o2 == 0 and on_segment(p1, p2, q2):
        return True
    if o3 == 0 and on_segment(q1, q2, p1):
        return True
    if o4 == 0 and on_segment(q1, q2, p2):
        return True
    return False


def point_segment_distance(p: Vec2, a: Vec2, b: Vec2) -> float:
    """Shortest distance from point ``p`` to segment ``a``-``b``."""
    ab = b - a
    denom = ab.dot(ab)
    if denom < _EPS:
        # Degenerate (or sub-epsilon) segment: nearest of the endpoints.
        return min(p.distance_to(a), p.distance_to(b))
    t = (p - a).dot(ab) / denom
    t = min(max(t, 0.0), 1.0)
    return p.distance_to(a + ab * t)


def wrap_angle(angle: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    a = math.fmod(angle + math.pi, 2.0 * math.pi)
    if a <= 0.0:
        a += 2.0 * math.pi
    return a - math.pi
