"""Floorplans: a bounded room with obstacles and LOS classification.

A :class:`Floorplan` answers the question the channel model asks for every
RSS sample: given the beacon and observer positions *now*, what environment
class is the link in, and how much excess attenuation do blockers add?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.types import EnvClass, Vec2
from repro.world.obstacles import Obstacle

__all__ = ["LinkState", "Floorplan"]


@dataclass(frozen=True)
class LinkState:
    """Propagation state of one beacon→observer link at one instant."""

    env_class: str
    excess_loss_db: float
    n_blockers: int
    distance: float


@dataclass
class Floorplan:
    """A rectangular environment with static and mobile obstacles.

    ``width`` × ``height`` in metres, origin at the south-west corner.
    ``obstacle_motion`` optionally maps (obstacle, time) → relocated obstacle,
    letting scenarios move human blockers through the link mid-measurement.
    """

    name: str
    width: float
    height: float
    obstacles: List[Obstacle] = field(default_factory=list)
    outdoor: bool = False
    obstacle_motion: Optional[Callable[[Obstacle, float], Obstacle]] = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("floorplan dimensions must be positive")

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, p: Vec2) -> bool:
        return 0.0 <= p.x <= self.width and 0.0 <= p.y <= self.height

    def obstacles_at(self, t: float) -> List[Obstacle]:
        """Obstacle layout at time ``t`` (mobile blockers relocated)."""
        if self.obstacle_motion is None:
            return self.obstacles
        out = []
        for ob in self.obstacles:
            out.append(self.obstacle_motion(ob, t) if ob.mobile else ob)
        return out

    def classify_link(self, tx: Vec2, rx: Vec2, t: float = 0.0) -> LinkState:
        """Classify the tx→rx link and total the blockers' excess loss.

        The induced class is the *worst* class among crossing blockers
        (NLOS dominates P_LOS dominates LOS), matching how the paper labels
        its training traces: any high-coefficient blocker makes the link NLOS.
        """
        if tx.distance_to(rx) < 1e-9:
            # Co-located endpoints: nothing can block a zero-length ray.
            return LinkState(EnvClass.LOS, 0.0, 0, 0.0)
        excess = 0.0
        worst = EnvClass.LOS
        n_blockers = 0
        for ob in self.obstacles_at(t):
            if ob.blocks(tx, rx):
                n_blockers += 1
                excess += ob.material.attenuation_db
                if ob.material.env_class == EnvClass.NLOS:
                    worst = EnvClass.NLOS
                elif worst == EnvClass.LOS:
                    worst = EnvClass.P_LOS
        return LinkState(
            env_class=worst,
            excess_loss_db=excess,
            n_blockers=n_blockers,
            distance=tx.distance_to(rx),
        )

    def with_obstacles(self, extra: List[Obstacle]) -> "Floorplan":
        """A copy of this floorplan with additional obstacles."""
        return Floorplan(
            name=self.name,
            width=self.width,
            height=self.height,
            obstacles=list(self.obstacles) + list(extra),
            outdoor=self.outdoor,
            obstacle_motion=self.obstacle_motion,
        )
