"""Floorplan builders: parametric generators for common deployment layouts.

The Table-1 presets are fixed rooms; these builders generate *families* of
environments for larger sweeps — a store with configurable rack aisles, an
office with partition rows, an apartment with interior walls — so
experiments can randomise over layout instead of only over channel noise.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.world.floorplan import Floorplan
from repro.world.obstacles import Obstacle, wall

__all__ = ["store_layout", "office_layout", "apartment_layout",
           "random_clutter"]


def store_layout(
    width: float = 12.0,
    depth: float = 10.0,
    n_aisles: int = 3,
    rack_material: str = "shelf_rack",
    aisle_margin: float = 1.2,
) -> Floorplan:
    """A retail floor with ``n_aisles`` parallel rack rows.

    Racks run east–west, evenly spaced in depth, leaving ``aisle_margin``
    clear at the south and north walls for the entrance and back aisle.
    """
    if n_aisles < 1:
        raise ConfigurationError("need at least one aisle")
    if depth <= 2 * aisle_margin:
        raise ConfigurationError("store too shallow for the aisle margins")
    obstacles: List[Obstacle] = []
    usable = depth - 2 * aisle_margin
    for k in range(n_aisles):
        y = aisle_margin + usable * (k + 0.5) / n_aisles
        obstacles.append(
            wall(width * 0.12, y, width * 0.88, y, rack_material))
    return Floorplan(f"store_{n_aisles}aisles", width, depth,
                     obstacles=obstacles)


def office_layout(
    width: float = 14.0,
    depth: float = 10.0,
    n_partition_rows: int = 2,
    door_gap: float = 1.4,
) -> Floorplan:
    """An office with drywall partition rows, each pierced by a door gap."""
    if n_partition_rows < 0:
        raise ConfigurationError("n_partition_rows must be >= 0")
    if door_gap <= 0 or door_gap >= width / 2:
        raise ConfigurationError("door_gap must be positive and modest")
    obstacles: List[Obstacle] = []
    for k in range(n_partition_rows):
        y = depth * (k + 1) / (n_partition_rows + 1)
        gap_x = width * (0.25 + 0.5 * (k % 2))  # alternate door sides
        left_end = max(gap_x - door_gap / 2, 0.1)
        right_start = min(gap_x + door_gap / 2, width - 0.1)
        if left_end > 0.2:
            obstacles.append(wall(0.0, y, left_end, y, "drywall"))
        if right_start < width - 0.2:
            obstacles.append(wall(right_start, y, width, y, "drywall"))
    return Floorplan(f"office_{n_partition_rows}rows", width, depth,
                     obstacles=obstacles)


def apartment_layout(width: float = 10.0, depth: float = 8.0) -> Floorplan:
    """A two-bedroom apartment: one concrete load wall, two wood doors."""
    if width < 6.0 or depth < 5.0:
        raise ConfigurationError("apartment too small for the layout")
    mid_x = width * 0.55
    obstacles = [
        # Load-bearing wall splitting living area from bedrooms, with a
        # doorway gap in the middle.
        wall(mid_x, 0.0, mid_x, depth * 0.35, "concrete_wall"),
        wall(mid_x, depth * 0.55, mid_x, depth, "concrete_wall"),
        # Interior bedroom divider (wood).
        wall(mid_x, depth * 0.5, width, depth * 0.5, "wood_door"),
    ]
    return Floorplan("apartment", width, depth, obstacles=obstacles)


def random_clutter(
    rng: np.random.Generator,
    width: float = 10.0,
    depth: float = 10.0,
    n_obstacles: int = 4,
    materials: Optional[List[str]] = None,
    length_range=(1.0, 3.0),
) -> Floorplan:
    """A room with randomly placed straight blockers — sweep fodder."""
    if n_obstacles < 0:
        raise ConfigurationError("n_obstacles must be >= 0")
    materials = materials or ["drywall", "wood_door", "shelf_rack",
                              "human_body"]
    obstacles: List[Obstacle] = []
    for _ in range(n_obstacles):
        length = float(rng.uniform(*length_range))
        x = float(rng.uniform(0.5, width - 0.5 - length))
        y = float(rng.uniform(1.0, depth - 1.0))
        material = str(rng.choice(materials))
        if rng.random() < 0.5:
            obstacles.append(wall(x, y, x + length, y, material))
        else:
            y2 = min(y + length, depth - 0.2)
            if y2 - y > 0.3:
                obstacles.append(wall(x, y, x, y2, material))
    return Floorplan("clutter", width, depth, obstacles=obstacles)
