"""Timed walking trajectories: waypoint paths, L-shapes, random walks.

A :class:`Trajectory` is the ground-truth motion of a person (observer or
moving target). The simulator samples it for RF geometry; the IMU synthesiser
samples it for gait and turn signatures. The L-shape generator reproduces the
measurement walk LocBLE asks of its user (Sec. 5.1): two straight legs of
3.5–5 m total with a 90° turn.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Vec2
from repro.world.geometry import wrap_angle

__all__ = [
    "Trajectory",
    "l_shape",
    "straight_walk",
    "random_waypoint_walk",
    "DEFAULT_WALK_SPEED",
]

#: Typical indoor walking speed (m/s) used when a scenario does not override it.
DEFAULT_WALK_SPEED = 1.1


@dataclass
class Trajectory:
    """Piecewise-linear, constant-speed-per-leg motion through waypoints.

    ``times[i]`` is when the walker reaches ``waypoints[i]``; between
    waypoints, position interpolates linearly. The walker stands still after
    the final waypoint.
    """

    waypoints: List[Vec2]
    times: List[float]

    def __post_init__(self) -> None:
        if len(self.waypoints) != len(self.times):
            raise ConfigurationError("waypoints and times must align")
        if len(self.waypoints) < 1:
            raise ConfigurationError("a trajectory needs at least one waypoint")
        if any(t1 <= t0 for t0, t1 in zip(self.times, self.times[1:])):
            raise ConfigurationError("times must be strictly increasing")

    @property
    def start(self) -> Vec2:
        return self.waypoints[0]

    @property
    def end(self) -> Vec2:
        return self.waypoints[-1]

    @property
    def duration(self) -> float:
        return self.times[-1] - self.times[0]

    def total_length(self) -> float:
        return sum(
            a.distance_to(b) for a, b in zip(self.waypoints, self.waypoints[1:])
        )

    def position_at(self, t: float) -> Vec2:
        """Ground-truth position at time ``t`` (clamped to the ends)."""
        if t <= self.times[0]:
            return self.waypoints[0]
        if t >= self.times[-1]:
            return self.waypoints[-1]
        i = bisect_right(self.times, t) - 1
        t0, t1 = self.times[i], self.times[i + 1]
        frac = (t - t0) / (t1 - t0)
        a, b = self.waypoints[i], self.waypoints[i + 1]
        return a + (b - a) * frac

    def heading_at(self, t: float) -> float:
        """Walking direction (radians from +x) at time ``t``.

        Before the start / after the end, the first / last leg's heading is
        reported (a standing person keeps facing where they walked).
        """
        if len(self.waypoints) == 1:
            return 0.0
        if t <= self.times[0]:
            i = 0
        elif t >= self.times[-1]:
            i = len(self.waypoints) - 2
        else:
            i = bisect_right(self.times, t) - 1
            i = min(i, len(self.waypoints) - 2)
        leg = self.waypoints[i + 1] - self.waypoints[i]
        return leg.heading()

    def legs(self) -> List[Tuple[Vec2, Vec2, float, float]]:
        """(start, end, t_start, t_end) for each straight leg."""
        return [
            (a, b, t0, t1)
            for a, b, t0, t1 in zip(
                self.waypoints, self.waypoints[1:], self.times, self.times[1:]
            )
        ]

    def turn_times(self, min_angle_rad: float = math.radians(20.0)) -> List[float]:
        """Times of direction changes of at least ``min_angle_rad``."""
        out = []
        for i in range(1, len(self.waypoints) - 1):
            h0 = (self.waypoints[i] - self.waypoints[i - 1]).heading()
            h1 = (self.waypoints[i + 1] - self.waypoints[i]).heading()
            if abs(wrap_angle(h1 - h0)) >= min_angle_rad:
                out.append(self.times[i])
        return out

    def displacement_in_frame(self, t: float) -> Vec2:
        """Displacement from the start, in the measurement frame.

        The measurement frame (Fig. 6) has its origin at the walk's start and
        its +x axis along the initial walking direction, so every estimate the
        library produces lives in this frame.
        """
        h0 = self.heading_at(self.times[0])
        d = self.position_at(t) - self.start
        return d.rotated(-h0)

    def to_frame(self, p: Vec2) -> Vec2:
        """Transform a world point into the measurement frame."""
        h0 = self.heading_at(self.times[0])
        return (p - self.start).rotated(-h0)

    def from_frame(self, p: Vec2) -> Vec2:
        """Transform a measurement-frame point back into world coordinates."""
        h0 = self.heading_at(self.times[0])
        return self.start + p.rotated(h0)


def _timed(waypoints: Sequence[Vec2], speed: float, t0: float) -> Trajectory:
    if speed <= 0:
        raise ConfigurationError("speed must be positive")
    times = [t0]
    for a, b in zip(waypoints, waypoints[1:]):
        times.append(times[-1] + a.distance_to(b) / speed)
    return Trajectory(list(waypoints), times)


def l_shape(
    start: Vec2,
    heading_rad: float,
    leg1: float = 2.5,
    leg2: float = 2.0,
    turn_rad: float = math.radians(90.0),
    speed: float = DEFAULT_WALK_SPEED,
    t0: float = 0.0,
) -> Trajectory:
    """The paper's L-shaped measurement walk (Sec. 5.1).

    Leg 1 goes ``leg1`` metres along ``heading_rad``; the walker then turns by
    ``turn_rad`` (positive = counter-clockwise; the default is the right-angle
    turn LocBLE asks for) and walks ``leg2`` metres. Total defaults to 4.5 m,
    inside the 3.5–5 m band of Sec. 7.6.2.
    """
    if leg1 <= 0 or leg2 <= 0:
        raise ConfigurationError("leg lengths must be positive")
    p1 = start + Vec2.from_polar(leg1, heading_rad)
    p2 = p1 + Vec2.from_polar(leg2, heading_rad + turn_rad)
    return _timed([start, p1, p2], speed, t0)


def straight_walk(
    start: Vec2,
    heading_rad: float,
    length: float,
    speed: float = DEFAULT_WALK_SPEED,
    t0: float = 0.0,
) -> Trajectory:
    """A single straight leg (the symmetric-ambiguity case of Sec. 5.1)."""
    if length <= 0:
        raise ConfigurationError("length must be positive")
    return _timed([start, start + Vec2.from_polar(length, heading_rad)], speed, t0)


def random_waypoint_walk(
    start: Vec2,
    n_legs: int,
    rng: np.random.Generator,
    leg_range: Tuple[float, float] = (1.5, 4.0),
    bounds: Optional[Tuple[float, float]] = None,
    speed: float = DEFAULT_WALK_SPEED,
    t0: float = 0.0,
) -> Trajectory:
    """A random multi-leg walk (moving-target experiments, Sec. 7.4.2).

    Headings are uniform; legs that would exit ``bounds`` (width, height of
    the floorplan) are re-drawn, up to a resampling limit.
    """
    if n_legs < 1:
        raise ConfigurationError("need at least one leg")
    pts = [start]
    for _ in range(n_legs):
        for _attempt in range(64):
            length = rng.uniform(*leg_range)
            heading = rng.uniform(-math.pi, math.pi)
            nxt = pts[-1] + Vec2.from_polar(length, heading)
            if bounds is None or (0 <= nxt.x <= bounds[0] and 0 <= nxt.y <= bounds[1]):
                pts.append(nxt)
                break
        else:
            raise ConfigurationError(
                "could not place a leg inside the bounds; enlarge the floorplan"
            )
    return _timed(pts, speed, t0)
