"""The paper's nine experimental environments (Table 1) as presets.

Each scenario packages a floorplan (scale and blockers chosen to match the
environment's description), a default beacon placement and a default
observer start for the L-shaped measurement walk. Default beacon–observer
distances follow the paper's stationary-target experiment (Sec. 7.4.1:
4.5, 6.4, 6.7, 6.8, 9.1 and 7.9 m for environments #1–#6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.types import Vec2
from repro.world.floorplan import Floorplan
from repro.world.obstacles import Obstacle, wall

__all__ = ["Scenario", "SCENARIOS", "scenario", "moving_human_crossing"]


@dataclass(frozen=True)
class Scenario:
    """One evaluation environment with its default measurement geometry."""

    index: int
    name: str
    floorplan: Floorplan
    beacon_position: Vec2
    observer_start: Vec2
    observer_heading_rad: float
    paper_accuracy_m: float  # Table 1 row 5: mean error the paper reports
    paper_accuracy_ci_m: float

    @property
    def nominal_distance(self) -> float:
        return self.beacon_position.distance_to(self.observer_start)


def moving_human_crossing(
    y_path: float, x_range: tuple, period_s: float
) -> "callable":
    """Obstacle motion: a person pacing along y = ``y_path``.

    Returns a function suitable for ``Floorplan.obstacle_motion`` that slides
    a mobile obstacle back and forth across ``x_range`` with the given
    period — how the Fig. 5 experiment makes "people randomly come in
    between during the observer's movement".
    """

    def mover(ob: Obstacle, t: float) -> Obstacle:
        x0, x1 = x_range
        phase = (t % period_s) / period_s
        # Triangle wave: out and back.
        u = 2.0 * phase if phase < 0.5 else 2.0 * (1.0 - phase)
        cx = x0 + (x1 - x0) * u
        half = ob.segment.length / 2.0
        return ob.moved_to(Vec2(cx - half, y_path), Vec2(cx + half, y_path))

    return mover


def _build_scenarios() -> Dict[int, Scenario]:
    s: Dict[int, Scenario] = {}

    # 1 — Meeting room, 5x5 m, clean LOS. Paper: 0.8 ± 0.2 m.
    s[1] = Scenario(
        1, "meeting_room",
        Floorplan("meeting_room", 5.0, 5.0, obstacles=[]),
        beacon_position=Vec2(4.3, 3.5),
        observer_start=Vec2(0.5, 0.8),
        observer_heading_rad=0.0,
        paper_accuracy_m=0.8, paper_accuracy_ci_m=0.2,
    )

    # 2 — Hallway, 8x3 m, LOS with a glass door section. Paper: 1.4 ± 0.3 m.
    s[2] = Scenario(
        2, "hallway",
        Floorplan("hallway", 8.0, 3.0, obstacles=[
            wall(5.0, 2.45, 5.0, 3.0, "glass"),
        ]),
        beacon_position=Vec2(7.2, 1.2),
        observer_start=Vec2(0.8, 0.6),
        observer_heading_rad=0.0,
        paper_accuracy_m=1.4, paper_accuracy_ci_m=0.3,
    )

    # 3 — Bedroom, 7x7 m, wooden furniture blockers. Paper: 1.4 ± 0.4 m.
    s[3] = Scenario(
        3, "bedroom",
        Floorplan("bedroom", 7.0, 7.0, obstacles=[
            wall(3.0, 2.0, 4.5, 2.0, "wood_door"),
            wall(5.5, 4.0, 5.5, 5.5, "drywall"),
        ]),
        beacon_position=Vec2(5.5, 5.0),
        observer_start=Vec2(0.7, 1.0),
        observer_heading_rad=math.radians(35.0),
        paper_accuracy_m=1.4, paper_accuracy_ci_m=0.4,
    )

    # 4 — Living room, 7x7 m, mixed furniture. Paper: 1.6 ± 0.3 m.
    s[4] = Scenario(
        4, "living_room",
        Floorplan("living_room", 7.0, 7.0, obstacles=[
            wall(2.0, 3.5, 4.0, 3.5, "wood_door"),
            wall(4.8, 1.0, 4.8, 2.8, "drywall"),
            wall(1.0, 5.2, 2.5, 5.2, "human_body"),
        ]),
        beacon_position=Vec2(6.2, 5.5),
        observer_start=Vec2(0.8, 0.8),
        observer_heading_rad=math.radians(30.0),
        paper_accuracy_m=1.6, paper_accuracy_ci_m=0.3,
    )

    # 5 — Restaurant, 9x10 m, people and partitions. Paper: 1.6 ± 0.4 m.
    s[5] = Scenario(
        5, "restaurant",
        Floorplan("restaurant", 9.0, 10.0, obstacles=[
            wall(1.5, 6.0, 6.0, 6.0, "human_body"),
            wall(1.0, 4.5, 5.5, 4.5, "glass"),
            wall(7.0, 2.0, 7.0, 5.0, "wood_door"),
        ]),
        beacon_position=Vec2(5.5, 8.0),
        observer_start=Vec2(1.0, 1.5),
        observer_heading_rad=math.radians(45.0),
        paper_accuracy_m=1.6, paper_accuracy_ci_m=0.4,
    )

    # 6 — Store, 9x10 m, tall market racks. Paper: 1.8 ± 0.6 m.
    s[6] = Scenario(
        6, "store",
        Floorplan("store", 9.0, 10.0, obstacles=[
            wall(2.0, 3.0, 6.0, 3.0, "shelf_rack"),
            wall(2.0, 6.0, 6.0, 6.0, "shelf_rack"),
            wall(7.5, 2.0, 7.5, 7.0, "shelf_rack"),
        ]),
        beacon_position=Vec2(5.5, 6.5),
        observer_start=Vec2(1.0, 1.0),
        observer_heading_rad=math.radians(40.0),
        paper_accuracy_m=1.8, paper_accuracy_ci_m=0.6,
    )

    # 7 — Labs, 8x10 m, server racks + concrete. Paper: 2.3 ± 0.5 m.
    s[7] = Scenario(
        7, "labs",
        Floorplan("labs", 8.0, 10.0, obstacles=[
            wall(0.0, 5.0, 5.0, 5.0, "concrete_wall"),
            wall(6.0, 2.0, 6.0, 6.0, "server_rack"),
            wall(2.0, 7.0, 4.0, 7.0, "server_rack"),
        ]),
        beacon_position=Vec2(5.5, 7.5),
        observer_start=Vec2(1.0, 1.0),
        observer_heading_rad=math.radians(40.0),
        paper_accuracy_m=2.3, paper_accuracy_ci_m=0.5,
    )

    # 8 — Hall, 9x11 m, construction blockage. Paper: 2.1 ± 0.5 m.
    s[8] = Scenario(
        8, "hall",
        Floorplan("hall", 9.0, 11.0, obstacles=[
            wall(1.0, 5.0, 7.0, 5.0, "cinder_wall"),
            wall(7.0, 5.0, 7.0, 7.0, "metal_board"),
        ]),
        beacon_position=Vec2(4.5, 7.5),
        observer_start=Vec2(1.2, 1.2),
        observer_heading_rad=math.radians(50.0),
        paper_accuracy_m=2.1, paper_accuracy_ci_m=0.5,
    )

    # 9 — Parking lot, 16x15 m, outdoor open space. Paper: 1.2 ± 0.5 m.
    s[9] = Scenario(
        9, "parking_lot",
        Floorplan("parking_lot", 16.0, 15.0, obstacles=[], outdoor=True),
        beacon_position=Vec2(7.2, 5.0),
        observer_start=Vec2(2.0, 2.0),
        observer_heading_rad=math.radians(30.0),
        paper_accuracy_m=1.2, paper_accuracy_ci_m=0.5,
    )
    return s


SCENARIOS: Dict[int, Scenario] = _build_scenarios()


def scenario(index: int) -> Scenario:
    """The Table-1 environment with the given index (1–9)."""
    if index not in SCENARIOS:
        raise ConfigurationError(f"scenario index must be 1–9, got {index}")
    return SCENARIOS[index]
