"""Deterministic parallel execution of seeded Monte-Carlo trials.

Every sweep in this repo has the same shape: call ``fn(seed)`` for a list of
seeds and collect the results. :func:`run_trials` runs that shape over a
``ProcessPoolExecutor`` while keeping three guarantees the serial loops gave
for free:

* **Determinism** — each trial derives all randomness from
  ``np.random.default_rng(seed)`` inside ``fn``, so results are bit-identical
  for any worker count or completion order; results are always returned in
  seed order.
* **Isolation** — an exception inside one trial is captured as a
  :class:`TrialResult` failure instead of killing the sweep.
* **Graceful degradation** — small sweeps, ``max_workers=1``, pickling
  failures and pool start-up failures all fall back to the serial path.

Usage::

    from repro.sim.parallel import run_trials

    results = run_trials(my_trial, seeds=range(100), max_workers=4)
    errors = [r.value for r in results if r.ok]
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro import perf
from repro.errors import ConfigurationError

__all__ = ["TrialResult", "run_trials", "effective_workers"]

#: Below this many seeds the pool's start-up cost outweighs any parallelism;
#: ``parallel="auto"`` stays serial.
MIN_PARALLEL_TRIALS = 4


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one seeded trial: a value or a captured failure."""

    seed: int
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def effective_workers(
    n_trials: int, max_workers: Optional[int]
) -> int:
    """Worker count actually used for ``n_trials`` trials."""
    import os

    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(1, min(max_workers, n_trials))


def _run_one(fn: Callable[[int], Any], seed: int) -> TrialResult:
    """Worker-side wrapper: capture any exception as a recorded failure."""
    try:
        return TrialResult(seed=seed, value=fn(seed))
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        return TrialResult(seed=seed, error=detail)


def _run_serial(fn: Callable[[int], Any], seeds: Sequence[int]) -> List[TrialResult]:
    return [_run_one(fn, seed) for seed in seeds]


def run_trials(
    fn: Callable[[int], Any],
    seeds: Iterable[int],
    max_workers: Optional[int] = None,
    parallel: str = "auto",
) -> List[TrialResult]:
    """Run ``fn(seed)`` for every seed; results in seed order.

    ``fn`` must derive all its randomness from the seed (spawn
    ``np.random.default_rng(seed)`` internally) and be picklable for the
    process pool — a module-level function or callable instance.

    ``parallel`` is ``"auto"`` (pool when it plausibly pays off),
    ``"force"`` (always try the pool) or ``"off"`` (always serial).
    ``max_workers=None`` uses the CPU count. Pool-level failures — pickling,
    a broken pool, missing multiprocessing support — degrade to the serial
    path; *trial*-level failures are captured per seed either way.
    """
    if parallel not in ("auto", "force", "off"):
        raise ConfigurationError(
            f"parallel must be 'auto', 'force' or 'off', got {parallel!r}"
        )
    seeds = [int(s) for s in seeds]
    workers = effective_workers(len(seeds), max_workers)
    use_pool = parallel == "force" or (
        parallel == "auto"
        and workers > 1
        and len(seeds) >= MIN_PARALLEL_TRIALS
    )
    if not use_pool or workers < 1:
        with perf.timer("parallel.run_trials.serial"):
            return _run_serial(fn, seeds)

    try:
        with perf.timer("parallel.run_trials.pool"):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_run_one, fn, seed) for seed in seeds]
                return [f.result() for f in futures]
    except Exception:  # noqa: BLE001 — pool failure degrades, never crashes
        # Unpicklable fn, fork failure, or a broken pool: the sweep still
        # completes serially with identical (deterministic) results.
        perf.count("parallel.pool_fallbacks")
        with perf.timer("parallel.run_trials.serial"):
            return _run_serial(fn, seeds)