"""3-D measurement simulation for the Sec. 9.3 extension.

Reuses the full 2-D substrate — the floorplan classifies blockage on the
horizontal projection (walls are vertical) — while distances, and therefore
path loss, are computed in 3-D. The observer carries the phone at
``carry_height_m`` above their walked elevation profile; a barometer stream
is synthesised alongside the usual IMU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.ble.advertiser import Advertiser
from repro.ble.devices import BEACONS, PHONES, BeaconProfile, PhoneProfile
from repro.ble.scanner import Scanner
from repro.channel.link import RadioLink
from repro.channel.pathloss import rss_at
from repro.core.three_d import Vec3
from repro.errors import ConfigurationError
from repro.imu.barometer import BarometerModel
from repro.imu.sensors import ImuSynthesizer, SynthesizedImu
from repro.types import RssiSample, RssiTrace, Vec2
from repro.world.floorplan import Floorplan
from repro.world.trajectory import Trajectory

__all__ = ["Measurement3D", "Simulator3D", "ramp_profile"]


def ramp_profile(z_start: float, z_end: float,
                 t_start: float, t_end: float) -> Callable[[float], float]:
    """Elevation profile: a linear ramp (stairs/slope) during the walk."""
    if t_end <= t_start:
        raise ConfigurationError("ramp needs t_end > t_start")

    def profile(t: float) -> float:
        if t <= t_start:
            return z_start
        if t >= t_end:
            return z_end
        frac = (t - t_start) / (t_end - t_start)
        return z_start + (z_end - z_start) * frac

    return profile


@dataclass
class Measurement3D:
    """One 3-D session: the 2-D record fields plus elevation streams."""

    observer_trajectory: Trajectory
    observer_imu: SynthesizedImu
    rssi_trace: RssiTrace
    pressure_hpa: np.ndarray
    pressure_timestamps: np.ndarray
    beacon_position: Vec3
    carry_height_m: float
    elevation_profile: Callable[[float], float]

    def true_position_in_frame(self) -> Vec3:
        """Beacon position in the measurement frame (origin at walk start,
        z relative to the phone's starting height)."""
        planar = self.observer_trajectory.to_frame(
            Vec2(self.beacon_position.x, self.beacon_position.y)
        )
        z0 = (self.elevation_profile(self.observer_trajectory.times[0])
              + self.carry_height_m)
        return Vec3(planar.x, planar.y, self.beacon_position.z - z0)


@dataclass
class Simulator3D:
    """Generates 3-D measurement sessions on a floorplan."""

    floorplan: Floorplan
    rng: np.random.Generator
    phone: PhoneProfile = field(default_factory=lambda: PHONES["iphone_6s"])
    carry_height_m: float = 1.2
    baro_rate_hz: float = 25.0

    def simulate(
        self,
        observer: Trajectory,
        elevation_profile: Callable[[float], float],
        beacon: Vec3,
        profile: Optional[BeaconProfile] = None,
        beacon_id: str = "beacon3d",
    ) -> Measurement3D:
        """One session with the observer on an elevation profile."""
        profile = profile or BEACONS["estimote"]
        t0 = observer.times[0]
        t1 = observer.times[-1] + 0.5

        link = RadioLink(
            floorplan=self.floorplan,
            rng=self.rng,
            gamma_dbm=profile.gamma_dbm,
            rx_noise_offset_db=self.phone.rx_offset_db,
            rx_jitter_std_db=self.phone.rx_jitter_std_db,
            quantise=False,
        )
        advertiser = Advertiser(profile, self.rng)
        scanner = Scanner(self.phone, self.rng)
        raw: List[RssiSample] = []
        beacon_2d = Vec2(beacon.x, beacon.y)
        for ev in advertiser.events(t0, t1):
            rx2d = observer.position_at(ev.timestamp)
            rx_z = elevation_profile(ev.timestamp) + self.carry_height_m
            # Blockage classification on the horizontal projection; the
            # mean curve replaced by the true 3-D distance at the link's
            # realised parameters.
            obs = link.observe(beacon_2d, rx2d, ev.timestamp, ev.channel)
            params = link.true_params(obs.env_class)
            d3 = np.sqrt(rx2d.distance_to(beacon_2d) ** 2
                         + (rx_z - beacon.z) ** 2)
            mean_2d = rss_at(obs.distance, params.gamma_dbm, params.n)
            mean_3d = rss_at(float(d3), params.gamma_dbm, params.n)
            rssi = obs.rss_dbm - mean_2d + mean_3d
            if profile.tx_jitter_std_db > 0:
                rssi += float(self.rng.normal(0.0, profile.tx_jitter_std_db))
            raw.append(RssiSample(ev.timestamp, float(round(rssi)),
                                  beacon_id, ev.channel))
        trace = scanner.receive(raw)

        imu = ImuSynthesizer(self.rng).synthesize(observer, t_pad_s=0.5)

        n_baro = max(2, int(round((t1 - t0) * self.baro_rate_hz)))
        baro_ts = np.linspace(t0, t1, n_baro)
        altitudes = np.array([
            elevation_profile(t) + self.carry_height_m for t in baro_ts
        ])
        baro = BarometerModel(self.rng)
        pressure = baro.synthesize(baro_ts, altitudes)

        return Measurement3D(
            observer_trajectory=observer,
            observer_imu=imu,
            rssi_trace=trace,
            pressure_hpa=pressure,
            pressure_timestamps=baro_ts,
            beacon_position=beacon,
            carry_height_m=self.carry_height_m,
            elevation_profile=elevation_profile,
        )
