"""Trace (de)serialisation: JSON persistence for collected sessions.

Real deployments log traces on the phone and analyse them offline (the
paper's own evaluation is a trace analysis over a ~300 MB dataset). This
module round-trips RSSI and IMU traces through a stable JSON schema so
example scripts and tests can save, share and reload sessions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import ConfigurationError
from repro.types import ImuSample, ImuTrace, RssiSample, RssiTrace

__all__ = [
    "rssi_trace_to_dict",
    "rssi_trace_from_dict",
    "imu_trace_to_dict",
    "imu_trace_from_dict",
    "save_session",
    "load_session",
]

_SCHEMA_VERSION = 1


def rssi_trace_to_dict(trace: RssiTrace) -> dict:
    return {
        "type": "rssi",
        "samples": [
            [s.timestamp, s.rssi, s.beacon_id, s.channel] for s in trace.samples
        ],
    }


def rssi_trace_from_dict(d: dict) -> RssiTrace:
    if d.get("type") != "rssi":
        raise ConfigurationError("not an RSSI trace record")
    return RssiTrace(
        [RssiSample(float(t), float(v), str(b), int(c))
         for t, v, b, c in d["samples"]]
    )


def imu_trace_to_dict(trace: ImuTrace) -> dict:
    return {
        "type": "imu",
        "samples": [
            [s.timestamp, s.accel, s.gyro_z, s.mag_heading] for s in trace.samples
        ],
    }


def imu_trace_from_dict(d: dict) -> ImuTrace:
    if d.get("type") != "imu":
        raise ConfigurationError("not an IMU trace record")
    return ImuTrace(
        [ImuSample(float(t), float(a), float(g), float(m))
         for t, a, g, m in d["samples"]]
    )


def save_session(
    path: Union[str, Path],
    rssi_traces: Dict[str, RssiTrace],
    imu_trace: ImuTrace,
    metadata: dict = None,
) -> None:
    """Persist one measurement session (all beacons + observer IMU) as JSON."""
    doc = {
        "schema_version": _SCHEMA_VERSION,
        "metadata": metadata or {},
        "rssi": {bid: rssi_trace_to_dict(t) for bid, t in rssi_traces.items()},
        "imu": imu_trace_to_dict(imu_trace),
    }
    Path(path).write_text(json.dumps(doc))


def load_session(path: Union[str, Path]):
    """Load a session saved by :func:`save_session`.

    Returns ``(rssi_traces, imu_trace, metadata)``.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("schema_version") != _SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported session schema {doc.get('schema_version')!r}"
        )
    rssi = {bid: rssi_trace_from_dict(d) for bid, d in doc["rssi"].items()}
    imu = imu_trace_from_dict(doc["imu"])
    return rssi, imu, doc.get("metadata", {})
