"""Monte-Carlo experiment orchestration: trials, summaries, CDFs.

The benchmarks all share one skeleton — run N seeded measurement trials,
collect errors, summarise. This module makes that skeleton a public API so
downstream users can run their own sweeps in a few lines::

    from repro.sim.montecarlo import stationary_trials, summarize

    errors = stationary_trials(scenario(3), seeds=range(20))
    print(summarize(errors))
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import EllipticalEstimator
from repro.core.pipeline import LocBLE
from repro.errors import ConfigurationError, ReproError
from repro.sim.faults import FaultModel
from repro.sim.parallel import run_trials
from repro.sim.simulator import BeaconSpec, Simulator
from repro.world.scenarios import Scenario
from repro.world.trajectory import l_shape

__all__ = [
    "SolverPipelineFactory",
    "TrialSummary",
    "stationary_trials",
    "summarize",
    "empirical_cdf",
]


@dataclass(frozen=True)
class SolverPipelineFactory:
    """A picklable pipeline factory selecting a solver backend.

    ``stationary_trials``/``degradation_sweep`` ship their pipeline factory
    to worker processes, so a ``lambda: LocBLE(solver="ekf")`` closure
    would silently force the serial path — this frozen dataclass is the
    process-pool-safe equivalent. Repair mode by default: fault sweeps
    feed deliberately dirty traces.
    """

    solver: str = "elliptical"
    sanitize: str = "repair"

    def __call__(self) -> LocBLE:
        return LocBLE(solver=self.solver, sanitize=self.sanitize)

#: Sentinel distinguishing "the pipeline refused to estimate" (a ReproError,
#: handled by ``failure_value``) from a crashed trial inside worker results.
_REFUSED = "__refused__"


@dataclass(frozen=True)
class _StationaryTrial:
    """Picklable per-seed trial body for :func:`stationary_trials`.

    A frozen dataclass (not a closure) so the process pool can ship it to
    workers; all randomness is derived from the seed inside ``__call__``,
    which is what makes the sweep deterministic under any worker count.
    """

    scenario: Scenario
    pipeline_factory: Optional[Callable[[], LocBLE]]
    use_env_prior: bool
    env: str
    legs: Tuple[float, float]
    fault_model: Optional[FaultModel] = None

    def __call__(self, seed: int):
        rng = np.random.default_rng(seed)
        sim = Simulator(self.scenario.floorplan, rng)
        walk = l_shape(
            self.scenario.observer_start, self.scenario.observer_heading_rad,
            leg1=self.legs[0], leg2=self.legs[1],
        )
        rec = sim.simulate(walk, [
            BeaconSpec("target", position=self.scenario.beacon_position)])
        trace = rec.rssi_traces["target"]
        faulted = self.fault_model is not None and not self.fault_model.is_null()
        if faulted:
            trace = self.fault_model.apply(trace, rng)
        if self.pipeline_factory is not None:
            pipeline = self.pipeline_factory()
        elif self.use_env_prior:
            pipeline = LocBLE(
                estimator=EllipticalEstimator().with_environment(self.env))
        else:
            pipeline = LocBLE()
        truth = rec.true_position_in_frame("target")
        if faulted:
            # Degraded inputs go through the graceful path: sanitization plus
            # the zero-confidence fallback instead of a refusal, so the
            # degradation curve keeps every trial it possibly can.
            est = pipeline.estimate_robust(trace, rec.observer_imu.trace)
            err = est.error_to(truth)
            return float(err) if math.isfinite(err) else _REFUSED
        try:
            est = pipeline.estimate(trace, rec.observer_imu.trace)
            return est.error_to(truth)
        except ReproError:
            return _REFUSED


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics of one error sample."""

    n: int
    n_failed: int
    mean: float
    median: float
    p75: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.n} (failed {self.n_failed}) "
                f"mean={self.mean:.2f} median={self.median:.2f} "
                f"p75={self.p75:.2f} p90={self.p90:.2f} "
                f"max={self.maximum:.2f}")


def stationary_trials(
    scenario: Scenario,
    seeds: Iterable[int],
    pipeline_factory: Optional[Callable[[], LocBLE]] = None,
    use_env_prior: bool = True,
    legs: Tuple[float, float] = (2.8, 2.2),
    failure_value: Optional[float] = None,
    max_workers: Optional[int] = None,
    parallel: str = "auto",
    fault_model: Optional[FaultModel] = None,
) -> List[float]:
    """Run seeded stationary-target measurements; return per-trial errors.

    ``failure_value`` replaces trials where the pipeline refuses to estimate
    (None drops them). With ``use_env_prior`` the estimator is configured
    with the scenario's true dominant environment class — what EnvAware
    would supply at runtime.

    ``fault_model`` (a :class:`repro.sim.faults.FaultModel`) degrades each
    trial's trace — bursty loss, outages, clock faults, spikes — before
    estimation; faulted trials run through
    :meth:`~repro.core.pipeline.LocBLE.estimate_robust`, so sanitization
    and graceful degradation are part of what the sweep measures.

    Trials are dispatched through :func:`repro.sim.parallel.run_trials`:
    each seed is self-contained, so ``max_workers`` / ``parallel`` change
    wall-clock time but never the returned errors. A closure
    ``pipeline_factory`` simply falls back to the serial path (closures
    don't pickle). Trials that crash (non-``ReproError``) are treated like
    refusals: replaced by ``failure_value`` or dropped.
    """
    env = scenario.floorplan.classify_link(
        scenario.beacon_position, scenario.observer_start).env_class
    trial = _StationaryTrial(
        scenario=scenario,
        pipeline_factory=pipeline_factory,
        use_env_prior=use_env_prior,
        env=env,
        legs=(float(legs[0]), float(legs[1])),
        fault_model=fault_model,
    )
    results = run_trials(
        trial, seeds, max_workers=max_workers, parallel=parallel)
    errors: List[float] = []
    for r in results:
        # Equality, not identity: the sentinel round-trips through pickle.
        if r.ok and r.value != _REFUSED:
            errors.append(float(r.value))
        elif failure_value is not None:
            errors.append(failure_value)
    return errors


def summarize(errors: Sequence[float], n_failed: int = 0) -> TrialSummary:
    """Summary statistics for an error sample."""
    e = np.asarray(list(errors), dtype=float)
    if e.size == 0:
        raise ConfigurationError("cannot summarise an empty error sample")
    if not np.all(np.isfinite(e)):
        raise ConfigurationError("error sample contains non-finite values")
    return TrialSummary(
        n=int(e.size),
        n_failed=n_failed,
        mean=float(np.mean(e)),
        median=float(np.median(e)),
        p75=float(np.percentile(e, 75)),
        p90=float(np.percentile(e, 90)),
        maximum=float(np.max(e)),
    )


def empirical_cdf(
    errors: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted errors, cumulative fractions) — ready to plot or tabulate."""
    e = np.sort(np.asarray(list(errors), dtype=float))
    if e.size == 0:
        raise ConfigurationError("cannot build a CDF from an empty sample")
    fractions = (np.arange(e.size) + 1) / e.size
    return e, fractions
