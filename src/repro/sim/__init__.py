"""Trace generation: measurement simulation, datasets, persistence."""

from repro.sim.datasets import EnvDatasetBuilder, LabeledWindow, windows_from_trace
from repro.sim.faults import (
    FaultModel,
    degradation_sweep,
    inject_bursty_loss,
    inject_clock_faults,
    inject_nonfinite,
    inject_outages,
    inject_spikes,
)
from repro.sim.montecarlo import (
    TrialSummary, empirical_cdf, stationary_trials, summarize,
)
from repro.sim.load import LoadConfig, LoadStream, generate_load
from repro.sim.parallel import TrialResult, effective_workers, run_trials
from repro.sim.simulator import BeaconSpec, MeasurementRecord, Simulator
from repro.sim.soak import SoakConfig, SoakResult, long_walk, run_soak
from repro.sim.simulator3d import Measurement3D, Simulator3D, ramp_profile
from repro.sim.traces import (
    imu_trace_from_dict,
    imu_trace_to_dict,
    load_session,
    rssi_trace_from_dict,
    rssi_trace_to_dict,
    save_session,
)

__all__ = [
    "EnvDatasetBuilder", "LabeledWindow", "windows_from_trace", "BeaconSpec",
    "MeasurementRecord", "Simulator", "Measurement3D", "Simulator3D",
    "ramp_profile", "TrialSummary", "empirical_cdf", "stationary_trials",
    "summarize", "TrialResult", "effective_workers", "run_trials",
    "FaultModel", "degradation_sweep", "inject_bursty_loss",
    "inject_clock_faults", "inject_nonfinite", "inject_outages",
    "inject_spikes",
    "SoakConfig", "SoakResult", "long_walk", "run_soak",
    "LoadConfig", "LoadStream", "generate_load",
    "imu_trace_from_dict",
    "imu_trace_to_dict", "load_session", "rssi_trace_from_dict",
    "rssi_trace_to_dict", "save_session",
]
