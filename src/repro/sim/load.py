"""Fleet-scale load generation: hundreds-to-thousands of beacon streams.

The soak harness (:mod:`repro.sim.soak`) exercises *depth* — one or a few
beacons over a long horizon. Load testing the sharded fleet needs *width*:
hundreds to thousands of concurrent beacon streams with realistic arrival
statistics, which a full per-beacon radio simulation cannot deliver at an
acceptable cost. This module gets both realism and scale with **template
amplification**, the standard load-generator trick:

1. A small set of *template* beacons is simulated through the full channel
   model (path loss, shadowing, fading, scanning) along one long observer
   walk — exactly the soak harness's world.
2. Each load beacon resamples a template's RSSI-vs-time curve onto its own
   advertisement **arrival process** — per-advertisement Poisson, a BLE-style
   jittered periodic schedule, or an ON/OFF bursty regime (the duty-cycled
   scanning the BLEBeacon deployment dataset reports) — plus a small
   per-beacon RSSI jitter so no two streams are byte-equal.
3. Optional :class:`~repro.sim.faults.FaultModel` degradations apply
   per-beacon on top.

The result preserves what matters for load: per-stream solvability (the
geometry underneath is a real simulated walk) and controllable offered
sample rate, while generation cost scales with *templates*, not beacons.
Everything is seeded and deterministic, like the rest of ``repro.sim``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.faults import FaultModel
from repro.sim.simulator import BeaconSpec, Simulator
from repro.sim.soak import long_walk
from repro.types import ImuSample, RssiSample, RssiTrace, Vec2
from repro.world.scenarios import scenario

__all__ = ["ARRIVALS", "LoadConfig", "LoadStream", "generate_load"]

#: Supported advertisement arrival processes.
ARRIVALS = ("poisson", "periodic", "bursty")


@dataclass(frozen=True)
class LoadConfig:
    """One load workload: world, fleet width, arrival statistics, faults.

    ``rate_hz`` is the *mean* advertisement rate per beacon, so offered
    load is ``n_beacons * rate_hz`` samples/s regardless of the arrival
    process; ``bursty`` concentrates the same mean into ON windows of
    ``burst_duty`` duty cycle over ``burst_period_s``.
    """

    duration_s: float = 60.0
    tick_s: float = 1.0
    seed: int = 0
    scenario_index: int = 6
    n_beacons: int = 100
    template_beacons: int = 4
    arrival: str = "poisson"
    rate_hz: float = 5.0
    burst_duty: float = 0.4
    burst_period_s: float = 10.0
    rssi_jitter_db: float = 0.8
    fault: FaultModel = field(default_factory=FaultModel)

    def __post_init__(self) -> None:
        if not (math.isfinite(self.duration_s) and self.duration_s > 0):
            raise ConfigurationError("duration_s must be finite and > 0")
        if not (math.isfinite(self.tick_s) and self.tick_s > 0):
            raise ConfigurationError("tick_s must be finite and > 0")
        if self.n_beacons < 1:
            raise ConfigurationError("n_beacons must be >= 1")
        if not 1 <= self.template_beacons <= self.n_beacons:
            raise ConfigurationError(
                "template_beacons must be in [1, n_beacons]"
            )
        if self.arrival not in ARRIVALS:
            raise ConfigurationError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}"
            )
        if not (math.isfinite(self.rate_hz) and self.rate_hz > 0):
            raise ConfigurationError("rate_hz must be finite and > 0")
        if not 0.0 < self.burst_duty <= 1.0:
            raise ConfigurationError("burst_duty must be in (0, 1]")
        if not (math.isfinite(self.burst_period_s)
                and self.burst_period_s > 0):
            raise ConfigurationError("burst_period_s must be finite and > 0")
        if not (math.isfinite(self.rssi_jitter_db)
                and self.rssi_jitter_db >= 0):
            raise ConfigurationError("rssi_jitter_db must be >= 0")


@dataclass(frozen=True)
class LoadStream:
    """A generated workload, sliced into per-tick ingest batches."""

    #: ``(t, scan_batch, imu_batch)`` per tick, ready to replay.
    ticks: Tuple[Tuple[float, Tuple[RssiSample, ...],
                       Tuple[ImuSample, ...]], ...]
    #: Total scan samples offered across the whole stream.
    offered_samples: int
    #: Offered sample rate (samples/s over the stream duration).
    offered_per_s: float
    n_beacons: int
    duration_s: float


def _arrival_times(
    config: LoadConfig, rng: np.random.Generator
) -> np.ndarray:
    """Advertisement timestamps in ``(0, duration_s)`` for one beacon."""
    d, rate = config.duration_s, config.rate_hz
    if config.arrival == "poisson":
        # Draw enough exponential gaps in one shot, then trim.
        n_hint = int(rate * d * 1.5) + 16
        gaps = rng.exponential(1.0 / rate, size=n_hint)
        ts = np.cumsum(gaps)
        while ts[-1] < d:  # rare: extend until the horizon is covered
            more = np.cumsum(rng.exponential(1.0 / rate, size=n_hint))
            ts = np.concatenate([ts, ts[-1] + more])
        return ts[ts < d]
    if config.arrival == "periodic":
        # BLE advertising: fixed interval plus a small random advDelay.
        interval = 1.0 / rate
        base = np.arange(rng.uniform(0.0, interval), d, interval)
        ts = base + rng.uniform(0.0, 0.01, size=base.shape)
        return np.sort(ts[ts < d])
    # bursty: ON/OFF square wave; the ON-phase rate is scaled so the
    # long-run mean stays rate_hz.
    on_rate = rate / config.burst_duty
    n_hint = int(on_rate * d * 1.5) + 16
    ts = np.cumsum(rng.exponential(1.0 / on_rate, size=n_hint))
    while ts[-1] < d:
        more = np.cumsum(rng.exponential(1.0 / on_rate, size=n_hint))
        ts = np.concatenate([ts, ts[-1] + more])
    ts = ts[ts < d]
    phase_offset = rng.uniform(0.0, config.burst_period_s)
    phase = np.mod(ts + phase_offset, config.burst_period_s)
    return ts[phase < config.burst_duty * config.burst_period_s]


def _simulate_templates(
    config: LoadConfig, rng: np.random.Generator
) -> Tuple[List[RssiTrace], List[ImuSample]]:
    """One full-fidelity world: template beacon traces + the observer IMU."""
    sc = scenario(config.scenario_index)
    walk = long_walk(
        sc.observer_start, rng,
        bounds=(sc.floorplan.width, sc.floorplan.height),
        duration_s=config.duration_s,
    )
    specs = []
    for k in range(config.template_beacons):
        offset = (Vec2(0.0, 0.0) if k == 0
                  else Vec2.from_polar(
                      0.6 + 0.2 * k,
                      2.0 * math.pi * k / config.template_beacons))
        specs.append(BeaconSpec(f"tpl{k}", position=sc.beacon_position + offset))
    rec = Simulator(sc.floorplan, rng).simulate(walk, specs)
    templates = [rec.rssi_traces[s.beacon_id] for s in specs]
    for k, tpl in enumerate(templates):
        if len(tpl) < 2:
            raise ConfigurationError(
                f"template beacon {k} produced <2 samples; "
                "scenario/duration too hostile for load generation"
            )
    return templates, list(rec.observer_imu.trace.samples)


def generate_load(config: LoadConfig) -> LoadStream:
    """Build the full per-tick ingest schedule for one load workload."""
    world_rng = np.random.default_rng(config.seed)
    templates, imu = _simulate_templates(config, world_rng)

    scans: List[RssiSample] = []
    for i in range(config.n_beacons):
        rng = np.random.default_rng((config.seed, 7919, i))
        tpl = templates[i % len(templates)]
        tpl_ts = np.array([s.timestamp for s in tpl.samples])
        tpl_rssi = np.array([s.rssi for s in tpl.samples])
        ts = _arrival_times(config, rng)
        rssi = np.interp(ts, tpl_ts, tpl_rssi)
        if config.rssi_jitter_db > 0.0:
            rssi = rssi + rng.normal(0.0, config.rssi_jitter_db,
                                     size=rssi.shape)
        beacon_id = f"b{i:05d}"
        trace = RssiTrace([
            RssiSample(float(t), float(r), beacon_id, 37)
            for t, r in zip(ts, rssi)
        ])
        if not config.fault.is_null():
            trace = config.fault.apply(trace, rng)
        scans.extend(trace.samples)
    scans.sort(key=lambda s: (s.timestamp, s.beacon_id))

    ticks = []
    n_ticks = int(math.ceil(config.duration_s / config.tick_s))
    si = ii = 0
    for k in range(1, n_ticks + 1):
        t = k * config.tick_s
        sj = si
        while sj < len(scans) and scans[sj].timestamp < t:
            sj += 1
        ij = ii
        while ij < len(imu) and imu[ij].timestamp < t:
            ij += 1
        ticks.append((t, tuple(scans[si:sj]), tuple(imu[ii:ij])))
        si, ii = sj, ij
    return LoadStream(
        ticks=tuple(ticks),
        offered_samples=len(scans),
        offered_per_s=len(scans) / config.duration_s,
        n_beacons=config.n_beacons,
        duration_s=config.duration_s,
    )
