"""End-to-end measurement simulation: world + channel + BLE + IMU.

:class:`Simulator` produces a :class:`MeasurementRecord` — everything a
LocBLE measurement session would collect on a phone (RSSI traces per beacon,
the observer's IMU stream, and, for moving targets, the target's IMU
stream), plus the ground truth an experiment scores against. The LocBLE
core consumes only the sensor-facing fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ble.advertiser import Advertiser
from repro.ble.devices import BEACONS, PHONES, BeaconProfile, PhoneProfile
from repro.ble.interference import CrowdInterference
from repro.ble.scanner import CODED_PHY_SENSITIVITY_GAIN_DB, Scanner
from repro.channel.link import RadioLink
from repro.errors import ConfigurationError
from repro.imu.sensors import ImuSynthesizer, SynthesizedImu
from repro.types import RssiSample, RssiTrace, Vec2
from repro.world.floorplan import Floorplan
from repro.world.trajectory import Trajectory

__all__ = ["BeaconSpec", "MeasurementRecord", "Simulator"]


@dataclass
class BeaconSpec:
    """One beacon in a scenario: static at ``position`` or on a trajectory."""

    beacon_id: str
    position: Optional[Vec2] = None
    trajectory: Optional[Trajectory] = None
    profile: BeaconProfile = field(default_factory=lambda: BEACONS["estimote"])

    def __post_init__(self) -> None:
        if (self.position is None) == (self.trajectory is None):
            raise ConfigurationError(
                "a beacon needs exactly one of position / trajectory"
            )

    @property
    def moving(self) -> bool:
        return self.trajectory is not None

    def position_at(self, t: float) -> Vec2:
        if self.trajectory is not None:
            return self.trajectory.position_at(t)
        return self.position


@dataclass
class MeasurementRecord:
    """One simulated measurement session with its ground truth."""

    observer_trajectory: Trajectory
    observer_imu: SynthesizedImu
    rssi_traces: Dict[str, RssiTrace]
    env_labels: Dict[str, List[str]]  # per-sample true env class, aligned
    beacons: Dict[str, BeaconSpec]
    floorplan: Floorplan
    phone: PhoneProfile
    target_imu: Optional[SynthesizedImu] = None
    target_id: Optional[str] = None

    def true_position_in_frame(self, beacon_id: str, t: Optional[float] = None) -> Vec2:
        """Ground-truth beacon position in the measurement frame.

        For moving targets the paper scores error "at its initial location",
        so ``t`` defaults to the measurement start.
        """
        spec = self.beacons[beacon_id]
        when = self.observer_trajectory.times[0] if t is None else t
        return self.observer_trajectory.to_frame(spec.position_at(when))

    def true_distance(self, beacon_id: str, t: Optional[float] = None) -> float:
        """Ground-truth observer-origin → beacon distance (metres)."""
        return self.true_position_in_frame(beacon_id, t).norm()


@dataclass
class Simulator:
    """Generates measurement sessions on a floorplan.

    ``crowd`` (optional) models a crowded deployment (Sec. 9.2): audible
    ambient BLE devices add scan-contention loss and RSS jitter on top of
    any explicit ``interference_loss_prob``.
    """

    floorplan: Floorplan
    rng: np.random.Generator
    phone: PhoneProfile = field(default_factory=lambda: PHONES["iphone_6s"])
    interference_loss_prob: float = 0.0
    fading_enabled: bool = True
    #: Optional small-scale fading coherence time (s) forwarded to every
    #: link; None keeps packets' fades independent.
    fading_coherence_s: Optional[float] = None
    imu_rate_hz: float = 50.0
    crowd: Optional["CrowdInterference"] = None

    def simulate(
        self,
        observer: Trajectory,
        beacons: List[BeaconSpec],
        t_pad_s: float = 0.5,
    ) -> MeasurementRecord:
        """Run one measurement session along the observer trajectory."""
        if not beacons:
            raise ConfigurationError("need at least one beacon")
        ids = [b.beacon_id for b in beacons]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("beacon ids must be unique")

        t0 = observer.times[0]
        t1 = observer.times[-1] + t_pad_s

        interference = self.interference_loss_prob
        crowd_jitter = 0.0
        if self.crowd is not None:
            crowd_loss = self.crowd.loss_probability(len(beacons))
            interference = 1.0 - (1.0 - interference) * (1.0 - crowd_loss)
            crowd_jitter = self.crowd.extra_jitter_db(len(beacons))
        scanner = Scanner(
            self.phone,
            self.rng,
            interference_loss_prob=min(interference, 0.95),
        )
        traces: Dict[str, RssiTrace] = {}
        env_labels: Dict[str, List[str]] = {}
        for spec in beacons:
            link = RadioLink(
                floorplan=self.floorplan,
                rng=self.rng,
                gamma_dbm=spec.profile.gamma_dbm,
                rx_noise_offset_db=self.phone.rx_offset_db,
                rx_jitter_std_db=self.phone.rx_jitter_std_db,
                fading_enabled=self.fading_enabled,
                fading_coherence_s=self.fading_coherence_s,
                quantise=False,  # quantise last, after beacon tx jitter
            )
            advertiser = Advertiser(spec.profile, self.rng)
            raw: List[RssiSample] = []
            labels: List[str] = []
            for ev in advertiser.events(t0, t1):
                tx = spec.position_at(ev.timestamp)
                rx = observer.position_at(ev.timestamp)
                obs = link.observe(tx, rx, ev.timestamp, ev.channel)
                rssi = obs.rss_dbm
                if spec.profile.tx_jitter_std_db > 0:
                    rssi += float(
                        self.rng.normal(0.0, spec.profile.tx_jitter_std_db)
                    )
                if crowd_jitter > 0.0:
                    rssi += float(self.rng.normal(0.0, crowd_jitter))
                raw.append(
                    RssiSample(
                        ev.timestamp, float(round(rssi)), spec.beacon_id, ev.channel
                    )
                )
                labels.append(obs.env_class)
            if spec.profile.coded_phy:
                # The long-range coded PHY decodes a few dB deeper.
                scanner.sensitivity_dbm = (
                    Scanner.__dataclass_fields__["sensitivity_dbm"].default
                    - CODED_PHY_SENSITIVITY_GAIN_DB
                )
            else:
                scanner.sensitivity_dbm = Scanner.__dataclass_fields__[
                    "sensitivity_dbm"
                ].default
            kept = scanner.filter_indices(raw)
            traces[spec.beacon_id] = RssiTrace([raw[i] for i in kept])
            env_labels[spec.beacon_id] = [labels[i] for i in kept]

        imu_synth = ImuSynthesizer(self.rng, rate_hz=self.imu_rate_hz)
        observer_imu = imu_synth.synthesize(observer, t_pad_s=t_pad_s)

        target_imu = None
        target_id = None
        movers = [b for b in beacons if b.moving]
        if movers:
            if len(movers) > 1:
                raise ConfigurationError("at most one moving target per session")
            target_id = movers[0].beacon_id
            target_imu = ImuSynthesizer(self.rng, rate_hz=self.imu_rate_hz).synthesize(
                movers[0].trajectory, t_pad_s=t_pad_s
            )

        return MeasurementRecord(
            observer_trajectory=observer,
            observer_imu=observer_imu,
            rssi_traces=traces,
            env_labels=env_labels,
            beacons={b.beacon_id: b for b in beacons},
            floorplan=self.floorplan,
            phone=self.phone,
            target_imu=target_imu,
            target_id=target_id,
        )
