"""Long-horizon soak testing of the streaming tracking service.

The robustness claims of :mod:`repro.service` are *temporal*: a session must
ride out minutes of bursty loss and whole scan outages, a checkpoint taken
mid-stream must resume bit-identically, and nothing in the stack may ever
throw an untyped exception at the supervisor. None of that is visible in a
single-batch test — it needs hours-equivalent of simulated stream time with
faults injected, which is what this harness provides::

    from repro.sim.faults import FaultModel
    from repro.sim.soak import SoakConfig, run_soak

    result = run_soak(SoakConfig(
        duration_s=300.0,
        fault=FaultModel(loss_rate=0.3, n_outages=2, outage_s=60.0),
        checkpoint_t=150.0,
    ))
    assert result.untyped_errors == 0 and result.checkpoint_equal

The harness simulates one long multi-leg walk, degrades each beacon's trace
through :class:`~repro.sim.faults.FaultModel`, and replays the stream into a
:class:`~repro.service.TrackingService` tick by tick. With ``checkpoint_t``
set it additionally performs a *kill-and-resume*: the service is
checkpointed at that stream time (through a JSON round trip, i.e. exactly
what a process restart would read back from disk), a fresh service is
restored from it, and both the uninterrupted original and the resumed copy
replay the remaining stream — their snapshot sequences must match exactly.

Everything is seeded and deterministic; ``python -m repro soak`` wraps this
module for the command line.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs, perf
from repro.errors import ConfigurationError, ReproError
from repro.service import ServiceConfig, TrackingService
from repro.service.session import SessionSnapshot
from repro.sim.faults import FaultModel
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import ImuSample, RssiSample, Vec2
from repro.world.scenarios import scenario
from repro.world.trajectory import DEFAULT_WALK_SPEED, Trajectory

__all__ = ["SoakConfig", "SoakResult", "run_soak", "long_walk"]


@dataclass(frozen=True)
class SoakConfig:
    """One soak experiment: world, faults, stream schedule, kill point."""

    duration_s: float = 300.0
    tick_s: float = 1.0
    seed: int = 0
    scenario_index: int = 6
    n_beacons: int = 1
    fault: FaultModel = field(default_factory=FaultModel)
    #: Stream time of the mid-run kill-and-resume; ``None`` skips the
    #: checkpoint/restore equivalence phase.
    checkpoint_t: Optional[float] = None
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Optional path for a durable JSON-lines event log of the whole run
    #: (readable by ``python -m repro obs report``). The in-memory event
    #: accounting in :attr:`SoakResult.events` happens either way.
    events_jsonl: Optional[str] = None
    #: Drive the service through :meth:`TrackingService.tick_batch`
    #: (one batched solve dispatch per tick) instead of the sequential
    #: :meth:`~TrackingService.step` — the two must produce identical
    #: snapshot streams, so soaking the batch path is a standing
    #: equivalence check against the sequential one.
    batch_ticks: bool = False

    def __post_init__(self) -> None:
        if not (math.isfinite(self.duration_s) and self.duration_s > 0):
            raise ConfigurationError("duration_s must be finite and > 0")
        if not (math.isfinite(self.tick_s) and self.tick_s > 0):
            raise ConfigurationError("tick_s must be finite and > 0")
        if self.n_beacons < 1:
            raise ConfigurationError("n_beacons must be >= 1")
        if self.checkpoint_t is not None and not (
            0.0 < self.checkpoint_t < self.duration_s
        ):
            raise ConfigurationError(
                "checkpoint_t must fall inside (0, duration_s)"
            )


@dataclass(frozen=True)
class SoakResult:
    """Everything a soak run observed, ready for assertions and reports."""

    duration_s: float
    ticks: int
    #: Per-beacon snapshot sequence from the uninterrupted run.
    snapshots: Dict[str, List[SessionSnapshot]]
    #: Per-beacon health transitions ``(t, from, to)``.
    transitions: Dict[str, List[Tuple[float, str, str]]]
    #: Per-beacon seconds spent in each session state.
    dwell: Dict[str, Dict[str, float]]
    #: Service-aggregated event counters (solves, fixes, sheds, trips...).
    counters: Dict[str, int]
    #: Final :meth:`TrackingService.stats` of the uninterrupted run.
    stats: Dict[str, object]
    #: ``"ExcType: message"`` for every exception the stream driver caught.
    errors: Tuple[str, ...]
    #: How many of those were *untyped* (not a :class:`ReproError`) — the
    #: service's contract is that this is always zero.
    untyped_errors: int
    #: Kill-and-resume verdict: ``None`` when no checkpoint was requested,
    #: else whether the resumed run matched the uninterrupted one exactly.
    checkpoint_equal: Optional[bool]
    #: First stream time at which the resumed run diverged (None if never).
    divergence_t: Optional[float]
    #: Structured-event volume by event name over the whole run (drained
    #: from a run-scoped :class:`repro.obs.RingBufferSink`).
    events: Dict[str, int] = field(default_factory=dict)
    #: :mod:`repro.perf` counter deltas over the run — the cross-check
    #: partner of :attr:`events` (e.g. ``fix.provenance`` events must equal
    #: the ``service.fixes_accepted`` delta).
    perf_counters: Dict[str, int] = field(default_factory=dict)
    #: Where the JSON-lines event log was written (None when not requested).
    events_jsonl: Optional[str] = None

    def states_visited(self, beacon_id: str) -> List[str]:
        """Distinct session states in first-visit order (incl. the start)."""
        seen: List[str] = []
        for snap in self.snapshots.get(beacon_id, []):
            if not seen or seen[-1] != snap.state:
                seen.append(snap.state)
        return seen


def long_walk(
    start: Vec2,
    rng: np.random.Generator,
    bounds: Tuple[float, float],
    duration_s: float,
    leg_range: Tuple[float, float] = (1.5, 4.0),
    speed: float = DEFAULT_WALK_SPEED,
    margin: float = 0.5,
) -> Trajectory:
    """A seeded multi-leg random walk lasting at least ``duration_s``.

    Unlike :func:`~repro.world.trajectory.random_waypoint_walk` the leg
    count is not fixed up front — legs are appended until the walk covers
    the requested stream duration, staying ``margin`` metres inside
    ``bounds``.
    """
    if speed <= 0:
        raise ConfigurationError("speed must be positive")
    lo = Vec2(margin, margin)
    hi = Vec2(bounds[0] - margin, bounds[1] - margin)
    if lo.x >= hi.x or lo.y >= hi.y:
        raise ConfigurationError("bounds too small for the walk margin")
    pts = [start]
    times = [0.0]
    while times[-1] < duration_s + 2.0:
        for _attempt in range(64):
            length = rng.uniform(*leg_range)
            heading = rng.uniform(-math.pi, math.pi)
            nxt = pts[-1] + Vec2.from_polar(length, heading)
            if lo.x <= nxt.x <= hi.x and lo.y <= nxt.y <= hi.y:
                pts.append(nxt)
                times.append(times[-1] + length / speed)
                break
        else:
            raise ConfigurationError(
                "could not place a soak-walk leg inside the bounds"
            )
    return Trajectory(pts, times)


def _snapshot_key(snap: SessionSnapshot) -> tuple:
    """The bit-identity contract of a snapshot.

    ``estimate`` is deliberately excluded: the last in-memory estimate is
    transient (regenerated at the next solve) and not part of the
    checkpoint format.
    """
    return (
        snap.beacon_id, snap.t, snap.state, snap.breaker_state,
        snap.fix_age_s, snap.track, snap.buffered, snap.shed,
    )


def _build_stream(config: SoakConfig):
    """Simulate the world once and slice it into per-tick ingest batches."""
    sc = scenario(config.scenario_index)
    rng = np.random.default_rng(config.seed)
    walk = long_walk(
        sc.observer_start, rng,
        bounds=(sc.floorplan.width, sc.floorplan.height),
        duration_s=config.duration_s,
    )
    beacons = []
    for k in range(config.n_beacons):
        offset = (Vec2(0.0, 0.0) if k == 0
                  else Vec2.from_polar(0.6 + 0.2 * k,
                                       2.0 * math.pi * k / config.n_beacons))
        beacons.append(
            BeaconSpec(f"b{k}", position=sc.beacon_position + offset)
        )
    sim = Simulator(sc.floorplan, rng)
    rec = sim.simulate(walk, beacons)

    fault_rng = np.random.default_rng(config.seed + 977)
    scans: List[RssiSample] = []
    for spec in beacons:
        degraded = config.fault.apply(rec.rssi_traces[spec.beacon_id],
                                      fault_rng)
        scans.extend(degraded.samples)
    scans.sort(key=lambda s: (s.timestamp, s.beacon_id))
    imu: List[ImuSample] = list(rec.observer_imu.trace.samples)

    ticks: List[Tuple[float, List[RssiSample], List[ImuSample]]] = []
    n_ticks = int(math.ceil(config.duration_s / config.tick_s))
    si = ii = 0
    for k in range(1, n_ticks + 1):
        t = k * config.tick_s
        sj = si
        while sj < len(scans) and scans[sj].timestamp < t:
            sj += 1
        ij = ii
        while ij < len(imu) and imu[ij].timestamp < t:
            ij += 1
        ticks.append((t, scans[si:sj], imu[ii:ij]))
        si, ii = sj, ij
    return ticks


def _drive(
    service: TrackingService,
    ticks,
    errors: List[str],
    batch: bool = False,
) -> Dict[str, List[SessionSnapshot]]:
    """Replay ingest batches into a service, capturing every exception.

    The service's contract is to *never* raise on data; anything caught
    here is recorded as a soak failure rather than aborting the run, so a
    single bug cannot hide later ones. With ``batch`` the stream is
    stepped through :meth:`TrackingService.tick_batch` instead of
    :meth:`~TrackingService.step`.
    """
    out: Dict[str, List[SessionSnapshot]] = {}
    for t, scan_batch, imu_batch in ticks:
        try:
            service.ingest_scans(scan_batch)
            service.ingest_imu(imu_batch)
            snaps = (service.tick_batch(t) if batch else service.step(t))
        except Exception as exc:  # noqa: BLE001 — the whole point of a soak
            errors.append(f"{type(exc).__name__}: {exc}")
            continue
        for beacon_id, snap in snaps.items():
            out.setdefault(beacon_id, []).append(snap)
    return out


def run_soak(config: Optional[SoakConfig] = None) -> SoakResult:
    """Run one seeded soak experiment; see the module docstring.

    The whole run is observed through run-scoped :mod:`repro.obs` sinks: a
    counting sink whose per-event-name totals land in
    :attr:`SoakResult.events`, and (with ``events_jsonl`` set) a durable
    JSON-lines log for ``python -m repro obs report``. The
    :mod:`repro.perf` counter deltas over the same interval are captured
    alongside so acceptance tests can cross-check that every fix, shed,
    breaker trip and covariance fallback is accounted for in both ledgers.
    """
    config = config or SoakConfig()
    ticks = _build_stream(config)
    errors: List[str] = []

    counting = obs.add_sink(obs.CountingSink())
    jsonl: Optional[obs.JsonLinesSink] = None
    if config.events_jsonl is not None:
        jsonl = obs.add_sink(obs.JsonLinesSink(config.events_jsonl))
    try:
        return _run_soak_observed(config, ticks, errors, counting)
    finally:
        obs.remove_sink(counting)
        if jsonl is not None:
            obs.remove_sink(jsonl)
            jsonl.close()


def _run_soak_observed(
    config: SoakConfig,
    ticks,
    errors: List[str],
    counting: "obs.CountingSink",
) -> SoakResult:
    perf_before = dict(perf.snapshot()["counters"])
    service = TrackingService(config.service)
    checkpoint_json: Optional[str] = None
    if config.checkpoint_t is not None:
        cut = next(
            (i for i, (t, _, _) in enumerate(ticks)
             if t >= config.checkpoint_t),
            len(ticks) - 1,
        )
        head, tail = ticks[: cut + 1], ticks[cut + 1:]
        snapshots = _drive(service, head, errors, batch=config.batch_ticks)
        # The kill: what a restarting process would read back from disk.
        checkpoint_json = json.dumps(service.checkpoint())
        for beacon_id, snaps in _drive(service, tail, errors,
                                       batch=config.batch_ticks).items():
            snapshots.setdefault(beacon_id, []).extend(snaps)
        resumed = TrackingService.restore(json.loads(checkpoint_json))
        resumed_snaps = _drive(resumed, tail, errors,
                               batch=config.batch_ticks)
    else:
        tail = []
        snapshots = _drive(service, ticks, errors,
                           batch=config.batch_ticks)
        resumed_snaps = None

    checkpoint_equal: Optional[bool] = None
    divergence_t: Optional[float] = None
    if resumed_snaps is not None:
        checkpoint_equal = True
        n_tail = len(tail)
        for beacon_id, full in sorted(snapshots.items()):
            original = full[len(full) - n_tail:]
            resumed_seq = resumed_snaps.get(beacon_id, [])
            if len(original) != len(resumed_seq):
                checkpoint_equal = False
                divergence_t = original[0].t if original else None
                break
            for a, b in zip(original, resumed_seq):
                if _snapshot_key(a) != _snapshot_key(b):
                    checkpoint_equal = False
                    divergence_t = a.t
                    break
            if not checkpoint_equal:
                break

    t_end = ticks[-1][0] if ticks else 0.0
    transitions = {
        beacon_id: list(sess.health.transitions)
        for beacon_id, sess in sorted(service.sessions.items())
    }
    dwell = {
        beacon_id: sess.health.dwell(t_end)
        for beacon_id, sess in sorted(service.sessions.items())
    }
    stats = service.stats()
    perf_after = perf.snapshot()["counters"]
    perf_delta = {
        name: int(count) - int(perf_before.get(name, 0))
        for name, count in sorted(perf_after.items())
        if int(count) - int(perf_before.get(name, 0)) > 0
    }
    return SoakResult(
        duration_s=config.duration_s,
        ticks=len(ticks),
        snapshots=snapshots,
        transitions=transitions,
        dwell=dwell,
        counters=dict(stats["counters"]),
        stats=stats,
        errors=tuple(errors),
        untyped_errors=sum(
            1 for e in errors
            if not e.split(":", 1)[0] in _REPRO_ERROR_NAMES
        ),
        checkpoint_equal=checkpoint_equal,
        divergence_t=divergence_t,
        events=dict(sorted(counting.by_name.items())),
        perf_counters=perf_delta,
        events_jsonl=config.events_jsonl,
    )


def _repro_error_names() -> frozenset:
    names = set()
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        names.add(cls.__name__)
        stack.extend(cls.__subclasses__())
    return frozenset(names)


_REPRO_ERROR_NAMES = _repro_error_names()
