"""Labelled RSS datasets for training and evaluating EnvAware.

Reproduces the paper's data-collection protocol (Sec. 4.1): "for the blocked
type, we placed one device behind a blocking object, the other device stores
all the RSS data while moving around in front of the object. We also varied
the blocking object, like wall, human body, etc." — here, per class, we
build floorplans whose blocker (none / low-coefficient / high-coefficient)
sits between the beacon and the whole walking area, run random walks, and
slice the reported traces into fixed-length windows labelled with the class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ble.devices import BEACONS, PHONES
from repro.errors import ConfigurationError
from repro.sim.simulator import BeaconSpec, Simulator
from repro.types import EnvClass, RssiTrace, Vec2
from repro.world.floorplan import Floorplan
from repro.world.obstacles import wall
from repro.world.trajectory import random_waypoint_walk

__all__ = ["LabeledWindow", "EnvDatasetBuilder", "windows_from_trace"]

#: Blocker materials used per class when building training rooms.
_CLASS_MATERIALS: Dict[str, List[str]] = {
    EnvClass.P_LOS: ["glass", "wood_door", "human_body", "drywall"],
    EnvClass.NLOS: ["concrete_wall", "cinder_wall", "metal_board", "shelf_rack"],
}


@dataclass(frozen=True)
class LabeledWindow:
    """One fixed-duration RSS window with its ground-truth environment."""

    values: np.ndarray
    label: str


def windows_from_trace(
    trace: RssiTrace,
    labels: Sequence[str],
    window_s: float = 2.0,
    min_samples: int = 8,
) -> List[LabeledWindow]:
    """Slice a trace into windows labelled by their majority env class.

    Windows with fewer than ``min_samples`` readings are dropped (too sparse
    for meaningful statistics — the paper's windows carry ~18 samples at
    9 Hz over 2 s).
    """
    if len(trace) != len(labels):
        raise ConfigurationError("labels must align with trace samples")
    if len(trace) == 0:
        return []
    out: List[LabeledWindow] = []
    ts = trace.timestamps()
    vals = trace.values()
    t = float(ts[0])
    t_end = float(ts[-1])
    while t < t_end:
        mask = (ts >= t) & (ts < t + window_s)
        idx = np.flatnonzero(mask)
        if len(idx) >= min_samples:
            window_labels = [labels[i] for i in idx]
            majority = max(set(window_labels), key=window_labels.count)
            out.append(LabeledWindow(vals[idx].copy(), majority))
        t += window_s
    return out


@dataclass
class EnvDatasetBuilder:
    """Generates a balanced labelled window dataset over the three classes."""

    rng: np.random.Generator
    room_size_m: float = 8.0
    window_s: float = 2.0
    walk_legs: int = 6

    def build(
        self, sessions_per_class: int = 12
    ) -> Tuple[List[np.ndarray], List[str]]:
        """Return (windows, labels); windows are raw RSSI arrays."""
        if sessions_per_class < 1:
            raise ConfigurationError("sessions_per_class must be >= 1")
        windows: List[np.ndarray] = []
        labels: List[str] = []
        for env_class in EnvClass.ALL:
            for _ in range(sessions_per_class):
                for w in self._session_windows(env_class):
                    windows.append(w.values)
                    labels.append(w.label)
        return windows, labels

    def _session_windows(self, env_class: str) -> List[LabeledWindow]:
        size = self.room_size_m
        obstacles = []
        if env_class != EnvClass.LOS:
            material = str(
                self.rng.choice(_CLASS_MATERIALS[env_class])
            )
            # A blocker spanning the room between the beacon strip (top) and
            # the walking area (bottom).
            y = 0.72 * size
            obstacles = [wall(0.0, y, size, y, material)]
        plan = Floorplan(f"train_{env_class}", size, size, obstacles=obstacles)

        beacon_pos = Vec2(
            float(self.rng.uniform(0.2 * size, 0.8 * size)),
            float(self.rng.uniform(0.85 * size, 0.95 * size)),
        )
        start = Vec2(
            float(self.rng.uniform(0.15 * size, 0.85 * size)),
            float(self.rng.uniform(0.1 * size, 0.45 * size)),
        )
        walk = random_waypoint_walk(
            start,
            n_legs=self.walk_legs,
            rng=self.rng,
            leg_range=(1.5, 3.5),
            bounds=(size, 0.6 * size),  # stay below the blocker line
        )
        phone = PHONES[str(self.rng.choice(sorted(PHONES)))]
        sim = Simulator(plan, self.rng, phone=phone)
        rec = sim.simulate(
            walk,
            [BeaconSpec("trainer", position=beacon_pos,
                        profile=BEACONS["estimote"])],
        )
        trace = rec.rssi_traces["trainer"]
        # Use the *forced* class as the label: the room geometry guarantees
        # the blocker sits in the path for the whole session.
        return windows_from_trace(
            trace, [env_class] * len(trace), window_s=self.window_s
        )
