"""Fault injection: degrade clean simulated traces the way real radios do.

The paper evaluates LocBLE under the clean end of the spectrum; real
deployments live at the other end — advertisements lost in bursts when the
channel fades or WiFi contends (the Gilbert-Elliott regime the packet-count
work of De et al. models), whole-seconds scan outages when the OS throttles
the radio, receiver clocks that drift and jitter, and RSS spikes from
interferers. This module turns each pathology into a deterministic,
seedable transform on an :class:`~repro.types.RssiTrace`, and composes them
into a picklable :class:`FaultModel` that plugs straight into the
Monte-Carlo runner — a degradation curve is then a one-call experiment::

    from repro.sim.faults import FaultModel, degradation_sweep

    curves = degradation_sweep(
        scenario(1), seeds=range(20),
        fault_models=[FaultModel(loss_rate=r) for r in (0.0, 0.1, 0.3, 0.5)],
    )

Every injector takes an explicit ``rng`` so trials stay bit-reproducible
under any worker count, exactly like the rest of ``repro.sim``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import RssiSample, RssiTrace

__all__ = [
    "FaultModel",
    "FrameFate",
    "TransportFaultModel",
    "inject_bursty_loss",
    "inject_outages",
    "inject_clock_faults",
    "inject_spikes",
    "inject_nonfinite",
    "degradation_sweep",
]


def _rebuild(trace: RssiTrace, keep: np.ndarray) -> RssiTrace:
    return RssiTrace([s for s, k in zip(trace.samples, keep) if k])


def inject_bursty_loss(
    trace: RssiTrace,
    rng: np.random.Generator,
    loss_rate: float,
    mean_burst: float = 3.0,
) -> RssiTrace:
    """Drop advertisements via a two-state Gilbert-Elliott loss process.

    ``loss_rate`` is the long-run fraction of samples lost; ``mean_burst``
    the expected run length of consecutive losses (samples). Independent
    per-sample loss is the special case ``mean_burst -> 1``.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ConfigurationError("loss_rate must be in [0, 1)")
    if mean_burst < 1.0:
        raise ConfigurationError("mean_burst must be >= 1")
    n = len(trace)
    if n == 0 or loss_rate == 0.0:
        return RssiTrace(list(trace.samples))
    # Stationary bad-state probability pi = p_gb / (p_gb + p_bg) = loss_rate
    # with p_bg = 1 / mean_burst.
    p_bg = 1.0 / mean_burst
    p_gb = loss_rate * p_bg / (1.0 - loss_rate)
    p_gb = min(p_gb, 1.0)
    keep = np.ones(n, dtype=bool)
    bad = bool(rng.random() < loss_rate)
    for i in range(n):
        keep[i] = not bad
        bad = (rng.random() >= p_bg) if bad else (rng.random() < p_gb)
    return _rebuild(trace, keep)


def inject_outages(
    trace: RssiTrace,
    rng: np.random.Generator,
    n_outages: int,
    outage_s: float,
) -> RssiTrace:
    """Blank whole scan windows: the OS paused the radio, nothing arrives."""
    if n_outages < 0:
        raise ConfigurationError("n_outages must be >= 0")
    if outage_s < 0:
        raise ConfigurationError("outage_s must be >= 0")
    if n_outages == 0 or outage_s == 0 or len(trace) == 0:
        return RssiTrace(list(trace.samples))
    ts = trace.timestamps()
    t0, t1 = float(ts[0]), float(ts[-1])
    keep = np.ones(len(trace), dtype=bool)
    for _ in range(n_outages):
        start = rng.uniform(t0, max(t1 - outage_s, t0))
        keep &= ~((ts >= start) & (ts < start + outage_s))
    return _rebuild(trace, keep)


def inject_clock_faults(
    trace: RssiTrace,
    rng: np.random.Generator,
    skew_ppm: float = 0.0,
    jitter_s: float = 0.0,
) -> RssiTrace:
    """Stretch timestamps by a constant skew and add per-sample jitter.

    Large jitter intentionally produces *out-of-order* timestamps — the
    reordered-scan-callback pathology the sanitizer exists to repair; the
    output is NOT re-sorted here.
    """
    if jitter_s < 0:
        raise ConfigurationError("jitter_s must be >= 0")
    if len(trace) == 0:
        return RssiTrace(list(trace.samples))
    ts = trace.timestamps()
    t0 = float(ts[0])
    warped = t0 + (ts - t0) * (1.0 + skew_ppm * 1e-6)
    if jitter_s > 0:
        warped = warped + rng.normal(0.0, jitter_s, size=len(ts))
    return RssiTrace([
        RssiSample(float(t), s.rssi, s.beacon_id, s.channel)
        for t, s in zip(warped, trace.samples)
    ])


def inject_spikes(
    trace: RssiTrace,
    rng: np.random.Generator,
    spike_rate: float,
    spike_db: float = 20.0,
) -> RssiTrace:
    """Contaminate a fraction of readings with large +/- dB excursions."""
    if not 0.0 <= spike_rate <= 1.0:
        raise ConfigurationError("spike_rate must be in [0, 1]")
    if spike_db < 0:
        raise ConfigurationError("spike_db must be >= 0")
    if spike_rate == 0.0 or len(trace) == 0:
        return RssiTrace(list(trace.samples))
    hit = rng.random(len(trace)) < spike_rate
    signs = np.where(rng.random(len(trace)) < 0.5, -1.0, 1.0)
    out: List[RssiSample] = []
    for s, h, sign in zip(trace.samples, hit, signs):
        rssi = s.rssi + sign * spike_db if h else s.rssi
        out.append(RssiSample(s.timestamp, float(rssi), s.beacon_id, s.channel))
    return RssiTrace(out)


def inject_nonfinite(
    trace: RssiTrace,
    rng: np.random.Generator,
    nan_rate: float,
) -> RssiTrace:
    """Replace a fraction of readings with NaN (driver/sensor glitches)."""
    if not 0.0 <= nan_rate <= 1.0:
        raise ConfigurationError("nan_rate must be in [0, 1]")
    if nan_rate == 0.0 or len(trace) == 0:
        return RssiTrace(list(trace.samples))
    hit = rng.random(len(trace)) < nan_rate
    return RssiTrace([
        RssiSample(s.timestamp, float("nan"), s.beacon_id, s.channel)
        if h else s
        for s, h in zip(trace.samples, hit)
    ])


@dataclass(frozen=True)
class FaultModel:
    """A composable, picklable bundle of trace degradations.

    Applied in fixed order — spikes, NaN glitches, bursty loss, outages,
    clock faults — so the same model degrades every trial identically given
    the trial's seed. A default-constructed model is a no-op
    (:meth:`is_null`), making it safe as an always-present parameter.
    """

    loss_rate: float = 0.0
    mean_burst: float = 3.0
    n_outages: int = 0
    outage_s: float = 1.0
    skew_ppm: float = 0.0
    jitter_s: float = 0.0
    spike_rate: float = 0.0
    spike_db: float = 20.0
    nan_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "spike_rate", "nan_rate"):
            v = getattr(self, name)
            if not (math.isfinite(v) and 0.0 <= v < 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1)")
        if self.mean_burst < 1.0:
            raise ConfigurationError("mean_burst must be >= 1")
        if self.n_outages < 0 or self.outage_s < 0:
            raise ConfigurationError("outage parameters must be >= 0")
        if self.jitter_s < 0 or self.spike_db < 0:
            raise ConfigurationError("jitter_s and spike_db must be >= 0")
        if not math.isfinite(self.skew_ppm):
            raise ConfigurationError("skew_ppm must be finite")

    def is_null(self) -> bool:
        return (
            self.loss_rate == 0.0 and self.n_outages == 0
            and self.skew_ppm == 0.0 and self.jitter_s == 0.0
            and self.spike_rate == 0.0 and self.nan_rate == 0.0
        )

    def apply(self, trace: RssiTrace, rng: np.random.Generator) -> RssiTrace:
        """Degrade one trace; the input is never mutated."""
        out = RssiTrace(list(trace.samples))
        if self.is_null():
            return out
        if self.spike_rate > 0:
            out = inject_spikes(out, rng, self.spike_rate, self.spike_db)
        if self.nan_rate > 0:
            out = inject_nonfinite(out, rng, self.nan_rate)
        if self.loss_rate > 0:
            out = inject_bursty_loss(out, rng, self.loss_rate, self.mean_burst)
        if self.n_outages > 0 and self.outage_s > 0:
            out = inject_outages(out, rng, self.n_outages, self.outage_s)
        if self.skew_ppm != 0.0 or self.jitter_s > 0:
            out = inject_clock_faults(out, rng, self.skew_ppm, self.jitter_s)
        return out


@dataclass(frozen=True)
class FrameFate:
    """What the transport does to one outbound frame.

    Produced by :meth:`TransportFaultModel.plan`; consumed by the
    simulated gateway client, which acts each flag out on the wire. Flags
    compose — a frame can be both duplicated and followed by a disconnect.
    """

    #: Lost in transit: never delivered, so the sender's ack wait times
    #: out and its retry machinery fires.
    drop: bool = False
    #: Delivered twice back to back (a retransmission racing its ack).
    duplicate: bool = False
    #: Swapped with the *next* frame on the wire (late scheduling).
    reorder: bool = False
    #: One payload byte flipped mid-flight; framing cannot recover, so the
    #: receiver must refuse typed and drop the connection.
    corrupt: bool = False
    #: Cut short mid-frame and the connection closed (mid-stream death).
    truncate: bool = False
    #: Clean disconnect after this frame (client roams out of coverage).
    disconnect: bool = False
    #: Seconds the sender stalls *mid-frame* before finishing it — the
    #: slow-loris pathology a read-timeout exists to bound. 0 = no stall.
    stall_s: float = 0.0


@dataclass(frozen=True)
class TransportFaultModel:
    """Seedable per-frame fault fates for a gateway client's wire stream.

    The trace-level :class:`FaultModel` degrades *what the radio heard*;
    this model degrades *how it travels*: loss, duplication, reordering,
    mid-frame corruption and truncation, disconnects, and slow-loris
    stalls. :meth:`plan` rolls each frame's fate from an explicit ``rng``
    in a fixed draw order, so a client's whole hostile schedule is a pure
    function of its seed — reproducible, like every other injector here.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    disconnect_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.05

    _RATES = ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate",
              "truncate_rate", "disconnect_rate", "stall_rate")

    def __post_init__(self) -> None:
        for name in self._RATES:
            v = getattr(self, name)
            if not (math.isfinite(v) and 0.0 <= v < 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1)")
        if not (math.isfinite(self.stall_s) and self.stall_s >= 0.0):
            raise ConfigurationError("stall_s must be finite and >= 0")

    def is_null(self) -> bool:
        return all(getattr(self, name) == 0.0 for name in self._RATES)

    def plan(self, rng: np.random.Generator, n_frames: int) -> "List[FrameFate]":
        """Roll a fate for each of ``n_frames`` outbound frames.

        Every frame consumes the same number of draws regardless of
        outcome, so fates stay aligned across models that differ only in
        rates (curves over a fault dimension share everything else).
        """
        if n_frames < 0:
            raise ConfigurationError("n_frames must be >= 0")
        fates: List[FrameFate] = []
        for _ in range(n_frames):
            rolls = rng.random(len(self._RATES))
            fates.append(FrameFate(
                drop=bool(rolls[0] < self.drop_rate),
                duplicate=bool(rolls[1] < self.duplicate_rate),
                reorder=bool(rolls[2] < self.reorder_rate),
                corrupt=bool(rolls[3] < self.corrupt_rate),
                truncate=bool(rolls[4] < self.truncate_rate),
                disconnect=bool(rolls[5] < self.disconnect_rate),
                stall_s=(self.stall_s if rolls[6] < self.stall_rate else 0.0),
            ))
        return fates


def degradation_sweep(
    scenario,
    seeds: Iterable[int],
    fault_models: Sequence[FaultModel],
    failure_value: Optional[float] = None,
    max_workers: Optional[int] = None,
    parallel: str = "auto",
    pipeline_factory=None,
) -> List[Tuple[FaultModel, List[float]]]:
    """Error samples per fault model: the raw material of a degradation curve.

    Runs :func:`repro.sim.montecarlo.stationary_trials` once per model over
    the same seeds (so curves differ only by the injected faults) with the
    pipeline in repair mode. Returns ``[(model, errors), ...]`` in the order
    given; summarize with :func:`repro.sim.montecarlo.summarize`.

    ``pipeline_factory`` swaps the trial pipeline — e.g.
    :class:`repro.sim.montecarlo.SolverPipelineFactory` to sweep the same
    fault grid across solver backends. It must be picklable for the
    process-parallel path.
    """
    from repro.sim.montecarlo import stationary_trials

    seeds = list(seeds)
    out: List[Tuple[FaultModel, List[float]]] = []
    for model in fault_models:
        errors = stationary_trials(
            scenario,
            seeds,
            fault_model=model,
            failure_value=failure_value,
            max_workers=max_workers,
            parallel=parallel,
            pipeline_factory=pipeline_factory,
        )
        out.append((model, errors))
    return out
