"""Scalar Kalman filtering and the paper's adaptive Kalman filter (AKF).

The ANF's second stage "enhances the responsiveness of the filter by fusing
raw RSS readings with BF output" (Sec. 4.2). Our AKF realises that fusion:

* the *prediction* step propagates the state along the Butterworth output's
  local trend (the BF knows where the smoothed signal is heading, minus its
  group delay);
* the *update* step corrects with the raw RSS reading;
* the measurement-noise variance ``R`` adapts online from the innovation
  sequence (the standard innovation-based adaptive estimation), so the filter
  trusts raw data more when the channel is calm and leans on the trend when
  raw readings get wild.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ScalarKalman", "AdaptiveKalman", "adaptive_kalman_fuse"]


@dataclass
class ScalarKalman:
    """Textbook one-dimensional Kalman filter (random-walk state model)."""

    process_var: float
    measurement_var: float
    x: float = 0.0
    p: float = 1.0
    _initialized: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        # process_var == 0 is a legitimate static-level model; only the
        # measurement variance must be strictly positive (it divides the
        # gain). Non-finite values would propagate NaN through every step.
        if not (math.isfinite(self.process_var)
                and math.isfinite(self.measurement_var)):
            raise ConfigurationError("variances must be finite")
        if self.process_var < 0 or self.measurement_var <= 0:
            raise ConfigurationError(
                "process variance must be >= 0 and measurement variance > 0"
            )

    def step(self, z: float, control: float = 0.0) -> float:
        """Predict (with optional control/trend input) then update with ``z``."""
        if not self._initialized:
            self.x = z
            self.p = self.measurement_var
            self._initialized = True
            return self.x
        # Predict.
        self.x += control
        self.p += self.process_var
        # Update.
        k = self.p / (self.p + self.measurement_var)
        self.x += k * (z - self.x)
        self.p *= 1.0 - k
        return self.x

    def filter(self, zs: Sequence[float]) -> np.ndarray:
        return np.array([self.step(z) for z in zs])


@dataclass
class AdaptiveKalman:
    """Innovation-adaptive scalar Kalman filter.

    Two adaptations run over a sliding window of innovations:

    * ``R`` is re-estimated as ``mean(innovation²) − P_prior`` (clamped) —
      no hand-tuned measurement variance survives a change in channel
      conditions;
    * with ``bias_gating`` on, the Kalman gain is additionally scaled by
      the *significance of the innovation mean*: zero-mean innovations mean
      the trend input is already tracking (ride it, stay smooth), while
      persistently one-sided innovations mean the smoothed trend is lagging
      a real level change — exactly the Butterworth-delay failure the
      paper's AKF exists to fix — so the raw correction opens up.
    """

    process_var: float = 0.05
    initial_measurement_var: float = 4.0
    window: int = 12
    bias_gating: bool = True
    x: float = 0.0
    p: float = 1.0
    _r: float = field(default=0.0, init=False)
    _innovations: list = field(default_factory=list, init=False)
    _initialized: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if not (math.isfinite(self.process_var)
                and math.isfinite(self.initial_measurement_var)):
            raise ConfigurationError("variances must be finite")
        if self.process_var < 0 or self.initial_measurement_var <= 0:
            raise ConfigurationError(
                "process variance must be >= 0 and measurement variance > 0"
            )
        if self.window < 2:
            raise ConfigurationError("window must be >= 2")
        self._r = self.initial_measurement_var

    def step(self, z: float, control: float = 0.0) -> float:
        if not self._initialized:
            self.x = z
            self.p = self._r
            self._initialized = True
            return self.x
        self.x += control
        p_prior = self.p + self.process_var
        innovation = z - self.x
        self._innovations.append(innovation)
        if len(self._innovations) > self.window:
            self._innovations.pop(0)
        if len(self._innovations) >= 3:
            est = float(np.mean(np.square(self._innovations))) - p_prior
            # Keep R sane: never below a tenth of, nor above 25x, the prior.
            lo = 0.1 * self.initial_measurement_var
            hi = 25.0 * self.initial_measurement_var
            self._r = min(max(est, lo), hi)
        k = p_prior / (p_prior + self._r)
        if self.bias_gating and len(self._innovations) >= 4:
            inn = np.asarray(self._innovations)
            spread = float(np.std(inn)) + 1e-9
            significance = abs(float(np.mean(inn))) / (
                spread / math.sqrt(len(inn))
            )
            # significance ~ t-statistic: ~1 for pure noise, >> 1 when the
            # trend input lags a level change. Map to a (0, 1] gain scale.
            k *= min(1.0, significance / 3.0)
        self.x += k * innovation
        self.p = (1.0 - k) * p_prior
        return self.x


def adaptive_kalman_fuse(
    raw: Sequence[float],
    smoothed: Sequence[float],
    process_var: float = 0.05,
    initial_measurement_var: float = 4.0,
    window: int = 12,
) -> np.ndarray:
    """Fuse raw RSS with a (delayed) smoothed version — the paper's BF+AKF.

    The control input at step i is the smoothed signal's increment, so the
    state rides the Butterworth trend while raw measurements pull it back to
    the present. Returns the fused signal, same length as the inputs.
    """
    raw = np.asarray(raw, dtype=float)
    smoothed = np.asarray(smoothed, dtype=float)
    if raw.shape != smoothed.shape:
        raise ConfigurationError("raw and smoothed signals must align")
    akf = AdaptiveKalman(
        process_var=process_var,
        initial_measurement_var=initial_measurement_var,
        window=window,
    )
    out = np.empty_like(raw)
    prev_s: Optional[float] = None
    for i, (z, s) in enumerate(zip(raw, smoothed)):
        control = 0.0 if prev_s is None else s - prev_s
        out[i] = akf.step(z, control=control)
        prev_s = s
    return out
