"""From-scratch Butterworth low-pass filter design and SOS filtering.

The paper's ANF uses "a fine-tuned Butterworth filter ... a low-pass filter
based on a 6th-order Butterworth filter" (Sec. 4.2). We implement the full
design chain ourselves — analog prototype poles, frequency pre-warping,
bilinear transform, pairing into second-order sections — and a causal
direct-form-II-transposed SOS filter. The causal filter's group delay is the
very artefact the paper's AKF exists to compensate, so we deliberately do
*not* use zero-phase (filtfilt-style) filtering in the pipeline.

The design is validated against ``scipy.signal.butter`` in the test suite.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["butter_lowpass_sos", "sos_filter", "ButterworthLowPass"]


def butter_lowpass_sos(order: int, cutoff_hz: float, fs_hz: float) -> np.ndarray:
    """Design a digital Butterworth low-pass as second-order sections.

    Returns an array of shape (n_sections, 6): rows are
    ``[b0, b1, b2, a0, a1, a2]`` with ``a0 == 1``. Odd orders get one
    first-order section (with ``b2 = a2 = 0``).
    """
    if order < 1:
        raise ConfigurationError("filter order must be >= 1")
    if not 0.0 < cutoff_hz < fs_hz / 2.0:
        raise ConfigurationError(
            f"cutoff must be in (0, fs/2); got {cutoff_hz} at fs={fs_hz}"
        )

    # Analog prototype: poles of H(s)H(-s) on the unit circle, left half-plane.
    proto_poles = [
        cmath.exp(1j * math.pi * (2.0 * k + order - 1.0) / (2.0 * order))
        for k in range(1, order + 1)
    ]

    # Pre-warp the cutoff so the digital filter's -3 dB lands exactly there.
    warped = 2.0 * fs_hz * math.tan(math.pi * cutoff_hz / fs_hz)
    analog_poles = [warped * p for p in proto_poles]

    # Bilinear transform: s -> 2 fs (z-1)/(z+1); every analog zero at
    # infinity maps to z = -1.
    fs2 = 2.0 * fs_hz
    digital_poles = [(fs2 + s) / (fs2 - s) for s in analog_poles]

    # Pair complex-conjugate poles into biquads. Sort by imag magnitude so
    # conjugates sit together; a real leftover pole forms a 1st-order section.
    complex_poles = sorted(
        (p for p in digital_poles if abs(p.imag) > 1e-10), key=lambda p: p.imag
    )
    real_poles = [p for p in digital_poles if abs(p.imag) <= 1e-10]
    # Conjugates appear as (-im ... +im) mirrored; pair p with its conjugate.
    used = [False] * len(complex_poles)
    pairs: List[tuple] = []
    for i, p in enumerate(complex_poles):
        if used[i]:
            continue
        for j in range(i + 1, len(complex_poles)):
            if not used[j] and abs(complex_poles[j] - p.conjugate()) < 1e-8:
                used[i] = used[j] = True
                pairs.append((p, complex_poles[j]))
                break
        else:
            raise ConfigurationError("unpaired complex pole; design failed")

    sections: List[List[float]] = []
    for p, q in pairs:
        a1 = -(p + q).real
        a2 = (p * q).real
        sections.append([1.0, 2.0, 1.0, 1.0, a1, a2])
    for p in real_poles:
        sections.append([1.0, 1.0, 0.0, 1.0, -p.real, 0.0])

    # Normalise overall DC gain to 1, spreading gain evenly over sections.
    sos = np.array(sections, dtype=float)
    dc = 1.0
    for row in sos:
        dc *= (row[0] + row[1] + row[2]) / (row[3] + row[4] + row[5])
    if dc <= 0:
        raise ConfigurationError("non-positive DC gain; design failed")
    per_section = (1.0 / dc) ** (1.0 / len(sos))
    sos[:, :3] *= per_section
    return sos


def sos_filter(sos: np.ndarray, x: Sequence[float]) -> np.ndarray:
    """Causal filtering through cascaded biquads (direct form II transposed)."""
    sos = np.asarray(sos, dtype=float)
    if sos.ndim != 2 or sos.shape[1] != 6:
        raise ConfigurationError("sos must have shape (n_sections, 6)")
    y = np.asarray(x, dtype=float).copy()
    for b0, b1, b2, a0, a1, a2 in sos:
        if abs(a0 - 1.0) > 1e-12:
            b0, b1, b2, a1, a2 = b0 / a0, b1 / a0, b2 / a0, a1 / a0, a2 / a0
        z1 = z2 = 0.0
        out = np.empty_like(y)
        for i, xi in enumerate(y):
            yi = b0 * xi + z1
            z1 = b1 * xi + z2 - a1 * yi
            z2 = b2 * xi - a2 * yi
            out[i] = yi
        y = out
    return y


@dataclass
class ButterworthLowPass:
    """A reusable causal Butterworth low-pass filter.

    The paper's BF is 6th order; at RSS sampling rates near 9 Hz a cutoff
    around 0.6–1 Hz removes fast fading while keeping the distance trend.
    Initial conditions are set to the first sample's steady state so the
    filter does not ring from zero at trace start.
    """

    order: int = 6
    cutoff_hz: float = 0.8
    fs_hz: float = 9.0

    def __post_init__(self) -> None:
        self._sos = butter_lowpass_sos(self.order, self.cutoff_hz, self.fs_hz)

    @property
    def sos(self) -> np.ndarray:
        return self._sos.copy()

    def apply(self, x: Sequence[float]) -> np.ndarray:
        """Filter a whole signal causally, with step-free start-up.

        We prepend a constant run of the first sample long enough for
        transients to settle, filter, and drop the warm-up — equivalent to
        initialising the section states at the first sample's steady state.
        """
        x = np.asarray(x, dtype=float)
        if x.size == 0:
            return x.copy()
        warmup = max(8 * self.order, int(round(8.0 * self.fs_hz / self.cutoff_hz)))
        padded = np.concatenate([np.full(warmup, x[0]), x])
        return sos_filter(self._sos, padded)[warmup:]
