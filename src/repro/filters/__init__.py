"""Signal-processing substrate: Butterworth, Kalman/AKF, smoothing."""

from repro.filters.butterworth import ButterworthLowPass, butter_lowpass_sos, sos_filter
from repro.filters.kalman import AdaptiveKalman, ScalarKalman, adaptive_kalman_fuse
from repro.filters.smoothing import differentiate, moving_average, moving_median

__all__ = [
    "ButterworthLowPass", "butter_lowpass_sos", "sos_filter",
    "AdaptiveKalman", "ScalarKalman", "adaptive_kalman_fuse",
    "differentiate", "moving_average", "moving_median",
]
