"""Simple smoothing primitives: moving average and moving median.

The step counter (Sec. 5.2.1) "first smoothes the accelerometer data by
using the moving average filter"; the DTW preprocessing filters
high-frequency noise before differentiating. Both live here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["moving_average", "moving_median", "differentiate"]


def moving_average(x: Sequence[float], window: int) -> np.ndarray:
    """Centred moving average with edge shrinking (no phantom zeros).

    Near the edges the window shrinks symmetrically so the output has the
    same length as the input and no start-up bias.
    """
    x = np.asarray(x, dtype=float)
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    if window == 1 or x.size == 0:
        return x.copy()
    half = window // 2
    csum = np.concatenate([[0.0], np.cumsum(x)])
    n = len(x)
    idx = np.arange(n)
    lo = np.maximum(idx - half, 0)
    hi = np.minimum(idx + half + 1, n)
    return (csum[hi] - csum[lo]) / (hi - lo)


def moving_median(x: Sequence[float], window: int) -> np.ndarray:
    """Centred moving median with edge shrinking."""
    x = np.asarray(x, dtype=float)
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    if window == 1 or x.size == 0:
        return x.copy()
    half = window // 2
    n = len(x)
    out = np.empty_like(x)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out[i] = np.median(x[lo:hi])
    return out


def differentiate(x: Sequence[float]) -> np.ndarray:
    """First difference, length ``len(x) - 1``.

    The DTW clustering differentiates RSS sequences "to avoid using absolute
    values" (Sec. 6.1) — device offsets cancel in the differences.
    """
    x = np.asarray(x, dtype=float)
    if x.size < 2:
        raise ConfigurationError("need at least two samples to differentiate")
    return np.diff(x)
