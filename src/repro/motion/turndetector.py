"""Turn detection: gyroscope bump + magnetic-heading difference (Sec. 5.2.2).

"To identify turning behavior, our turn detector inspects gyroscope readings
to identify the bump caused by the turning behavior. Our algorithm can
accurately track the beginning and ending points of a bump. Then, we find
the corresponding points in the magnetic heading to get the turning angle."

We find contiguous runs where the smoothed |yaw rate| exceeds a threshold
(with hysteresis to bridge mid-bump dips) and read the turn angle as the
difference between magnetic headings averaged in short windows just before
and just after the bump — the magnetometer is "accurate over a short period
of time" even indoors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.smoothing import moving_average
from repro.types import ImuTrace
from repro.world.geometry import wrap_angle

__all__ = ["TurnDetector", "DetectedTurn"]


@dataclass(frozen=True)
class DetectedTurn:
    """One detected turn with its begin/end times and signed angle (rad)."""

    t_begin: float
    t_end: float
    angle_rad: float

    @property
    def t_mid(self) -> float:
        return (self.t_begin + self.t_end) / 2.0


@dataclass
class TurnDetector:
    """Gyro-bump turn detector with magnetic-heading angle readout."""

    smooth_window: int = 5
    rate_threshold_rad_s: float = 0.45
    release_threshold_rad_s: float = 0.2
    min_duration_s: float = 0.25
    heading_window_s: float = 0.4
    min_angle_rad: float = math.radians(15.0)

    def __post_init__(self) -> None:
        if self.release_threshold_rad_s > self.rate_threshold_rad_s:
            raise ConfigurationError("release threshold must not exceed onset")

    def detect(self, trace: ImuTrace) -> List[DetectedTurn]:
        """Detected turns, time-ordered."""
        if len(trace) < 5:
            return []
        ts = trace.timestamps()
        rate = moving_average(trace.gyro_z(), self.smooth_window)
        heading = trace.mag_heading()

        turns: List[DetectedTurn] = []
        in_bump = False
        start_idx = 0
        for i, r in enumerate(np.abs(rate)):
            if not in_bump and r >= self.rate_threshold_rad_s:
                in_bump = True
                start_idx = i
            elif in_bump and r < self.release_threshold_rad_s:
                in_bump = False
                self._finish_bump(ts, heading, start_idx, i, turns)
        if in_bump:
            self._finish_bump(ts, heading, start_idx, len(ts) - 1, turns)
        return turns

    def _finish_bump(
        self,
        ts: np.ndarray,
        heading: np.ndarray,
        start_idx: int,
        end_idx: int,
        turns: List[DetectedTurn],
    ) -> None:
        t0, t1 = ts[start_idx], ts[end_idx]
        if t1 - t0 < self.min_duration_s:
            return
        before = heading[(ts >= t0 - self.heading_window_s) & (ts < t0)]
        after = heading[(ts > t1) & (ts <= t1 + self.heading_window_s)]
        if before.size == 0 or after.size == 0:
            return
        angle = wrap_angle(_circular_mean(after) - _circular_mean(before))
        if abs(angle) < self.min_angle_rad:
            return
        turns.append(DetectedTurn(float(t0), float(t1), float(angle)))


def _circular_mean(angles: np.ndarray) -> float:
    """Mean of angles, safe at the ±pi wrap point."""
    return float(math.atan2(np.mean(np.sin(angles)), np.mean(np.cos(angles))))
