"""Continuous heading estimation: gyro + magnetometer complementary filter.

The turn detector reads heading only around turn bumps; some applications
(continuous tracking, smoother dead reckoning) want a heading estimate at
every IMU sample. The standard complementary filter integrates the
gyroscope (smooth, drifts) and pulls toward the magnetometer (noisy,
absolute) with a small gain — each sensor covering the other's weakness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.types import ImuTrace
from repro.world.geometry import wrap_angle

__all__ = ["ComplementaryHeadingFilter"]


@dataclass
class ComplementaryHeadingFilter:
    """First-order complementary filter over yaw.

    ``mag_time_constant_s`` sets how fast magnetometer evidence corrects
    gyro drift: the crossover frequency is ``1 / (2 pi tau)``. 2–4 s keeps
    short-term gyro smoothness while bounding drift to the magnetometer's
    accuracy.
    """

    mag_time_constant_s: float = 3.0

    def __post_init__(self) -> None:
        if self.mag_time_constant_s <= 0:
            raise ConfigurationError("mag_time_constant_s must be positive")

    def filter(self, trace: ImuTrace) -> np.ndarray:
        """Fused heading (rad, wrapped) at every IMU sample."""
        if len(trace) == 0:
            return np.array([])
        ts = trace.timestamps()
        gyro = trace.gyro_z()
        mag = trace.mag_heading()

        fused = np.empty(len(ts))
        fused[0] = mag[0]
        for i in range(1, len(ts)):
            dt = ts[i] - ts[i - 1]
            if dt <= 0:
                fused[i] = fused[i - 1]
                continue
            predicted = fused[i - 1] + gyro[i] * dt
            alpha = dt / (self.mag_time_constant_s + dt)
            error = wrap_angle(mag[i] - predicted)
            fused[i] = wrap_angle(predicted + alpha * error)
        return fused

    def relative_heading(self, trace: ImuTrace) -> np.ndarray:
        """Heading relative to the walk's start (measurement-frame yaw)."""
        fused = self.filter(trace)
        if fused.size == 0:
            return fused
        return np.array([wrap_angle(h - fused[0]) for h in fused])
