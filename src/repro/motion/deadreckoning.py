"""Pedestrian dead reckoning: steps + turns → a 2-D displacement track.

Combines the step detector, the frequency-based step-length model and the
turn detector into the observer-motion estimate the location estimator fuses
with RSS (Sec. 5.2). All output lives in the *measurement frame*: origin at
the walk's start, +x along the initial walking direction — exactly the
coordinate system of the paper's Fig. 6.

``assume_right_angle`` implements the paper's practical refinement: "LocBLE
can avoid the turning angle measurement step by explicitly asking the user
to make a right angle (90°) turn" — detected turn angles snap to ±90°.

``use_heading_fusion`` switches the heading source from discrete detected
turns to the continuous gyro+magnetometer complementary filter
(:mod:`repro.motion.headingfusion`) — smoother on meandering walks, at the
cost of magnetometer disturbance leaking into straight legs.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.motion.headingfusion import ComplementaryHeadingFilter
from repro.motion.stepcounter import DetectedStep, StepDetector
from repro.motion.steplength import StepLengthModel
from repro.motion.turndetector import DetectedTurn, TurnDetector
from repro.types import ImuTrace, Vec2

__all__ = ["MotionTrack", "MotionTracker"]


@dataclass
class MotionTrack:
    """The dead-reckoned path: positions keyed by time, plus raw detections."""

    times: List[float]
    positions: List[Vec2]
    steps: List[DetectedStep]
    turns: List[DetectedTurn]

    def displacement_at(self, t: float) -> Vec2:
        """Measurement-frame displacement at time ``t`` (interpolated)."""
        if not self.times or t <= self.times[0]:
            return Vec2(0.0, 0.0)
        if t >= self.times[-1]:
            return self.positions[-1]
        i = bisect_right(self.times, t) - 1
        t0, t1 = self.times[i], self.times[i + 1]
        frac = (t - t0) / (t1 - t0)
        a, b = self.positions[i], self.positions[i + 1]
        return a + (b - a) * frac

    def displacements_at(self, ts: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`displacement_at`: an ``(n, 2)`` array.

        ``np.interp`` clamps at both ends exactly like the scalar method —
        the first position is the origin and queries past the last step hold
        the end position.
        """
        ts = np.asarray(ts, dtype=float)
        out = np.zeros((ts.size, 2))
        if not self.times or ts.size == 0:
            return out
        t = np.asarray(self.times, dtype=float)
        xs = np.array([pos.x for pos in self.positions], dtype=float)
        ys = np.array([pos.y for pos in self.positions], dtype=float)
        out[:, 0] = np.interp(ts, t, xs)
        out[:, 1] = np.interp(ts, t, ys)
        return out

    def total_distance(self) -> float:
        return sum(
            a.distance_to(b) for a, b in zip(self.positions, self.positions[1:])
        )

    @property
    def end_position(self) -> Vec2:
        return self.positions[-1] if self.positions else Vec2(0.0, 0.0)


@dataclass
class MotionTracker:
    """Turns an IMU trace into a measurement-frame motion track."""

    step_detector: StepDetector = field(default_factory=StepDetector)
    turn_detector: TurnDetector = field(default_factory=TurnDetector)
    step_length_model: StepLengthModel = field(default_factory=StepLengthModel)
    assume_right_angle: bool = False
    use_heading_fusion: bool = False
    heading_filter: ComplementaryHeadingFilter = field(
        default_factory=ComplementaryHeadingFilter)
    freq_window: int = 3

    def track(self, trace: ImuTrace) -> MotionTrack:
        """Dead-reckon the walk recorded in ``trace``."""
        steps = self.step_detector.detect(trace)
        turns = self.turn_detector.detect(trace)
        if self.assume_right_angle:
            turns = [
                DetectedTurn(
                    u.t_begin, u.t_end, math.copysign(math.pi / 2.0, u.angle_rad)
                )
                for u in turns
            ]

        t_start = trace.samples[0].timestamp if len(trace) else 0.0
        times: List[float] = [t_start]
        positions: List[Vec2] = [Vec2(0.0, 0.0)]
        heading = 0.0
        turn_idx = 0
        step_times = [s.time for s in steps]
        fused_heading = None
        if self.use_heading_fusion and len(trace) > 1:
            fused_heading = self.heading_filter.relative_heading(trace)
            imu_ts = trace.timestamps()
        for i, step in enumerate(steps):
            if fused_heading is not None:
                heading = float(np.interp(step.time, imu_ts, fused_heading))
            else:
                # Apply any turns completed before this step lands.
                while (turn_idx < len(turns)
                       and turns[turn_idx].t_mid <= step.time):
                    heading += turns[turn_idx].angle_rad
                    turn_idx += 1
            length = self._step_length(step_times, i)
            positions.append(positions[-1] + Vec2.from_polar(length, heading))
            times.append(step.time)
        return MotionTrack(times=times, positions=positions, steps=steps, turns=turns)

    def _step_length(self, step_times: List[float], i: int) -> float:
        """Local-frequency step length for the i-th step (cf. steplength.py)."""
        if len(step_times) < 2:
            return self.step_length_model.length_for_frequency(1.8)
        lo = max(0, i - self.freq_window)
        if i == lo:  # first step: look forwards instead
            hi = min(len(step_times) - 1, i + self.freq_window)
            span = step_times[hi] - step_times[i]
            n = hi - i
        else:
            span = step_times[i] - step_times[lo]
            n = i - lo
        freq = n / span if span > 0 else 1.8
        return self.step_length_model.length_for_frequency(freq)
