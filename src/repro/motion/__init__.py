"""Dead reckoning: step/turn detection and 2-D motion tracking."""

from repro.motion.activity import Activity, ActivityDetector
from repro.motion.deadreckoning import MotionTrack, MotionTracker
from repro.motion.headingfusion import ComplementaryHeadingFilter
from repro.motion.stepcounter import DetectedStep, StepDetector
from repro.motion.steplength import StepLengthModel, walking_distance
from repro.motion.turndetector import DetectedTurn, TurnDetector

__all__ = [
    "Activity", "ActivityDetector", "ComplementaryHeadingFilter",
    "MotionTrack", "MotionTracker", "DetectedStep", "StepDetector",
    "StepLengthModel", "walking_distance", "DetectedTurn", "TurnDetector",
]
