"""Walking/stationary activity detection (the Fig. 3 "Is target moving?" box).

Algorithm 1 branches on whether the target is moving; the moving-target mode
also needs to know when the *observer* pauses (paused stretches contribute
no geometry and dilute the regression). A light activity classifier over
accelerometer windows answers both: walking shows a strong periodic
component at gait frequencies plus high variance; standing shows neither.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import ImuTrace

__all__ = ["Activity", "ActivityDetector"]


class Activity:
    """Activity labels."""

    WALKING = "walking"
    STATIONARY = "stationary"


@dataclass
class ActivityDetector:
    """Windowed walking/stationary classifier over user acceleration.

    A window counts as walking when (a) its RMS exceeds ``rms_threshold_g``
    and (b) the dominant spectral component sits in the human gait band
    (``gait_band_hz``) and carries at least ``periodicity_ratio`` of the
    window's AC energy. Both tests together reject bumpy-but-aperiodic
    handling noise.
    """

    window_s: float = 1.5
    rms_threshold_g: float = 0.08
    gait_band_hz: Tuple[float, float] = (1.2, 2.6)
    periodicity_ratio: float = 0.25

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if not 0.0 < self.periodicity_ratio < 1.0:
            raise ConfigurationError("periodicity_ratio must be in (0, 1)")
        if self.gait_band_hz[0] >= self.gait_band_hz[1]:
            raise ConfigurationError("gait band must be (low, high)")

    def classify_window(self, accel: np.ndarray, fs_hz: float) -> str:
        """Label one acceleration window."""
        accel = np.asarray(accel, dtype=float)
        if accel.size < 8 or fs_hz <= 0:
            return Activity.STATIONARY
        ac = accel - np.mean(accel)
        rms = float(np.sqrt(np.mean(ac**2)))
        if rms < self.rms_threshold_g:
            return Activity.STATIONARY
        spectrum = np.abs(np.fft.rfft(ac)) ** 2
        freqs = np.fft.rfftfreq(len(ac), d=1.0 / fs_hz)
        total = float(np.sum(spectrum[1:])) + 1e-12
        band = (freqs >= self.gait_band_hz[0]) & (freqs <= self.gait_band_hz[1])
        band_energy = float(np.sum(spectrum[band]))
        if band_energy / total >= self.periodicity_ratio:
            return Activity.WALKING
        return Activity.STATIONARY

    def segments(self, trace: ImuTrace) -> List[Tuple[float, float, str]]:
        """(t_start, t_end, label) runs over the trace, windows merged."""
        if len(trace) < 2:
            return []
        ts = trace.timestamps()
        accel = trace.accel()
        fs = trace.rate_hz()
        labels: List[Tuple[float, float, str]] = []
        t = float(ts[0])
        t_end = float(ts[-1])
        while t < t_end:
            mask = (ts >= t) & (ts < t + self.window_s)
            if int(mask.sum()) >= 8:
                label = self.classify_window(accel[mask], fs)
                window_end = min(t + self.window_s, t_end)
                if labels and labels[-1][2] == label and \
                        abs(labels[-1][1] - t) < 1e-9:
                    labels[-1] = (labels[-1][0], window_end, label)
                else:
                    labels.append((t, window_end, label))
            t += self.window_s
        return labels

    def is_moving(self, trace: ImuTrace) -> bool:
        """Was the carrier walking for the majority of the trace?"""
        segs = self.segments(trace)
        if not segs:
            return False
        walking = sum(t1 - t0 for t0, t1, lab in segs
                      if lab == Activity.WALKING)
        total = sum(t1 - t0 for t0, t1, _ in segs)
        return walking > total / 2.0
