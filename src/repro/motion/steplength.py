"""Step-length estimation from step frequency (Sec. 5.2.1).

The paper infers walking distance by combining detected steps with a step
*length*, "inspecting the step frequency" as in [26]. We use the standard
linear frequency→length model; its coefficients are the library's defaults
for human gait, and :class:`StepLengthModel` allows per-user calibration.
Note this is an independent estimator, not a readback of the simulator's
gait parameters: experiments validate that the estimated walking distance
lands near ground truth (the paper reports ~94.77 % distance accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, InsufficientDataError
from repro.motion.stepcounter import DetectedStep

__all__ = ["StepLengthModel", "walking_distance"]


@dataclass(frozen=True)
class StepLengthModel:
    """Linear step model: length (m) = a + b * frequency (Hz), clamped.

    Defaults match typical adult gait (0.55–0.9 m steps at 1–2.2 Hz).
    """

    a: float = 0.25
    b: float = 0.3
    min_length_m: float = 0.4
    max_length_m: float = 1.0

    def length_for_frequency(self, freq_hz: float) -> float:
        if freq_hz <= 0:
            raise ConfigurationError("step frequency must be positive")
        return min(self.max_length_m, max(self.min_length_m, self.a + self.b * freq_hz))


def walking_distance(
    steps: Sequence[DetectedStep],
    model: StepLengthModel = StepLengthModel(),
    freq_window: int = 3,
) -> float:
    """Total walked distance from detected steps.

    Each step's length uses the local step frequency, estimated over the last
    ``freq_window`` inter-step intervals — responsive to pace changes without
    being whipsawed by single-step jitter.
    """
    if len(steps) == 0:
        return 0.0
    if len(steps) == 1:
        # One step with no rate information: use the model's nominal length.
        return model.length_for_frequency(1.8)
    total = 0.0
    times = [s.time for s in steps]
    for i in range(1, len(times)):
        lo = max(0, i - freq_window)
        span = times[i] - times[lo]
        n_intervals = i - lo
        if span <= 0:
            raise InsufficientDataError("step times must be strictly increasing")
        freq = n_intervals / span
        total += model.length_for_frequency(freq)
    # The first step also covers ground; charge it at the initial rate.
    first_span = times[min(freq_window, len(times) - 1)] - times[0]
    first_freq = (min(freq_window, len(times) - 1) / first_span
                  if first_span > 0 else 1.8)
    total += model.length_for_frequency(first_freq)
    return total
