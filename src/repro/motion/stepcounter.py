"""Step detection from accelerometer magnitude (Sec. 5.2.1).

The paper's recipe: smooth the accelerometer data with a moving-average
filter, then use "a voting algorithm to detect the peak, which represents
the middle status of one gait cycle". Our voting peak detector declares a
step at sample *i* when:

* it is the maximum within a ±``vote_radius`` neighbourhood (the vote),
* it rises above an adaptive amplitude threshold (a fraction of the smoothed
  signal's recent dynamic range, so hand tremor does not count), and
* at least ``min_step_interval_s`` has passed since the previous step
  (humans do not step faster than ~3.3 Hz).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.smoothing import moving_average
from repro.types import ImuTrace

__all__ = ["StepDetector", "DetectedStep"]


@dataclass(frozen=True)
class DetectedStep:
    """One detected step: when it peaked and how strong the peak was."""

    time: float
    amplitude: float


@dataclass
class StepDetector:
    """Moving-average + voting peak step detector."""

    smooth_window: int = 7
    vote_radius: int = 8
    min_step_interval_s: float = 0.3
    threshold_fraction: float = 0.35
    min_amplitude_g: float = 0.06

    def __post_init__(self) -> None:
        if self.vote_radius < 1:
            raise ConfigurationError("vote_radius must be >= 1")
        if not 0.0 < self.threshold_fraction < 1.0:
            raise ConfigurationError("threshold_fraction must be in (0, 1)")

    def detect(self, trace: ImuTrace) -> List[DetectedStep]:
        """Detected steps, time-ordered."""
        if len(trace) < 2 * self.vote_radius + 1:
            return []
        ts = trace.timestamps()
        smoothed = moving_average(trace.accel(), self.smooth_window)

        # Adaptive amplitude gate from the signal's positive excursions.
        positive = smoothed[smoothed > 0]
        if positive.size == 0:
            return []
        gate = max(
            self.min_amplitude_g,
            self.threshold_fraction * float(np.percentile(positive, 90)),
        )

        steps: List[DetectedStep] = []
        last_t = -np.inf
        r = self.vote_radius
        for i in range(r, len(smoothed) - r):
            v = smoothed[i]
            if v < gate:
                continue
            neighbourhood = smoothed[i - r : i + r + 1]
            # The vote: strictly the neighbourhood max, first index on ties.
            if v < neighbourhood.max() or int(np.argmax(neighbourhood)) != r:
                continue
            if ts[i] - last_t < self.min_step_interval_s:
                continue
            steps.append(DetectedStep(float(ts[i]), float(v)))
            last_t = ts[i]
        return steps

    def count(self, trace: ImuTrace) -> int:
        return len(self.detect(trace))
