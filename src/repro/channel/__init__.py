"""RF channel substrate: path loss, shadowing, fading, receiver noise."""

from repro.channel.environment import (
    ENV_PROFILES, EnvProfile, EnvRealization, realize_env,
)
from repro.channel.fading import (
    ADVERTISING_CHANNELS,
    ENV_K_FACTOR_DB,
    FrequencySelectiveFading,
    RicianFading,
)
from repro.channel.link import LinkObservation, RadioLink
from repro.channel.multipath import RayTracedMultipath, reflect_point
from repro.channel.noise import ReceiverNoise
from repro.channel.pathloss import (
    DEFAULT_GAMMA_DBM,
    ENV_EXPONENTS,
    PathLossModel,
    distance_for_rss,
    rss_at,
)
from repro.channel.shadowing import ShadowingProcess

__all__ = [
    "ENV_PROFILES", "EnvProfile", "EnvRealization", "realize_env",
    "ADVERTISING_CHANNELS", "ENV_K_FACTOR_DB", "FrequencySelectiveFading",
    "RicianFading", "LinkObservation", "RadioLink", "ReceiverNoise",
    "RayTracedMultipath", "reflect_point",
    "DEFAULT_GAMMA_DBM", "ENV_EXPONENTS", "PathLossModel",
    "distance_for_rss", "rss_at", "ShadowingProcess",
]
