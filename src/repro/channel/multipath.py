"""Ray-traced multipath: first-order wall reflections (Sec. 2.3's physics).

"Multipath fading occurs when RF signals reach the receiving antenna via
multiple different paths. The different lengths of these paths make the
received signals combine constructively or destructively."

The default channel models this phenomenologically (Rician envelope + a
sinusoidal spatial pattern). This module offers the physically-grounded
alternative: mirror-image first-order reflections off the floorplan's
walls, summed as complex phasors at the 2.4 GHz carrier. The resulting
interference pattern has the real thing's structure — standing-wave fringes
spaced by ~λ/2 projections, channel-dependent because the three advertising
carriers differ by up to 78 MHz.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Optional

from repro.channel.fading import ADVERTISING_CHANNELS
from repro.errors import ConfigurationError
from repro.types import Vec2
from repro.world.floorplan import Floorplan
from repro.world.geometry import Segment
from repro.world.obstacles import Obstacle

__all__ = ["RayTracedMultipath", "reflect_point", "SPEED_OF_LIGHT"]

SPEED_OF_LIGHT = 299_792_458.0


def reflect_point(p: Vec2, wall_segment: Segment) -> Vec2:
    """Mirror image of ``p`` across the infinite line through the wall."""
    a = wall_segment.a
    d = wall_segment.direction()
    ap = p - a
    # Component along the wall stays; the perpendicular one flips.
    along = d * ap.dot(d)
    perp = ap - along
    return a + along - perp


@dataclass
class RayTracedMultipath:
    """Deterministic multipath gain from first-order reflections.

    For a transmitter/receiver pair, sums the direct ray and one reflected
    ray per wall whose mirror path is geometrically valid (the reflection
    point lies on the wall segment). Each reflection is attenuated by the
    material's ``reflection_loss_db`` (reusing half the insertion loss as a
    crude reflectivity proxy) and phase-shifted by pi (grazing reflection).

    ``gain_db`` returns the combined |phasor| in dB relative to the direct
    ray alone, so it can replace the statistical fading term one-for-one.
    """

    floorplan: Floorplan
    max_reflections_considered: int = 8

    def __post_init__(self) -> None:
        if self.max_reflections_considered < 0:
            raise ConfigurationError("max_reflections_considered must be >= 0")

    def _wavelength(self, channel: int) -> float:
        if channel not in ADVERTISING_CHANNELS:
            raise ConfigurationError(f"unknown advertising channel {channel}")
        return SPEED_OF_LIGHT / (ADVERTISING_CHANNELS[channel] * 1e6)

    def _reflection_point(
        self, tx: Vec2, rx: Vec2, wall_obstacle: Obstacle
    ) -> Optional[Vec2]:
        """Where the mirror path bounces, if it lands on the wall segment."""
        mirrored = reflect_point(tx, wall_obstacle.segment)
        path = Segment(mirrored, rx)
        if mirrored.distance_to(rx) < 1e-9:
            return None
        return path.intersection(wall_obstacle.segment)

    def gain_db(self, tx: Vec2, rx: Vec2, channel: int,
                t: float = 0.0) -> float:
        """Multipath gain (dB) relative to the direct ray alone."""
        lam = self._wavelength(channel)
        d_direct = max(tx.distance_to(rx), 0.1)
        k = 2.0 * math.pi / lam
        # Direct ray: unit amplitude reference (its 1/d is the path loss
        # model's job; rays are weighted relative to it).
        total = cmath.exp(-1j * k * d_direct)
        count = 0
        for ob in self.floorplan.obstacles_at(t):
            if count >= self.max_reflections_considered:
                break
            bounce = self._reflection_point(tx, rx, ob)
            if bounce is None:
                continue
            d_refl = tx.distance_to(bounce) + bounce.distance_to(rx)
            if d_refl <= d_direct + 1e-9:
                continue
            # Reflectivity: half the material's through-loss, plus spreading.
            refl_loss_db = ob.material.attenuation_db / 2.0
            amp = (d_direct / d_refl) * 10.0 ** (-refl_loss_db / 20.0)
            # pi phase flip at the reflection.
            total += amp * cmath.exp(-1j * (k * d_refl + math.pi))
            count += 1
        power = abs(total) ** 2
        return 10.0 * math.log10(max(power, 1e-6))

    def fringe_spacing_m(self, channel: int) -> float:
        """The ~λ/2 spatial period of the interference fringes."""
        return self._wavelength(channel) / 2.0
