"""Spatially correlated log-normal shadowing (Gudmundson model).

Shadow fading is the slowly varying dB offset caused by large obstructions.
It is log-normal in dB with standard deviation ``sigma_db`` and decorrelates
exponentially with the distance the receiver moves:

    E[S(p1) S(p2)] = sigma^2 * exp(-|p1 - p2| / d_corr)

We synthesise it as a Gauss–Markov process indexed by *walked distance*, the
standard first-order AR construction of the Gudmundson model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Vec2

__all__ = ["ShadowingProcess"]


@dataclass
class ShadowingProcess:
    """Stateful correlated shadowing sampler for one radio link.

    Call :meth:`sample` with the receiver's current position; the process
    advances by the distance moved since the previous call. ``sigma_db`` of
    2–4 dB and ``d_corr`` of 1–3 m are typical indoors at 2.4 GHz.
    """

    sigma_db: float
    d_corr_m: float
    rng: np.random.Generator
    _last_pos: Optional[Vec2] = field(default=None, init=False, repr=False)
    _value: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ConfigurationError("sigma_db must be non-negative")
        if self.d_corr_m <= 0:
            raise ConfigurationError("d_corr_m must be positive")

    def sample(self, position: Vec2) -> float:
        """Shadowing value (dB) at ``position``, correlated with the last call."""
        if self.sigma_db == 0.0:
            return 0.0
        if self._last_pos is None:
            self._value = self.rng.normal(0.0, self.sigma_db)
        else:
            moved = position.distance_to(self._last_pos)
            rho = math.exp(-moved / self.d_corr_m)
            innovation_std = self.sigma_db * math.sqrt(max(0.0, 1.0 - rho * rho))
            self._value = rho * self._value + self.rng.normal(0.0, innovation_std)
        self._last_pos = position
        return self._value

    def reset(self) -> None:
        """Forget the correlation state (new measurement session)."""
        self._last_pos = None
        self._value = 0.0
