"""End-to-end RSS generation for one beacon→observer radio link.

:class:`RadioLink` composes the floorplan's LOS classification with path
loss, correlated shadowing, Rician fading, frequency-selective per-channel
offsets, obstacle insertion loss and receiver noise — producing the true RSS
a scanner would report for one advertisement. This is the simulator's ground
truth generator; the LocBLE estimator never sees any of these internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.channel.environment import EnvRealization, realize_env
from repro.channel.fading import FrequencySelectiveFading, RicianFading
from repro.channel.pathloss import DEFAULT_GAMMA_DBM, rss_at
from repro.channel.shadowing import ShadowingProcess
from repro.types import Vec2
from repro.world.floorplan import Floorplan

__all__ = ["RadioLink", "LinkObservation"]


@dataclass(frozen=True)
class LinkObservation:
    """One generated advertisement reception with its ground truth."""

    rss_dbm: float
    env_class: str
    distance: float
    mean_rss_dbm: float


@dataclass
class RadioLink:
    """Stateful channel between one beacon and one observer device.

    ``gamma_dbm`` is the beacon's 1 m reference power (hardware-specific, see
    :mod:`repro.ble.devices`); ``rx_noise_offset_db`` / ``rx_jitter_std_db``
    belong to the observer's chipset. A fresh :class:`RadioLink` should be
    created per (beacon, observer) pair and reused across a measurement so
    shadowing and frequency-selective patterns stay spatially coherent.
    """

    floorplan: Floorplan
    rng: np.random.Generator
    gamma_dbm: float = DEFAULT_GAMMA_DBM
    rx_noise_offset_db: float = 0.0
    rx_jitter_std_db: float = 1.0
    quantise: bool = True
    fading_enabled: bool = True
    #: Optional small-scale fading coherence time (s); None = i.i.d. per
    #: packet. ~0.05 s models a walking user at 2.4 GHz.
    fading_coherence_s: Optional[float] = None
    _realizations: Dict[str, EnvRealization] = field(default_factory=dict, init=False)
    _shadowing: Optional[ShadowingProcess] = field(default=None, init=False)
    _faders: Dict[str, RicianFading] = field(default_factory=dict, init=False)
    _fsf: Optional[FrequencySelectiveFading] = field(default=None, init=False)

    def _realization(self, env_class: str) -> EnvRealization:
        if env_class not in self._realizations:
            self._realizations[env_class] = realize_env(
                env_class, self.rng, gamma_dbm=self.gamma_dbm
            )
        return self._realizations[env_class]

    def _shadow(self, env_class: str) -> ShadowingProcess:
        # One continuous shadowing process per link: a grazing LOS/P_LOS
        # transition must not teleport the shadow-fading level (the blocker
        # loss itself is added separately). Its parameters come from the
        # first class this link is observed in.
        if self._shadowing is None:
            r = self._realization(env_class)
            self._shadowing = ShadowingProcess(
                sigma_db=r.shadow_sigma_db, d_corr_m=r.shadow_corr_m, rng=self.rng
            )
        return self._shadowing

    def _fader(self, env_class: str) -> RicianFading:
        if env_class not in self._faders:
            r = self._realization(env_class)
            self._faders[env_class] = RicianFading(
                r.k_factor_db, self.rng,
                coherence_time_s=self.fading_coherence_s,
            )
        return self._faders[env_class]

    def _fsf_pattern(self, env_class: str) -> FrequencySelectiveFading:
        if self._fsf is None:
            r = self._realization(env_class)
            self._fsf = FrequencySelectiveFading(
                rng=self.rng, amplitude_db=r.fsf_amplitude_db
            )
        return self._fsf

    def true_params(self, env_class: str) -> EnvRealization:
        """The (Γ, n, ...) realisation this link uses for ``env_class``.

        Exposed for experiment ground truth only — the estimator must not
        read it.
        """
        return self._realization(env_class)

    def observe(
        self, tx: Vec2, rx: Vec2, t: float, channel: int = 37
    ) -> LinkObservation:
        """Generate the RSS for one advertisement sent at time ``t``."""
        state = self.floorplan.classify_link(tx, rx, t)
        r = self._realization(state.env_class)
        mean = rss_at(state.distance, r.gamma_dbm, r.n) - state.excess_loss_db
        v = mean
        v += self._shadow(state.env_class).sample(rx)
        if self.fading_enabled:
            v += self._fader(state.env_class).sample_db(t)
            v += self._fsf_pattern(state.env_class).offset_db(channel, rx)
        v += self.rx_noise_offset_db
        if self.rx_jitter_std_db > 0:
            v += self.rng.normal(0.0, self.rx_jitter_std_db)
        if self.quantise:
            v = float(round(v))
        return LinkObservation(
            rss_dbm=v,
            env_class=state.env_class,
            distance=state.distance,
            mean_rss_dbm=mean,
        )
