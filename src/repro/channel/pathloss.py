"""Log-distance path-loss model (the paper's Eq. 1 left-hand side).

The paper's estimator assumes ``RS = Γ(e) - 10 n(e) log10(d)`` with
environment-dependent parameters. The simulator generates ground truth from
the same family, with per-environment exponents drawn from published indoor /
outdoor ranges, so the estimation problem is realistic: the *true* (Γ, n) of
a given trace is never the constant a fixed-parameter ranger assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.types import EnvClass

__all__ = ["PathLossModel", "ENV_EXPONENTS", "rss_at", "distance_for_rss"]

#: Typical path-loss exponent ranges (lo, hi) per environment class at
#: 2.4 GHz. LOS indoor corridors guide waves (n slightly below free space);
#: NLOS clutter raises the exponent well above 2.
#: Blocked classes stay moderate because the simulator adds each blocker's
#: insertion loss explicitly — a steep exponent on top would double-count
#: the obstruction.
ENV_EXPONENTS: Dict[str, tuple] = {
    EnvClass.LOS: (1.7, 2.2),
    EnvClass.P_LOS: (2.0, 2.5),
    EnvClass.NLOS: (2.3, 2.9),
}

#: Reference RSS at 1 m for a 0 dBm-class BLE beacon observed by a phone
#: (the iBeacon "measured power" calibration constant is typically ~-59 dBm).
DEFAULT_GAMMA_DBM = -59.0

#: Minimum distance the model evaluates; inside this the far-field log model
#: is meaningless, so we clamp (BLE proximity covers the sub-0.1 m regime).
MIN_DISTANCE_M = 0.1


@dataclass(frozen=True)
class PathLossModel:
    """A concrete (Γ, n) pair: mean RSS as a function of distance.

    ``gamma_dbm`` is the mean RSS at the 1 m reference distance and ``n`` the
    path-loss exponent. This is the deterministic core that shadowing, fading
    and receiver noise perturb.
    """

    gamma_dbm: float = DEFAULT_GAMMA_DBM
    n: float = 2.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError("path-loss exponent must be positive")

    def rss(self, distance_m: float) -> float:
        """Mean RSS (dBm) at ``distance_m``."""
        return rss_at(distance_m, self.gamma_dbm, self.n)

    def distance(self, rss_dbm: float) -> float:
        """Invert the model: distance (m) whose mean RSS is ``rss_dbm``."""
        return distance_for_rss(rss_dbm, self.gamma_dbm, self.n)


def rss_at(distance_m, gamma_dbm: float, n: float):
    """``Γ - 10 n log10(d)`` with the near-field clamp applied.

    Accepts a scalar distance (returns ``float``) or an array of distances
    (returns an ``ndarray`` of the same shape) — the estimator evaluates the
    model over whole residual vectors and exponent grids at once.
    """
    if np.ndim(distance_m) == 0:
        d = max(float(distance_m), MIN_DISTANCE_M)
        return gamma_dbm - 10.0 * n * math.log10(d)
    d = np.maximum(np.asarray(distance_m, dtype=float), MIN_DISTANCE_M)
    return gamma_dbm - 10.0 * n * np.log10(d)


def distance_for_rss(rss_dbm, gamma_dbm: float, n: float):
    """Inverse of :func:`rss_at`, clamp-consistent with the forward model.

    :func:`rss_at` never evaluates the log model inside ``MIN_DISTANCE_M``,
    so an RSS stronger than ``rss_at(MIN_DISTANCE_M)`` maps back to exactly
    that clamp distance rather than a sub-near-field artefact — the
    round-trip invariant is ``distance_for_rss(rss_at(d)) ==
    max(d, MIN_DISTANCE_M)`` for every ``d``. Accepts a scalar (returns
    ``float``) or an array (returns an ``ndarray``), mirroring
    :func:`rss_at`.
    """
    if n <= 0:
        raise ConfigurationError("path-loss exponent must be positive")
    if np.ndim(rss_dbm) == 0:
        d = 10.0 ** ((gamma_dbm - float(rss_dbm)) / (10.0 * n))
        return max(d, MIN_DISTANCE_M)
    d = np.power(
        10.0, (gamma_dbm - np.asarray(rss_dbm, dtype=float)) / (10.0 * n)
    )
    return np.maximum(d, MIN_DISTANCE_M)
