"""Small-scale fading: Rician/Rayleigh envelopes and per-channel selectivity.

Two effects from Sec. 2.3 of the paper are modelled:

* **Multipath (fast) fading** — the advertisement's envelope is Rician with a
  K-factor set by the environment class (strong direct ray under LOS, pure
  Rayleigh scatter under NLOS). Each received packet draws an envelope, so
  raw RSS jitters packet-to-packet exactly as Fig. 2/4 show.
* **Frequency-selective fading** — BLE advertising hops over channels 37/38/39
  (2402/2426/2480 MHz). The multipath standing-wave pattern differs per
  carrier, so each channel sees a different spatial fade pattern. We model
  the per-channel offset as a sum of sinusoids in space with channel-specific
  random phases — a deterministic, spatially smooth interference pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import EnvClass, Vec2

__all__ = ["RicianFading", "FrequencySelectiveFading", "ENV_K_FACTOR_DB",
           "ADVERTISING_CHANNELS"]

#: BLE advertising channels and their carrier frequencies (MHz).
ADVERTISING_CHANNELS: Dict[int, float] = {37: 2402.0, 38: 2426.0, 39: 2480.0}

#: Rician K-factor (dB) per environment class. LOS keeps a dominant ray;
#: NLOS is Rayleigh (K → -inf; we use a deep value).
ENV_K_FACTOR_DB: Dict[str, float] = {
    EnvClass.LOS: 10.0,
    EnvClass.P_LOS: 5.5,
    EnvClass.NLOS: -40.0,
}


@dataclass
class RicianFading:
    """Rician envelope sampler, optionally with temporal coherence.

    Returns the fade in dB relative to the mean power. The envelope is
    ``|v + z|`` with a fixed LOS phasor ``v`` (power K/(K+1)) and complex
    Gaussian scatter ``z`` (power 1/(K+1)), so the mean *power* is unity and
    the dB fade has zero mean in the linear domain.

    With ``coherence_time_s`` set, the scatter component evolves as a
    complex Gauss–Markov process, so packets inside the channel's coherence
    time see correlated fades — the "low channel coherence time due to user
    movements" the paper's ANF discussion names (Sec. 4.3). At walking speed
    the 2.4 GHz coherence time is roughly ``0.423 λ / v ≈ 50 ms``; ``None``
    keeps the i.i.d.-per-packet behaviour.
    """

    k_factor_db: float
    rng: np.random.Generator
    coherence_time_s: Optional[float] = None
    _scatter: complex = field(default=0j, init=False, repr=False)
    _last_t: Optional[float] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.coherence_time_s is not None and self.coherence_time_s <= 0:
            raise ConfigurationError("coherence_time_s must be positive")

    def sample_db(self, t: Optional[float] = None) -> float:
        """One envelope draw, in dB relative to mean power.

        Pass the packet timestamp ``t`` to engage temporal coherence (no
        effect when ``coherence_time_s`` is None).
        """
        k = 10.0 ** (self.k_factor_db / 10.0)
        los_amp = math.sqrt(k / (k + 1.0))
        scatter_std = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        if self.coherence_time_s is None or t is None:
            re_s = self.rng.normal(0.0, scatter_std)
            im_s = self.rng.normal(0.0, scatter_std)
        else:
            if self._last_t is None:
                self._scatter = complex(self.rng.normal(0.0, scatter_std),
                                        self.rng.normal(0.0, scatter_std))
            else:
                dt = max(t - self._last_t, 0.0)
                rho = math.exp(-dt / self.coherence_time_s)
                innov = scatter_std * math.sqrt(max(1.0 - rho * rho, 0.0))
                self._scatter = rho * self._scatter + complex(
                    self.rng.normal(0.0, innov),
                    self.rng.normal(0.0, innov),
                )
            self._last_t = t
            re_s, im_s = self._scatter.real, self._scatter.imag
        re = los_amp + re_s
        power = re * re + im_s * im_s
        # Clamp ridiculous deep fades: receivers drop undecodable packets
        # rather than report -inf (the scanner models the drop separately).
        power = max(power, 1e-4)
        return 10.0 * math.log10(power)

    @staticmethod
    def for_env(env_class: str, rng: np.random.Generator) -> "RicianFading":
        if env_class not in ENV_K_FACTOR_DB:
            raise ConfigurationError(f"unknown environment class {env_class!r}")
        return RicianFading(ENV_K_FACTOR_DB[env_class], rng)


@dataclass
class FrequencySelectiveFading:
    """Spatially smooth per-channel fade pattern for one link.

    For each advertising channel we superpose ``n_components`` spatial
    sinusoids with random orientation, wavelength-scale periods and random
    phases, scaled to an RMS of ``amplitude_db``. Two co-located beacons
    share *position*, so their patterns differ only via their own random
    phases — the DTW clustering experiment (Sec. 6.1) relies on the dominant
    distance trend surviving this term.
    """

    rng: np.random.Generator
    amplitude_db: float = 2.0
    n_components: int = 4
    period_range_m: Tuple[float, float] = (0.4, 1.6)
    _params: Dict[int, np.ndarray] = field(default_factory=dict, init=False, repr=False)

    def _channel_params(self, channel: int) -> np.ndarray:
        if channel not in self._params:
            rows = []
            for _ in range(self.n_components):
                period = self.rng.uniform(*self.period_range_m)
                theta = self.rng.uniform(0.0, 2.0 * math.pi)
                phase = self.rng.uniform(0.0, 2.0 * math.pi)
                kx = 2.0 * math.pi / period * math.cos(theta)
                ky = 2.0 * math.pi / period * math.sin(theta)
                rows.append((kx, ky, phase))
            self._params[channel] = np.array(rows)
        return self._params[channel]

    def offset_db(self, channel: int, position: Vec2) -> float:
        """Fade offset (dB) on ``channel`` with the receiver at ``position``."""
        if self.amplitude_db == 0.0:
            return 0.0
        p = self._channel_params(channel)
        phases = p[:, 0] * position.x + p[:, 1] * position.y + p[:, 2]
        # RMS of a sum of N unit sinusoids is sqrt(N/2); normalise to RMS 1.
        raw = float(np.sum(np.sin(phases))) / math.sqrt(self.n_components / 2.0)
        return self.amplitude_db * raw
