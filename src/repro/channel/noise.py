"""Receiver-side RSS measurement noise (Sec. 2.4 of the paper).

Phone chipsets add a device-specific *static offset* (the BCM4334 the paper
cites is specified at ±5 dB accuracy), a per-reading thermal/analog jitter,
and finally quantise the reported RSSI to integer dBm. The offset is what
separates the three phone curves in Fig. 2 while their *trends* agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ReceiverNoise"]


@dataclass
class ReceiverNoise:
    """Noise model of one receiving device.

    ``offset_db`` — fixed calibration offset of this chipset unit.
    ``jitter_std_db`` — per-reading Gaussian measurement noise.
    ``quantise`` — report integer dBm as real BLE stacks do.
    """

    offset_db: float
    jitter_std_db: float
    rng: np.random.Generator
    quantise: bool = True

    def __post_init__(self) -> None:
        if self.jitter_std_db < 0:
            raise ConfigurationError("jitter_std_db must be non-negative")

    def apply(self, rss_dbm: float) -> float:
        """Corrupt a true RSS value the way the receiver would report it."""
        v = rss_dbm + self.offset_db
        if self.jitter_std_db > 0:
            v += self.rng.normal(0.0, self.jitter_std_db)
        if self.quantise:
            v = float(round(v))
        return v

    @staticmethod
    def sample_offset(
        rng: np.random.Generator, accuracy_db: float = 5.0
    ) -> float:
        """Draw a unit's calibration offset from a ±accuracy spec."""
        return float(rng.uniform(-accuracy_db, accuracy_db))
