"""Per-environment-class channel parameter presets.

Gathers the knobs the other channel modules expose into one profile per
LOS / P_LOS / NLOS class, plus a sampler that draws a concrete realisation
(this deployment's exponent, shadowing sigma, ...) from the class ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.channel.fading import ENV_K_FACTOR_DB
from repro.channel.pathloss import DEFAULT_GAMMA_DBM, ENV_EXPONENTS
from repro.errors import ConfigurationError
from repro.types import EnvClass

__all__ = ["EnvProfile", "ENV_PROFILES", "realize_env"]


@dataclass(frozen=True)
class EnvProfile:
    """Parameter ranges for one propagation class."""

    env_class: str
    n_range: Tuple[float, float]
    shadow_sigma_range_db: Tuple[float, float]
    shadow_corr_range_m: Tuple[float, float]
    k_factor_db: float
    fsf_amplitude_db: float


ENV_PROFILES: Dict[str, EnvProfile] = {
    EnvClass.LOS: EnvProfile(
        EnvClass.LOS,
        n_range=ENV_EXPONENTS[EnvClass.LOS],
        shadow_sigma_range_db=(0.7, 1.5),
        shadow_corr_range_m=(3.0, 5.0),
        k_factor_db=ENV_K_FACTOR_DB[EnvClass.LOS],
        fsf_amplitude_db=0.8,
    ),
    EnvClass.P_LOS: EnvProfile(
        EnvClass.P_LOS,
        n_range=ENV_EXPONENTS[EnvClass.P_LOS],
        shadow_sigma_range_db=(1.5, 3.0),
        shadow_corr_range_m=(2.5, 4.0),
        k_factor_db=ENV_K_FACTOR_DB[EnvClass.P_LOS],
        fsf_amplitude_db=2.0,
    ),
    EnvClass.NLOS: EnvProfile(
        EnvClass.NLOS,
        n_range=ENV_EXPONENTS[EnvClass.NLOS],
        shadow_sigma_range_db=(2.5, 4.0),
        shadow_corr_range_m=(2.5, 4.0),
        k_factor_db=ENV_K_FACTOR_DB[EnvClass.NLOS],
        fsf_amplitude_db=3.0,
    ),
}


@dataclass(frozen=True)
class EnvRealization:
    """One deployment's concrete channel parameters for a class."""

    env_class: str
    n: float
    gamma_dbm: float
    shadow_sigma_db: float
    shadow_corr_m: float
    k_factor_db: float
    fsf_amplitude_db: float


def realize_env(
    env_class: str,
    rng: np.random.Generator,
    gamma_dbm: float = DEFAULT_GAMMA_DBM,
) -> EnvRealization:
    """Draw a concrete channel realisation for ``env_class``."""
    if env_class not in ENV_PROFILES:
        raise ConfigurationError(f"unknown environment class {env_class!r}")
    p = ENV_PROFILES[env_class]
    return EnvRealization(
        env_class=env_class,
        n=float(rng.uniform(*p.n_range)),
        gamma_dbm=gamma_dbm,
        shadow_sigma_db=float(rng.uniform(*p.shadow_sigma_range_db)),
        shadow_corr_m=float(rng.uniform(*p.shadow_corr_range_m)),
        k_factor_db=p.k_factor_db,
        fsf_amplitude_db=p.fsf_amplitude_db,
    )
