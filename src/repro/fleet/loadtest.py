"""Drive a tracking fleet with a generated load and measure what it serves.

This is the fleet's equivalent of :mod:`repro.sim.soak`: replay a
:class:`~repro.sim.load.LoadStream` tick by tick into a
:class:`~repro.fleet.TrackingFleet`, catching every exception (the fleet
inherits the service's never-raise-on-data contract) and measuring the
three numbers the ROADMAP's scale story is judged on:

* **fixes/sec** — accepted fixes per wall-clock second of processing;
* **fix latency** — per-fix processing latency: every fix accepted in a
  tick experienced that tick's wall-clock processing time, so the p50/p99
  are taken over the fix-weighted tick durations;
* **shed rate** — the fraction of offered samples refused or evicted by
  any admission layer (fleet admission, per-shard session caps, RSS-ring
  capacity pressure).

A load test can also exercise **live migration mid-stream**: with
``migrate_at_tick`` set, a deterministic slice of the live sessions moves
to other shards between two ticks. Because migration rides the
bit-identical checkpoint wire format, the resulting snapshot stream must
equal an unmigrated run's — ``snapshot_key`` defines that equality, and
the scale benchmark asserts it at load.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs, perf
from repro.errors import ConfigurationError, ReproError
from repro.fleet.fleet import FleetConfig, TrackingFleet
from repro.service.session import SessionSnapshot
from repro.sim.load import LoadConfig, LoadStream, generate_load

__all__ = [
    "LoadTestConfig",
    "LoadTestResult",
    "run_load_test",
    "snapshot_key",
]


def snapshot_key(snap: SessionSnapshot) -> tuple:
    """The bit-identity contract of a snapshot under migration.

    Mirrors the soak harness's checkpoint-equivalence key: ``estimate`` is
    excluded (transient, regenerated each solve), everything else — track
    state, health, breaker, buffer occupancy — must match exactly.
    """
    return (
        snap.beacon_id, snap.t, snap.state, snap.breaker_state,
        snap.fix_age_s, snap.track, snap.buffered, snap.shed,
    )


@dataclass(frozen=True)
class LoadTestConfig:
    """One load-test run: the fleet topology, the workload, migrations."""

    fleet: FleetConfig = field(default_factory=FleetConfig)
    load: LoadConfig = field(default_factory=LoadConfig)
    #: Tick index (1-based) *before* which a migration wave runs; ``None``
    #: disables migration.
    migrate_at_tick: Optional[int] = None
    #: Every ``migrate_stride``-th live session (in sorted beacon order)
    #: moves to the next shard, round-robin. 2 moves half the fleet.
    migrate_stride: int = 2

    def __post_init__(self) -> None:
        if self.migrate_at_tick is not None and self.migrate_at_tick < 1:
            raise ConfigurationError("migrate_at_tick must be >= 1")
        if self.migrate_stride < 1:
            raise ConfigurationError("migrate_stride must be >= 1")


@dataclass(frozen=True)
class LoadTestResult:
    """Everything one load-test run measured."""

    ticks: int
    offered_samples: int
    offered_per_s: float
    fixes_total: int
    #: Accepted fixes per wall-clock second of fleet processing.
    fixes_per_s: float
    #: Fix-weighted per-tick processing latency percentiles (ms).
    fix_latency_p50_ms: float
    fix_latency_p99_ms: float
    #: Fraction of offered samples lost to any shed/admission layer.
    shed_rate: float
    shed_samples: int
    #: Total wall-clock seconds spent in ingest+tick processing.
    wall_s: float
    #: ``(beacon_id, dst_shard)`` moves performed by the migration wave.
    migrations: Tuple[Tuple[str, int], ...]
    #: Per-beacon snapshot sequences (the migration-equivalence evidence).
    snapshots: Dict[str, List[SessionSnapshot]]
    #: ``"ExcType: message"`` per exception the driver caught (always a
    #: bug — the fleet must not raise on data).
    errors: Tuple[str, ...]
    untyped_errors: int
    #: Final :meth:`TrackingFleet.stats`.
    stats: Dict[str, object]


def _migration_wave(
    fleet: TrackingFleet, stride: int
) -> List[Tuple[str, int]]:
    """Move every ``stride``-th live session to the next shard."""
    beacons = sorted(
        b for w in fleet.workers for b in w.service.sessions
    )
    moves: List[Tuple[str, int]] = []
    for idx, beacon_id in enumerate(beacons):
        if idx % stride:
            continue
        src = fleet.shard_of(beacon_id)
        dst = (src + 1) % fleet.config.n_shards
        if dst == src:
            continue
        fleet.migrate(beacon_id, dst)
        moves.append((beacon_id, dst))
    return moves


def run_load_test(
    config: Optional[LoadTestConfig] = None,
    stream: Optional[LoadStream] = None,
) -> LoadTestResult:
    """Replay a load stream into a fresh fleet and measure it.

    ``stream`` lets callers reuse one generated workload across several
    runs (e.g. the migrated and unmigrated halves of an equivalence check,
    where regenerating would be both wasteful and a confound).
    """
    config = config or LoadTestConfig()
    if stream is None:
        stream = generate_load(config.load)
    fleet = TrackingFleet(config.fleet)
    obs.emit(
        "fleet.loadtest_started",
        severity="info",
        component="fleet",
        shards=config.fleet.n_shards,
        beacons=stream.n_beacons,
        offered_per_s=stream.offered_per_s,
    )

    errors: List[str] = []
    untyped = 0
    migrations: List[Tuple[str, int]] = []
    snapshots: Dict[str, List[SessionSnapshot]] = {}
    tick_wall: List[float] = []
    tick_fixes: List[int] = []
    fixes_counter = "service.fixes_accepted"

    for k, (t, scan_batch, imu_batch) in enumerate(stream.ticks, start=1):
        if (config.migrate_at_tick is not None
                and k == config.migrate_at_tick):
            migrations = _migration_wave(fleet, config.migrate_stride)
        fixes_before = perf.counter_value(fixes_counter)
        start = time.perf_counter()
        try:
            fleet.ingest_scans(scan_batch)
            fleet.ingest_imu(imu_batch)
            snaps = fleet.tick(t)
        except ReproError as exc:
            # Typed refusal: the fleet said no in its own vocabulary.
            # Still a driver-visible failure (the contract is that data
            # errors are absorbed *inside* the fleet), but a different
            # defect class than an untyped escape — the chaos gate keys
            # off exactly this split.
            errors.append(f"{type(exc).__name__}: {exc}")
            perf.count("fleet.loadtest_typed_error")
            obs.emit("fleet.loadtest_typed_error", severity="warning",
                     component="fleet", tick=k, error=type(exc).__name__)
            continue
        except Exception as exc:  # noqa: BLE001 — load tests record, not raise
            errors.append(f"{type(exc).__name__}: {exc}")
            untyped += 1
            perf.count("fleet.loadtest_untyped_error")
            obs.emit("fleet.loadtest_untyped_error", severity="error",
                     component="fleet", tick=k, error=type(exc).__name__)
            continue
        tick_wall.append(time.perf_counter() - start)
        tick_fixes.append(perf.counter_value(fixes_counter) - fixes_before)
        for beacon_id, snap in snaps.items():
            snapshots.setdefault(beacon_id, []).append(snap)

    wall_s = float(sum(tick_wall))
    fixes_total = int(sum(tick_fixes))
    latencies_ms = np.repeat(
        np.asarray(tick_wall, dtype=float) * 1e3,
        np.asarray(tick_fixes, dtype=int),
    )
    if latencies_ms.size:
        p50 = float(np.percentile(latencies_ms, 50))
        p99 = float(np.percentile(latencies_ms, 99))
    else:
        p50 = p99 = math.nan

    stats = fleet.stats()
    shed = (
        int(stats["shed_samples"])          # per-shard session-cap refusals
        + int(stats["refused_samples"])     # fleet admission refusals
        + sum(int(s["rss_shed"]) for s in stats["per_shard"])  # ring pressure
    )
    return LoadTestResult(
        ticks=len(stream.ticks),
        offered_samples=stream.offered_samples,
        offered_per_s=stream.offered_per_s,
        fixes_total=fixes_total,
        fixes_per_s=(fixes_total / wall_s if wall_s > 0 else 0.0),
        fix_latency_p50_ms=p50,
        fix_latency_p99_ms=p99,
        shed_rate=(shed / stream.offered_samples
                   if stream.offered_samples else 0.0),
        shed_samples=shed,
        wall_s=wall_s,
        migrations=tuple(migrations),
        snapshots=snapshots,
        errors=tuple(errors),
        untyped_errors=untyped,
        stats=stats,
    )
