"""One shard of the tracking fleet: a supervised ``TrackingService``.

A :class:`ShardWorker` owns exactly one
:class:`~repro.service.TrackingService` plus the shard-level bookkeeping
the fleet needs: tick counts, per-tick solve timing (into :mod:`repro.perf`
under ``fleet.shard_tick``), and checkpoint/restore that carries the shard
id. Workers are in-process multi-instance by design — every service is
already bounded, deterministic and checkpointable, so a worker can be
lifted into a separate process later without changing its contract; on
this repo's single-CPU reference host the in-process form is also the
faster one (no serialization of scan batches across a process boundary).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Optional

from repro import obs, perf
from repro.errors import DataQualityError
from repro.service import ServiceConfig, TrackingService
from repro.service.checkpoint import restore_guard
from repro.service.session import PipelineFactory, SessionSnapshot, \
    default_pipeline_factory
from repro.types import ImuSample, RssiSample

__all__ = ["ShardWorker"]

#: Checkpoint schema version written by :meth:`ShardWorker.checkpoint`.
WORKER_CHECKPOINT_FORMAT = 1


class ShardWorker:
    """Drives one shard's ``TrackingService`` on the fleet's stream clock."""

    def __init__(
        self,
        shard_id: int,
        config: Optional[ServiceConfig] = None,
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ):
        self.shard_id = int(shard_id)
        self.service = TrackingService(config, pipeline_factory)
        self.ticks = 0
        self.last_tick_wall_s = 0.0

    # -- ingest/step (the service's contract, with shard accounting) ---------

    def ingest_scans(self, samples: Iterable[RssiSample]) -> int:
        return self.service.ingest_scans(samples)

    def ingest_imu(self, samples: Iterable[ImuSample]) -> int:
        return self.service.ingest_imu(samples)

    def tick(self, t: float, batch: bool = True) -> Dict[str, SessionSnapshot]:
        """Advance the shard to ``t``; batched solve dispatch by default."""
        start = time.perf_counter()
        snaps = (self.service.tick_batch(t) if batch else self.service.step(t))
        self.last_tick_wall_s = time.perf_counter() - start
        self.ticks += 1
        perf.record("fleet.shard_tick", self.last_tick_wall_s)
        perf.count(f"fleet.shard.{self.shard_id}.ticks")
        return snaps

    # -- reporting -----------------------------------------------------------

    @property
    def n_sessions(self) -> int:
        return len(self.service.sessions)

    def stats(self) -> Dict[str, Any]:
        out = self.service.stats()
        out["shard_id"] = self.shard_id
        out["ticks"] = self.ticks
        out["last_tick_wall_s"] = self.last_tick_wall_s
        return out

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "format": WORKER_CHECKPOINT_FORMAT,
            "shard_id": self.shard_id,
            "ticks": self.ticks,
            "service": self.service.checkpoint(),
        }

    @classmethod
    def restore(
        cls,
        cp: Dict[str, Any],
        config: Optional[ServiceConfig] = None,
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ) -> "ShardWorker":
        if not isinstance(cp, dict) or cp.get("format") != WORKER_CHECKPOINT_FORMAT:
            raise DataQualityError("unsupported shard-worker checkpoint")
        with restore_guard("shard-worker"):
            worker = cls(int(cp["shard_id"]), config, pipeline_factory)
            worker.ticks = int(cp["ticks"])
            worker.service = TrackingService.restore(
                cp["service"], pipeline_factory=pipeline_factory
            )
        obs.emit(
            "fleet.shard_restored",
            severity="info",
            component="fleet",
            shard=worker.shard_id,
            sessions=worker.n_sessions,
        )
        return worker
