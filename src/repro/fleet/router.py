"""Deterministic beacon-id → shard routing for the tracking fleet.

Placement must be a pure function of the beacon id (plus an optional salt)
so that every component — ingest paths, operators, a restarted process —
agrees on where a beacon lives without coordination. The hash is BLAKE2b,
not the builtin ``hash()``: the builtin is salted per process, which would
scatter a fleet's sessions differently on every restart and break the
bit-identical checkpoint/restore story.

Live migration needs routing to *diverge* from the hash: after a session
moves (rebalance, drain, upgrade), its traffic must follow it. The router
therefore layers an explicit pin table over the hash — ``shard_for`` is
``pins.get(beacon_id, hash % n_shards)`` — and the pin table is part of
the fleet checkpoint.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from repro.errors import ConfigurationError, DataQualityError
from repro.service.checkpoint import restore_guard

__all__ = ["ShardRouter"]

#: Checkpoint schema version written by :meth:`ShardRouter.checkpoint`.
ROUTER_CHECKPOINT_FORMAT = 1


def _stable_hash(key: str) -> int:
    """A process-stable 64-bit hash of ``key`` (salted ``hash()`` won't do)."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps beacon ids to shard indices: stable hash plus migration pins."""

    def __init__(self, n_shards: int, salt: str = ""):
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        self.n_shards = int(n_shards)
        self.salt = salt
        self.pins: Dict[str, int] = {}

    def hash_shard(self, beacon_id: str) -> int:
        """The pure-hash placement, ignoring pins."""
        return _stable_hash(f"{self.salt}:{beacon_id}") % self.n_shards

    def shard_for(self, beacon_id: str) -> int:
        """Where this beacon's traffic goes right now."""
        pinned = self.pins.get(beacon_id)
        return self.hash_shard(beacon_id) if pinned is None else pinned

    def pin(self, beacon_id: str, shard: int) -> None:
        """Route ``beacon_id`` to ``shard`` regardless of its hash.

        Pinning back to the hash shard erases the pin — the table only
        holds genuine divergences, keeping it small after a rebalance.
        """
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        if shard == self.hash_shard(beacon_id):
            self.pins.pop(beacon_id, None)
        else:
            self.pins[beacon_id] = shard

    def unpin(self, beacon_id: str) -> None:
        self.pins.pop(beacon_id, None)

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "format": ROUTER_CHECKPOINT_FORMAT,
            "n_shards": self.n_shards,
            "salt": self.salt,
            "pins": dict(sorted(self.pins.items())),
        }

    @classmethod
    def restore(cls, cp: Dict[str, Any]) -> "ShardRouter":
        if not isinstance(cp, dict) or cp.get("format") != ROUTER_CHECKPOINT_FORMAT:
            raise DataQualityError("unsupported router checkpoint")
        with restore_guard("router"):
            router = cls(int(cp["n_shards"]), salt=str(cp["salt"]))
            for beacon_id, shard in cp["pins"].items():
                shard = int(shard)
                if not 0 <= shard < router.n_shards:
                    raise DataQualityError(
                        f"router checkpoint: pin {beacon_id!r} -> {shard} "
                        f"outside [0, {router.n_shards})"
                    )
                router.pins[str(beacon_id)] = shard
        return router
