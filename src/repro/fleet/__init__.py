"""Horizontally sharded tracking fleet: router, workers, live migration.

The layer above :mod:`repro.service` (see ``docs/streaming.md``): a
deterministic beacon-id → shard router, in-process multi-instance shard
workers each driving a batched :class:`~repro.service.TrackingService`,
layered admission control, and live session migration over the
bit-identical checkpoint wire format. Load-test it with
:mod:`repro.fleet.loadtest` / ``python -m repro fleet`` and the
``benchmarks/bench_scale.py`` harness.
"""

from repro.fleet.fleet import FleetConfig, TrackingFleet
from repro.fleet.loadtest import (
    LoadTestConfig,
    LoadTestResult,
    run_load_test,
    snapshot_key,
)
from repro.fleet.router import ShardRouter
from repro.fleet.worker import ShardWorker

__all__ = [
    "FleetConfig",
    "TrackingFleet",
    "ShardRouter",
    "ShardWorker",
    "LoadTestConfig",
    "LoadTestResult",
    "run_load_test",
    "snapshot_key",
]
