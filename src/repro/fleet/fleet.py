"""A horizontally sharded tracking fleet over many ``TrackingService``\\ s.

:class:`TrackingFleet` is the millions-of-users layer of the ROADMAP: the
single-process :class:`~repro.service.TrackingService` already bounds,
supervises and checkpoints a few hundred sessions; the fleet composes
``n_shards`` of them behind a deterministic
:class:`~repro.fleet.router.ShardRouter` so capacity scales by adding
shards, not by growing one session table. Design rules, inherited from the
service and extended fleet-wide:

* **Deterministic placement.** beacon-id → shard is a salted BLAKE2b hash
  plus an explicit pin table for migrated sessions — every restart and
  every observer agrees on placement with zero coordination.
* **Admission control in layers.** The fleet refuses *new* beacons beyond
  ``max_total_sessions`` (counted, evented); each shard's service refuses
  beyond its own ``max_sessions``; each session's circuit breaker and
  bounded buffers shed work below that. Nothing grows without bound.
* **Live migration via the checkpoint wire format.** A session moves
  between shards as ``json.dumps(session.checkpoint())`` — exactly the
  bytes a process restart would read — so a migrated session continues
  **snapshot-identically**: the fleet's output stream is the same whether
  or not the migration happened. Rebalance, drain and rolling upgrades
  are all this one primitive.
* **Shared observer IMU.** The observer's IMU stream is broadcast to every
  shard, so each shard holds a replica ring; that replica equality is what
  makes migration transparent to the solve.

The fleet steps shards sequentially in-process (shard order, sessions in
sorted beacon order within each shard — fully deterministic). Workers are
isolated behind the :class:`~repro.fleet.worker.ShardWorker` contract so a
process-pool execution model can be slotted in without touching routing,
admission or migration.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import obs, perf
from repro.errors import ConfigurationError, DataQualityError
from repro.fleet.router import ShardRouter
from repro.fleet.worker import ShardWorker
from repro.service import ServiceConfig
from repro.service.checkpoint import restore_guard
from repro.service.service import SHED_ID_MEMORY
from repro.service.session import (
    PipelineFactory,
    SessionSnapshot,
    TrackingSession,
    default_pipeline_factory,
)
from repro.types import ImuSample, RssiSample

__all__ = ["FleetConfig", "TrackingFleet"]

#: Checkpoint schema version written by :meth:`TrackingFleet.checkpoint`.
FLEET_CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class FleetConfig:
    """Topology and admission policy for the whole fleet.

    ``max_total_sessions`` is the fleet-wide admission cap: beacons beyond
    it are refused at the door (counted, never silently), independent of
    which shard their hash lands on. ``None`` delegates entirely to the
    per-shard ``service.max_sessions``.
    """

    n_shards: int = 4
    service: ServiceConfig = field(default_factory=ServiceConfig)
    max_total_sessions: Optional[int] = None
    router_salt: str = ""
    batch_ticks: bool = True

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        if self.max_total_sessions is not None and self.max_total_sessions < 1:
            raise ConfigurationError("max_total_sessions must be >= 1")


class TrackingFleet:
    """Routes, supervises and migrates sessions across shard workers."""

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ):
        self.config = config or FleetConfig()
        self._pipeline_factory = pipeline_factory
        self.router = ShardRouter(self.config.n_shards,
                                  salt=self.config.router_salt)
        self.workers: List[ShardWorker] = [
            ShardWorker(i, self.config.service, pipeline_factory)
            for i in range(self.config.n_shards)
        ]
        #: Distinct beacons refused by fleet-wide admission control.
        self.admission_refused = 0
        #: Scan samples dropped with those refusals.
        self.refused_samples = 0
        self._refused_beacons: set = set()
        self.migrations = 0
        self.restores = 0

    # -- routing helpers -----------------------------------------------------

    def shard_of(self, beacon_id: str) -> Optional[int]:
        """The shard actually holding this beacon's session, if any."""
        for worker in self.workers:
            if beacon_id in worker.service.sessions:
                return worker.shard_id
        return None

    @property
    def total_sessions(self) -> int:
        return sum(w.n_sessions for w in self.workers)

    # -- ingestion -----------------------------------------------------------

    def ingest_scans(self, samples: Iterable[RssiSample]) -> int:
        """Route scans to their beacon's shard, admitting new beacons.

        Admission is layered: an unknown beacon is refused fleet-wide once
        ``max_total_sessions`` is reached (``fleet.admission_refused``),
        and a shard's own ``max_sessions`` still applies below that. Both
        refusals are counted and evented, never silent.
        """
        taken = 0
        by_beacon: Dict[str, list] = {}
        for s in samples:
            by_beacon.setdefault(s.beacon_id, []).append(s)
        cap = self.config.max_total_sessions
        for beacon_id in sorted(by_beacon):
            batch = by_beacon[beacon_id]
            shard = self.shard_of(beacon_id)
            if shard is None:
                if cap is not None and self.total_sessions >= cap:
                    self.refused_samples += len(batch)
                    perf.count("fleet.refused_samples", len(batch))
                    if beacon_id not in self._refused_beacons:
                        if len(self._refused_beacons) < SHED_ID_MEMORY:
                            self._refused_beacons.add(beacon_id)
                        self.admission_refused += 1
                        perf.count("fleet.admission_refused")
                    obs.emit(
                        "fleet.admission_refused",
                        severity="warning",
                        component="fleet",
                        beacon=str(beacon_id),
                        samples=len(batch),
                        max_total_sessions=cap,
                    )
                    continue
                shard = self.router.shard_for(beacon_id)
            taken += self.workers[shard].ingest_scans(batch)
        return taken

    def ingest_imu(self, samples: Iterable[ImuSample]) -> int:
        """Broadcast observer IMU to every shard (replica rings)."""
        samples = list(samples)
        taken = 0
        for worker in self.workers:
            taken = worker.ingest_imu(samples)
        return taken

    # -- stepping ------------------------------------------------------------

    def tick(self, t: float) -> Dict[str, SessionSnapshot]:
        """Advance every shard to stream time ``t``; merged snapshots.

        Shards step in shard order, sessions in sorted beacon order within
        each shard, so the fleet is as deterministic as one service.
        """
        if not math.isfinite(t):
            raise ConfigurationError("tick time must be finite")
        merged: Dict[str, SessionSnapshot] = {}
        for worker in self.workers:
            merged.update(worker.tick(t, batch=self.config.batch_ticks))
        perf.count("fleet.ticks")
        return merged

    # -- live migration ------------------------------------------------------

    def migrate(self, beacon_id: str, dst_shard: int) -> None:
        """Move one live session to ``dst_shard`` between ticks.

        The session travels as its JSON checkpoint — the identical bytes a
        process restart would read — and the router is pinned so future
        traffic follows it. Because every shard holds the same IMU replica
        and sessions are solved independently, the migrated session's
        snapshot stream continues exactly as if it had never moved.
        """
        if not 0 <= dst_shard < self.config.n_shards:
            raise ConfigurationError(
                f"shard {dst_shard} out of range [0, {self.config.n_shards})"
            )
        src_shard = self.shard_of(beacon_id)
        if src_shard is None:
            raise ConfigurationError(
                f"no live session for beacon {beacon_id!r}"
            )
        if src_shard == dst_shard:
            return
        session = self.workers[src_shard].service.sessions.pop(beacon_id)
        wire = json.dumps(session.checkpoint())
        self.workers[dst_shard].service.sessions[beacon_id] = (
            TrackingSession.restore(
                json.loads(wire), pipeline_factory=self._pipeline_factory
            )
        )
        self.router.pin(beacon_id, dst_shard)
        self.migrations += 1
        perf.count("fleet.migrations")
        obs.emit(
            "fleet.migrated",
            severity="info",
            component="fleet",
            beacon=str(beacon_id),
            src=src_shard,
            dst=dst_shard,
            wire_bytes=len(wire),
        )

    def drain(self, shard_id: int) -> List[Tuple[str, int]]:
        """Migrate every session off ``shard_id`` (rolling upgrade/retire).

        Sessions leave in sorted beacon order, each to the currently
        least-loaded other shard (ties to the lowest shard id) — a
        deterministic spread. Returns the ``(beacon_id, dst)`` moves made.
        """
        if not 0 <= shard_id < self.config.n_shards:
            raise ConfigurationError(
                f"shard {shard_id} out of range [0, {self.config.n_shards})"
            )
        if self.config.n_shards == 1:
            raise ConfigurationError("cannot drain the only shard")
        moves: List[Tuple[str, int]] = []
        for beacon_id in sorted(self.workers[shard_id].service.sessions):
            dst = min(
                (w.shard_id for w in self.workers if w.shard_id != shard_id),
                key=lambda i: (self.workers[i].n_sessions, i),
            )
            self.migrate(beacon_id, dst)
            moves.append((beacon_id, dst))
        obs.emit(
            "fleet.drained",
            severity="info",
            component="fleet",
            shard=shard_id,
            moved=len(moves),
        )
        return moves

    def rebalance(self) -> List[Tuple[str, int]]:
        """Return every pinned session to its hash shard; drop stale pins."""
        moves: List[Tuple[str, int]] = []
        for beacon_id in sorted(self.router.pins):
            home = self.router.hash_shard(beacon_id)
            if self.shard_of(beacon_id) is not None:
                self.migrate(beacon_id, home)  # pin-to-home erases the pin
                moves.append((beacon_id, home))
            else:
                self.router.unpin(beacon_id)
        return moves

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Fleet-wide aggregates plus the per-shard service stats."""
        per_shard = [w.stats() for w in self.workers]
        counters: Dict[str, int] = {}
        for shard_stats in per_shard:
            for name, value in shard_stats["counters"].items():
                counters[name] = counters.get(name, 0) + value
        return {
            "n_shards": self.config.n_shards,
            "sessions": self.total_sessions,
            "sessions_per_shard": [w.n_sessions for w in self.workers],
            "sessions_shed": sum(s["sessions_shed"] for s in per_shard),
            "shed_samples": sum(s["shed_samples"] for s in per_shard),
            "admission_refused": self.admission_refused,
            "refused_samples": self.refused_samples,
            "migrations": self.migrations,
            "pins": len(self.router.pins),
            "restores": self.restores,
            "counters": counters,
            "per_shard": per_shard,
        }

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """The whole fleet as one JSON-safe dict (router, shards, admission)."""
        return {
            "format": FLEET_CHECKPOINT_FORMAT,
            "config": {
                "n_shards": self.config.n_shards,
                "max_total_sessions": self.config.max_total_sessions,
                "router_salt": self.config.router_salt,
                "batch_ticks": self.config.batch_ticks,
            },
            "router": self.router.checkpoint(),
            "workers": [w.checkpoint() for w in self.workers],
            "admission_refused": self.admission_refused,
            "refused_samples": self.refused_samples,
            "refused_beacon_ids": sorted(self._refused_beacons),
            "migrations": self.migrations,
            "restores": self.restores,
        }

    @classmethod
    def restore(
        cls,
        cp: Dict[str, Any],
        pipeline_factory: PipelineFactory = default_pipeline_factory,
    ) -> "TrackingFleet":
        """Rebuild a fleet from :meth:`checkpoint`, validating consistency.

        Beyond per-layer parsing, the fleet checks the cross-field
        invariants that would otherwise mis-route traffic after a resume:
        shard count agreement between config, router and worker list;
        worker ids matching their positions; and every live session sitting
        on the shard the router would route it to.
        """
        if not isinstance(cp, dict) or cp.get("format") != FLEET_CHECKPOINT_FORMAT:
            raise DataQualityError("unsupported fleet checkpoint")
        with restore_guard("fleet"):
            cfg = cp["config"]
            router = ShardRouter.restore(cp["router"])
            worker_cps = cp["workers"]
            n_shards = int(cfg["n_shards"])
            if not (router.n_shards == len(worker_cps) == n_shards):
                raise DataQualityError(
                    f"fleet checkpoint: shard count mismatch (config "
                    f"{n_shards}, router {router.n_shards}, "
                    f"{len(worker_cps)} workers)"
                )
            workers = [
                ShardWorker.restore(wcp, pipeline_factory=pipeline_factory)
                for wcp in worker_cps
            ]
            for i, worker in enumerate(workers):
                if worker.shard_id != i:
                    raise DataQualityError(
                        f"fleet checkpoint: worker {i} claims shard id "
                        f"{worker.shard_id}"
                    )
            max_total = cfg["max_total_sessions"]
            fleet = cls(
                FleetConfig(
                    n_shards=n_shards,
                    service=workers[0].service.config,
                    max_total_sessions=(None if max_total is None
                                        else int(max_total)),
                    router_salt=str(cfg["router_salt"]),
                    batch_ticks=bool(cfg["batch_ticks"]),
                ),
                pipeline_factory=pipeline_factory,
            )
            fleet.router = router
            fleet.workers = workers
            for worker in workers:
                for beacon_id in worker.service.sessions:
                    routed = router.shard_for(beacon_id)
                    if routed != worker.shard_id:
                        raise DataQualityError(
                            f"fleet checkpoint: session {beacon_id!r} lives "
                            f"on shard {worker.shard_id} but routes to "
                            f"{routed}"
                        )
            fleet.admission_refused = int(cp["admission_refused"])
            fleet.refused_samples = int(cp["refused_samples"])
            fleet._refused_beacons = {
                str(b) for b in cp.get("refused_beacon_ids", ())
            }
            fleet.migrations = int(cp["migrations"])
            fleet.restores = int(cp["restores"]) + 1
        perf.count("fleet.restores")
        obs.emit(
            "fleet.restored",
            severity="info",
            component="fleet",
            shards=n_shards,
            sessions=fleet.total_sessions,
            restores=fleet.restores,
        )
        return fleet
