"""Navigation mode: dead-reckoning guidance toward an estimate (Sec. 7.3).

In measure mode LocBLE produces a target position in the measurement frame;
in navigation mode it guides the user there with "standard dead-reckoning
with a step counter" [31]. :class:`Navigator` is the pure guidance math —
given where dead reckoning says the user is and which way they face, emit
the turn-and-walk instruction — plus the paper's two refinements:

* **periodic re-estimation** — the estimate sharpens as the user approaches
  (Fig. 12b), handled by re-running the pipeline on the growing trace;
* **last-metre proximity snap** (Sec. 9.2, future work implemented here) —
  inside ``proximity_snap_range`` the guidance switches to plain proximity
  ranging, which "demonstrates fairly good accuracy within 2 m".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.types import LocationEstimate, Vec2
from repro.world.geometry import wrap_angle

__all__ = ["Instruction", "Navigator"]


@dataclass(frozen=True)
class Instruction:
    """One guidance step: turn by ``turn_rad`` then walk ``distance_m``."""

    turn_rad: float
    distance_m: float
    arrived: bool
    proximity_mode: bool = False

    @property
    def turn_deg(self) -> float:
        return math.degrees(self.turn_rad)


@dataclass
class Navigator:
    """Guidance toward a measurement-frame target estimate."""

    arrival_radius_m: float = 0.5
    max_leg_m: float = 2.0
    proximity_snap_range_m: float = 2.0
    use_proximity_snap: bool = False

    def instruction(
        self,
        position: Vec2,
        heading_rad: float,
        estimate: LocationEstimate,
        proximity_distance_m: Optional[float] = None,
    ) -> Instruction:
        """Next instruction from the user's dead-reckoned pose.

        ``proximity_distance_m`` is a live proximity-range reading (metres)
        used only when the snap extension is on and the user is close.
        """
        to_target = estimate.position - position
        distance = to_target.norm()

        proximity_mode = (
            self.use_proximity_snap
            and proximity_distance_m is not None
            and distance <= self.proximity_snap_range_m
        )
        if proximity_mode:
            distance = proximity_distance_m

        if distance <= self.arrival_radius_m:
            return Instruction(0.0, 0.0, arrived=True,
                               proximity_mode=proximity_mode)

        turn = wrap_angle(to_target.heading() - heading_rad)
        leg = min(distance, self.max_leg_m)
        return Instruction(turn, leg, arrived=False,
                           proximity_mode=proximity_mode)

    def waypoint_after(
        self, position: Vec2, heading_rad: float, instruction: Instruction
    ) -> Tuple[Vec2, float]:
        """Where the user stands (pose) after following an instruction."""
        if instruction.arrived:
            return position, heading_rad
        new_heading = heading_rad + instruction.turn_rad
        return (
            position + Vec2.from_polar(instruction.distance_m, new_heading),
            new_heading,
        )
