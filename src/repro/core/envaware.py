"""EnvAware: environment recognition from RSS windows (Sec. 4.1).

A linear SVM over the standardized 9-value window features classifies each
1–2 s RSS window as LOS / P_LOS / NLOS. On top of the classifier,
:class:`EnvironmentMonitor` implements the paper's change policy: "LocBLE
keeps monitoring environmental changes, and starts a new regression model
only if new incoming data shows abrupt environmental changes" — a change is
declared only after ``hysteresis`` consecutive windows disagree with the
current class, so one noisy window cannot throw away a whole regression.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.features import feature_matrix, window_features
from repro.errors import ConfigurationError, NotFittedError
from repro.robustness.sanitize import check_trace
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import MultiClassSVM
from repro.types import EnvClass, RssiTrace

__all__ = ["EnvAwareClassifier", "EnvironmentMonitor", "trace_windows"]


def trace_windows(trace: RssiTrace, window_s: float = 2.0,
                  min_samples: int = 6) -> List[np.ndarray]:
    """Cut a trace into consecutive window value-arrays for classification.

    ``window_s`` must be a positive finite duration (a non-positive width
    would never advance the window cursor) and the trace must be clean —
    finite, time-sorted values (:func:`repro.robustness.check_trace`
    semantics). A zero-duration trace (a single sample, or coalesced
    duplicates) is one degenerate window: returned whole when it meets
    ``min_samples``, else no windows.
    """
    if not math.isfinite(window_s) or window_s <= 0:
        raise ConfigurationError("window_s must be positive and finite")
    if min_samples < 1:
        raise ConfigurationError("min_samples must be >= 1")
    if len(trace) == 0:
        return []
    check_trace(trace, context="trace_windows input")
    ts = trace.timestamps()
    vals = trace.values()
    if float(ts[-1]) <= float(ts[0]):
        return [vals.copy()] if len(vals) >= min_samples else []
    out: List[np.ndarray] = []
    t = float(ts[0])
    while t < float(ts[-1]):
        mask = (ts >= t) & (ts < t + window_s)
        if int(mask.sum()) >= min_samples:
            out.append(vals[mask].copy())
        t += window_s
    return out


@dataclass
class EnvAwareClassifier:
    """Feature extraction + scaling + linear SVM, packaged.

    ``classifier`` is pluggable (anything with fit/predict) so the paper's
    classifier comparison — SVM vs decision tree vs random forest — runs
    through one code path; the default is the linear SVM the paper chose.
    """

    classifier: object = field(default_factory=lambda: MultiClassSVM(epochs=60))
    scaler: StandardScaler = field(default_factory=StandardScaler)
    _fitted: bool = field(default=False, init=False)

    def fit(self, windows: List[Sequence[float]],
            labels: Sequence[str]) -> "EnvAwareClassifier":
        x = self.scaler.fit_transform(feature_matrix(windows))
        self.classifier.fit(x, np.asarray(labels))
        self._fitted = True
        return self

    def predict(self, windows: List[Sequence[float]]) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("EnvAwareClassifier.fit must be called first")
        x = self.scaler.transform(feature_matrix(windows))
        return self.classifier.predict(x)

    def predict_one(self, window: Sequence[float]) -> str:
        if not self._fitted:
            raise NotFittedError("EnvAwareClassifier.fit must be called first")
        x = self.scaler.transform(window_features(window)[None, :])
        return str(self.classifier.predict(x)[0])


@dataclass
class EnvironmentMonitor:
    """Streaming change detector over per-window classifications."""

    classifier: EnvAwareClassifier
    hysteresis: int = 2
    _current: Optional[str] = field(default=None, init=False)
    _pending: Optional[str] = field(default=None, init=False)
    _pending_count: int = field(default=0, init=False)

    @property
    def current(self) -> str:
        """The environment class currently in force (LOS until evidence)."""
        return self._current if self._current is not None else EnvClass.LOS

    def observe(self, window: Sequence[float]) -> bool:
        """Feed one window; returns True if an abrupt change is declared.

        A change needs ``hysteresis`` *consecutive* windows disagreeing with
        the current class — they need not agree with each other (a blocked
        link often flickers between P_LOS and NLOS while it degrades), and
        the new class is the most recent label.
        """
        label = self.classifier.predict_one(window)
        if self._current is None:
            self._current = label
            return False
        if label == self._current:
            self._pending = None
            self._pending_count = 0
            return False
        self._pending = label
        self._pending_count += 1
        if self._pending_count >= self.hysteresis:
            obs.emit(
                "envaware.change",
                severity="info",
                component="envaware",
                previous=str(self._current),
                new=str(label),
            )
            self._current = label
            self._pending = None
            self._pending_count = 0
            return True
        return False

    def reset(self) -> None:
        self._current = None
        self._pending = None
        self._pending_count = 0
