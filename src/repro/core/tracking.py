"""Temporal tracking of a (possibly moving) beacon across measurements.

The paper's title promises locating *and tracking*; its prototype tracks by
re-measuring. This module closes the loop for continuous use: sequential
:class:`~repro.types.LocationEstimate` fixes feed a constant-velocity 2-D
Kalman filter whose measurement covariance comes from each fix's
Gauss–Newton ``position_std`` — so a sharp fix snaps the track while a vague
one barely nudges it. The filter also provides prediction between fixes
(the beacon's believed position while the user is mid-walk).
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro import obs, perf
from repro.errors import ConfigurationError, DataQualityError, EstimationError
from repro.types import LocationEstimate, Vec2

__all__ = ["BeaconTracker", "TrackState", "joseph_update"]

#: Checkpoint schema version written by :meth:`BeaconTracker.checkpoint`.
TRACKER_CHECKPOINT_FORMAT = 1


def joseph_update(x, p, h, r, innovation):
    """One Kalman measurement update in Joseph (stabilised) form.

    Shared by :class:`BeaconTracker` and the EKF solver backend
    (:mod:`repro.core.solvers.ekf`). Computes the gain by solving
    ``S Kᵀ = H Pᵀ`` rather than inverting S, and applies the Joseph-form
    covariance update — algebraically identical to ``(I - KH) P`` but keeps
    P symmetric positive semi-definite even when S is ill-conditioned.

    Returns the updated ``(x, p)``; raises
    :class:`~repro.errors.EstimationError` when the innovation covariance
    is singular.
    """
    s = h @ p @ h.T + r
    try:
        k = np.linalg.solve(s, h @ p.T).T
    except np.linalg.LinAlgError as exc:
        raise EstimationError(
            f"innovation covariance is singular: {exc}"
        ) from exc
    x = x + k @ innovation
    i_kh = np.eye(p.shape[0]) - k @ h
    p = i_kh @ p @ i_kh.T + k @ r @ k.T
    return x, 0.5 * (p + p.T)


@dataclass(frozen=True)
class TrackState:
    """The tracker's belief at some time: position, velocity, uncertainty."""

    time: float
    position: Vec2
    velocity: Vec2
    position_std: float

    @property
    def speed(self) -> float:
        return self.velocity.norm()


@dataclass
class BeaconTracker:
    """Constant-velocity Kalman tracker over location fixes.

    ``process_accel_std`` models how hard the target can manoeuvre
    (m/s^2, white-acceleration model): ~0 for a stationary tag, ~0.5 for a
    carried item, ~1 for a walking person. ``default_fix_std`` is used when
    a fix carries no finite ``position_std``.
    """

    process_accel_std: float = 0.5
    default_fix_std: float = 2.0
    _t: Optional[float] = field(default=None, init=False)
    _x: Optional[np.ndarray] = field(default=None, init=False)  # [x y vx vy]
    _p: Optional[np.ndarray] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.process_accel_std < 0 or self.default_fix_std <= 0:
            raise ConfigurationError("invalid tracker noise parameters")

    @property
    def initialized(self) -> bool:
        return self._x is not None

    def update(self, t: float, estimate: LocationEstimate) -> TrackState:
        """Fuse one location fix taken at time ``t``.

        A non-finite timestamp or fix position is rejected with a typed
        :class:`~repro.errors.DataQualityError` *before* touching any filter
        state — a NaN would otherwise slip past the time-order check (NaN
        comparisons are all False) and permanently poison the state vector.
        """
        if not (isinstance(t, numbers.Real) and math.isfinite(float(t))):
            raise DataQualityError(f"fix timestamp must be finite, got {t!r}")
        t = float(t)
        # Any finite positive real number is a usable std — a plain int, a
        # numpy scalar, a Fraction — not just the builtin float.
        std = estimate.position_std
        std = float(std) if isinstance(std, numbers.Real) else float("nan")
        if not (math.isfinite(std) and std > 0):
            # A fix with no usable uncertainty is fused at the default
            # weight; that substitution changes the track, so count it.
            perf.count("tracking.default_std_substitutions")
            obs.emit(
                "tracking.default_std",
                severity="debug",
                component="tracking",
                given=std,
                substituted=self.default_fix_std,
            )
            std = self.default_fix_std
        r = np.eye(2) * std**2
        z = estimate.position.as_array()
        if not np.all(np.isfinite(z)):
            raise DataQualityError(
                f"fix position must be finite, got {estimate.position}"
            )

        if self._x is None:
            self._t = t
            self._x = np.array([z[0], z[1], 0.0, 0.0])
            # Unknown velocity: generous initial spread.
            self._p = np.diag([std**2, std**2, 1.0, 1.0])
            return self.state()

        if t < self._t:
            raise EstimationError("fixes must arrive in time order")
        self._predict_to(t)
        h = np.array([[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]])
        innovation = z - h @ self._x
        self._x, self._p = joseph_update(self._x, self._p, h, r, innovation)
        return self.state()

    def predict(self, t: float) -> TrackState:
        """The believed state at time ``t`` (>= the last fix) without mutating."""
        if not (isinstance(t, numbers.Real) and math.isfinite(float(t))):
            raise DataQualityError(
                f"prediction time must be finite, got {t!r}"
            )
        t = float(t)
        if self._x is None:
            raise EstimationError("tracker has no fixes yet")
        if t < self._t:
            raise EstimationError("cannot predict into the past")
        dt = t - self._t
        f = self._transition(dt)
        x = f @ self._x
        p = f @ self._p @ f.T + self._process_noise(dt)
        return TrackState(
            time=t,
            position=Vec2(float(x[0]), float(x[1])),
            velocity=Vec2(float(x[2]), float(x[3])),
            position_std=float(math.sqrt(max(p[0, 0] + p[1, 1], 0.0))),
        )

    def state(self) -> TrackState:
        """The belief at the last processed fix time."""
        if self._x is None:
            raise EstimationError("tracker has no fixes yet")
        return TrackState(
            time=self._t,
            position=Vec2(float(self._x[0]), float(self._x[1])),
            velocity=Vec2(float(self._x[2]), float(self._x[3])),
            position_std=float(
                math.sqrt(max(self._p[0, 0] + self._p[1, 1], 0.0))
            ),
        )

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Serialize the complete filter state as a JSON-safe dict.

        Floats survive a ``json.dumps``/``loads`` round trip bit-exactly
        (shortest-repr encoding), so :meth:`restore` continues the track
        bit-identically after a process kill-and-resume.
        """
        return {
            "format": TRACKER_CHECKPOINT_FORMAT,
            "process_accel_std": self.process_accel_std,
            "default_fix_std": self.default_fix_std,
            "t": self._t,
            "x": self._x.tolist() if self._x is not None else None,
            "p": self._p.tolist() if self._p is not None else None,
        }

    @classmethod
    def restore(cls, cp: Dict[str, Any]) -> "BeaconTracker":
        """Rebuild a tracker from a :meth:`checkpoint` dict."""
        if not isinstance(cp, dict) or cp.get("format") != TRACKER_CHECKPOINT_FORMAT:
            found = cp.get("format") if isinstance(cp, dict) else cp
            raise DataQualityError(
                "unsupported tracker checkpoint: expected format "
                f"{TRACKER_CHECKPOINT_FORMAT}, got {found!r}"
            )
        tracker = cls(
            process_accel_std=float(cp["process_accel_std"]),
            default_fix_std=float(cp["default_fix_std"]),
        )
        if cp["x"] is not None:
            x = np.array(cp["x"], dtype=float)
            p = np.array(cp["p"], dtype=float)
            t = cp["t"]
            if x.shape != (4,) or p.shape != (4, 4) or t is None:
                raise DataQualityError("malformed tracker checkpoint state")
            if not (np.all(np.isfinite(x)) and np.all(np.isfinite(p))
                    and math.isfinite(float(t))):
                raise DataQualityError("tracker checkpoint contains non-finite state")
            tracker._t = float(t)
            tracker._x = x
            tracker._p = p
        return tracker

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _transition(dt: float) -> np.ndarray:
        f = np.eye(4)
        f[0, 2] = dt
        f[1, 3] = dt
        return f

    def _process_noise(self, dt: float) -> np.ndarray:
        # White-acceleration (piecewise constant) model.
        q = self.process_accel_std**2
        dt2, dt3, dt4 = dt * dt, dt**3, dt**4
        qm = np.array([
            [dt4 / 4.0, 0.0, dt3 / 2.0, 0.0],
            [0.0, dt4 / 4.0, 0.0, dt3 / 2.0],
            [dt3 / 2.0, 0.0, dt2, 0.0],
            [0.0, dt3 / 2.0, 0.0, dt2],
        ])
        return q * qm

    def _predict_to(self, t: float) -> None:
        dt = t - self._t
        f = self._transition(dt)
        self._x = f @ self._x
        self._p = f @ self._p @ f.T + self._process_noise(dt)
        self._t = t
