"""Adaptive noise filtering (ANF): Butterworth + adaptive Kalman (Sec. 4.2).

Raw BLE RSS jitters with fast fading; a 6th-order Butterworth low-pass
removes the jitter but, being causal and high-order, lags the true trend —
visible as the delayed curve in the paper's Fig. 4. The AKF stage fuses the
raw readings back in, riding the Butterworth trend while staying responsive
(the "BF + AKF" curve hugging the theoretical one).

Both stages can be disabled independently for the Fig. 4/5 ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import perf
from repro.errors import ConfigurationError, DataQualityError
from repro.filters.butterworth import ButterworthLowPass
from repro.filters.kalman import adaptive_kalman_fuse
from repro.filters.smoothing import moving_average
from repro.robustness.sanitize import check_trace, robust_rate_hz
from repro.types import RssiTrace

__all__ = ["AdaptiveNoiseFilter"]

#: Below this many samples the Butterworth warm-up dominates; pass through.
_MIN_FILTER_SAMPLES = 6


@dataclass
class AdaptiveNoiseFilter:
    """The paper's ANF: a fixed design applied per measurement trace."""

    order: int = 6
    cutoff_hz: float = 0.8
    use_butterworth: bool = True
    use_akf: bool = True
    akf_process_var: float = 0.05
    akf_measurement_var: float = 9.0

    def __post_init__(self) -> None:
        if self.cutoff_hz <= 0:
            raise ConfigurationError("cutoff_hz must be positive")

    @perf.profiled("anf.AdaptiveNoiseFilter.apply")
    def apply(self, values: Sequence[float], fs_hz: float) -> np.ndarray:
        """Filter one RSS value sequence sampled near ``fs_hz``.

        The Butterworth cutoff is capped below Nyquist for low sampling
        rates (the Fig. 13a sweep goes down to 5.5 Hz).
        """
        values = np.asarray(values, dtype=float)
        if values.size < _MIN_FILTER_SAMPLES:
            return values.copy()
        if not np.isfinite(fs_hz) or fs_hz <= 0:
            raise ConfigurationError("fs_hz must be positive and finite")

        smoothed = values
        if self.use_butterworth:
            cutoff = min(self.cutoff_hz, 0.4 * fs_hz)
            # The 6th-order design needs a few cutoff periods of signal to
            # be worth its group delay; on shorter segments (e.g. right
            # after a regression restart) fall back to a moving average.
            if values.size >= 3.0 * fs_hz / cutoff:
                bf = ButterworthLowPass(
                    order=self.order, cutoff_hz=cutoff, fs_hz=fs_hz
                )
                smoothed = bf.apply(values)
            else:
                window = max(3, int(round(fs_hz / (2.0 * cutoff))))
                smoothed = moving_average(values, window)
        if self.use_akf:
            if self.use_butterworth:
                return adaptive_kalman_fuse(
                    values,
                    smoothed,
                    process_var=self.akf_process_var,
                    initial_measurement_var=self.akf_measurement_var,
                )
            # AKF without a trend input degenerates to an adaptive scalar KF.
            return adaptive_kalman_fuse(
                values,
                values * 0.0,
                process_var=self.akf_process_var,
                initial_measurement_var=self.akf_measurement_var,
            )
        return smoothed

    def apply_trace(self, trace: RssiTrace) -> RssiTrace:
        """Convenience: filter a trace in place of its RSSI values.

        The filter design needs the trace's sampling rate, derived from the
        median inter-arrival time (:func:`repro.robustness.robust_rate_hz`)
        so dropout gaps and coalesced duplicates cannot skew it. A trace
        from which no rate can be derived (all timestamps identical), or one
        with unsorted/non-finite data, raises a
        :class:`~repro.errors.DataQualityError` instead of being filtered
        with a made-up rate.
        """
        if len(trace) < _MIN_FILTER_SAMPLES:
            return RssiTrace(list(trace.samples))
        check_trace(trace, context="filter input trace")
        fs = robust_rate_hz(trace.timestamps())
        if fs <= 0:
            raise DataQualityError(
                "cannot derive a sampling rate: trace timestamps span zero "
                "duration; sanitize the log or pass values to apply() with "
                "an explicit fs_hz"
            )
        filtered = self.apply(trace.values(), fs)
        return RssiTrace.from_arrays(
            trace.timestamps(),
            filtered,
            beacon_id=trace.beacon_id,
            channels=[s.channel for s in trace.samples],
        )
