"""Estimation confidence from RSS residuals (Sec. 5, "Estimation confidence").

After a fit, the per-sample noise ``δRS = RS - R̂S`` should be zero-mean
Gaussian if the model explains the data. The paper treats the probability of
the observed residual mean under ``N(0, σ)`` as the estimate's confidence:
a residual mean far from zero (in units of σ) means the regression is
fighting the data — an NLOS transition mid-trace, an interferer — and the
estimate deserves little weight in the multi-beacon calibration.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import InsufficientDataError

__all__ = ["estimation_confidence"]


def estimation_confidence(residuals: Sequence[float]) -> float:
    """Confidence in [0, 1] for a fit with the given RSS residuals.

    Computes the two-sided tail probability of the residual mean μ under
    ``N(0, σ)`` where σ is a *mean-robust* spread — the paper's ``P(μ)``
    with σ "robust to the change of its mean". A perfectly centred residual
    cloud scores 1; a mean one σ out scores ≈0.32.

    σ is ``1.4826 · MAD`` (the Gaussian-consistent median absolute
    deviation about the median) rather than ``np.std``. The sample standard
    deviation absorbs the very shift it is supposed to flag: an NLOS
    transition mid-trace splits the residuals into two offset clusters,
    inflating ``std`` so much that ``z = |μ|/σ`` stays small and the broken
    fit scores an unearned high confidence. The MAD of either half-shifted
    cluster stays near the per-cluster noise, so the shifted mean registers
    at full strength.
    """
    r = np.asarray(residuals, dtype=float)
    if r.size < 3:
        raise InsufficientDataError("need >= 3 residuals for a confidence")
    mu = float(np.mean(r))
    mad = float(np.median(np.abs(r - np.median(r))))
    sigma = 1.4826 * mad
    if sigma < 1e-9:
        # Zero robust spread: at least half the residuals are identical —
        # either a perfect (noise-free) fit or a degenerate one.
        return 1.0 if abs(mu) < 1e-9 else 0.0
    z = abs(mu) / sigma
    return float(math.erfc(z / math.sqrt(2.0)))
