"""Symmetry disambiguation via the two legs of the L-shaped walk (Sec. 5.1).

A single straight leg cannot tell which side of the walking line the beacon
is on: the fit returns ``{(x, h), (x, -h)}`` in the leg's frame. The paper's
remedy is the L-shaped movement — each leg produces its own mirror pair, and
only the true position appears in *both* pairs, so "we calculate the overlap
of two result sets".

:class:`TwoLegDisambiguator` implements that procedure literally: fit each
leg independently in its local frame, map all four candidates into the
measurement frame, and pick the closest cross-leg pair. The joint fit in
:mod:`repro.core.estimator` resolves the same ambiguity implicitly; this
module exists both as the faithful reproduction of the paper's construction
and as the fallback when the two legs see different environments (the
pipeline restarts regression at an environment change, leaving one
regression per leg).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product
from typing import Tuple

import numpy as np

from repro.core.confidence import estimation_confidence
from repro.core.estimator import EllipticalEstimator, FitResult
from repro.errors import EstimationError
from repro.types import Vec2

__all__ = ["LegMeasurement", "TwoLegDisambiguator", "DisambiguationResult"]


@dataclass(frozen=True)
class LegMeasurement:
    """One straight leg's data, expressed in the measurement frame.

    ``origin`` is where the leg starts, ``heading_rad`` its direction,
    ``distances`` how far along the leg the observer was at each RSS sample.
    """

    origin: Vec2
    heading_rad: float
    distances: np.ndarray
    rss: np.ndarray

    def to_frame(self, local: Vec2) -> Vec2:
        """Map a leg-local point into the measurement frame."""
        return self.origin + local.rotated(self.heading_rad)


@dataclass
class DisambiguationResult:
    """The overlap of the two legs' candidate sets."""

    position: Vec2
    candidates_leg1: Tuple[Vec2, Vec2]
    candidates_leg2: Tuple[Vec2, Vec2]
    separation: float  # distance between the chosen cross-leg pair
    confidence: float
    fits: Tuple[FitResult, FitResult] = None


@dataclass
class TwoLegDisambiguator:
    """Per-leg estimation + candidate-set overlap (the paper's Fig. 7)."""

    estimator: EllipticalEstimator = field(default_factory=EllipticalEstimator)

    def resolve(
        self, leg1: LegMeasurement, leg2: LegMeasurement
    ) -> DisambiguationResult:
        """Estimate the beacon position from two legs of an L-walk."""
        fit1a, fit1b = self.estimator.fit_leg(leg1.distances, leg1.rss)
        fit2a, fit2b = self.estimator.fit_leg(leg2.distances, leg2.rss)

        cands1 = (leg1.to_frame(fit1a.position), leg1.to_frame(fit1b.position))
        cands2 = (leg2.to_frame(fit2a.position), leg2.to_frame(fit2b.position))

        best_pair = None
        best_sep = math.inf
        for c1, c2 in product(cands1, cands2):
            sep = c1.distance_to(c2)
            if sep < best_sep:
                best_sep = sep
                best_pair = (c1, c2)
        if best_pair is None:
            raise EstimationError("no candidate pair found")

        # Weight the two legs' picks by their fit quality.
        w1 = estimation_confidence(fit1a.residuals) + 1e-6
        w2 = estimation_confidence(fit2a.residuals) + 1e-6
        merged = Vec2(
            (best_pair[0].x * w1 + best_pair[1].x * w2) / (w1 + w2),
            (best_pair[0].y * w1 + best_pair[1].y * w2) / (w1 + w2),
        )
        confidence = estimation_confidence(
            np.concatenate([fit1a.residuals, fit2a.residuals])
        )
        return DisambiguationResult(
            position=merged,
            candidates_leg1=cands1,
            candidates_leg2=cands2,
            separation=best_sep,
            confidence=confidence,
            fits=(fit1a, fit2a),
        )
