"""The sequential Monte Carlo estimator as a solver backend.

Wraps :class:`~repro.core.particle.ParticleEstimator` (the module this
PR's bugfixes hardened) behind the :class:`~repro.core.solvers.base.
SolverBackend` contract. The backend screens inputs once (emitting the
same ``solver.particle_skipped`` signals the estimator itself uses, so
accounting is uniform), feeds clean readings to the filter, and keeps the
accepted rows so :meth:`solve` can report RSS-domain residuals — the
common currency every backend's :class:`~repro.core.estimator.FitResult`
speaks, and what the confidence score downstream is computed from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.core.estimator import FitResult
from repro.core.particle import ParticleEstimator
from repro.core.solvers.base import (
    SOLVER_CHECKPOINT_FORMAT,
    emit_skips,
    register_backend,
    screen_readings,
)
from repro.errors import DataQualityError

__all__ = ["ParticleBackend"]


@dataclass
class ParticleBackend:
    """SIR particle filter behind the streaming backend contract."""

    estimator: ParticleEstimator
    sanitize: str = "strict"
    _p: List[float] = field(default_factory=list)
    _q: List[float] = field(default_factory=list)
    _rss: List[float] = field(default_factory=list)
    _n_skipped: int = field(default=0, init=False)

    name = "particle"

    @classmethod
    def create(
        cls,
        sanitize: str = "strict",
        seed: int = 0,
        gamma_prior: float = -59.0,
        n_prior: Any = None,
        n_particles: int = 1500,
        **_: Any,
    ) -> "ParticleBackend":
        # ``n_prior`` narrows the exponent band around the environment's
        # class centre instead of pinning it — particles keep exploring.
        n_low, n_high = (1.6, 3.2)
        if n_prior is not None:
            n_low = max(1.0, float(n_prior) - 0.5)
            n_high = min(5.0, float(n_prior) + 0.5)
        return cls(
            estimator=ParticleEstimator(
                rng=np.random.default_rng(seed),
                n_particles=n_particles,
                gamma_prior=(-59.0 if gamma_prior is None
                             else float(gamma_prior)),
                n_low=n_low,
                n_high=n_high,
                # The backend screens before the filter sees anything, so
                # the filter's own screen is pure defence in depth; repair
                # keeps it from double-raising on anything that slips by.
                sanitize="repair",
            ),
            sanitize=sanitize,
        )

    def observe(self, p, q, rss) -> int:
        def skip(n_bad: int) -> None:
            self._n_skipped += n_bad
            emit_skips(self.name, n_bad)

        p_ok, q_ok, rss_ok = screen_readings(p, q, rss, self.sanitize, skip)
        taken = 0
        for p_i, q_i, r_i in zip(p_ok, q_ok, rss_ok):
            if self.estimator.update(float(p_i), float(q_i), float(r_i)):
                self._p.append(float(p_i))
                self._q.append(float(q_i))
                self._rss.append(float(r_i))
                taken += 1
        return taken

    def solve(self) -> FitResult:
        est = self.estimator.estimate()
        x, h = est.position.x, est.position.y
        p = np.asarray(self._p)
        q = np.asarray(self._q)
        rss = np.asarray(self._rss)
        l = np.maximum(np.hypot(x + p, h + q), 0.1)
        residuals = rss - (est.gamma - 10.0 * est.n * np.log10(l))
        std = float(est.position_std)
        return FitResult(
            position=est.position,
            n=float(est.n),
            gamma=float(est.gamma),
            epsilon=float(10.0 ** (est.gamma / (5.0 * est.n))),
            residuals=residuals,
            position_std=std,
            solver="particle",
            n_candidates=self.estimator.n_particles,
            cov_status="ok" if math.isfinite(std) else "error",
        )

    def diagnostics(self) -> Dict[str, Any]:
        est = self.estimator
        return {
            "backend": self.name,
            "n_observed": len(self._p),
            "n_skipped": self._n_skipped + est.n_skipped,
            "n_updates": est.n_updates,
            "n_degenerate": est._n_degenerate,
            "n_resamples": est._n_resamples,
            "ess": est.effective_sample_size,
        }

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "format": SOLVER_CHECKPOINT_FORMAT,
            "backend": self.name,
            "sanitize": self.sanitize,
            "estimator": self.estimator.checkpoint(),
            "p": list(self._p),
            "q": list(self._q),
            "rss": list(self._rss),
            "n_skipped": self._n_skipped,
        }

    @classmethod
    def restore(cls, cp: Dict[str, Any]) -> "ParticleBackend":
        from repro.service.checkpoint import restore_guard

        if not isinstance(cp, dict) or cp.get("format") != SOLVER_CHECKPOINT_FORMAT:
            found = cp.get("format") if isinstance(cp, dict) else cp
            raise DataQualityError(
                "unsupported particle solver checkpoint: expected format "
                f"{SOLVER_CHECKPOINT_FORMAT}, got {found!r}"
            )
        with restore_guard("particle solver backend"):
            backend = cls(
                estimator=ParticleEstimator.restore(cp["estimator"]),
                sanitize=str(cp["sanitize"]),
            )
            p = [float(v) for v in cp["p"]]
            q = [float(v) for v in cp["q"]]
            rss = [float(v) for v in cp["rss"]]
            if not (len(p) == len(q) == len(rss)):
                raise DataQualityError(
                    "particle solver checkpoint rows do not align"
                )
            backend._p, backend._q, backend._rss = p, q, rss
            backend._n_skipped = int(cp["n_skipped"])
        return backend


register_backend("particle", ParticleBackend)
