"""Pluggable solver backends for LocBLE (:mod:`repro.core.solvers`).

Three registered estimation strategies behind one contract
(:class:`~repro.core.solvers.base.SolverBackend`):

``elliptical``
    The paper's batch elliptical regression (Sec. 5) — the default, and
    the only backend with warm-start and cross-session batching fast
    paths.
``particle``
    Sequential Monte Carlo over ``(x, h, Γ, n)`` — online updates and a
    direct posterior-spread uncertainty readout.
``ekf``
    A multi-hypothesis extended Kalman filter over the same state,
    sharing :class:`~repro.core.tracking.BeaconTracker`'s Joseph-form
    update machinery — the cheapest per-reading path.

See ``docs/solvers.md`` for the backend contract, selection guidance, and
the measured accuracy-vs-cost comparison.
"""

from repro.core.solvers.base import (
    SOLVER_CHECKPOINT_FORMAT,
    SolverBackend,
    available_backends,
    make_solver,
    register_backend,
    restore_solver,
    screen_readings,
)
from repro.core.solvers.ekf import EkfBackend
from repro.core.solvers.elliptical import EllipticalBackend
from repro.core.solvers.particle import ParticleBackend

__all__ = [
    "SOLVER_CHECKPOINT_FORMAT",
    "SolverBackend",
    "available_backends",
    "make_solver",
    "register_backend",
    "restore_solver",
    "screen_readings",
    "EkfBackend",
    "EllipticalBackend",
    "ParticleBackend",
]
