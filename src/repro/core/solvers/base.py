"""The solver-backend contract and registry (:mod:`repro.core.solvers`).

ROADMAP item 3: the paper's elliptical regression was hard-wired into
:class:`~repro.core.pipeline.LocBLE` while the particle filter sat unused
by the serving path. This module defines the seam that makes estimation
strategies interchangeable: a :class:`SolverBackend` consumes matched
``(p, q, rss)`` rows via :meth:`~SolverBackend.observe`, produces a
standard :class:`~repro.core.estimator.FitResult` via
:meth:`~SolverBackend.solve`, and is JSON-checkpointable like every other
stateful layer of the system.

Backends register by name; :func:`make_solver` builds one and
:func:`restore_solver` rebuilds one from any backend's checkpoint (the
checkpoint records which backend wrote it). The shared contract:

* **screening** — every reading is screened per sample before it can touch
  solver state. ``sanitize="strict"`` raises a typed
  :class:`~repro.errors.DataQualityError`; ``"repair"`` skips, counts, and
  events the reading (:func:`screen_readings`).
* **typed errors** — no public entry point may leak a bare
  ``TypeError``/``KeyError``; everything surfaces through
  :mod:`repro.errors`.
* **bit-identical resume** — ``restore(checkpoint())`` then continuing the
  observation stream must reproduce the uninterrupted run exactly.
"""

from __future__ import annotations

import numbers
from typing import Any, Callable, Dict, Tuple

import numpy as np

from repro import obs, perf
from repro.core.estimator import FitResult
from repro.errors import ConfigurationError, DataQualityError
from repro.robustness.sanitize import RSSI_PLAUSIBLE_DBM

try:  # pragma: no cover - Protocol is typing_extensions-only on py3.7
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

__all__ = [
    "SolverBackend",
    "available_backends",
    "make_solver",
    "register_backend",
    "restore_solver",
    "screen_readings",
    "SOLVER_CHECKPOINT_FORMAT",
]

#: Checkpoint schema version shared by all solver-backend checkpoints.
SOLVER_CHECKPOINT_FORMAT = 1


@runtime_checkable
class SolverBackend(Protocol):
    """What :class:`~repro.core.pipeline.LocBLE` needs from an estimator.

    ``observe`` assimilates matched displacement/RSS rows (returning how
    many survived screening), ``solve`` produces the current best fit as a
    :class:`~repro.core.estimator.FitResult` — the same structure the
    elliptical path emits, so provenance, confidence scoring, and
    diagnostics downstream are backend-agnostic. ``diagnostics`` exposes
    the backend's structured counters (skips, resamples, degeneracies…)
    and ``checkpoint`` serializes the complete state as a JSON-safe dict.
    """

    name: str

    def observe(self, p, q, rss) -> int:
        """Assimilate matched readings; returns the number accepted."""
        ...

    def solve(self) -> FitResult:
        """The best estimate from everything observed so far."""
        ...

    def diagnostics(self) -> Dict[str, Any]:
        """Structured counters describing this backend's run."""
        ...

    def checkpoint(self) -> Dict[str, Any]:
        """Serialize the complete backend state as a JSON-safe dict."""
        ...


_REGISTRY: Dict[str, Any] = {}


def register_backend(name: str, cls: Any) -> None:
    """Register a backend class under ``name``.

    The class must provide ``create(**options)`` and ``restore(cp)``
    classmethods; registration is idempotent for the same class.
    """
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"solver backend {name!r} is already registered"
        )
    _REGISTRY[name] = cls


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_solver(name: str, **options: Any) -> "SolverBackend":
    """Build a registered backend by name.

    Common options every backend accepts: ``sanitize`` ("strict" |
    "repair"), ``seed`` (deterministic RNG seed for stochastic backends),
    ``gamma_prior`` and ``n_prior`` (environment-informed path-loss
    priors; ``n_prior=None`` means uninformed).
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown solver backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return cls.create(**options)


def restore_solver(cp: Dict[str, Any]) -> "SolverBackend":
    """Rebuild whichever backend wrote the checkpoint ``cp``.

    Dispatches on the checkpoint's own ``backend`` field, so callers that
    persist an opaque solver state (sessions, the fleet) need not know
    which backend they are carrying.
    """
    if not isinstance(cp, dict):
        raise DataQualityError(
            f"solver checkpoint must be a dict, got {type(cp).__name__}"
        )
    name = cp.get("backend")
    if not isinstance(name, str):
        raise DataQualityError(
            f"solver checkpoint backend field must be a string, got {name!r}"
        )
    cls = _REGISTRY.get(name)
    if cls is None:
        raise DataQualityError(
            f"solver checkpoint names unknown backend {name!r}"
        )
    return cls.restore(cp)


def screen_readings(
    p, q, rss, sanitize: str, skip: Callable[[int], None]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared per-sample screening for solver inputs.

    Converts the three sequences to aligned float arrays and drops (repair)
    or refuses (strict) samples that are non-numeric, non-finite, or carry
    an RSS outside :data:`~repro.robustness.sanitize.RSSI_PLAUSIBLE_DBM`.
    ``skip(count)`` is the backend's hook to count and event each dropped
    sample — screening itself stays policy-free about event names.
    """
    if sanitize not in ("strict", "repair"):
        raise ConfigurationError(
            f"sanitize must be 'strict' or 'repair', got {sanitize!r}"
        )

    def as_floats(name, values):
        out = []
        for v in values:
            if isinstance(v, numbers.Real):
                out.append(float(v))
            else:
                try:
                    out.append(float(v))
                except (TypeError, ValueError) as exc:
                    if sanitize == "strict":
                        raise DataQualityError(
                            f"non-numeric {name} value {v!r} in solver input"
                        ) from exc
                    out.append(float("nan"))
        return np.asarray(out, dtype=float)

    p_arr, q_arr, rss_arr = (as_floats("p", p), as_floats("q", q),
                             as_floats("rss", rss))
    if not (p_arr.shape == q_arr.shape == rss_arr.shape):
        raise DataQualityError(
            f"solver inputs must align: p has {p_arr.shape}, "
            f"q has {q_arr.shape}, rss has {rss_arr.shape}"
        )
    lo, hi = RSSI_PLAUSIBLE_DBM
    ok = (np.isfinite(p_arr) & np.isfinite(q_arr)
          & (rss_arr >= lo) & (rss_arr <= hi))
    n_bad = int((~ok).sum())
    if n_bad:
        if sanitize == "strict":
            i = int(np.flatnonzero(~ok)[0])
            raise DataQualityError(
                f"unusable solver reading at index {i} "
                f"(p={p_arr[i]!r}, q={q_arr[i]!r}, rss={rss_arr[i]!r}); "
                "sanitize the trace first or use sanitize='repair'"
            )
        skip(n_bad)
    return p_arr[ok], q_arr[ok], rss_arr[ok]


def emit_skips(backend: str, n_bad: int) -> None:
    """Count + event ``n_bad`` screened-out readings for ``backend``.

    One call site for both signals keeps the obs/perf parity invariant
    (every counted failure path produced exactly that many events).
    """
    for _ in range(n_bad):
        perf.count(f"solver.{backend}_skipped")
        obs.emit(
            f"solver.{backend}_skipped",
            severity="debug",
            component="solver",
            reason="unusable-reading",
        )
