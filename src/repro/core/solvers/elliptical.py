"""The paper's elliptical regression as a solver backend.

A thin adapter: the PR 5 warm/incremental/batched elliptical stack
(:class:`~repro.core.estimator.EllipticalEstimator`) is used *unchanged* —
this wrapper only buffers observed rows so the batch fit can re-run over
everything seen so far, which is exactly how the sequential pipeline
already uses it. `LocBLE`'s elliptical serving path does not go through
this class (it keeps its specialised warm-start/batching fast paths); the
backend exists so the cross-backend harnesses — the degradation matrix,
the accuracy-vs-cost bench, checkpoint fuzzing — drive all three solvers
through one interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.estimator import EllipticalEstimator, FitResult
from repro.core.solvers.base import (
    SOLVER_CHECKPOINT_FORMAT,
    emit_skips,
    register_backend,
    screen_readings,
)
from repro.errors import DataQualityError

__all__ = ["EllipticalBackend"]


@dataclass
class EllipticalBackend:
    """Batch elliptical regression behind the streaming backend contract."""

    estimator: EllipticalEstimator
    sanitize: str = "strict"
    _p: List[float] = field(default_factory=list)
    _q: List[float] = field(default_factory=list)
    _rss: List[float] = field(default_factory=list)
    _n_skipped: int = field(default=0, init=False)

    name = "elliptical"

    @classmethod
    def create(
        cls,
        sanitize: str = "strict",
        seed: int = 0,
        gamma_prior: Optional[float] = -59.0,
        n_prior: Optional[float] = None,
        **_: Any,
    ) -> "EllipticalBackend":
        # ``seed`` is part of the common option set; the batch fit is
        # deterministic so it is simply unused here.
        return cls(
            estimator=EllipticalEstimator(
                gamma_prior=gamma_prior, n_prior=n_prior
            ),
            sanitize=sanitize,
        )

    def observe(self, p, q, rss) -> int:
        def skip(n_bad: int) -> None:
            self._n_skipped += n_bad
            emit_skips(self.name, n_bad)

        p_ok, q_ok, rss_ok = screen_readings(p, q, rss, self.sanitize, skip)
        self._p.extend(p_ok.tolist())
        self._q.extend(q_ok.tolist())
        self._rss.extend(rss_ok.tolist())
        return int(len(p_ok))

    def solve(self) -> FitResult:
        return self.estimator.fit(
            np.asarray(self._p), np.asarray(self._q), np.asarray(self._rss)
        )

    def diagnostics(self) -> Dict[str, Any]:
        return {
            "backend": self.name,
            "n_observed": len(self._p),
            "n_skipped": self._n_skipped,
        }

    def checkpoint(self) -> Dict[str, Any]:
        est = self.estimator
        return {
            "format": SOLVER_CHECKPOINT_FORMAT,
            "backend": self.name,
            "sanitize": self.sanitize,
            "config": {
                "gamma_prior": est.gamma_prior,
                "n_prior": est.n_prior,
                "min_samples": est.min_samples,
            },
            "p": list(self._p),
            "q": list(self._q),
            "rss": list(self._rss),
            "n_skipped": self._n_skipped,
        }

    @classmethod
    def restore(cls, cp: Dict[str, Any]) -> "EllipticalBackend":
        from repro.service.checkpoint import restore_guard

        if not isinstance(cp, dict) or cp.get("format") != SOLVER_CHECKPOINT_FORMAT:
            found = cp.get("format") if isinstance(cp, dict) else cp
            raise DataQualityError(
                "unsupported elliptical solver checkpoint: expected format "
                f"{SOLVER_CHECKPOINT_FORMAT}, got {found!r}"
            )
        with restore_guard("elliptical solver backend"):
            cfg = cp["config"]
            backend = cls(
                estimator=EllipticalEstimator(
                    gamma_prior=(None if cfg["gamma_prior"] is None
                                 else float(cfg["gamma_prior"])),
                    n_prior=(None if cfg["n_prior"] is None
                             else float(cfg["n_prior"])),
                    min_samples=int(cfg["min_samples"]),
                ),
                sanitize=str(cp["sanitize"]),
            )
            p = [float(v) for v in cp["p"]]
            q = [float(v) for v in cp["q"]]
            rss = [float(v) for v in cp["rss"]]
            if not (len(p) == len(q) == len(rss)):
                raise DataQualityError(
                    "elliptical solver checkpoint rows do not align"
                )
            if not all(np.isfinite(p + q + rss)):
                raise DataQualityError(
                    "elliptical solver checkpoint contains non-finite rows"
                )
            backend._p, backend._q, backend._rss = p, q, rss
            backend._n_skipped = int(cp["n_skipped"])
        return backend


register_backend("elliptical", EllipticalBackend)
