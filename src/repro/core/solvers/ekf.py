"""Extended Kalman filter over the log-distance path-loss state.

The third solver backend (PAPERS.md: Mackey et al. found Bayesian filters
the strongest BLE proximity estimators; Jadidi et al. track radio sources
with Gaussian filters over path-loss states). The state is the same four
parameters the elliptical regression fits — beacon position and path-loss
model::

    s = (x, h, Γ, n),     rss = Γ - 10 n log10(l),
    l = hypot(x + p, h + q)

linearised per reading around the current mean. The measurement Jacobian::

    ∂rss/∂x = -(10 n / ln 10) (x + p) / l²
    ∂rss/∂h = -(10 n / ln 10) (h + q) / l²
    ∂rss/∂Γ = 1
    ∂rss/∂n = -10 log10(l)

Each update runs through :func:`repro.core.tracking.joseph_update` — the
same solve-based gain + Joseph-form covariance machinery
:class:`~repro.core.tracking.BeaconTracker` uses, so the numerical
hygiene (no explicit inverse, P kept symmetric PSD) is shared, not
re-implemented.

The RSS surface is multi-modal in position (any bearing at the right range
explains a single reading equally well), so a single linearisation point
is a coin toss. The backend therefore runs a small bank of independent
EKF hypotheses, initialised on the first observed batch at the
median-RSS-derived range across several bearings, and :meth:`solve` picks
the hypothesis whose final state best explains *all* accepted readings
(lowest RSS-domain RMSE) — a poor man's Gaussian-sum filter that keeps
each update O(16) floats.

Deterministic (no RNG), so kill-and-resume bit-identity is exact by
construction; the checkpoint carries every hypothesis and the accepted
rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro import obs, perf
from repro.core.estimator import FitResult
from repro.core.solvers.base import (
    SOLVER_CHECKPOINT_FORMAT,
    emit_skips,
    register_backend,
    screen_readings,
)
from repro.core.tracking import joseph_update
from repro.errors import (
    ConfigurationError,
    DataQualityError,
    EstimationError,
    InsufficientDataError,
)
from repro.types import Vec2

__all__ = ["EkfBackend"]

_LN10 = math.log(10.0)

#: Bearings (rad) of the initial hypothesis bank — four quadrants is the
#: coarsest bank that cannot start every hypothesis on the wrong side.
_INIT_BEARINGS = (0.25 * math.pi, 0.75 * math.pi, 1.25 * math.pi,
                  1.75 * math.pi)

#: Exponent used to turn the first batch's median RSS into an initial
#: range guess (the centre of the indoor band; the filter refines it).
_INIT_N = 2.2


@dataclass
class _Hypothesis:
    """One EKF track: mean, covariance, and a gated-update count."""

    x: np.ndarray
    p: np.ndarray
    n_gated: int = 0


@dataclass
class EkfBackend:
    """Multi-hypothesis EKF behind the streaming backend contract.

    ``innovation_gate`` rejects readings whose innovation exceeds that many
    predicted standard deviations *for that hypothesis* — a spike that
    slips through the plausibility screen must not yank a converged track;
    each gated update is counted and evented (``solver.ekf_gated``).
    ``min_samples`` matches the elliptical solver's redundancy floor.
    """

    sanitize: str = "strict"
    gamma_prior: float = -59.0
    gamma_prior_sigma: float = 6.0
    n_prior: Optional[float] = None
    rss_sigma_db: float = 3.5
    max_range_m: float = 16.0
    innovation_gate: float = 4.0
    min_samples: int = 8
    _hypotheses: List[_Hypothesis] = field(default_factory=list, init=False)
    _p: List[float] = field(default_factory=list, init=False)
    _q: List[float] = field(default_factory=list, init=False)
    _rss: List[float] = field(default_factory=list, init=False)
    _n_skipped: int = field(default=0, init=False)

    name = "ekf"

    def __post_init__(self) -> None:
        if self.rss_sigma_db <= 0 or self.max_range_m <= 0:
            raise ConfigurationError("invalid noise/range parameters")
        if self.innovation_gate <= 0:
            raise ConfigurationError("innovation gate must be positive")
        if self.sanitize not in ("strict", "repair"):
            raise ConfigurationError(
                f"sanitize must be 'strict' or 'repair', got {self.sanitize!r}"
            )

    @classmethod
    def create(
        cls,
        sanitize: str = "strict",
        seed: int = 0,
        gamma_prior: float = -59.0,
        n_prior: Optional[float] = None,
        **_: Any,
    ) -> "EkfBackend":
        # ``seed`` is part of the common option set; the EKF is
        # deterministic so it is simply unused here.
        return cls(
            sanitize=sanitize,
            gamma_prior=-59.0 if gamma_prior is None else float(gamma_prior),
            n_prior=None if n_prior is None else float(n_prior),
        )

    # -- assimilation --------------------------------------------------------

    def observe(self, p, q, rss) -> int:
        def skip(n_bad: int) -> None:
            self._n_skipped += n_bad
            emit_skips(self.name, n_bad)

        p_ok, q_ok, rss_ok = screen_readings(p, q, rss, self.sanitize, skip)
        if len(p_ok) == 0:
            return 0
        if not self._hypotheses:
            self._init_hypotheses(float(np.median(rss_ok)))
        for p_i, q_i, r_i in zip(p_ok, q_ok, rss_ok):
            self._assimilate(float(p_i), float(q_i), float(r_i))
            self._p.append(float(p_i))
            self._q.append(float(q_i))
            self._rss.append(float(r_i))
        return int(len(p_ok))

    def _init_hypotheses(self, rss_median: float) -> None:
        n0 = _INIT_N if self.n_prior is None else float(self.n_prior)
        # Invert the path-loss model at the prior Γ for an initial range.
        l0 = 10.0 ** ((self.gamma_prior - rss_median) / (10.0 * n0))
        l0 = float(np.clip(l0, 0.5, self.max_range_m))
        # Generous position spread: each hypothesis owns its bearing
        # quadrant but must be able to slide along it freely.
        pos_var = (0.75 * l0 + 1.0) ** 2
        n_var = 0.6**2 if self.n_prior is None else 0.3**2
        p0 = np.diag([pos_var, pos_var, self.gamma_prior_sigma**2, n_var])
        self._hypotheses = [
            _Hypothesis(
                x=np.array([l0 * math.cos(b), l0 * math.sin(b),
                            self.gamma_prior, n0]),
                p=p0.copy(),
            )
            for b in _INIT_BEARINGS
        ]

    def _assimilate(self, p: float, q: float, rss: float) -> None:
        r = np.array([[self.rss_sigma_db**2]])
        for i, hyp in enumerate(self._hypotheses):
            x, h_pos, gamma, n = hyp.x
            dx, dy = x + p, h_pos + q
            l = max(math.hypot(dx, dy), 0.1)
            predicted = gamma - 10.0 * n * math.log10(l)
            innovation = np.array([rss - predicted])
            jac = np.array([[
                -(10.0 * n / _LN10) * dx / (l * l),
                -(10.0 * n / _LN10) * dy / (l * l),
                1.0,
                -10.0 * math.log10(l),
            ]])
            s = (jac @ hyp.p @ jac.T + r).item()
            if innovation[0] ** 2 > (self.innovation_gate**2) * s:
                hyp.n_gated += 1
                perf.count("solver.ekf_gated")
                obs.emit(
                    "solver.ekf_gated",
                    severity="debug",
                    component="solver",
                    hypothesis=i,
                    innovation_db=float(innovation[0]),
                    predicted_std_db=math.sqrt(s),
                )
                continue
            hyp.x, hyp.p = joseph_update(hyp.x, hyp.p, jac, r, innovation)
            # Keep the exponent physical; the EKF linearisation can briefly
            # overshoot the band the model is meaningful in.
            hyp.x[3] = float(np.clip(hyp.x[3], 1.0, 5.0))

    # -- solving -------------------------------------------------------------

    def _rmse(self, hyp: _Hypothesis) -> float:
        res = self._residuals(hyp)
        return float(np.sqrt(np.mean(res**2)))

    def _residuals(self, hyp: _Hypothesis) -> np.ndarray:
        x, h_pos, gamma, n = hyp.x
        p = np.asarray(self._p)
        q = np.asarray(self._q)
        rss = np.asarray(self._rss)
        l = np.maximum(np.hypot(x + p, h_pos + q), 0.1)
        return rss - (gamma - 10.0 * n * np.log10(l))

    def solve(self) -> FitResult:
        if len(self._rss) < self.min_samples:
            raise InsufficientDataError(
                f"EKF solve needs >= {self.min_samples} readings, "
                f"have {len(self._rss)}"
            )
        if not self._hypotheses:
            raise EstimationError(
                "EKF has readings but no hypothesis bank — inconsistent state"
            )
        best = min(self._hypotheses, key=self._rmse)
        x, h_pos, gamma, n = (float(v) for v in best.x)
        if not all(map(math.isfinite, (x, h_pos, gamma, n))):
            raise EstimationError("EKF state diverged to non-finite values")
        pos_var = float(best.p[0, 0] + best.p[1, 1])
        std = math.sqrt(max(pos_var, 0.0))
        try:
            cov_cond = float(np.linalg.cond(best.p))
        except np.linalg.LinAlgError:
            cov_cond = float("inf")
        return FitResult(
            position=Vec2(x, h_pos),
            n=n,
            gamma=gamma,
            epsilon=float(10.0 ** (gamma / (5.0 * n))),
            residuals=self._residuals(best),
            position_std=std,
            solver="ekf",
            n_candidates=len(self._hypotheses),
            cov_cond=cov_cond if math.isfinite(cov_cond) else None,
            cov_status="ok" if math.isfinite(cov_cond) else "error",
        )

    def diagnostics(self) -> Dict[str, Any]:
        return {
            "backend": self.name,
            "n_observed": len(self._p),
            "n_skipped": self._n_skipped,
            "n_hypotheses": len(self._hypotheses),
            "n_gated": sum(h.n_gated for h in self._hypotheses),
        }

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "format": SOLVER_CHECKPOINT_FORMAT,
            "backend": self.name,
            "sanitize": self.sanitize,
            "config": {
                "gamma_prior": self.gamma_prior,
                "gamma_prior_sigma": self.gamma_prior_sigma,
                "n_prior": self.n_prior,
                "rss_sigma_db": self.rss_sigma_db,
                "max_range_m": self.max_range_m,
                "innovation_gate": self.innovation_gate,
                "min_samples": self.min_samples,
            },
            "hypotheses": [
                {"x": h.x.tolist(), "p": h.p.tolist(), "n_gated": h.n_gated}
                for h in self._hypotheses
            ],
            "p": list(self._p),
            "q": list(self._q),
            "rss": list(self._rss),
            "n_skipped": self._n_skipped,
        }

    @classmethod
    def restore(cls, cp: Dict[str, Any]) -> "EkfBackend":
        from repro.service.checkpoint import restore_guard

        if not isinstance(cp, dict) or cp.get("format") != SOLVER_CHECKPOINT_FORMAT:
            found = cp.get("format") if isinstance(cp, dict) else cp
            raise DataQualityError(
                "unsupported EKF solver checkpoint: expected format "
                f"{SOLVER_CHECKPOINT_FORMAT}, got {found!r}"
            )
        with restore_guard("ekf solver backend"):
            cfg = cp["config"]
            backend = cls(
                sanitize=str(cp["sanitize"]),
                gamma_prior=float(cfg["gamma_prior"]),
                gamma_prior_sigma=float(cfg["gamma_prior_sigma"]),
                n_prior=(None if cfg["n_prior"] is None
                         else float(cfg["n_prior"])),
                rss_sigma_db=float(cfg["rss_sigma_db"]),
                max_range_m=float(cfg["max_range_m"]),
                innovation_gate=float(cfg["innovation_gate"]),
                min_samples=int(cfg["min_samples"]),
            )
            for h in cp["hypotheses"]:
                x = np.asarray(h["x"], dtype=float)
                p = np.asarray(h["p"], dtype=float)
                if x.shape != (4,) or p.shape != (4, 4):
                    raise DataQualityError(
                        "EKF checkpoint hypothesis has malformed shapes"
                    )
                if not (np.all(np.isfinite(x)) and np.all(np.isfinite(p))):
                    raise DataQualityError(
                        "EKF checkpoint contains non-finite state"
                    )
                backend._hypotheses.append(
                    _Hypothesis(x=x, p=p, n_gated=int(h["n_gated"]))
                )
            p_rows = [float(v) for v in cp["p"]]
            q_rows = [float(v) for v in cp["q"]]
            rss_rows = [float(v) for v in cp["rss"]]
            if not (len(p_rows) == len(q_rows) == len(rss_rows)):
                raise DataQualityError(
                    "EKF solver checkpoint rows do not align"
                )
            if rss_rows and not backend._hypotheses:
                raise DataQualityError(
                    "EKF solver checkpoint has readings but no hypotheses"
                )
            backend._p, backend._q, backend._rss = p_rows, q_rows, rss_rows
            backend._n_skipped = int(cp["n_skipped"])
        return backend


register_backend("ekf", EkfBackend)
