"""3-D beacon localisation (the paper's Sec. 9.3 extension, implemented).

"3-D localization can be done by modifying our data fusion and L-shaped
movement" — the model generalises directly:

    RS_i = Γ - 10 n log10(l_i),
    l_i^2 = (x + p_i)^2 + (h + q_i)^2 + (z + r_i)^2,

where ``r_i`` is the observer's relative *elevation* displacement (from the
barometer, :mod:`repro.imu.barometer`). Observability needs the walk to
change elevation — a ramp, stairs, or simply raising the phone — mirroring
how the planar L-walk makes (x, h) observable. Without elevation change, z
is identifiable only up to sign (the 3-D analogue of the Sec. 5.1 mirror),
and the fit reports the ±z pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.core.estimator import EllipticalEstimator
from repro.errors import EstimationError, InsufficientDataError

__all__ = ["Fit3DResult", "Estimator3D", "Vec3"]


@dataclass(frozen=True)
class Vec3:
    """A 3-D point/displacement in metres."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def norm(self) -> float:
        return math.sqrt(self.x**2 + self.y**2 + self.z**2)

    def distance_to(self, other: "Vec3") -> float:
        return (self - other).norm()

    @property
    def horizontal(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass
class Fit3DResult:
    """Outcome of one 3-D regression."""

    position: Vec3
    n: float
    gamma: float
    residuals: np.ndarray
    mirror_z: Optional[Vec3] = None

    @property
    def rss_rmse(self) -> float:
        return float(np.sqrt(np.mean(self.residuals**2)))


@dataclass
class Estimator3D:
    """Nonlinear 3-D location fit with the 2-D estimator's priors.

    Reuses :class:`EllipticalEstimator`'s prior configuration (Γ and the
    environment-informed exponent) and multi-start strategy, extended with
    the vertical dimension.
    """

    planar: EllipticalEstimator = field(default_factory=EllipticalEstimator)
    min_samples: int = 10
    #: Elevation span below which z is declared unobservable (sign-ambiguous).
    min_elevation_span_m: float = 0.4
    #: Weak vertical prior: indoor beacons sit within a few metres of the
    #: phone's carry height (shelf, wall mount, floor), so a soft pull
    #: toward z = 0 regularises the extra unknown the third dimension adds.
    z_prior: Optional[float] = 0.0
    z_prior_sigma: float = 2.0

    def fit(
        self,
        p: Sequence[float],
        q: Sequence[float],
        r: Sequence[float],
        rss: Sequence[float],
    ) -> Fit3DResult:
        """Fit the beacon's 3-D position from displacements + RSS.

        ``p``/``q`` are the horizontal relative displacements (as in the 2-D
        estimator) and ``r`` the relative elevation displacement (barometer).
        """
        p = np.asarray(p, dtype=float)
        q = np.asarray(q, dtype=float)
        r = np.asarray(r, dtype=float)
        rss = np.asarray(rss, dtype=float)
        if not (p.shape == q.shape == r.shape == rss.shape) or p.ndim != 1:
            raise EstimationError("p, q, r, rss must be aligned 1-D arrays")
        if len(p) < self.min_samples:
            raise InsufficientDataError(
                f"need >= {self.min_samples} samples, got {len(p)}"
            )
        if float(np.ptp(p)) < 0.2 and float(np.ptp(q)) < 0.2:
            raise InsufficientDataError("observer barely moved horizontally")

        z_observable = float(np.ptp(r)) >= self.min_elevation_span_m

        best = None
        best_cost = math.inf
        for x0, h0, gamma0, n0 in self.planar._initial_candidates(
            p, q, rss, use_q=True
        ):
            for z0 in (0.5, 1.5, -1.0):
                refined = self._refine(p, q, r, rss, x0, h0, z0, gamma0, n0,
                                       z_nonneg=not z_observable)
                if refined is None:
                    continue
                cost = float(np.sum(refined[5] ** 2))
                if cost < best_cost:
                    best_cost = cost
                    best = refined
        if best is None:
            raise EstimationError("no valid 3-D solve found")
        x, h, z, gamma, n, resid = best
        mirror = None
        if not z_observable:
            z = abs(z)
            mirror = Vec3(x, h, -z)
        return Fit3DResult(
            position=Vec3(x, h, z), n=n, gamma=gamma, residuals=resid,
            mirror_z=mirror,
        )

    def _refine(self, p, q, r, rss, x0, h0, z0, gamma0, n0, z_nonneg):
        planar = self.planar
        root_n = math.sqrt(len(rss))

        def residual_fn(theta):
            x, h, z, gamma, n = theta
            l = np.maximum(
                np.sqrt((x + p) ** 2 + (h + q) ** 2 + (z + r) ** 2), 0.1
            )
            rows = [rss - (gamma - 10.0 * n * np.log10(l))]
            if planar.gamma_prior is not None:
                rows.append(np.array([
                    root_n * (gamma - planar.gamma_prior)
                    / planar.gamma_prior_sigma
                ]))
            if planar.n_prior is not None:
                rows.append(np.array([
                    root_n * (n - planar.n_prior) / planar.n_prior_sigma
                ]))
            if self.z_prior is not None:
                rows.append(np.array([
                    root_n * (z - self.z_prior) / self.z_prior_sigma
                ]))
            return np.concatenate(rows)

        lo = np.array([-18.0, -18.0, 0.0 if z_nonneg else -10.0, -95.0, 1.0])
        hi = np.array([18.0, 18.0, 10.0, -25.0, 5.0])
        theta0 = np.clip(np.array([x0, h0, z0, gamma0, n0]),
                         lo + 1e-6, hi - 1e-6)
        try:
            sol = least_squares(residual_fn, theta0, bounds=(lo, hi),
                                max_nfev=250)
        except (ValueError, np.linalg.LinAlgError):
            return None
        x, h, z, gamma, n = (float(v) for v in sol.x)
        return x, h, z, gamma, n, np.asarray(sol.fun)[: len(rss)]
