"""Algorithm 1: the end-to-end LocBLE estimation pipeline.

Wires the pieces together exactly in the paper's order (Sec. 5.3): per
2–3 s data batch, (1) detect the observer's (and target's) movement, (2)
match movement to RSS by timestamp, (3) classify the environment and filter
the noise, (4) append to the running regression — or start a new one if the
environment changed abruptly — and (5) refresh the location estimate and
its probability.

All three of the paper's design elements are independently removable for the
ablation experiments: ``use_envaware`` (Fig. 5), ``anf`` stages (Fig. 4/5),
and the environment-informed exponent prior.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import obs, perf
from repro.channel.pathloss import distance_for_rss
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.confidence import estimation_confidence
from repro.core.envaware import EnvAwareClassifier, EnvironmentMonitor
from repro.core.estimator import (
    EllipticalEstimator,
    FitRequest,
    FitResult,
    WarmStartState,
)
from repro.core.incremental import SlidingWindowRegressor
from repro.errors import (
    ConfigurationError,
    DataQualityError,
    EstimationError,
    InsufficientDataError,
)
from repro.motion.deadreckoning import MotionTracker
from repro.obs.provenance import FixProvenance
from repro.robustness.diagnostics import EstimateDiagnostics
from repro.robustness.sanitize import (
    SanitizationReport,
    check_trace,
    robust_rate_hz,
    sanitize_trace,
)
from repro.types import EnvClass, ImuTrace, LocationEstimate, RssiTrace, Vec2

__all__ = ["LocBLE", "EstimationContext", "PreparedEstimate"]

#: Roughly one batch per the paper's "2–3 seconds ... approximately 20 RSS
#: samples per data batch" at 8–9 Hz sampling.
DEFAULT_BATCH_S = 2.0

#: Matched rows younger than this are not cached across series batches —
#: dead reckoning still refines the last moments of the walk, and a row
#: that will change tomorrow only forces a full cache rebuild.
_PQ_SETTLE_GUARD_S = 3.0


@dataclass
class EstimationContext:
    """Intermediate pipeline state exposed for experiments and debugging."""

    matched_p: np.ndarray
    matched_q: np.ndarray
    matched_rss: np.ndarray
    segment_start_index: int
    env_class: str
    env_changes: List[float] = field(default_factory=list)
    fit: Optional[FitResult] = None
    sanitization: Optional[SanitizationReport] = None
    #: Unfiltered RSS for the *whole* (sanitized) trace, index-aligned with
    #: the series pq-cache — the incremental seeder regresses over raw
    #: values because they are stable per timestamp, unlike ANF output
    #: which changes as the window grows.
    raw_rss: Optional[np.ndarray] = None


@dataclass
class PreparedEstimate:
    """A solve-ready pipeline context for cross-session batching.

    Produced by :meth:`LocBLE.prepare_estimate`; its :meth:`request` feeds
    :func:`repro.core.estimator.fit_batch` and the resulting
    :class:`~repro.core.estimator.FitResult` goes back through
    :meth:`LocBLE.complete_estimate`. ``estimator`` is already
    environment-resolved, so the batched solve applies exactly the priors a
    sequential :meth:`LocBLE.estimate` would.
    """

    ctx: EstimationContext
    estimator: EllipticalEstimator

    def request(
        self,
        warm: Optional[WarmStartState] = None,
        extra_seeds: Tuple[Tuple[float, float, float, float], ...] = (),
    ) -> FitRequest:
        return FitRequest(
            p=self.ctx.matched_p,
            q=self.ctx.matched_q,
            rss=self.ctx.matched_rss,
            warm=warm,
            extra_seeds=tuple(extra_seeds),
            estimator=self.estimator,
        )


@dataclass
class _PqCache:
    """Matched p/q rows carried across :meth:`LocBLE.estimate_series` steps.

    Dead reckoning is append-mostly: feeding more IMU data extends the track
    but normally leaves earlier positions untouched, so displacement rows
    matched in previous batches can be reused and only the new RSS samples
    matched. The checkpoint guards the "normally": before reusing, the
    displacement at the last cached timestamp is recomputed on the current
    track and compared bitwise — displacements are cumulative, so any
    retroactive change to the walk perturbs the checkpoint and forces a full
    rebuild.
    """

    n: int = 0
    p: np.ndarray = field(default_factory=lambda: np.empty(0))
    q: np.ndarray = field(default_factory=lambda: np.empty(0))
    t_last: float = -math.inf
    #: Whether the last :meth:`LocBLE._matched_pq` call reused the cached
    #: rows (vs rebuilding them because the track changed retroactively).
    #: The incremental seeder resets its regressor on a rebuild.
    reused: bool = False


class _IncrementalSeeder:
    """Streams settled matched rows into a sliding-window regressor.

    Maintains the paper's Eq. 4 linear system at one fixed seed exponent
    ``n0`` over the *settled* rows of the series pq-cache — appending new
    rows and evicting rows that fall before the active regression segment
    as O(k²) rank-1 updates instead of per-step rebuilds. Its running
    solution ``(x, h, g, ε)`` becomes one extra Gauss-Newton seed for the
    next warm solve. Rows use raw RSS (stable per timestamp; ANF output
    changes as the window grows) and only settled indices (below the
    cache's settle guard), so a row entered once is never wrong later —
    except when the dead-reckoned track changes retroactively, which the
    pq-cache detects and the seeder answers by restarting its regressor.
    """

    def __init__(self, n0: float):
        self.n0 = float(n0)
        self.swr = SlidingWindowRegressor(4)
        self.lo = 0  # global index of the oldest row in the regressor
        self.hi = 0  # one past the newest

    def update(
        self, ctx: EstimationContext, cache: _PqCache
    ) -> Tuple[Tuple[float, float, float, float], ...]:
        """Sync the regressor to this step's rows; return seeds (or none)."""
        if ctx.raw_rss is None:
            return ()
        seg_start = ctx.segment_start_index
        settled = min(cache.n, len(ctx.raw_rss), len(cache.p))
        if not cache.reused or seg_start < self.lo:
            self.swr = SlidingWindowRegressor(4)
            self.lo = self.hi = seg_start
        while self.lo < seg_start and len(self.swr):
            self.swr.evict_oldest()
            self.lo += 1
        self.lo = max(self.lo, seg_start)
        self.hi = max(self.hi, self.lo)
        while self.hi < settled:
            i = self.hi
            p_i, q_i = float(cache.p[i]), float(cache.q[i])
            y_i = 10.0 ** (-float(ctx.raw_rss[i]) / (5.0 * self.n0))
            row = (-2.0 * p_i, -2.0 * q_i, -1.0, y_i)
            rhs = p_i * p_i + q_i * q_i
            if not all(math.isfinite(v) for v in (*row, rhs)):
                # Keep index alignment with the cache: a neutral all-zero
                # row contributes nothing but still occupies slot i.
                row, rhs = (0.0, 0.0, 0.0, 0.0), 0.0
            self.swr.append(row, rhs)
            self.hi = i + 1
        theta = self.swr.solve()
        if theta is None:
            return ()
        x, h, _g, eps = (float(v) for v in theta)
        if not (eps > 0.0 and math.isfinite(eps)):
            return ()
        gamma = 5.0 * self.n0 * math.log10(eps)
        if not all(math.isfinite(v) for v in (x, h, gamma)):
            return ()
        return ((x, h, gamma, self.n0),)


@dataclass
class LocBLE:
    """The LocBLE application core, configured per measurement session.

    Feed a whole recorded session to :meth:`estimate`; use
    :meth:`estimate_series` for navigation-style periodic re-estimation.
    """

    envaware: Optional[EnvAwareClassifier] = None
    anf: AdaptiveNoiseFilter = field(default_factory=AdaptiveNoiseFilter)
    estimator: EllipticalEstimator = field(default_factory=EllipticalEstimator)
    motion_tracker: MotionTracker = field(default_factory=MotionTracker)
    use_envaware: bool = True
    restart_on_env_change: bool = True
    use_env_prior: bool = True
    batch_s: float = DEFAULT_BATCH_S
    envaware_hysteresis: int = 2
    #: Input-trace policy: ``"strict"`` rejects malformed traces with a
    #: typed :class:`~repro.errors.DataQualityError`; ``"repair"`` routes
    #: them through :func:`repro.robustness.sanitize_trace` and carries the
    #: report on the estimate's diagnostics. Fault-injection sweeps run in
    #: repair mode; interactive use keeps strict so bad logs surface loudly.
    sanitize: str = "strict"
    #: Which solver backend resolves the location from the matched rows —
    #: a name from :func:`repro.core.solvers.available_backends`. The
    #: default ``"elliptical"`` keeps the paper's regression with its
    #: warm-start and cross-session batching fast paths; ``"particle"``
    #: and ``"ekf"`` route the solve through the corresponding
    #: :class:`~repro.core.solvers.base.SolverBackend` (every upstream
    #: pipeline stage — sanitization, dead reckoning, EnvAware, ANF —
    #: is identical across backends).
    solver: str = "elliptical"

    def __post_init__(self) -> None:
        if self.sanitize not in ("strict", "repair"):
            raise ConfigurationError(
                f"sanitize must be 'strict' or 'repair', got {self.sanitize!r}"
            )
        from repro.core.solvers import available_backends

        if self.solver not in available_backends():
            raise ConfigurationError(
                f"unknown solver {self.solver!r}; "
                f"available: {', '.join(available_backends())}"
            )

    @property
    def uses_batched_solver(self) -> bool:
        """Whether this pipeline's solves can be stacked into ``fit_batch``.

        Only the elliptical regression has the cross-session batched path;
        services fall back to per-session sequential solves for the other
        backends.
        """
        return self.solver == "elliptical"

    # -- public API ---------------------------------------------------------

    @perf.profiled("pipeline.LocBLE.estimate")
    def estimate(
        self,
        rssi_trace: RssiTrace,
        observer_imu: ImuTrace,
        target_imu: Optional[ImuTrace] = None,
        warm: Optional[WarmStartState] = None,
        extra_seeds: Tuple[Tuple[float, float, float, float], ...] = (),
    ) -> LocationEstimate:
        """Estimate the beacon's position in the measurement frame.

        ``target_imu`` enables the moving-target mode (Sec. 5): the target
        records its own motion and "sends measurement data to the observer
        for processing"; frames are reconciled through each device's
        magnetic heading.

        ``warm`` (typically the previous overlapping window's
        ``diagnostics.warm``) routes the solve through the estimator's
        warm-start fast path; a stale warm state is rejected and re-solved
        cold, so it can only cost latency, never accuracy.
        """
        ctx = self._build_context(rssi_trace, observer_imu, target_imu)
        return self._estimate_from_context(ctx, warm=warm,
                                           extra_seeds=extra_seeds)

    def prepare_estimate(
        self,
        rssi_trace: RssiTrace,
        observer_imu: ImuTrace,
        target_imu: Optional[ImuTrace] = None,
    ) -> PreparedEstimate:
        """Run every pipeline stage up to (but not including) the solve.

        The cross-session batching path: N sessions each prepare their
        context, the service stacks the resulting requests into one
        :func:`repro.core.estimator.fit_batch` call, and each
        :class:`~repro.core.estimator.FitResult` comes back through
        :meth:`complete_estimate`. ``prepare + fit_batch + complete`` is
        numerically identical to :meth:`estimate` per session.
        """
        if not self.uses_batched_solver:
            raise ConfigurationError(
                f"solver {self.solver!r} has no cross-session batched path; "
                "use estimate() per session"
            )
        ctx = self._build_context(rssi_trace, observer_imu, target_imu)
        return PreparedEstimate(ctx=ctx, estimator=self._resolve_estimator(ctx))

    def complete_estimate(
        self, prepared: PreparedEstimate, fit: FitResult
    ) -> LocationEstimate:
        """Turn a batched solve's :class:`FitResult` into the estimate."""
        confidence = estimation_confidence(fit.residuals)
        return self._finish_estimate(prepared.ctx, fit, confidence)

    def estimate_all(
        self,
        rssi_traces: "dict[str, RssiTrace]",
        observer_imu: ImuTrace,
    ) -> "dict[str, LocationEstimate]":
        """Estimate every audible beacon from one session's traces.

        Beacons whose trace is too poor to estimate are simply omitted —
        a multi-beacon scan routinely contains marginal strays.
        """
        out: "dict[str, LocationEstimate]" = {}
        for beacon_id, trace in rssi_traces.items():
            try:
                out[beacon_id] = self.estimate(trace, observer_imu)
            except (ConfigurationError, InsufficientDataError,
                    EstimationError) as exc:
                perf.count("pipeline.beacons_skipped")
                obs.emit(
                    "pipeline.beacon_skipped",
                    severity="info",
                    component="pipeline",
                    beacon=str(beacon_id),
                    reason=type(exc).__name__,
                )
                continue
        return out

    @perf.profiled("pipeline.LocBLE.estimate_series")
    def estimate_series(
        self,
        rssi_trace: RssiTrace,
        observer_imu: ImuTrace,
        times: List[float],
        warm_chain: bool = False,
    ) -> List[Tuple[float, LocationEstimate]]:
        """Re-estimate at each requested time using only data seen so far.

        Powers the navigation experiments (Fig. 12b): the estimate sharpens
        as the observer approaches and more data accumulates. Times where
        too little data exists are skipped.

        Work is shared across the series: displacement/RSS rows matched in
        earlier batches are reused (appended to, not rebuilt) whenever the
        dead-reckoned track did not change retroactively — each step then
        costs only the new samples' matching plus the (vectorized) filter
        and regression. With the default ``warm_chain=False``, results are
        identical to calling :meth:`estimate` on each prefix.

        ``warm_chain=True`` additionally carries each step's warm-start
        state (and an incrementally maintained sliding-window linear system
        over the settled rows) into the next step's solve, replacing the
        full exponent-grid search with a few-seed refinement. Steps then
        agree with the cold path to solver tolerance rather than bitwise —
        the warm fit's acceptance guard re-runs cold whenever residuals
        blow up, so accuracy is preserved.
        """
        out: List[Tuple[float, LocationEstimate]] = []
        imu_ts = [s.timestamp for s in observer_imu.samples]
        cache = _PqCache()
        warm: Optional[WarmStartState] = None
        seeder: Optional[_IncrementalSeeder] = None
        if warm_chain:
            n0 = self.estimator.n_prior
            seeder = _IncrementalSeeder(float(n0) if n0 is not None else 2.2)
        for t in times:
            partial = rssi_trace.slice_time(-math.inf, t)
            imu_partial = ImuTrace(
                observer_imu.samples[:bisect_right(imu_ts, t)]
            )
            try:
                ctx = self._build_context(
                    partial, imu_partial, None, _pq_cache=cache)
                extra = seeder.update(ctx, cache) if seeder is not None else ()
                out.append((t, self._estimate_from_context(
                    ctx, warm=warm, extra_seeds=extra)))
                if warm_chain and ctx.fit is not None:
                    warm = ctx.fit.warm
            except (InsufficientDataError, EstimationError):
                # A prefix can be unobservable (standstill start, degenerate
                # geometry) even when later prefixes estimate fine; skip it
                # rather than abort the series.
                continue
        return out

    def estimate_robust(
        self,
        rssi_trace: RssiTrace,
        observer_imu: ImuTrace,
        target_imu: Optional[ImuTrace] = None,
    ) -> LocationEstimate:
        """Estimate with graceful degradation: data pathologies never raise.

        The trace is first repaired by
        :func:`repro.robustness.sanitize_trace`; if the full pipeline then
        refuses (too few surviving samples, degenerate geometry, no valid
        solve), a *fallback estimate* is returned instead of an exception: a
        proximity-style range from the median surviving RSS at the
        estimator's prior parameters, bearing unknown, with
        ``confidence = 0.0`` and an
        :class:`~repro.robustness.EstimateDiagnostics` explaining the
        failure. Caller bugs (mismatched IMU types, bad configuration)
        still raise — only *data* problems degrade.
        """
        clean, report = sanitize_trace(rssi_trace)
        try:
            ctx = self._build_context(clean, observer_imu, target_imu)
            ctx.sanitization = report
            return self._estimate_from_context(ctx)
        except (DataQualityError, InsufficientDataError, EstimationError) as exc:
            return self._fallback_estimate(clean, report, exc)

    def _fallback_estimate(
        self,
        trace: RssiTrace,
        report: SanitizationReport,
        exc: Exception,
    ) -> LocationEstimate:
        """Diagnostic-bearing zero-confidence result when the fit refused.

        With any usable RSS at all, the median reading inverted at the
        estimator's prior (Γ, n) gives a coarse range; the bearing is
        unknowable without geometry, so the position sits on the +x axis
        and ``position_std`` is set to the range itself — downstream
        1/var weighting then effectively ignores it.
        """
        vals = trace.values() if len(trace) else np.empty(0)
        finite = vals[np.isfinite(vals)]
        failure = f"{type(exc).__name__}: {exc}"

        def fallback_provenance(tag: str, n_used: int) -> FixProvenance:
            dropped = (report.n_nonfinite_dropped
                       + report.n_implausible_dropped
                       + report.n_duplicates_collapsed)
            perf.count("pipeline.fallbacks")
            obs.emit(
                "pipeline.fallback",
                severity="warning",
                component="pipeline",
                fallback=tag,
                failure=failure,
                n_samples=n_used,
            )
            return FixProvenance(
                solver="fallback",
                n_samples=n_used,
                sanitized_dropped=int(dropped),
                sanitized_repaired=not report.clean,
                confidence=0.0,
                fallback=tag,
            )

        if finite.size == 0:
            return LocationEstimate(
                position=Vec2(float("nan"), float("nan")),
                confidence=0.0,
                diagnostics=EstimateDiagnostics(
                    sanitization=report,
                    fallback="no-data",
                    failure=failure,
                    n_samples_used=0,
                    provenance=fallback_provenance("no-data", 0),
                ),
            )
        gamma = self.estimator.gamma_prior
        gamma = float(gamma) if gamma is not None else -59.0
        n = self.estimator.n_prior
        n = float(n) if n is not None else 2.0
        d = min(float(distance_for_rss(float(np.median(finite)), gamma, n)),
                30.0)
        return LocationEstimate(
            position=Vec2(d, 0.0),
            confidence=0.0,
            gamma=gamma,
            n=n,
            position_std=d,
            diagnostics=EstimateDiagnostics(
                sanitization=report,
                fallback="range-only",
                failure=failure,
                n_samples_used=int(finite.size),
                provenance=fallback_provenance("range-only", int(finite.size)),
            ),
        )

    # -- pipeline stages ------------------------------------------------------

    def _build_context(
        self,
        rssi_trace: RssiTrace,
        observer_imu: ImuTrace,
        target_imu: Optional[ImuTrace],
        _pq_cache: Optional[_PqCache] = None,
    ) -> EstimationContext:
        report: Optional[SanitizationReport] = None
        if self.sanitize == "repair":
            rssi_trace, report = sanitize_trace(rssi_trace)
        if len(rssi_trace) < self.estimator.min_samples:
            raise InsufficientDataError(
                f"trace has {len(rssi_trace)} samples; "
                f"need >= {self.estimator.min_samples}"
            )
        if report is None:
            check_trace(rssi_trace, context="trace")

        # Step 1 — movement detection (observer, and target if moving).
        observer_track = self.motion_tracker.track(observer_imu)
        target_track = None
        frame_rotation = 0.0
        if target_imu is not None:
            target_track = self.motion_tracker.track(target_imu)
            frame_rotation = self._frame_rotation(observer_imu, target_imu)

        # Step 2 — match movement to RSS data by timestamp (vectorized; the
        # series cache lets navigation-style re-estimation reuse the rows
        # matched in earlier batches).
        ts = rssi_trace.timestamps()
        raw_rss = rssi_trace.values()
        p, q = self._matched_pq(
            ts, observer_track, target_track, frame_rotation, _pq_cache)

        # Step 3a — environment classification over batches.
        env_class = EnvClass.LOS
        seg_start = 0
        changes: List[float] = []
        if self.use_envaware and self.envaware is not None:
            env_class, seg_start, changes = self._segment_by_environment(
                ts, raw_rss
            )
        if not self.restart_on_env_change:
            seg_start = 0
        if seg_start > 0:
            # A regression needs movement, not just samples: if the walk was
            # essentially over by the time the change was confirmed, keep
            # the whole trace rather than regress on a standstill tail.
            span = max(float(np.ptp(p[seg_start:])), float(np.ptp(q[seg_start:])))
            if span < 0.5:
                obs.emit(
                    "pipeline.env_restart_suppressed",
                    severity="debug",
                    component="pipeline",
                    segment_start=seg_start,
                    movement_span_m=span,
                )
                seg_start = 0
                changes = []
            else:
                perf.count("pipeline.env_restarts")
                obs.emit(
                    "pipeline.env_restart",
                    severity="info",
                    component="pipeline",
                    env=str(env_class),
                    segment_start=seg_start,
                    at=changes[-1] if changes else None,
                )

        # Step 3b — adaptive noise filtering on the active regression
        # segment only: filtering across an environment change would smear
        # the pre-change RSS level into the fresh regression's data.
        fs = robust_rate_hz(ts)
        if fs <= 0:
            raise DataQualityError(
                "trace timestamps span zero duration; cannot derive a "
                "sampling rate for noise filtering"
            )
        filtered = self.anf.apply(raw_rss[seg_start:], fs)

        return EstimationContext(
            matched_p=p[seg_start:],
            matched_q=q[seg_start:],
            matched_rss=filtered,
            segment_start_index=seg_start,
            env_class=env_class,
            env_changes=changes,
            sanitization=report,
            raw_rss=raw_rss,
        )

    @staticmethod
    def _matched_pq(
        ts: np.ndarray,
        observer_track,
        target_track,
        frame_rotation: float,
        cache: Optional[_PqCache],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Relative beacon displacement (p, q) at each RSS timestamp."""

        def compute(ts_part: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            a = observer_track.displacements_at(ts_part)
            if target_track is None:
                return -a[:, 0], -a[:, 1]
            b = target_track.displacements_at(ts_part)
            c, s = math.cos(frame_rotation), math.sin(frame_rotation)
            bx = c * b[:, 0] - s * b[:, 1]
            by = s * b[:, 0] + c * b[:, 1]
            return bx - a[:, 0], by - a[:, 1]

        if cache is None:
            return compute(ts)

        n = len(ts)
        reuse = 0 < cache.n <= n and float(ts[cache.n - 1]) == cache.t_last
        if reuse:
            # Checkpoint: the cached rows are only valid if the track still
            # passes through the same point at the last cached timestamp.
            chk_p, chk_q = compute(ts[cache.n - 1:cache.n])
            reuse = (chk_p[0] == cache.p[cache.n - 1]
                     and chk_q[0] == cache.q[cache.n - 1])
        if reuse:
            perf.count("pipeline.pq_cache_reuses")
            new_p, new_q = compute(ts[cache.n:])
            p = np.concatenate([cache.p[:cache.n], new_p])
            q = np.concatenate([cache.q[:cache.n], new_q])
        else:
            perf.count("pipeline.pq_cache_rebuilds")
            p, q = compute(ts)
        cache.reused = reuse
        # Cache only rows older than the settle guard: step/turn detection
        # keeps refining the last couple of seconds of the walk as IMU data
        # arrives, so rows near the prefix end would fail the checkpoint on
        # the next batch and force a full rebuild every time.
        n_keep = int(np.searchsorted(
            ts, float(ts[-1]) - _PQ_SETTLE_GUARD_S, side="right")) if n else 0
        cache.n = n_keep
        cache.p, cache.q = p, q
        cache.t_last = float(ts[n_keep - 1]) if n_keep else -math.inf
        return p, q

    def _resolve_estimator(self, ctx: EstimationContext) -> EllipticalEstimator:
        """The estimator this context solves with (environment priors applied)."""
        estimator = self.estimator
        if self.use_env_prior and self.use_envaware and self.envaware is not None:
            estimator = estimator.with_environment(ctx.env_class)
        return estimator

    def _estimate_from_context(
        self,
        ctx: EstimationContext,
        warm: Optional[WarmStartState] = None,
        extra_seeds: Tuple[Tuple[float, float, float, float], ...] = (),
    ) -> LocationEstimate:
        if self.solver != "elliptical":
            return self._estimate_with_backend(ctx)
        estimator = self._resolve_estimator(ctx)
        with obs.span(
            "estimator.solve", component="pipeline", env=ctx.env_class
        ) as sp:
            fit = estimator.fit(ctx.matched_p, ctx.matched_q, ctx.matched_rss,
                                warm=warm, extra_seeds=extra_seeds)
            confidence = estimation_confidence(fit.residuals)
            sp.annotate(solver=fit.solver, cov_status=fit.cov_status,
                        confidence=confidence)
        return self._finish_estimate(ctx, fit, confidence)

    def _estimate_with_backend(self, ctx: EstimationContext) -> LocationEstimate:
        """Solve via a registered non-elliptical backend.

        A fresh backend (deterministically seeded) consumes this context's
        matched rows, so repeated solves over the same window are
        reproducible; the environment-resolved priors of the elliptical
        path are handed to the backend so EnvAware shapes every solver the
        same way. Warm-start state does not apply — the sequential
        backends carry their own state between ``observe`` calls instead.
        """
        from repro.core.solvers import make_solver

        estimator = self._resolve_estimator(ctx)
        with obs.span(
            "estimator.solve", component="pipeline", env=ctx.env_class,
            backend=self.solver,
        ) as sp:
            backend = make_solver(
                self.solver,
                sanitize=self.sanitize,
                seed=0,
                gamma_prior=estimator.gamma_prior,
                n_prior=estimator.n_prior,
            )
            backend.observe(ctx.matched_p, ctx.matched_q, ctx.matched_rss)
            fit = backend.solve()
            confidence = estimation_confidence(fit.residuals)
            sp.annotate(solver=fit.solver, cov_status=fit.cov_status,
                        confidence=confidence)
        return self._finish_estimate(ctx, fit, confidence)

    def _finish_estimate(
        self, ctx: EstimationContext, fit: FitResult, confidence: float
    ) -> LocationEstimate:
        ctx.fit = fit
        ambiguous = (fit.mirror,) if fit.mirror is not None else ()
        diagnostics = EstimateDiagnostics(
            sanitization=ctx.sanitization,
            n_samples_used=int(len(ctx.matched_rss)),
            env_changes=tuple(ctx.env_changes),
            provenance=self._provenance(ctx, fit, confidence),
            warm=fit.warm,
        )
        return LocationEstimate(
            position=fit.position,
            confidence=confidence,
            gamma=fit.gamma,
            n=fit.n,
            environment=ctx.env_class,
            ambiguous=ambiguous,
            position_std=fit.position_std,
            diagnostics=diagnostics,
        )

    @staticmethod
    def _provenance(
        ctx: EstimationContext, fit: FitResult, confidence: float
    ) -> FixProvenance:
        """The pipeline's layer of the per-fix provenance record."""
        report = ctx.sanitization
        dropped = repaired = 0
        if report is not None:
            dropped = (report.n_nonfinite_dropped
                       + report.n_implausible_dropped
                       + report.n_duplicates_collapsed)
            repaired = not report.clean
        pos_std = float(fit.position_std)
        return FixProvenance(
            solver=fit.solver,
            n_candidates=fit.n_candidates,
            cov_cond=fit.cov_cond,
            cov_status=fit.cov_status,
            warm_started=fit.warm_started,
            env_class=str(ctx.env_class),
            env_restarts=len(ctx.env_changes),
            n_samples=int(len(ctx.matched_rss)),
            sanitized_dropped=int(dropped),
            sanitized_repaired=bool(repaired),
            confidence=float(confidence),
            position_std=pos_std if math.isfinite(pos_std) else None,
            fallback=None,
        )

    def _segment_by_environment(
        self, ts: np.ndarray, rss: np.ndarray
    ) -> Tuple[str, int, List[float]]:
        """Monitor batches; return (current class, segment start idx, changes).

        The regression restarts at the *last* abrupt environment change
        (Sec. 5.3 step: "start a new regression with the data"), but never
        so late that fewer than ``min_samples`` readings remain — a change
        in the final seconds cannot leave us with nothing to regress.
        """
        monitor = EnvironmentMonitor(
            self.envaware, hysteresis=self.envaware_hysteresis
        )
        seg_start = 0
        changes: List[float] = []
        t = float(ts[0])
        t_end = float(ts[-1])
        while t < t_end:
            mask = (ts >= t) & (ts < t + self.batch_s)
            idx = np.flatnonzero(mask)
            if len(idx) >= 4:
                changed = monitor.observe(rss[idx])
                if changed:
                    candidate = int(idx[0])
                    if len(ts) - candidate >= self.estimator.min_samples:
                        seg_start = candidate
                        changes.append(float(ts[candidate]))
            t += self.batch_s
        return monitor.current, seg_start, changes

    @staticmethod
    def _frame_rotation(
        observer_imu: ImuTrace, target_imu: ImuTrace, settle_s: float = 0.5
    ) -> float:
        """Rotation taking target-frame displacements into the observer frame.

        Each device's dead-reckoned frame is anchored at its own initial
        walking direction; the magnetometer gives both directions in a
        shared earth frame, so the difference of initial headings aligns
        them.
        """

        def initial_heading(imu: ImuTrace) -> float:
            t0 = imu.samples[0].timestamp
            hs = [
                s.mag_heading for s in imu.samples if s.timestamp <= t0 + settle_s
            ]
            return math.atan2(
                float(np.mean(np.sin(hs))), float(np.mean(np.cos(hs)))
            )

        return initial_heading(target_imu) - initial_heading(observer_imu)
