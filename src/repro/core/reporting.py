"""Session reports: a human-readable account of one measurement.

The LocBLE app shows the user an arrow and a dot; a *library* user debugging
a deployment wants the full story — trace quality, environment timeline,
motion summary, fit parameters, confidence and warnings. ``session_report``
assembles that from the pipeline's public outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.envaware import EnvAwareClassifier, trace_windows
from repro.core.pipeline import LocBLE
from repro.errors import EstimationError, InsufficientDataError
from repro.motion.deadreckoning import MotionTracker
from repro.types import ImuTrace, LocationEstimate, RssiTrace

__all__ = ["SessionReport", "session_report"]

#: Quality gates used to raise warnings.
_MIN_GOOD_SAMPLES = 25
_MIN_GOOD_RATE_HZ = 5.0
_MIN_GOOD_WALK_M = 3.0
_LOW_CONFIDENCE = 0.2


@dataclass
class SessionReport:
    """Structured report; ``str()`` renders the human-readable text."""

    n_samples: int
    rate_hz: float
    rssi_mean: float
    rssi_span: float
    walked_m: float
    n_turns: int
    env_timeline: List[str]
    estimate: Optional[LocationEstimate]
    failure: Optional[str]
    warnings: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines = ["=== LocBLE session report ==="]
        lines.append(
            f"trace    : {self.n_samples} samples @ {self.rate_hz:.1f} Hz, "
            f"mean {self.rssi_mean:.0f} dBm (span {self.rssi_span:.0f} dB)")
        lines.append(
            f"motion   : walked {self.walked_m:.1f} m, "
            f"{self.n_turns} turn(s)")
        if self.env_timeline:
            lines.append("envs     : " + " -> ".join(self.env_timeline))
        if self.estimate is not None:
            e = self.estimate
            lines.append(
                f"estimate : ({e.position.x:+.2f}, {e.position.y:+.2f}) m, "
                f"range {e.distance():.1f} m")
            lines.append(
                f"fit      : gamma {e.gamma:.1f} dBm, n {e.n:.2f}, "
                f"confidence {e.confidence:.2f}")
            if e.ambiguous:
                mirrors = ", ".join(
                    f"({m.x:+.1f}, {m.y:+.1f})" for m in e.ambiguous)
                lines.append(f"ambiguous: mirror candidate(s) at {mirrors}")
        else:
            lines.append(f"estimate : FAILED ({self.failure})")
        for w in self.warnings:
            lines.append(f"warning  : {w}")
        return "\n".join(lines)


def session_report(
    rssi_trace: RssiTrace,
    observer_imu: ImuTrace,
    pipeline: Optional[LocBLE] = None,
    envaware: Optional[EnvAwareClassifier] = None,
) -> SessionReport:
    """Run the pipeline on a session and assemble its report."""
    pipeline = pipeline or LocBLE(envaware=envaware)

    n = len(rssi_trace)
    rate = rssi_trace.mean_rate_hz()
    values = rssi_trace.values() if n else np.array([0.0])
    track = MotionTracker().track(observer_imu)

    env_timeline: List[str] = []
    clf = envaware or pipeline.envaware
    if clf is not None and n:
        labels = [clf.predict_one(w) for w in trace_windows(rssi_trace)]
        for lab in labels:
            if not env_timeline or env_timeline[-1] != lab:
                env_timeline.append(lab)

    estimate: Optional[LocationEstimate] = None
    failure: Optional[str] = None
    try:
        estimate = pipeline.estimate(rssi_trace, observer_imu)
    except (EstimationError, InsufficientDataError) as exc:
        failure = str(exc)

    warnings: List[str] = []
    if n < _MIN_GOOD_SAMPLES:
        warnings.append(
            f"only {n} RSSI samples; the paper's walks collect ~40")
    if 0 < rate < _MIN_GOOD_RATE_HZ:
        warnings.append(
            f"effective rate {rate:.1f} Hz; heavy interference suspected")
    if track.total_distance() < _MIN_GOOD_WALK_M:
        warnings.append(
            f"walked only {track.total_distance():.1f} m; "
            "Sec. 7.6.2 wants >= ~3 m")
    if len(track.turns) == 0:
        warnings.append(
            "no turn detected: straight-leg symmetry will be unresolved")
    if estimate is not None and estimate.confidence < _LOW_CONFIDENCE:
        warnings.append(
            f"low estimation confidence ({estimate.confidence:.2f}); "
            "the channel likely changed mid-measurement")
    if estimate is not None and estimate.distance() > 14.0:
        warnings.append(
            "estimated range beyond ~14 m; accuracy degrades sharply there "
            "(Fig. 12a)")

    return SessionReport(
        n_samples=n,
        rate_hz=rate,
        rssi_mean=float(np.mean(values)),
        rssi_span=float(np.ptp(values)),
        walked_m=track.total_distance(),
        n_turns=len(track.turns),
        env_timeline=env_timeline,
        estimate=estimate,
        failure=failure,
        warnings=warnings,
    )
