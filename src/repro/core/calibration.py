"""Algorithm 2: multi-beacon clustering calibration (Sec. 6).

Cheap beacons cluster physically (same shelf, same bin), and co-located
beacons' RSS sequences trend together during the observer's L-walk. The
calibration layer exploits that: it matches every nearby beacon's sequence
against the target's with the fixed-window DTW voting matcher, estimates a
position from each matching beacon's *own* RSS (they are co-located, so each
is an independent noisy estimate of the same spot), and fuses the candidates
by normalised confidence weight — "the estimations from those neighboring
devices compensate the noise in the challenging environments".
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List


from repro.core.pipeline import LocBLE
from repro.dtw.segmatch import MatchResult, SegmentMatcher
from repro.errors import EstimationError, InsufficientDataError
from repro.types import ImuTrace, LocationEstimate, RssiTrace, Vec2

__all__ = ["CalibratedEstimate", "ClusteringCalibrator"]


@dataclass
class CalibratedEstimate:
    """Fused estimate with per-contributor detail."""

    position: Vec2
    confidence: float
    contributors: List[str]
    weights: Dict[str, float]
    per_beacon: Dict[str, LocationEstimate]
    match_results: Dict[str, MatchResult]

    def error_to(self, truth: Vec2) -> float:
        return self.position.distance_to(truth)


@dataclass
class ClusteringCalibrator:
    """Clusters neighbouring beacons by RSS-trend similarity and fuses."""

    pipeline: LocBLE
    matcher: SegmentMatcher = field(default_factory=SegmentMatcher)

    def calibrate(
        self,
        target_id: str,
        traces: Dict[str, RssiTrace],
        observer_imu: ImuTrace,
    ) -> CalibratedEstimate:
        """Run Algorithm 2 for ``target_id`` over all scanned beacons.

        ``traces`` maps every beacon heard during the measurement (the
        target included) to its RSSI trace. Beacons whose sequences fail
        the DTW vote, or whose individual estimation fails, simply do not
        contribute — with no neighbours the result degrades gracefully to
        the single-beacon estimate.
        """
        if target_id not in traces:
            raise EstimationError(f"no trace for target beacon {target_id!r}")
        target_trace = traces[target_id]

        per_beacon: Dict[str, LocationEstimate] = {}
        match_results: Dict[str, MatchResult] = {}

        target_est = self.pipeline.estimate(target_trace, observer_imu)
        per_beacon[target_id] = target_est

        for beacon_id, trace in traces.items():
            if beacon_id == target_id:
                continue
            try:
                result = self.matcher.match(target_trace, trace)
            except InsufficientDataError:
                continue
            match_results[beacon_id] = result
            if not result.matched:
                continue
            try:
                per_beacon[beacon_id] = self.pipeline.estimate(
                    trace, observer_imu
                )
            except (EstimationError, InsufficientDataError):
                continue

        # Confidence-weighted fusion (the paper's normalised p_i weights),
        # additionally de-weighted by each fit's Gauss-Newton position
        # variance so a wild, weakly-observed estimate cannot dominate the
        # cluster average.
        weights: Dict[str, float] = {}
        total = 0.0
        for beacon_id, est in per_beacon.items():
            w = max(est.confidence, 1e-6)
            if math.isfinite(est.position_std):
                w /= 0.25 + est.position_std**2
            weights[beacon_id] = w
            total += w
        for beacon_id in weights:
            weights[beacon_id] /= total

        fused = Vec2(
            sum(per_beacon[b].position.x * w for b, w in weights.items()),
            sum(per_beacon[b].position.y * w for b, w in weights.items()),
        )
        fused_conf = float(
            sum(per_beacon[b].confidence * w for b, w in weights.items())
        )
        return CalibratedEstimate(
            position=fused,
            confidence=fused_conf,
            contributors=sorted(per_beacon),
            weights=weights,
            per_beacon=per_beacon,
            match_results=match_results,
        )
