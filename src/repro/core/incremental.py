"""Incremental sliding-window least squares for streaming regressions.

A streaming tracking tick re-solves the elliptical regression over a window
that overlaps the previous window almost entirely: a 2 s tick against a 60 s
window replaces ~3% of the rows. Rebuilding the stacked design matrix and
re-factorising from scratch every tick therefore throws away ~97% of the
previous factorisation's work. :class:`SlidingWindowRegressor` keeps the
triangular QR factor of the design alive across ticks:

* **append** a new sample row with one pass of Givens rotations
  (``O(k^2)`` per row for ``k`` parameters — independent of window length);
* **evict** the oldest row with a Cholesky-style downdate of the same cost;
* **refactor** from the retained row log every ``refactor_every``
  up/downdates (and whenever a downdate goes numerically infeasible), so
  rounding error cannot accumulate without bound.

The maintained state is the upper-triangular ``R`` with ``R^T R = A^T A``
and the normal-equations vector ``b = A^T y``; :meth:`solve` returns the
least-squares parameters via two triangular solves. The whole state is
JSON-checkpointable (:meth:`checkpoint`/:meth:`restore`) because the row
log — needed for downdating anyway — fully determines it.

This is the "incremental regressors" tier of the warm/incremental/batched
solver stack (see ``docs/performance.md``); the estimation pipeline uses it
to maintain warm-start seed systems across :meth:`LocBLE.estimate_series
<repro.core.pipeline.LocBLE.estimate_series>` steps.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

import numpy as np
from scipy.linalg import solve_triangular

from repro.errors import ConfigurationError, EstimationError

__all__ = ["SlidingWindowRegressor"]

#: Checkpoint schema version written by :meth:`SlidingWindowRegressor.checkpoint`.
SWR_CHECKPOINT_FORMAT = 1


class SlidingWindowRegressor:
    """Least squares over a FIFO window of rows, maintained incrementally.

    The invariant after every mutation is ``R^T R == A^T A`` and
    ``b == A^T y`` (up to accumulated rounding, bounded by the periodic
    refactorisation) for ``A``/``y`` the currently windowed rows.
    """

    def __init__(self, n_params: int, refactor_every: int = 128):
        if n_params < 1:
            raise ConfigurationError("n_params must be >= 1")
        if refactor_every < 1:
            raise ConfigurationError("refactor_every must be >= 1")
        self.n_params = int(n_params)
        self.refactor_every = int(refactor_every)
        self._r = np.zeros((n_params, n_params))
        self._b = np.zeros(n_params)
        self._rows: Deque[Tuple[np.ndarray, float]] = deque()
        self._ops_since_refactor = 0
        #: Counters surfaced for tests and perf accounting.
        self.n_appends = 0
        self.n_evictions = 0
        self.n_refactors = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def ops_since_refactor(self) -> int:
        return self._ops_since_refactor

    # -- mutation ------------------------------------------------------------

    def append(self, row: Any, y: float) -> None:
        """Add one sample row (rank-1 Givens update of ``R``)."""
        a = np.asarray(row, dtype=float).reshape(-1)
        if a.shape != (self.n_params,):
            raise ConfigurationError(
                f"row must have {self.n_params} entries, got {a.shape}"
            )
        y = float(y)
        if not (np.all(np.isfinite(a)) and math.isfinite(y)):
            raise EstimationError("regressor rows must be finite")
        self._rows.append((a.copy(), y))
        self._givens_append(a.copy())
        self._b += a * y
        self.n_appends += 1
        self._tick_hygiene()

    def evict_oldest(self) -> None:
        """Remove the oldest row (Cholesky downdate of ``R``).

        A downdate that goes numerically infeasible (the row to remove no
        longer sits inside the rounded factor) triggers a full
        refactorisation instead of raising — the row log is the ground
        truth, the factor only an accelerator.
        """
        if not self._rows:
            raise EstimationError("cannot evict from an empty window")
        a, y = self._rows.popleft()
        self.n_evictions += 1
        if not self._chol_downdate(a.copy()):
            self.refactor()
            return
        self._b -= a * y
        self._tick_hygiene()

    def refactor(self) -> None:
        """Rebuild ``R`` and ``b`` from the row log (numerical hygiene)."""
        self.n_refactors += 1
        self._ops_since_refactor = 0
        k = self.n_params
        if not self._rows:
            self._r = np.zeros((k, k))
            self._b = np.zeros(k)
            return
        design = np.stack([a for a, _ in self._rows])
        ys = np.array([y for _, y in self._rows])
        r = np.linalg.qr(design, mode="r")
        if r.shape[0] < k:  # fewer rows than params: pad to square
            r = np.vstack([r, np.zeros((k - r.shape[0], k))])
        self._r = r
        self._b = design.T @ ys

    # -- solving -------------------------------------------------------------

    def solve(self) -> Optional[np.ndarray]:
        """Current least-squares parameters, or ``None`` when unsolvable.

        Returns ``None`` (never raises) for under-determined or
        rank-deficient windows — callers treat the incremental solution as
        an accelerator and fall back to their cold path.
        """
        if len(self._rows) < self.n_params:
            return None
        diag = np.abs(np.diag(self._r))
        if diag.min() <= diag.max() * 1e-10 or not np.all(np.isfinite(diag)):
            return None
        try:
            u = solve_triangular(self._r, self._b, trans="T", lower=False)
            theta = solve_triangular(self._r, u, lower=False)
        except (ValueError, np.linalg.LinAlgError):
            return None
        if not np.all(np.isfinite(theta)):
            return None
        return theta

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """JSON-safe state: the row log plus the factor and counters."""
        return {
            "format": SWR_CHECKPOINT_FORMAT,
            "n_params": self.n_params,
            "refactor_every": self.refactor_every,
            "rows": [[list(a), y] for a, y in self._rows],
            "r": [list(row) for row in self._r],
            "b": list(self._b),
            "ops_since_refactor": self._ops_since_refactor,
            "n_appends": self.n_appends,
            "n_evictions": self.n_evictions,
            "n_refactors": self.n_refactors,
        }

    @classmethod
    def restore(cls, cp: Dict[str, Any]) -> "SlidingWindowRegressor":
        if not isinstance(cp, dict) or cp.get("format") != SWR_CHECKPOINT_FORMAT:
            raise EstimationError("unsupported regressor checkpoint")
        swr = cls(int(cp["n_params"]), refactor_every=int(cp["refactor_every"]))
        swr._rows = deque(
            (np.array(a, dtype=float), float(y)) for a, y in cp["rows"]
        )
        swr._r = np.array(cp["r"], dtype=float)
        swr._b = np.array(cp["b"], dtype=float)
        swr._ops_since_refactor = int(cp["ops_since_refactor"])
        swr.n_appends = int(cp["n_appends"])
        swr.n_evictions = int(cp["n_evictions"])
        swr.n_refactors = int(cp["n_refactors"])
        return swr

    # -- internals -----------------------------------------------------------

    def _tick_hygiene(self) -> None:
        self._ops_since_refactor += 1
        if self._ops_since_refactor >= self.refactor_every:
            self.refactor()

    def _givens_append(self, a: np.ndarray) -> None:
        """Rotate the new row into ``R`` (keeps the diagonal non-negative)."""
        r = self._r
        for i in range(self.n_params):
            rii, ai = r[i, i], a[i]
            if ai == 0.0:
                continue
            rad = math.hypot(rii, ai)
            c, s = rii / rad, ai / rad
            r[i, i] = rad
            if i + 1 < self.n_params:
                ti = r[i, i + 1:].copy()
                r[i, i + 1:] = c * ti + s * a[i + 1:]
                a[i + 1:] = c * a[i + 1:] - s * ti

    def _chol_downdate(self, a: np.ndarray) -> bool:
        """LINPACK-style downdate ``R^T R -= a a^T``; False when infeasible."""
        r = self._r.copy()
        for i in range(self.n_params):
            rii, ai = r[i, i], a[i]
            d = rii * rii - ai * ai
            if d <= 0.0 or rii == 0.0:
                if ai == 0.0 and rii == 0.0:
                    continue
                return False
            rad = math.sqrt(d)
            c, s = rad / rii, ai / rii
            r[i, i] = rad
            if i + 1 < self.n_params:
                r[i, i + 1:] = (r[i, i + 1:] - s * a[i + 1:]) / c
                a[i + 1:] = c * a[i + 1:] - s * r[i, i + 1:]
        self._r = r
        return True
