"""Elliptical-regression location estimation (Sec. 5 of the paper).

The estimator fuses observer (and optionally target) displacement with RSS
through the environment-parameterised log-distance model:

    RS_i = Γ(e) - 10 n(e) log10(l_i),
    l_i^2 = (x + p_i)^2 + (h + q_i)^2,

where ``(x, h)`` is the unknown beacon position in the measurement frame and
``p_i = b_i - a_i``, ``q_i = d_i - c_i`` are the known relative
displacements. Substituting the model and writing ``ε = 10^(Γ/(5n))``,
``η = 10^(-1/(5n))`` linearises to the paper's elliptical form (Eq. 2/3):

    p² + q² + 2 x p + 2 h q + (x² + h²) = ε · η^RS.

For a *fixed* path-loss exponent ``n``, the right side is a known regressor
``y_i = 10^(-RS_i / (5 n))`` scaled by the unknown ``ε``, so
``(x, h, g = x²+h², ε)`` solve a linear least-squares system (Eq. 4). The
exponent itself cannot be isolated (η contains n), so — exactly as the
paper's Eq. 5 — we search a grid of candidate exponents and keep the one
minimising the RSS-domain residual. No constant (Γ, n) is ever assumed:
both are estimated per regression, which is the paper's key departure from
fixed-parameter rangers.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.optimize import least_squares

from repro import obs, perf
from repro.channel.pathloss import MIN_DISTANCE_M, rss_at
from repro.errors import (
    DataQualityError,
    DegenerateGeometryError,
    EstimationError,
    InsufficientDataError,
    ReproError,
)
from repro.types import Vec2

__all__ = [
    "FitResult",
    "FitRequest",
    "WarmStartState",
    "EllipticalEstimator",
    "fit_batch",
    "DEFAULT_N_GRID",
]

#: Candidate path-loss exponents searched by Eq. 5's arg-min. Spans every
#: class in :data:`repro.channel.pathloss.ENV_EXPONENTS` with margin.
DEFAULT_N_GRID: np.ndarray = np.arange(1.2, 4.51, 0.05)

#: Fewer matched (displacement, RSS) points than this is refused: the linear
#: system has 4 unknowns and noise demands real redundancy.
MIN_SAMPLES = 8

#: Natural log of 10, shared by the analytic warm-start Jacobian.
_LN10 = math.log(10.0)

#: Gauss-Newton parameter bounds (x, h, Γ, n) — see :meth:`_refine`.
_GN_LO = np.array([-18.0, -18.0, -95.0, 1.0])
_GN_HI = np.array([18.0, 18.0, -25.0, 5.0])


@dataclass(frozen=True)
class WarmStartState:
    """The previous fix's solution, carried forward to warm-start the next.

    Consecutive tracking windows overlap almost entirely, so the previous
    window's ``(x, h, Γ, n)`` is an excellent Gauss-Newton seed for the next
    solve — the warm path refines a handful of near-optimum seeds instead
    of re-running the full exponent-grid cold start. ``rss_rmse`` is the
    residual scale the warm fit is judged against (a blow-up means the
    environment changed and the warm basin is stale); ``stream_t`` lets
    streaming callers age warm states out.

    The state is JSON-serialisable (:meth:`to_dict`/:meth:`from_dict`) and
    round-trips bit-identically, so it survives session checkpoints.
    """

    x: float
    h: float
    gamma: float
    n: float
    rss_rmse: float
    cov_status: str = "none"
    n_rows: int = 0
    use_q: bool = True
    stream_t: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WarmStartState":
        return cls(
            x=float(d["x"]),
            h=float(d["h"]),
            gamma=float(d["gamma"]),
            n=float(d["n"]),
            rss_rmse=float(d["rss_rmse"]),
            cov_status=str(d["cov_status"]),
            n_rows=int(d["n_rows"]),
            use_q=bool(d["use_q"]),
            stream_t=None if d.get("stream_t") is None else float(d["stream_t"]),
        )


@dataclass
class FitResult:
    """Outcome of one elliptical regression.

    ``position`` is the beacon estimate in the measurement frame; ``mirror``
    the symmetric alternative when the movement cannot break the symmetry
    (straight-leg case, Sec. 5.1); ``gamma``/``n`` the fitted path-loss
    parameters; ``residuals`` the per-sample RSS-domain residuals δRS used
    for the estimation confidence.

    The solver-provenance fields feed :class:`repro.obs.FixProvenance`:
    ``solver`` names the path that produced the fit, ``n_candidates`` how
    many initial seeds it refined, ``cov_cond`` the condition number of the
    Gauss-Newton normal matrix and ``cov_status`` how the position
    covariance was obtained — ``"ok"`` (trusted), ``"capped"`` (finite but
    clipped to the 25 m ceiling), ``"rank-deficient"`` (unobservable
    geometry, std forced to the ceiling), ``"error"`` (factorisation
    failed), or ``"none"`` (solver computes no covariance).
    """

    position: Vec2
    n: float
    gamma: float
    epsilon: float
    residuals: np.ndarray
    mirror: Optional[Vec2] = None
    g: float = float("nan")
    position_std: float = float("nan")
    solver: str = "none"
    n_candidates: int = 0
    cov_cond: Optional[float] = None
    cov_status: str = "none"
    #: Whether this fit was produced by the warm-start fast path, and the
    #: state the *next* overlapping-window fit should warm-start from.
    warm_started: bool = False
    warm: Optional[WarmStartState] = None

    @property
    def rss_rmse(self) -> float:
        return float(np.sqrt(np.mean(self.residuals**2)))


@dataclass
class EllipticalEstimator:
    """Least-squares solver for the paper's elliptical regression.

    Two soft priors regularise the otherwise ill-posed four-parameter fit —
    this is where EnvAware's output enters the estimation (Sec. 4.1: the
    recognised environment "allows LocBLE to adjust the following location
    estimation"):

    * ``n_prior`` (per environment class: LOS links fit exponents near free
      space, NLOS links fit steeper ones) with strength ``n_prior_sigma``;
    * ``gamma_prior``: beacons advertise their calibrated 1 m power in the
      packet (iBeacon "measured power", Eddystone tx-at-0m), so Γ is known
      up to the receiving chipset's offset — ``gamma_prior_sigma`` defaults
      to the ±5 dB class accuracy of Sec. 2.4.

    Priors enter the Gauss–Newton objective as extra residual rows, so they
    bend — they never clamp — the estimate.
    """

    n_grid: np.ndarray = field(default_factory=lambda: DEFAULT_N_GRID.copy())
    min_samples: int = MIN_SAMPLES
    gamma_prior: Optional[float] = -59.0
    gamma_prior_sigma: float = 5.0
    n_prior: Optional[float] = None
    n_prior_sigma: float = 0.5
    #: With ``refine=False`` the estimator stops at the paper's linearised
    #: grid + least-squares solve (Eq. 4/5) — no Gauss-Newton polish, no
    #: priors. That solver carries the measurement noise inside its
    #: ``eta^RS`` regressor (an errors-in-variables setup), which is exactly
    #: why the paper's ANF smoothing is critical for it; see the Fig. 5
    #: bench's two-solver comparison.
    refine: bool = True
    #: Warm-start acceptance: a warm fit whose RSS-domain RMSE exceeds
    #: ``max(warm_blowup * previous_rmse, warm_floor_db)`` is rejected (the
    #: environment likely changed under the tracker) and the cold full-grid
    #: path re-runs, emitting a ``solver.warm_rejected`` event.
    warm_blowup: float = 2.0
    warm_floor_db: float = 4.0
    #: Half-width of the exponent neighbourhood searched by a warm fit —
    #: roughly one environment class (the LOS/P_LOS/NLOS prior centres sit
    #: ~0.3 apart), vs the full 67-point cold grid.
    warm_n_step: float = 0.3

    #: Per-environment exponent priors (centres of the class ranges in
    #: :data:`repro.channel.pathloss.ENV_EXPONENTS`).
    ENV_N_PRIORS = {"LOS": 1.95, "P_LOS": 2.25, "NLOS": 2.6}

    #: Per-environment Γ-prior adjustment. A blocked classification means a
    #: blocker sits in the path subtracting its insertion loss from every
    #: reading, so the effective 1 m reference level the data follows is the
    #: advertised power *minus* a typical blocker loss (Sec. 4.1's material
    #: classes: a few dB for p-LOS glass/wood/body, >10 dB for NLOS
    #: concrete/metal). Shifting the prior centre accordingly — and widening
    #: it, since the exact blocker is unknown — is how the recognised class
    #: "adjusts the following location estimation". Without the shift a
    #: tight Γ prior drags every NLOS estimate short by the same factor,
    #: which also defeats the multi-beacon calibration's error averaging.
    ENV_GAMMA_SHIFTS = {"LOS": 0.0, "P_LOS": -4.5, "NLOS": -12.0}
    ENV_GAMMA_SIGMAS = {"LOS": 5.0, "P_LOS": 6.5, "NLOS": 8.0}

    def with_environment(self, env_class: str) -> "EllipticalEstimator":
        """A copy of this estimator whose priors match the environment class."""
        if env_class not in self.ENV_N_PRIORS:
            raise EstimationError(f"unknown environment class {env_class!r}")
        import dataclasses

        gamma_prior = self.gamma_prior
        if gamma_prior is not None:
            gamma_prior = gamma_prior + self.ENV_GAMMA_SHIFTS[env_class]
        return dataclasses.replace(
            self,
            n_prior=self.ENV_N_PRIORS[env_class],
            gamma_prior=gamma_prior,
            gamma_prior_sigma=self.ENV_GAMMA_SIGMAS[env_class],
        )

    @perf.profiled("estimator.EllipticalEstimator.fit")
    def fit(
        self,
        p: Sequence[float],
        q: Sequence[float],
        rss: Sequence[float],
        warm: Optional[WarmStartState] = None,
        extra_seeds: Sequence[Tuple[float, float, float, float]] = (),
    ) -> FitResult:
        """Joint fit over both axes (L-shaped or richer movement).

        ``p``/``q`` are the relative displacements (target minus observer;
        for a stationary target simply the negated observer movement) and
        ``rss`` the time-aligned filtered RSS readings.

        When ``warm`` carries a usable previous solution the fast path
        refines it directly (a handful of seeds in a ±``warm_n_step``
        exponent neighbourhood) instead of re-running the full cold grid;
        a warm fit whose residuals blow up is rejected — emitting
        ``solver.warm_rejected`` — and the cold path re-runs, so a stale
        warm state can degrade latency but never accuracy. ``extra_seeds``
        adds caller-provided ``(x, h, Γ, n)`` starting points (e.g. from an
        incremental sliding-window regressor) to the warm seed set.
        """
        p, q, rss = self._validate(p, q, rss)
        use_q = float(np.ptp(q)) > 0.3  # metres of lateral motion
        return self._fit_dispatch(p, q, rss, use_q, warm, tuple(extra_seeds))

    def fit_batch(
        self,
        requests: Sequence["FitRequest"],
        return_exceptions: bool = False,
    ) -> List[Union[FitResult, BaseException]]:
        """Solve many independent fits, batching their warm-start kernels.

        See the module-level :func:`fit_batch`; this estimator is used for
        any request that does not carry its own.
        """
        return fit_batch(requests, default_estimator=self,
                         return_exceptions=return_exceptions)

    def fit_leg(
        self, a: Sequence[float], rss: Sequence[float]
    ) -> Tuple[FitResult, FitResult]:
        """Single-straight-leg fit (observer moved ``a`` metres along +x).

        Returns the two symmetric solutions ``(x, +h)`` and ``(x, -h)`` in
        the leg's local frame — the raw material of Sec. 5.1's
        disambiguation.
        """
        a = np.asarray(a, dtype=float)
        res = self._fit_single_axis(-a, np.zeros_like(a), np.asarray(rss, float))
        res.warm = self._warm_state_from(res, use_q=False, n_rows=len(a))
        mirror_warm = (dataclasses.replace(res.warm, h=-res.warm.h)
                       if res.warm is not None else None)
        mirror_res = dataclasses.replace(
            res,
            position=res.mirror,
            mirror=res.position,
            warm=mirror_warm,
        )
        return res, mirror_res

    # -- internals ---------------------------------------------------------

    def _validate(self, p, q, rss) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        p = np.asarray(p, dtype=float)
        q = np.asarray(q, dtype=float)
        rss = np.asarray(rss, dtype=float)
        if not (p.shape == q.shape == rss.shape) or p.ndim != 1:
            raise EstimationError("p, q and rss must be aligned 1-D arrays")
        if not (np.all(np.isfinite(p)) and np.all(np.isfinite(q))
                and np.all(np.isfinite(rss))):
            raise DataQualityError(
                "p, q and rss must be finite; sanitize the trace first"
            )
        if len(p) < self.min_samples:
            raise InsufficientDataError(
                f"need >= {self.min_samples} matched samples, got {len(p)}"
            )
        if float(np.ptp(p)) < 0.2 and float(np.ptp(q)) < 0.2:
            raise InsufficientDataError(
                "observer barely moved; the regression is unobservable"
            )
        return p, q, rss

    # -- warm-start path ----------------------------------------------------

    def _fit_dispatch(
        self,
        p: np.ndarray,
        q: np.ndarray,
        rss: np.ndarray,
        use_q: bool,
        warm: Optional[WarmStartState],
        extra_seeds: Tuple[Tuple[float, float, float, float], ...],
    ) -> FitResult:
        """Warm fast path when possible, cold full-grid path otherwise."""
        res: Optional[FitResult] = None
        if warm is not None and self._warm_usable(warm):
            res = self._fit_warm(p, q, rss, use_q, warm, extra_seeds)
        if res is None:
            res = (self._fit_joint(p, q, rss) if use_q
                   else self._fit_single_axis(p, q, rss))
        res.warm = self._warm_state_from(res, use_q, len(p))
        return res

    def _warm_usable(self, warm: WarmStartState) -> bool:
        """A warm state worth seeding from: finite, with an in-grid exponent."""
        vals = (warm.x, warm.h, warm.gamma, warm.n, warm.rss_rmse)
        if not all(math.isfinite(v) for v in vals):
            return False
        if warm.rss_rmse < 0.0:
            return False
        grid = np.asarray(self.n_grid, dtype=float)
        lo, hi = float(grid.min()), float(grid.max())
        return lo - self.warm_n_step <= warm.n <= hi + self.warm_n_step

    def _warm_seeds(
        self,
        warm: WarmStartState,
        use_q: bool,
        extra_seeds: Tuple[Tuple[float, float, float, float], ...],
    ) -> List[Tuple[float, float, float, float]]:
        """Seed set for a warm fit: previous optimum ± one exponent step.

        Three seeds bracket the previous exponent inside the clipped grid
        (vs the cold path's ~18), so a drifting environment within one
        class is tracked without the full grid.
        """
        grid = np.asarray(self.n_grid, dtype=float)
        lo, hi = float(grid.min()), float(grid.max())
        h0 = warm.h if use_q else abs(warm.h)
        n0 = float(np.clip(warm.n, lo, hi))
        n_lo = float(np.clip(warm.n - self.warm_n_step, lo, hi))
        n_hi = float(np.clip(warm.n + self.warm_n_step, lo, hi))
        seeds = [(warm.x, h0, warm.gamma, n0),
                 (warm.x, h0, warm.gamma, n_lo),
                 (warm.x, h0, warm.gamma, n_hi)]
        for s in extra_seeds:
            x0, hh, g0, nn = (float(v) for v in s)
            if not all(math.isfinite(v) for v in (x0, hh, g0, nn)):
                continue
            seeds.append((x0, hh if use_q else abs(hh), g0,
                          float(np.clip(nn, lo, hi))))
        return seeds

    def _warm_state_from(
        self, res: FitResult, use_q: bool, n_rows: int,
        stream_t: Optional[float] = None,
    ) -> Optional[WarmStartState]:
        """The state the *next* overlapping-window fit warm-starts from."""
        vals = (res.position.x, res.position.y, res.gamma, res.n)
        if not all(math.isfinite(float(v)) for v in vals):
            return None
        rmse = res.rss_rmse
        if not math.isfinite(rmse):
            return None
        return WarmStartState(
            x=float(res.position.x),
            h=float(res.position.y),
            gamma=float(res.gamma),
            n=float(res.n),
            rss_rmse=float(rmse),
            cov_status=res.cov_status,
            n_rows=int(n_rows),
            use_q=bool(use_q),
            stream_t=stream_t,
        )

    def _warm_reject(
        self, reason: str, warm: WarmStartState, n_rows: int,
    ) -> None:
        """One event plus one counter, same site (soak cross-check parity)."""
        perf.count("estimator.warm_rejected")
        obs.emit(
            "solver.warm_rejected",
            severity="warning",
            component="estimator",
            reason=reason,
            warm_n=warm.n,
            warm_rmse=warm.rss_rmse,
            n_rows=n_rows,
        )

    def _fit_warm(
        self,
        p: np.ndarray,
        q: np.ndarray,
        rss: np.ndarray,
        use_q: bool,
        warm: WarmStartState,
        extra_seeds: Tuple[Tuple[float, float, float, float], ...],
    ) -> Optional[FitResult]:
        """One warm solve — a batch of one through the shared lockstep
        kernel, so a sequential warm fit is bit-identical to the same
        request inside any :func:`fit_batch` group."""
        if not self.refine:
            res, reason = self._fit_warm_linearized(p, q, rss, use_q, warm)
        else:
            res, reason = _solve_warm_group(
                [(self, p, q, rss, use_q, warm,
                  self._warm_seeds(warm, use_q, extra_seeds))]
            )[0]
        if res is None:
            self._warm_reject(reason, warm, len(p))
            return None
        return res

    def _fit_warm_linearized(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray,
        use_q: bool, warm: WarmStartState,
    ) -> Tuple[Optional[FitResult], str]:
        """Warm path for the ``refine=False`` pure Eq. 4/5 solver: restrict
        the grid arg-min to the exponent neighbourhood of the previous fix."""
        grid = np.asarray(self.n_grid, dtype=float)
        mask = np.abs(grid - warm.n) <= self.warm_n_step + 1e-9
        if not np.any(mask):
            return None, "no exponent neighbourhood"
        try:
            res = self._fit_linearized(p, q, rss, use_q, n_values=grid[mask])
        except DegenerateGeometryError:
            return None, "degenerate"
        limit = max(self.warm_blowup * warm.rss_rmse, self.warm_floor_db)
        rmse = res.rss_rmse
        if not math.isfinite(rmse) or rmse > limit:
            return None, "residual blow-up"
        res.solver = "warm-linearized"
        res.warm_started = True
        perf.count("estimator.warm_fits")
        return res, ""

    def _solve_for_n(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray, n: float,
        use_q: bool,
    ) -> Optional[Tuple[float, float, float, float]]:
        """LS solve of Eq. 4 for one candidate exponent.

        Returns (x, h_or_nan, g, epsilon) or None if the solve degenerates.
        The y column is rescaled to unit mean for conditioning.
        """
        y = np.power(10.0, -rss / (5.0 * n))
        scale = float(np.mean(y))
        if not math.isfinite(scale) or scale <= 0:
            return None
        ys = y / scale
        rhs = p * p + q * q
        if use_q:
            design = np.column_stack([-2.0 * p, -2.0 * q, -np.ones_like(p), ys])
        else:
            design = np.column_stack([-2.0 * p, -np.ones_like(p), ys])
        try:
            theta, *_ = np.linalg.lstsq(design, rhs, rcond=None)
        except np.linalg.LinAlgError:
            return None
        if use_q:
            x, h, g, eps_s = (float(t) for t in theta)
        else:
            x, g, eps_s = (float(t) for t in theta)
            h = float("nan")
        eps = eps_s / scale
        # Note: under noise the LS epsilon can come out non-positive, which
        # no (Gamma, n) pair can produce; callers decide how to handle it.
        return x, h, g, eps

    def _solve_grid(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray,
        n_values: np.ndarray, use_q: bool,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched Eq. 4 solve over a whole exponent grid at once.

        Only the last design column (the ``eta^RS`` regressor) depends on the
        candidate exponent, so the shared columns (``-2p``, ``-2q``, ``-1``)
        and the right-hand side ``p² + q²`` are built once and the G
        per-candidate least-squares problems are solved as one stacked QR
        factorisation. Returns per-candidate arrays
        ``(valid, x, h, g, eps)`` with ``h = nan`` when ``use_q`` is False;
        candidates whose regressor degenerates (non-finite scale) come back
        with ``valid = False``.
        """
        n_values = np.asarray(n_values, dtype=float)
        n_cand = len(n_values)
        x = np.full(n_cand, np.nan)
        h = np.full(n_cand, np.nan)
        g = np.full(n_cand, np.nan)
        eps = np.full(n_cand, np.nan)

        # Regressor matrix for every candidate exponent in one shot.
        y = np.power(10.0, -rss[None, :] / (5.0 * n_values[:, None]))
        with np.errstate(invalid="ignore"):
            scale = np.mean(y, axis=1)
        valid = np.isfinite(scale) & (scale > 0) & np.all(np.isfinite(y), axis=1)
        if not np.any(valid):
            return valid, x, h, g, eps
        ys = y[valid] / scale[valid, None]

        rhs = p * p + q * q
        if use_q:
            shared = np.column_stack([-2.0 * p, -2.0 * q, -np.ones_like(p)])
        else:
            shared = np.column_stack([-2.0 * p, -np.ones_like(p)])
        n_params = shared.shape[1] + 1
        designs = np.empty((ys.shape[0], len(p), n_params))
        designs[:, :, :-1] = shared[None, :, :]
        designs[:, :, -1] = ys

        try:
            # Stacked thin-QR least squares: numerically the lstsq solution
            # for the full-rank case, G solves in one LAPACK batch.
            q_fact, r_fact = np.linalg.qr(designs)
            qtb = q_fact.transpose(0, 2, 1) @ rhs[None, :, None]
            theta = np.linalg.solve(r_fact, qtb)[:, :, 0]
        except np.linalg.LinAlgError:
            # A candidate's design went rank-deficient — fall back to the
            # per-candidate SVD solver, which handles it via min-norm.
            for idx in np.flatnonzero(valid):
                sol = self._solve_for_n(p, q, rss, float(n_values[idx]),
                                        use_q=use_q)
                if sol is None:
                    valid[idx] = False
                    continue
                x[idx], h[idx], g[idx], eps[idx] = sol
            return valid, x, h, g, eps

        # Unpivoted QR has no rank protection: a (near-)collinear design —
        # e.g. a perfectly straight walk making p and q proportional — gives
        # a tiny R diagonal and a garbage solve instead of an error. Divert
        # those candidates to the SVD solver, whose min-norm behaviour is
        # the reference semantics.
        r_diag = np.abs(np.diagonal(r_fact, axis1=1, axis2=2))
        ill = (r_diag.min(axis=1) <= r_diag.max(axis=1) * 1e-7) | ~np.all(
            np.isfinite(theta), axis=1)

        vidx = np.flatnonzero(valid)
        x[vidx] = theta[:, 0]
        if use_q:
            h[vidx] = theta[:, 1]
            g[vidx] = theta[:, 2]
        else:
            g[vidx] = theta[:, 1]
        eps[vidx] = theta[:, -1] / scale[valid]
        for idx in vidx[ill]:
            sol = self._solve_for_n(p, q, rss, float(n_values[idx]),
                                    use_q=use_q)
            if sol is None:
                valid[idx] = False
                x[idx] = h[idx] = g[idx] = eps[idx] = np.nan
            else:
                x[idx], h[idx], g[idx], eps[idx] = sol
        return valid, x, h, g, eps

    def _rss_residuals(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray,
        x: float, h: float, n: float, gamma: float,
    ) -> np.ndarray:
        l = np.hypot(x + p, h + q)
        return rss - rss_at(l, gamma, n)

    def _rss_residuals_reference(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray,
        x: float, h: float, n: float, gamma: float,
    ) -> np.ndarray:
        """Pre-vectorization residuals (per-element loop); bench baseline."""
        l = np.hypot(x + p, h + q)
        predicted = np.array([rss_at(float(d), gamma, n) for d in l])
        return rss - predicted

    def _refine(
        self,
        p: np.ndarray,
        q: np.ndarray,
        rss: np.ndarray,
        x0: float,
        h0: float,
        gamma0: float,
        n0: float,
        fix_h_zero: bool = False,
    ) -> Optional[Tuple[float, float, float, float, np.ndarray]]:
        """Gauss–Newton refinement of (x, h, Γ, n) in the RSS domain.

        The linearised solve of Eq. 4 puts the measurement noise inside the
        regressor ``y = 10^(-RS/(5n))`` (an errors-in-variables setup that
        shrinks the geometry), so it only serves as an initialiser; the
        final estimate minimises Eq. 5's objective — squared RSS-domain
        residuals — directly, where the noise sits in the response.
        """

        # Prior strength scales with sqrt(N) so it keeps pace with the data
        # term instead of washing out on long traces.
        root_n = math.sqrt(len(rss))

        def residual_fn(theta: np.ndarray) -> np.ndarray:
            x, h, gamma, n = theta
            if fix_h_zero:
                h = 0.0
            l = np.maximum(np.hypot(x + p, h + q), 0.1)
            rows = [rss - (gamma - 10.0 * n * np.log10(l))]
            if self.gamma_prior is not None:
                rows.append(
                    np.array([
                        root_n * (gamma - self.gamma_prior) / self.gamma_prior_sigma
                    ])
                )
            if self.n_prior is not None:
                rows.append(
                    np.array([root_n * (n - self.n_prior) / self.n_prior_sigma])
                )
            return np.concatenate(rows)

        theta0 = np.array([x0, h0, gamma0, n0])
        # Position bounds reflect BLE's usable sensing range (~15 m,
        # Sec. 7.5): beyond it the advertisements would not decode, so a
        # solution out there is an artefact of a flat likelihood.
        lo = np.array([-18.0, -18.0, -95.0, 1.0])
        hi = np.array([18.0, 18.0, -25.0, 5.0])
        theta0 = np.clip(theta0, lo + 1e-6, hi - 1e-6)
        try:
            sol = least_squares(
                residual_fn, theta0, bounds=(lo, hi), max_nfev=200
            )
        except (ValueError, np.linalg.LinAlgError):
            return None
        x, h, gamma, n = (float(v) for v in sol.x)
        if fix_h_zero:
            h = 0.0
        total_cost = float(np.sum(np.asarray(sol.fun) ** 2))
        pos_std, cov_cond, cov_status = self._position_covariance(sol, len(rss))
        # Report only the data residuals; prior rows stay in total_cost.
        return (x, h, gamma, n, np.asarray(sol.fun)[: len(rss)], pos_std,
                cov_cond, cov_status, total_cost)

    #: Position-std ceiling (metres). BLE's usable sensing range is ~15 m
    #: (Sec. 7.5), so an uncertainty beyond this says only "unobservable".
    POS_STD_CAP = 25.0

    #: Normal matrices with a worse eigenvalue ratio than this are treated
    #: as rank-deficient: solving them would report a confidently tiny std
    #: along a direction the walk geometry never observed.
    COND_LIMIT = 1e12

    def _position_covariance(
        self, sol, n_data: int
    ) -> Tuple[float, Optional[float], str]:
        """Position std from a scipy ``least_squares`` solution object."""
        return self._covariance_from(
            np.asarray(sol.jac), np.asarray(sol.fun), n_data)

    def _covariance_from(
        self, jac: np.ndarray, fun: np.ndarray, n_data: int
    ) -> Tuple[float, Optional[float], str]:
        """Gauss-Newton position std from ``sigma^2 * inv(J^T J)``.

        Returns ``(pos_std, cond, status)`` with ``status`` as documented on
        :class:`FitResult`. The conditioning is checked *before* solving:
        for a rank-deficient normal matrix (e.g. a perfectly straight walk
        through the beacon, whose lateral column of J vanishes) both a
        Tikhonov-style ``inv(jtj + eps*I)`` and a pseudo-inverse would
        return a silently tiny variance in the unobservable direction — the
        exact failure this layer exists to surface. Such geometry pins the
        std to :data:`POS_STD_CAP` instead, and callers emit the event.
        """
        pos_std = self.POS_STD_CAP
        cov_cond: Optional[float] = None
        try:
            jtj = jac.T @ jac
            eigs = np.linalg.eigvalsh(jtj)
            if not (np.all(np.isfinite(eigs)) and eigs[-1] > 0):
                return pos_std, None, "error"
            if eigs[0] <= eigs[-1] / self.COND_LIMIT:
                cov_cond = (float(eigs[-1] / eigs[0]) if eigs[0] > 0
                            else math.inf)
                return pos_std, cov_cond, "rank-deficient"
            cov_cond = float(eigs[-1] / eigs[0])
            cov = np.linalg.solve(jtj, np.eye(jtj.shape[0]))
            dof = max(n_data - 4, 1)
            sigma_sq = float(np.sum(np.asarray(fun)[:n_data] ** 2)) / dof
            var_pos = sigma_sq * (cov[0, 0] + cov[1, 1])
            if not (var_pos >= 0 and math.isfinite(var_pos)):
                return pos_std, cov_cond, "error"
            std = math.sqrt(var_pos)
            if std >= self.POS_STD_CAP:
                return pos_std, cov_cond, "capped"
            return std, cov_cond, "ok"
        except np.linalg.LinAlgError:
            return pos_std, cov_cond, "error"

    def _report_covariance(self, best: FitResult) -> None:
        """Make a winning fit's covariance fallback loud (never silent).

        One ``estimator.cov_fallback`` event plus one perf counter tick per
        fit whose reported ``position_std`` is not the trusted Gauss-Newton
        value — emitted at the same site so the soak harness can cross-check
        event volume against the counter exactly.
        """
        if best.cov_status in ("ok", "none"):
            return
        perf.count("estimator.cov_fallbacks")
        obs.emit(
            "estimator.cov_fallback",
            severity="warning",
            component="estimator",
            status=best.cov_status,
            cond=best.cov_cond,
            position_std=best.position_std,
            solver=best.solver,
        )

    def _initial_candidates(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray, use_q: bool
    ) -> List[Tuple[float, float, float, float]]:
        """(x, h, Γ, n) starting points for the nonlinear refinement.

        Collects the linearised solutions at a spread of exponents plus a
        range-heuristic seed (median RSS inverted at nominal parameters,
        beacon assumed broadside of the walk) so at least one initial point
        sits in the right basin.
        """
        seeds: List[Tuple[float, float, float, float]] = []
        n_subset = np.asarray(self.n_grid, dtype=float)[
            :: max(1, len(self.n_grid) // 8)
        ]
        valid, xs, hs, gs, epss = self._solve_grid(p, q, rss, n_subset, use_q)
        for k in np.flatnonzero(valid):
            x, h, g, eps, n = xs[k], hs[k], gs[k], epss[k], n_subset[k]
            if eps <= 0:
                continue
            if not use_q or not math.isfinite(h):
                h_sq = max(g - x * x, 0.0)
                h = math.sqrt(h_sq)
            gamma = 5.0 * n * math.log10(eps)
            if math.isfinite(gamma):
                seeds.append((float(x), float(h), gamma, float(n)))
        # Heuristic seeds: invert the median RSS at the *prior* parameters
        # (falling back to nominal BLE values) and spread candidate bearings
        # around the walk — the nonlinear objective is multi-modal under
        # heavy noise, so the refinement needs starts in several basins.
        nominal_gamma = self.gamma_prior if self.gamma_prior is not None else -59.0
        nominal_n = self.n_prior if self.n_prior is not None else 2.2
        d0 = 10.0 ** ((nominal_gamma - float(np.median(rss))) / (10.0 * nominal_n))
        d0 = min(max(d0, 0.5), 30.0)
        for scale in (1.0, 1.5):
            for angle in (0.0, math.pi / 4, -math.pi / 4, math.pi / 2,
                          -math.pi / 2):
                seeds.append(
                    (d0 * scale * math.cos(angle), d0 * scale * math.sin(angle),
                     nominal_gamma, nominal_n)
                )
        return seeds

    def _fit_linearized(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray, use_q: bool,
        n_values: Optional[np.ndarray] = None,
    ) -> FitResult:
        """The paper's pure Eq. 4/5 solver: LS per exponent, grid arg-min.

        Fully vectorized: one stacked solve for every candidate exponent
        (:meth:`_solve_grid`), then one pass of array ops for the RSS-domain
        residual of each candidate and the Eq. 5 arg-min. Numerically
        equivalent to :meth:`_fit_linearized_reference` (the original
        per-candidate loop, kept for tests and benchmarks). ``n_values``
        restricts the searched exponents (the warm path passes the
        neighbourhood of the previous fix); default is the full grid.
        """
        n_values = np.asarray(
            self.n_grid if n_values is None else n_values, dtype=float)
        valid, x, h, g, eps = self._solve_grid(p, q, rss, n_values, use_q)
        if not np.any(valid):
            raise DegenerateGeometryError(
                "no path-loss exponent yielded a valid solve")

        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            # Recover the lateral offset where the solve left it implicit.
            need_h = ~np.isfinite(h) if use_q else np.ones_like(valid)
            h = np.where(need_h, np.sqrt(np.maximum(g - x * x, 0.0)), h)

            # Per-candidate distances to every sample: (G, N).
            l = np.maximum(np.hypot(x[:, None] + p[None, :],
                                    h[:, None] + q[None, :]), MIN_DISTANCE_M)
            log_l = np.log10(l)

            # Γ from epsilon where physical, else the post-hoc level matching
            # the candidate's geometry (exactly the reference's two branches).
            gamma = np.full(len(n_values), np.nan)
            pos = valid & (eps > 0)
            if np.any(pos):
                gamma[pos] = 5.0 * n_values[pos] * np.log10(eps[pos])
            fallback = valid & ~pos
            if np.any(fallback):
                gamma[fallback] = np.mean(
                    rss[None, :]
                    + 10.0 * n_values[fallback, None] * log_l[fallback],
                    axis=1,
                )

            resid = rss[None, :] - (
                gamma[:, None] - 10.0 * n_values[:, None] * log_l
            )
            cost = np.sum(resid * resid, axis=1)
        cost = np.where(valid & np.isfinite(cost), cost, np.inf)
        best_idx = int(np.argmin(cost))
        if not np.isfinite(cost[best_idx]):
            raise DegenerateGeometryError(
                "no path-loss exponent yielded a valid solve")
        xb, hb = float(x[best_idx]), float(h[best_idx])
        return FitResult(
            position=Vec2(xb, hb),
            n=float(n_values[best_idx]),
            gamma=float(gamma[best_idx]),
            epsilon=float(eps[best_idx]),
            residuals=resid[best_idx],
            mirror=None if use_q else Vec2(xb, -hb),
            g=float(g[best_idx]),
            solver="linearized",
            n_candidates=int(np.sum(valid)),
        )

    def _fit_linearized_reference(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray, use_q: bool
    ) -> FitResult:
        """Reference per-candidate loop over the grid (pre-vectorization).

        Kept verbatim as the numerical ground truth: tests assert the
        vectorized :meth:`_fit_linearized` matches it, and the hot-path
        benchmark measures the speedup against it.
        """
        best: Optional[FitResult] = None
        best_cost = math.inf
        for n in self.n_grid:
            sol = self._solve_for_n(p, q, rss, float(n), use_q=use_q)
            if sol is None:
                continue
            x, h, g, eps = sol
            if not use_q or not math.isfinite(h):
                h = math.sqrt(max(g - x * x, 0.0))
            if eps > 0:
                gamma = 5.0 * float(n) * math.log10(eps)
            else:
                # Noise pushed the LS epsilon non-physical; recover Gamma
                # post-hoc as the level matching the geometry at this n.
                l = np.maximum(np.hypot(x + p, h + q), 0.1)
                gamma = float(np.mean(rss + 10.0 * float(n) * np.log10(l)))
            resid = self._rss_residuals_reference(p, q, rss, x, h, float(n), gamma)
            cost = float(np.sum(resid**2))
            if cost < best_cost:
                best_cost = cost
                best = FitResult(
                    position=Vec2(x, h),
                    n=float(n),
                    gamma=gamma,
                    epsilon=eps,
                    residuals=resid,
                    mirror=None if use_q else Vec2(x, -h),
                    g=g,
                )
        if best is None:
            raise DegenerateGeometryError(
                "no path-loss exponent yielded a valid solve")
        return best

    def _fit_joint(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray
    ) -> FitResult:
        if not self.refine:
            return self._fit_linearized(p, q, rss, use_q=True)
        best: Optional[FitResult] = None
        best_cost = math.inf
        seeds = self._initial_candidates(p, q, rss, use_q=True)
        for x0, h0, gamma0, n0 in seeds:
            refined = self._refine(p, q, rss, x0, h0, gamma0, n0)
            if refined is None:
                continue
            x, h, gamma, n, resid, pos_std, cov_cond, cov_status, cost = refined
            if cost < best_cost:
                best_cost = cost
                best = FitResult(
                    position=Vec2(x, h),
                    n=n,
                    gamma=gamma,
                    epsilon=10.0 ** (gamma / (5.0 * n)),
                    residuals=resid,
                    g=x * x + h * h,
                    position_std=pos_std,
                    solver="gauss-newton",
                    n_candidates=len(seeds),
                    cov_cond=cov_cond,
                    cov_status=cov_status,
                )
        if best is None:
            raise DegenerateGeometryError(
                "no path-loss exponent yielded a valid solve")
        self._report_covariance(best)
        return best

    def _fit_single_axis(
        self, p: np.ndarray, q: np.ndarray, rss: np.ndarray
    ) -> FitResult:
        """Straight-leg fit: the lateral offset is identifiable only up to
        sign, so we refine with h constrained non-negative and report the
        mirrored solution as the Sec. 5.1 ambiguity."""
        if not self.refine:
            return self._fit_linearized(p, q, rss, use_q=False)
        best: Optional[FitResult] = None
        best_cost = math.inf
        seeds = self._initial_candidates(p, q, rss, use_q=False)
        for x0, h0, gamma0, n0 in seeds:
            refined = self._refine(p, q, rss, x0, abs(h0), gamma0, n0)
            if refined is None:
                continue
            x, h, gamma, n, resid, pos_std, cov_cond, cov_status, cost = refined
            h = abs(h)  # symmetric problem: canonical solution keeps h >= 0
            if cost < best_cost:
                best_cost = cost
                best = FitResult(
                    position=Vec2(x, h),
                    n=n,
                    gamma=gamma,
                    epsilon=10.0 ** (gamma / (5.0 * n)),
                    residuals=resid,
                    mirror=Vec2(x, -h),
                    g=x * x + h * h,
                    position_std=pos_std,
                    solver="gauss-newton",
                    n_candidates=len(seeds),
                    cov_cond=cov_cond,
                    cov_status=cov_status,
                )
        if best is None:
            raise DegenerateGeometryError(
                "no path-loss exponent yielded a valid solve")
        self._report_covariance(best)
        return best


@dataclass
class FitRequest:
    """One session's solve inputs for :func:`fit_batch`.

    ``estimator`` overrides the batch's default estimator for this request
    (e.g. an environment-resolved copy); ``warm``/``extra_seeds`` mirror the
    corresponding :meth:`EllipticalEstimator.fit` arguments.
    """

    p: Sequence[float]
    q: Sequence[float]
    rss: Sequence[float]
    warm: Optional[WarmStartState] = None
    extra_seeds: Tuple[Tuple[float, float, float, float], ...] = ()
    estimator: Optional[EllipticalEstimator] = None


def _warm_residuals(
    theta: np.ndarray, p: np.ndarray, q: np.ndarray, rss: np.ndarray,
    gp: np.ndarray, wg: np.ndarray, npr: np.ndarray, wn: np.ndarray,
) -> np.ndarray:
    """Stacked RSS-domain + prior residuals, shape ``(B, N + 2)``.

    Row layout matches :meth:`EllipticalEstimator._refine`: N data rows,
    then the Γ-prior row, then the n-prior row (weight 0 when the prior is
    absent, so every batch member has the same row count — a requirement
    for per-slice bit-identical reductions).
    """
    x = theta[:, 0:1]
    h = theta[:, 1:2]
    gam = theta[:, 2:3]
    n = theta[:, 3:4]
    le = np.maximum(np.hypot(x + p, h + q), 0.1)
    r_data = rss - (gam - 10.0 * n * np.log10(le))
    r_pg = (wg * (theta[:, 2] - gp))[:, None]
    r_pn = (wn * (theta[:, 3] - npr))[:, None]
    return np.concatenate([r_data, r_pg, r_pn], axis=1)


def _warm_jacobian(
    theta: np.ndarray, p: np.ndarray, q: np.ndarray,
    wg: np.ndarray, wn: np.ndarray,
) -> np.ndarray:
    """Analytic Jacobian of :func:`_warm_residuals`, shape ``(B, N+2, 4)``."""
    n_rows = p.shape[1]
    x = theta[:, 0:1]
    h = theta[:, 1:2]
    n = theta[:, 3:4]
    dx = x + p
    dy = h + q
    l = np.hypot(dx, dy)
    le = np.maximum(l, 0.1)
    # Inside the 0.1 m clamp the distance no longer responds to (x, h).
    coef = np.where(l > 0.1, (10.0 / _LN10) * n / (le * le), 0.0)
    j = np.zeros((theta.shape[0], n_rows + 2, 4))
    j[:, :n_rows, 0] = coef * dx
    j[:, :n_rows, 1] = coef * dy
    j[:, :n_rows, 2] = -1.0
    j[:, :n_rows, 3] = 10.0 * np.log10(le)
    j[:, n_rows, 2] = wg
    j[:, n_rows + 1, 3] = wn
    return j


def _gn_warm_kernel(
    theta0: np.ndarray, p: np.ndarray, q: np.ndarray, rss: np.ndarray,
    gp: np.ndarray, wg: np.ndarray, npr: np.ndarray, wn: np.ndarray,
    max_iter: int = 60,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lockstep projected Levenberg-Marquardt over a batch of warm seeds.

    Every operation is either elementwise, a reduction along the row axis of
    a C-contiguous array, or a batched per-slice LAPACK call — the exact set
    of NumPy operations whose batched results are bit-identical to running
    each slice alone. Converged (or failed) rows freeze by being removed
    from the compacted working set and never change again, so a batch of B
    systems returns bit-identical ``(theta, residuals, cost)`` to B
    separate batch-of-1 runs — while late iterations only pay for the rows
    still moving. This is the
    property :func:`fit_batch` relies on; ``einsum``/``matmul`` reductions
    are deliberately avoided (their batched forms are *not* per-slice
    bit-identical).
    """
    theta_out = theta0.copy()
    r_out = _warm_residuals(theta_out, p, q, rss, gp, wg, npr, wn)
    cost_out = np.sum(r_out * r_out, axis=1)
    eye = np.eye(4)

    # Compacted working set: rows freeze by being *removed* (their state
    # scattered back into the full-size outputs), so per-iteration cost
    # tracks the live count instead of the original batch size. Row-gather
    # preserves per-slice bit-identity for every op used here — a gathered
    # subset is a fresh C-contiguous array whose per-row reductions see the
    # exact same operand layout.
    idx = np.flatnonzero(np.isfinite(cost_out))
    theta = theta_out[idx]
    r = r_out[idx]
    cost = cost_out[idx]
    pp, qq, ss = p[idx], q[idx], rss[idx]
    gpp, wgg, nprr, wnn = gp[idx], wg[idx], npr[idx], wn[idx]
    lam = np.full(idx.size, 1e-3)

    for _ in range(max_iter):
        if idx.size == 0:
            break
        j = _warm_jacobian(theta, pp, qq, wgg, wnn)
        jtj = np.sum(j[:, :, :, None] * j[:, :, None, :], axis=1)
        grad = np.sum(j * r[:, :, None], axis=1)
        finite = (np.isfinite(jtj).all(axis=(1, 2))
                  & np.isfinite(grad).all(axis=1))
        # Non-finite rows solve an identity system (zero step), so one
        # LAPACK batch serves every row without a bad slice poisoning it.
        lhs = np.where(finite[:, None, None],
                       jtj + lam[:, None, None] * eye, eye)
        rhs = np.where(finite[:, None], grad, 0.0)
        try:
            step = np.linalg.solve(lhs, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            break
        trial = np.clip(theta - step, _GN_LO, _GN_HI)
        r_t = _warm_residuals(trial, pp, qq, ss, gpp, wgg, nprr, wnn)
        cost_t = np.sum(r_t * r_t, axis=1)
        better = finite & np.isfinite(cost_t) & (cost_t < cost)
        theta = np.where(better[:, None], trial, theta)
        r = np.where(better[:, None], r_t, r)
        gain = np.where(better, cost - cost_t, 0.0)
        cost = np.where(better, cost_t, cost)
        lam = np.where(better, np.maximum(lam / 3.0, 1e-10),
                       np.where(finite, lam * 5.0, lam))
        done = better & (gain <= 1e-10 * np.maximum(cost, 1e-12))
        stuck = finite & ~better & (lam > 1e8)
        keep = finite & ~(done | stuck)
        if not np.all(keep):
            theta_out[idx] = theta
            r_out[idx] = r
            cost_out[idx] = cost
            idx = idx[keep]
            theta, r, cost, lam = theta[keep], r[keep], cost[keep], lam[keep]
            pp, qq, ss = pp[keep], qq[keep], ss[keep]
            gpp, wgg = gpp[keep], wgg[keep]
            nprr, wnn = nprr[keep], wnn[keep]
    if idx.size:
        theta_out[idx] = theta
        r_out[idx] = r
        cost_out[idx] = cost
    return theta_out, r_out, cost_out


def _solve_warm_group(
    items: Sequence[Tuple[EllipticalEstimator, np.ndarray, np.ndarray,
                          np.ndarray, bool, WarmStartState,
                          List[Tuple[float, float, float, float]]]],
) -> List[Tuple[Optional[FitResult], str]]:
    """Solve same-shape warm requests through one lockstep kernel.

    Each item is ``(estimator, p, q, rss, use_q, warm, seeds)``; every item
    must share the same window length and seed count (callers group by
    those — ragged padding would regroup NumPy's pairwise summations and
    break the bit-identity contract). Returns one ``(result, reason)`` pair
    per item, ``result=None`` when the warm fit must be rejected.
    """
    n_items = len(items)
    n_rows = len(items[0][1])
    n_seeds = len(items[0][6])
    root_n = math.sqrt(n_rows)

    p = np.repeat(np.stack([it[1] for it in items]), n_seeds, axis=0)
    q = np.repeat(np.stack([it[2] for it in items]), n_seeds, axis=0)
    rss = np.repeat(np.stack([it[3] for it in items]), n_seeds, axis=0)

    total = n_items * n_seeds
    gp = np.empty(total)
    wg = np.empty(total)
    npr = np.empty(total)
    wn = np.empty(total)
    theta0 = np.empty((total, 4))
    for i, (est, _p, _q, _rss, _use_q, _warm, seeds) in enumerate(items):
        sl = slice(i * n_seeds, (i + 1) * n_seeds)
        gp[sl] = 0.0 if est.gamma_prior is None else est.gamma_prior
        wg[sl] = (0.0 if est.gamma_prior is None
                  else root_n / est.gamma_prior_sigma)
        npr[sl] = 0.0 if est.n_prior is None else est.n_prior
        wn[sl] = 0.0 if est.n_prior is None else root_n / est.n_prior_sigma
        theta0[sl] = np.clip(np.asarray(seeds, dtype=float),
                             _GN_LO + 1e-6, _GN_HI - 1e-6)

    theta, r, cost = _gn_warm_kernel(theta0, p, q, rss, gp, wg, npr, wn)
    j_final = _warm_jacobian(theta, p, q, wg, wn)

    out: List[Tuple[Optional[FitResult], str]] = []
    for i, (est, _p, _q, _rss, use_q, warm, _seeds) in enumerate(items):
        sl = slice(i * n_seeds, (i + 1) * n_seeds)
        k = i * n_seeds + int(np.argmin(cost[sl]))
        if not math.isfinite(float(cost[k])):
            out.append((None, "diverged"))
            continue
        x, h, gam, n = (float(v) for v in theta[k])
        resid = r[k, :n_rows].copy()
        rmse = float(np.sqrt(np.mean(resid * resid)))
        limit = max(est.warm_blowup * warm.rss_rmse, est.warm_floor_db)
        if not math.isfinite(rmse):
            out.append((None, "diverged"))
            continue
        if rmse > limit:
            out.append((None, "residual blow-up"))
            continue
        pos_std, cov_cond, cov_status = est._covariance_from(
            j_final[k], r[k], n_rows)
        if not use_q:
            h = abs(h)  # symmetric problem: canonical solution keeps h >= 0
        res = FitResult(
            position=Vec2(x, h),
            n=n,
            gamma=gam,
            epsilon=10.0 ** (gam / (5.0 * n)),
            residuals=resid,
            mirror=None if use_q else Vec2(x, -h),
            g=x * x + h * h,
            position_std=pos_std,
            solver="warm-start",
            n_candidates=n_seeds,
            cov_cond=cov_cond,
            cov_status=cov_status,
            warm_started=True,
        )
        est._report_covariance(res)
        perf.count("estimator.warm_fits")
        out.append((res, ""))
    return out


@perf.profiled("estimator.fit_batch")
def fit_batch(
    requests: Sequence[FitRequest],
    default_estimator: Optional[EllipticalEstimator] = None,
    return_exceptions: bool = False,
) -> List[Union[FitResult, BaseException]]:
    """Solve N independent elliptical regressions as one batched program.

    Warm-startable requests are grouped by (window length, seed count,
    geometry mode) and each group runs through one lockstep LM kernel —
    one NumPy program instead of N Python solver loops. Results are
    **bit-identical** to the sequential loop
    ``[est.fit(r.p, r.q, r.rss, warm=r.warm) for r in requests]``: the
    sequential warm path is itself a batch of one through the same kernel,
    cold and rejected-warm requests fall back to the identical cold-path
    code, and grouping (rather than ragged padding) preserves per-slice
    bit-exact reductions.

    With ``return_exceptions`` the failure of one request (e.g. degenerate
    geometry) becomes the exception object in its slot instead of
    propagating — the batch analogue of a per-session try/except.
    """
    requests = list(requests)
    results: List[Any] = [None] * len(requests)

    prepared = []
    for idx, req in enumerate(requests):
        est = req.estimator if req.estimator is not None else default_estimator
        if est is None:
            est = EllipticalEstimator()
        try:
            p, q, rss = est._validate(req.p, req.q, req.rss)
        except ReproError as exc:
            if not return_exceptions:
                raise
            results[idx] = exc
            continue
        use_q = float(np.ptp(q)) > 0.3
        prepared.append(
            [idx, est, p, q, rss, use_q, req.warm, tuple(req.extra_seeds)])

    # Partition: warm-refinable requests batch through the lockstep kernel;
    # everything else (cold, non-refine, unusable warm) runs the sequential
    # dispatch, which is the same code path `fit` uses.
    groups: Dict[Tuple[int, int, bool], List[Tuple[list, list]]] = {}
    sequential = []
    for item in prepared:
        _idx, est, p, _q, _rss, use_q, warm, extra = item
        if est.refine and warm is not None and est._warm_usable(warm):
            seeds = est._warm_seeds(warm, use_q, extra)
            key = (len(p), len(seeds), use_q)
            groups.setdefault(key, []).append((item, seeds))
        else:
            sequential.append(item)

    for members in groups.values():
        solved = _solve_warm_group(
            [(it[1], it[2], it[3], it[4], it[5], it[6], seeds)
             for it, seeds in members])
        for (item, _seeds), (res, reason) in zip(members, solved):
            idx, est, p, _q, _rss, use_q, warm, _extra = item
            if res is None:
                est._warm_reject(reason, warm, len(p))
                # Re-run cold exactly as the sequential path would after a
                # rejection: dispatch with the warm state dropped.
                item[6] = None
                sequential.append(item)
            else:
                res.warm = est._warm_state_from(res, use_q, len(p))
                results[idx] = res

    for idx, est, p, q, rss, use_q, warm, extra in sequential:
        try:
            results[idx] = est._fit_dispatch(p, q, rss, use_q, warm, extra)
        except ReproError as exc:
            if not return_exceptions:
                raise
            results[idx] = exc
    return results
