"""Straight-walk mode: defer symmetry resolution to navigation (Sec. 9.2).

"To solve this difficulty [the L-shaped requirement in cramped spaces], the
observer may just walk straight and leave the symmetry problem to the
navigation stage. During the last turn in navigation, we will know whether
the observer is in a correct direction and correct him accordingly."

The flow implemented here:

1. the user walks a single straight leg; :class:`EllipticalEstimator`
   returns the mirror pair {(x, +h), (x, -h)} plus the fitted (Γ, n);
2. navigation heads for the primary candidate; this requires a turn off the
   measurement line — after which the two hypotheses predict *different*
   RSS sequences (approaching one means receding from the other);
3. :meth:`StraightWalkResolver.observe` scores fresh (displacement, RSS)
   pairs against both hypotheses under the fitted path-loss parameters and
   switches to the mirror the moment the evidence favours it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.estimator import FitResult
from repro.errors import EstimationError, InsufficientDataError
from repro.types import Vec2

__all__ = ["StraightWalkResolver"]


@dataclass
class StraightWalkResolver:
    """Online disambiguation of a straight-walk mirror pair.

    Feed navigation-phase observations with :meth:`observe`; read the
    currently favoured candidate from :attr:`current` and whether the
    evidence is conclusive from :meth:`resolved`.

    ``decision_margin`` is the factor by which one hypothesis' RSS residual
    energy must beat the other's before the ambiguity is declared resolved
    (2.0 ≈ the wrong side fits twice as badly).
    """

    fit: FitResult
    decision_margin: float = 2.0
    min_observations: int = 6
    _p: List[float] = field(default_factory=list, init=False)
    _q: List[float] = field(default_factory=list, init=False)
    _rss: List[float] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.fit.mirror is None:
            raise EstimationError(
                "fit has no mirror candidate; nothing to disambiguate"
            )
        if self.decision_margin <= 1.0:
            raise EstimationError("decision_margin must exceed 1.0")

    @property
    def candidates(self) -> Tuple[Vec2, Vec2]:
        return (self.fit.position, self.fit.mirror)

    def observe(self, p: float, q: float, rss: float) -> None:
        """Add one navigation-phase observation.

        ``(p, q)`` is the relative displacement in the measurement frame
        (target minus observer movement — the same convention as the
        estimator) and ``rss`` the filtered reading there.
        """
        self._p.append(float(p))
        self._q.append(float(q))
        self._rss.append(float(rss))

    def _sse(self, candidate: Vec2) -> float:
        p = np.asarray(self._p)
        q = np.asarray(self._q)
        rss = np.asarray(self._rss)
        l = np.maximum(np.hypot(candidate.x + p, candidate.y + q), 0.1)
        predicted = self.fit.gamma - 10.0 * self.fit.n * np.log10(l)
        return float(np.sum((rss - predicted) ** 2))

    def scores(self) -> Tuple[float, float]:
        """(primary SSE, mirror SSE) over the observations so far."""
        if len(self._rss) < self.min_observations:
            raise InsufficientDataError(
                f"need >= {self.min_observations} observations, "
                f"have {len(self._rss)}"
            )
        return self._sse(self.fit.position), self._sse(self.fit.mirror)

    @property
    def current(self) -> Vec2:
        """The currently favoured candidate (primary until evidence)."""
        if len(self._rss) < self.min_observations:
            return self.fit.position
        sse_primary, sse_mirror = self.scores()
        return (self.fit.position if sse_primary <= sse_mirror
                else self.fit.mirror)

    def resolved(self) -> Optional[Vec2]:
        """The winning candidate once the margin is met, else None."""
        if len(self._rss) < self.min_observations:
            return None
        sse_primary, sse_mirror = self.scores()
        if sse_mirror >= self.decision_margin * sse_primary:
            return self.fit.position
        if sse_primary >= self.decision_margin * sse_mirror:
            return self.fit.mirror
        return None
