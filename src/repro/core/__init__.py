"""The paper's contribution: EnvAware, ANF, estimation, calibration, navigation."""

from repro.core.ambiguity import (
    DisambiguationResult, LegMeasurement, TwoLegDisambiguator,
)
from repro.core.anf import AdaptiveNoiseFilter
from repro.core.calibration import CalibratedEstimate, ClusteringCalibrator
from repro.core.confidence import estimation_confidence
from repro.core.envaware import EnvAwareClassifier, EnvironmentMonitor, trace_windows
from repro.core.estimator import (
    DEFAULT_N_GRID, EllipticalEstimator, FitRequest, FitResult,
    WarmStartState, fit_batch,
)
from repro.core.features import FEATURE_NAMES, feature_matrix, window_features
from repro.core.incremental import SlidingWindowRegressor
from repro.core.navigation import Instruction, Navigator
from repro.core.particle import ParticleEstimator
from repro.core.pipeline import EstimationContext, LocBLE, PreparedEstimate
from repro.core.reporting import SessionReport, session_report
from repro.core.solvers import (
    EkfBackend, EllipticalBackend, ParticleBackend, SolverBackend,
    available_backends, make_solver, restore_solver,
)
from repro.core.straightwalk import StraightWalkResolver
from repro.core.three_d import Estimator3D, Fit3DResult, Vec3
from repro.core.tracking import BeaconTracker, TrackState, joseph_update

__all__ = [
    "DisambiguationResult", "LegMeasurement", "TwoLegDisambiguator",
    "AdaptiveNoiseFilter", "CalibratedEstimate", "ClusteringCalibrator",
    "estimation_confidence", "EnvAwareClassifier", "EnvironmentMonitor",
    "trace_windows", "DEFAULT_N_GRID", "EllipticalEstimator", "FitRequest",
    "FitResult", "WarmStartState", "fit_batch", "SlidingWindowRegressor",
    "FEATURE_NAMES", "feature_matrix", "window_features", "Instruction",
    "Navigator", "EstimationContext", "LocBLE", "PreparedEstimate",
    "StraightWalkResolver",
    "SessionReport", "session_report", "ParticleEstimator",
    "Estimator3D", "Fit3DResult", "Vec3", "BeaconTracker", "TrackState",
    "joseph_update", "SolverBackend", "EkfBackend", "EllipticalBackend",
    "ParticleBackend", "available_backends", "make_solver", "restore_solver",
]
