"""Particle-filter location estimator — the sequential design alternative.

The batch elliptical regression refits everything on each update; a
sequential Monte Carlo estimator instead carries a particle cloud over the
beacon's position (and per-particle path-loss parameters) and assimilates
each (displacement, RSS) reading as it arrives. It serves three roles:

* an **ablation comparator** for the batch estimator (DESIGN.md §5);
* a natural **online** API (`update` per reading, `estimate` any time)
  for streaming deployments;
* a posterior whose spread is a direct uncertainty readout (no Jacobian
  approximation).

Robustness contract (matching :mod:`repro.robustness` conventions): every
reading is screened per sample before it can touch the cloud. In
``sanitize="strict"`` mode a non-finite or implausible reading raises a
typed :class:`~repro.errors.DataQualityError`; in ``"repair"`` mode it is
skipped and counted. Either way the posterior built from the readings that
*did* pass is never discarded — the historical failure mode this module is
hardened against was one junk reading driving ``update`` into the
degenerate-weight branch, which silently re-seeded the whole cloud **and**
zeroed the update counter, so a later ``estimate()`` raised "no readings
assimilated yet" after hundreds of successful updates. That branch now
keeps the pre-update posterior, drops only the offending reading, and is
loud: a ``solver.particle_degenerate`` event paired with a perf counter.

The filter is JSON-checkpointable (:meth:`checkpoint`/:meth:`restore`,
including the RNG bit-generator state), so a kill-and-resume continues
bit-identically — the same contract every supervised layer honours.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro import obs, perf
from repro.errors import ConfigurationError, DataQualityError, EstimationError
from repro.robustness.sanitize import RSSI_PLAUSIBLE_DBM
from repro.types import LocationEstimate, Vec2

__all__ = ["ParticleEstimator", "PARTICLE_CHECKPOINT_FORMAT"]

#: Checkpoint schema version written by :meth:`ParticleEstimator.checkpoint`.
PARTICLE_CHECKPOINT_FORMAT = 1


def _jsonify_rng_state(node):
    """Recursively convert a bit-generator state dict to JSON-safe types."""
    if isinstance(node, dict):
        return {k: _jsonify_rng_state(v) for k, v in node.items()}
    if isinstance(node, np.ndarray):
        return node.tolist()
    if isinstance(node, np.integer):
        return int(node)
    return node


@dataclass
class ParticleEstimator:
    """SIR particle filter over (x, h, Γ, n).

    Particles are seeded uniformly over a disk of radius ``max_range_m``
    with path-loss parameters drawn from the same priors the batch
    estimator uses (Γ around the advertised power, n over the indoor band).
    Each ``update(p, q, rss)`` reweights by the Gaussian RSS likelihood and
    resamples when the effective sample size collapses; a small parameter
    jitter at resampling keeps the cloud alive (regularised PF).

    ``sanitize`` selects the per-sample screening policy: ``"strict"``
    (default) raises a typed :class:`~repro.errors.DataQualityError` on a
    non-finite displacement or a non-finite/implausible RSS reading;
    ``"repair"`` skips the reading, counts it, and keeps going — the right
    mode for dirty field streams.
    """

    rng: np.random.Generator
    n_particles: int = 1500
    max_range_m: float = 16.0
    rss_sigma_db: float = 3.5
    gamma_prior: float = -59.0
    gamma_prior_sigma: float = 6.0
    n_low: float = 1.6
    n_high: float = 3.2
    resample_threshold: float = 0.5
    sanitize: str = "strict"
    _state: Optional[np.ndarray] = field(default=None, init=False)
    _weights: Optional[np.ndarray] = field(default=None, init=False)
    _n_updates: int = field(default=0, init=False)
    _n_skipped: int = field(default=0, init=False)
    _n_degenerate: int = field(default=0, init=False)
    _n_resamples: int = field(default=0, init=False)
    _n_resets: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.n_particles < 50:
            raise ConfigurationError("need >= 50 particles")
        if self.rss_sigma_db <= 0 or self.max_range_m <= 0:
            raise ConfigurationError("invalid noise/range parameters")
        if self.sanitize not in ("strict", "repair"):
            raise ConfigurationError(
                f"sanitize must be 'strict' or 'repair', got {self.sanitize!r}"
            )
        self.reset()

    def reset(self) -> None:
        """Re-seed the cloud from the prior, discarding the posterior.

        A *deliberate* operation (new measurement session, environment
        change): it zeroes the update counter, so ``estimate()`` refuses
        until fresh readings arrive. ``update`` never calls it — an
        assimilation problem must not wipe history (see module docstring).
        Resets of a live posterior are evented and counted.
        """
        if self._state is not None:
            self._n_resets += 1
            perf.count("solver.particle_resets")
            obs.emit(
                "solver.particle_reset",
                severity="warning",
                component="solver",
                n_updates_discarded=self._n_updates,
            )
        n = self.n_particles
        radius = self.max_range_m * np.sqrt(self.rng.uniform(0.05, 1.0, n))
        angle = self.rng.uniform(-math.pi, math.pi, n)
        x = radius * np.cos(angle)
        h = radius * np.sin(angle)
        gamma = self.rng.normal(self.gamma_prior, self.gamma_prior_sigma, n)
        n_exp = self.rng.uniform(self.n_low, self.n_high, n)
        self._state = np.column_stack([x, h, gamma, n_exp])
        self._weights = np.full(n, 1.0 / n)
        self._n_updates = 0

    @property
    def effective_sample_size(self) -> float:
        return float(1.0 / np.sum(self._weights**2))

    @property
    def n_updates(self) -> int:
        """Readings assimilated into the current posterior."""
        return self._n_updates

    @property
    def n_skipped(self) -> int:
        """Readings screened out (repair mode) since construction."""
        return self._n_skipped

    # -- screening -----------------------------------------------------------

    def _screen(self, p: float, q: float, rss: float) -> bool:
        """Per-sample input screening: True when the reading is usable.

        Strict mode raises typed; repair mode counts, events and skips.
        Displacements must be finite; RSS must additionally sit inside the
        physically plausible band — a finite but absurd reading (say,
        ``-1e154`` dBm) would overflow the squared innovation and poison
        every particle's log-likelihood at once.
        """
        lo, hi = RSSI_PLAUSIBLE_DBM
        if math.isfinite(p) and math.isfinite(q) and lo <= rss <= hi:
            return True
        if self.sanitize == "strict":
            raise DataQualityError(
                f"unusable particle reading (p={p!r}, q={q!r}, rss={rss!r}); "
                "sanitize the trace first or construct with sanitize='repair'"
            )
        self._skip(reason="unusable-reading")
        return False

    def _skip(self, reason: str) -> None:
        self._n_skipped += 1
        perf.count("solver.particle_skipped")
        obs.emit(
            "solver.particle_skipped",
            severity="debug",
            component="solver",
            reason=reason,
        )

    # -- assimilation --------------------------------------------------------

    def update(self, p: float, q: float, rss: float) -> bool:
        """Assimilate one reading (same (p, q) convention as the batch fit).

        Returns True when the reading entered the posterior, False when it
        was screened out or rejected by the degenerate-weight guard. The
        posterior surviving before the call is never destroyed by a bad
        reading on either path.
        """
        if not self._screen(float(p), float(q), float(rss)):
            return False
        s = self._state
        # The degenerate-weight guard below owns any NaN/overflow these
        # vector ops can produce, so numpy's warnings are noise here.
        with np.errstate(invalid="ignore", over="ignore"):
            l = np.maximum(np.hypot(s[:, 0] + p, s[:, 1] + q), 0.1)
            predicted = s[:, 2] - 10.0 * s[:, 3] * np.log10(l)
            log_lik = -0.5 * ((rss - predicted) / self.rss_sigma_db) ** 2
            log_w = np.log(self._weights + 1e-300) + log_lik
            log_w -= log_w.max()
            w = np.exp(log_w)
            total = w.sum()
        if not math.isfinite(total) or total <= 0:
            # Defensive guard: with screening in place this is nearly
            # unreachable, but if the weights do collapse the pre-update
            # posterior is kept and only this reading is dropped — the old
            # behaviour (silent reset + zeroed update counter, making a
            # later estimate() raise after hundreds of good updates) is the
            # bug this module's robustness contract forbids.
            self._n_degenerate += 1
            perf.count("solver.particle_degenerate")
            obs.emit(
                "solver.particle_degenerate",
                severity="warning",
                component="solver",
                rss=float(rss),
                n_updates=self._n_updates,
                weight_total=float(total),
            )
            return False
        self._weights = w / total
        self._n_updates += 1
        if self.effective_sample_size < self.resample_threshold * self.n_particles:
            self._resample()
        return True

    def update_batch(self, ps, qs, rss_values) -> int:
        """Assimilate a batch of readings; returns how many were taken.

        Non-numeric entries are part of the data-error contract like every
        other public entry point: strict mode raises a typed
        :class:`~repro.errors.DataQualityError` (never a bare ``TypeError``
        from ``float()``), repair mode skips and counts them.
        """
        taken = 0
        for p, q, r in zip(ps, qs, rss_values):
            try:
                p_f, q_f, r_f = float(p), float(q), float(r)
            except (TypeError, ValueError) as exc:
                if self.sanitize == "strict":
                    raise DataQualityError(
                        f"non-numeric particle reading "
                        f"(p={p!r}, q={q!r}, rss={r!r})"
                    ) from exc
                self._skip(reason="non-numeric")
                continue
            taken += int(self.update(p_f, q_f, r_f))
        return taken

    def _resample(self) -> None:
        n = self.n_particles
        self._n_resamples += 1
        perf.count("solver.particle_resamples")
        obs.emit(
            "solver.particle_resample",
            severity="debug",
            component="solver",
            ess=self.effective_sample_size,
        )
        # Systematic resampling.
        positions = (self.rng.random() + np.arange(n)) / n
        cumulative = np.cumsum(self._weights)
        cumulative[-1] = 1.0
        idx = np.searchsorted(cumulative, positions)
        self._state = self._state[idx]
        # Regularisation jitter, scaled to the cloud's current spread.
        spread = np.maximum(self._state.std(axis=0), 1e-3)
        jitter = self.rng.normal(0.0, 0.1, self._state.shape) * spread
        self._state = self._state + jitter
        self._state[:, 3] = np.clip(self._state[:, 3], 1.0, 5.0)
        self._state[:, 2] = np.clip(self._state[:, 2], -95.0, -25.0)
        self._weights = np.full(n, 1.0 / n)

    def estimate(self) -> LocationEstimate:
        """The posterior-mean estimate with its spread as position_std."""
        if self._n_updates < 1:
            raise EstimationError("no readings assimilated yet")
        mean = np.average(self._state, axis=0, weights=self._weights)
        var_xy = np.average(
            (self._state[:, :2] - mean[:2]) ** 2, axis=0,
            weights=self._weights,
        )
        std = float(np.sqrt(var_xy.sum()))
        # Confidence: how concentrated the posterior is relative to the
        # prior disk.
        confidence = float(np.clip(1.0 - std / self.max_range_m, 0.0, 1.0))
        return LocationEstimate(
            position=Vec2(float(mean[0]), float(mean[1])),
            confidence=confidence,
            gamma=float(mean[2]),
            n=float(mean[3]),
            position_std=std,
            diagnostics=self._diagnostics(std, confidence),
        )

    def _diagnostics(self, std: float, confidence: float):
        """Posterior-spread-derived diagnostics for the estimate.

        Imported lazily so this module keeps its light dependency set (the
        diagnostics module pulls in the sanitization layer).
        """
        from repro.obs.provenance import FixProvenance
        from repro.robustness.diagnostics import EstimateDiagnostics

        return EstimateDiagnostics(
            n_samples_used=self._n_updates,
            provenance=FixProvenance(
                solver="particle",
                n_candidates=self.n_particles,
                cov_status="ok" if math.isfinite(std) else "error",
                n_samples=self._n_updates,
                sanitized_dropped=self._n_skipped,
                sanitized_repaired=self._n_skipped > 0,
                confidence=confidence,
                position_std=std if math.isfinite(std) else None,
            ),
        )

    # -- persistence ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Serialize the complete filter — cloud, weights, counters, RNG —
        as a JSON-safe dict.

        Floats survive a ``json.dumps``/``loads`` round trip bit-exactly
        and the RNG bit-generator state is captured verbatim, so
        :meth:`restore` continues the filter bit-identically after a
        process kill-and-resume.
        """
        return {
            "format": PARTICLE_CHECKPOINT_FORMAT,
            "config": {
                "n_particles": self.n_particles,
                "max_range_m": self.max_range_m,
                "rss_sigma_db": self.rss_sigma_db,
                "gamma_prior": self.gamma_prior,
                "gamma_prior_sigma": self.gamma_prior_sigma,
                "n_low": self.n_low,
                "n_high": self.n_high,
                "resample_threshold": self.resample_threshold,
                "sanitize": self.sanitize,
            },
            "rng": _jsonify_rng_state(self.rng.bit_generator.state),
            "state": self._state.tolist(),
            "weights": self._weights.tolist(),
            "n_updates": self._n_updates,
            "n_skipped": self._n_skipped,
            "n_degenerate": self._n_degenerate,
            "n_resamples": self._n_resamples,
            "n_resets": self._n_resets,
        }

    @classmethod
    def restore(cls, cp: Dict[str, Any]) -> "ParticleEstimator":
        """Rebuild a filter from a :meth:`checkpoint` dict.

        Malformed checkpoints fail with a typed
        :class:`~repro.errors.DataQualityError` — data read off a disk or a
        wire gets the data-error contract, never a bare ``KeyError``.
        """
        from repro.service.checkpoint import restore_guard

        if not isinstance(cp, dict) or cp.get("format") != PARTICLE_CHECKPOINT_FORMAT:
            found = cp.get("format") if isinstance(cp, dict) else cp
            raise DataQualityError(
                "unsupported particle checkpoint: expected format "
                f"{PARTICLE_CHECKPOINT_FORMAT}, got {found!r}"
            )
        with restore_guard("particle estimator"):
            cfg = cp["config"]
            est = cls(
                rng=np.random.default_rng(0),
                n_particles=int(cfg["n_particles"]),
                max_range_m=float(cfg["max_range_m"]),
                rss_sigma_db=float(cfg["rss_sigma_db"]),
                gamma_prior=float(cfg["gamma_prior"]),
                gamma_prior_sigma=float(cfg["gamma_prior_sigma"]),
                n_low=float(cfg["n_low"]),
                n_high=float(cfg["n_high"]),
                resample_threshold=float(cfg["resample_threshold"]),
                sanitize=str(cfg["sanitize"]),
            )
            est.rng = cls._restore_rng(cp["rng"])
            state = np.asarray(cp["state"], dtype=float)
            weights = np.asarray(cp["weights"], dtype=float)
            if state.shape != (est.n_particles, 4):
                raise DataQualityError(
                    f"particle checkpoint state has shape {state.shape}; "
                    f"expected {(est.n_particles, 4)}"
                )
            if weights.shape != (est.n_particles,):
                raise DataQualityError(
                    "particle checkpoint weights do not match the cloud size"
                )
            if not (np.all(np.isfinite(state)) and np.all(np.isfinite(weights))):
                raise DataQualityError(
                    "particle checkpoint contains non-finite state"
                )
            total = float(weights.sum())
            if not (math.isfinite(total) and total > 0
                    and np.all(weights >= 0)):
                raise DataQualityError(
                    "particle checkpoint weights do not normalise"
                )
            est._state = state
            est._weights = weights
            for name in ("n_updates", "n_skipped", "n_degenerate",
                         "n_resamples", "n_resets"):
                value = cp[name]
                if not isinstance(value, numbers.Integral) or int(value) < 0:
                    raise DataQualityError(
                        f"particle checkpoint counter {name} must be a "
                        f"non-negative integer, got {value!r}"
                    )
                setattr(est, f"_{name}", int(value))
        return est

    @staticmethod
    def _restore_rng(state: Dict[str, Any]) -> np.random.Generator:
        """Reconstruct the generator from a checkpointed state dict."""
        if not isinstance(state, dict):
            raise DataQualityError("particle checkpoint rng state malformed")
        name = state.get("bit_generator")
        bg_cls = getattr(np.random, str(name), None)
        if not (isinstance(bg_cls, type)
                and issubclass(bg_cls, np.random.BitGenerator)):
            raise DataQualityError(
                f"unknown bit generator {name!r} in particle checkpoint"
            )
        bg = bg_cls()
        bg.state = state
        return np.random.Generator(bg)
