"""Particle-filter location estimator — the sequential design alternative.

The batch elliptical regression refits everything on each update; a
sequential Monte Carlo estimator instead carries a particle cloud over the
beacon's position (and per-particle path-loss parameters) and assimilates
each (displacement, RSS) reading as it arrives. It serves three roles:

* an **ablation comparator** for the batch estimator (DESIGN.md §5);
* a natural **online** API (`update` per reading, `estimate` any time)
  for streaming deployments;
* a posterior whose spread is a direct uncertainty readout (no Jacobian
  approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, EstimationError
from repro.types import LocationEstimate, Vec2

__all__ = ["ParticleEstimator"]


@dataclass
class ParticleEstimator:
    """SIR particle filter over (x, h, Γ, n).

    Particles are seeded uniformly over a disk of radius ``max_range_m``
    with path-loss parameters drawn from the same priors the batch
    estimator uses (Γ around the advertised power, n over the indoor band).
    Each ``update(p, q, rss)`` reweights by the Gaussian RSS likelihood and
    resamples when the effective sample size collapses; a small parameter
    jitter at resampling keeps the cloud alive (regularised PF).
    """

    rng: np.random.Generator
    n_particles: int = 1500
    max_range_m: float = 16.0
    rss_sigma_db: float = 3.5
    gamma_prior: float = -59.0
    gamma_prior_sigma: float = 6.0
    n_low: float = 1.6
    n_high: float = 3.2
    resample_threshold: float = 0.5
    _state: Optional[np.ndarray] = field(default=None, init=False)
    _weights: Optional[np.ndarray] = field(default=None, init=False)
    _n_updates: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.n_particles < 50:
            raise ConfigurationError("need >= 50 particles")
        if self.rss_sigma_db <= 0 or self.max_range_m <= 0:
            raise ConfigurationError("invalid noise/range parameters")
        self.reset()

    def reset(self) -> None:
        """Re-seed the cloud from the prior."""
        n = self.n_particles
        radius = self.max_range_m * np.sqrt(self.rng.uniform(0.05, 1.0, n))
        angle = self.rng.uniform(-math.pi, math.pi, n)
        x = radius * np.cos(angle)
        h = radius * np.sin(angle)
        gamma = self.rng.normal(self.gamma_prior, self.gamma_prior_sigma, n)
        n_exp = self.rng.uniform(self.n_low, self.n_high, n)
        self._state = np.column_stack([x, h, gamma, n_exp])
        self._weights = np.full(n, 1.0 / n)
        self._n_updates = 0

    @property
    def effective_sample_size(self) -> float:
        return float(1.0 / np.sum(self._weights**2))

    def update(self, p: float, q: float, rss: float) -> None:
        """Assimilate one reading (same (p, q) convention as the batch fit)."""
        s = self._state
        l = np.maximum(np.hypot(s[:, 0] + p, s[:, 1] + q), 0.1)
        predicted = s[:, 2] - 10.0 * s[:, 3] * np.log10(l)
        log_lik = -0.5 * ((rss - predicted) / self.rss_sigma_db) ** 2
        log_w = np.log(self._weights + 1e-300) + log_lik
        log_w -= log_w.max()
        w = np.exp(log_w)
        total = w.sum()
        if not math.isfinite(total) or total <= 0:
            self.reset()
            return
        self._weights = w / total
        self._n_updates += 1
        if self.effective_sample_size < self.resample_threshold * self.n_particles:
            self._resample()

    def update_batch(self, ps, qs, rss_values) -> None:
        for p, q, r in zip(ps, qs, rss_values):
            self.update(float(p), float(q), float(r))

    def _resample(self) -> None:
        n = self.n_particles
        # Systematic resampling.
        positions = (self.rng.random() + np.arange(n)) / n
        cumulative = np.cumsum(self._weights)
        cumulative[-1] = 1.0
        idx = np.searchsorted(cumulative, positions)
        self._state = self._state[idx]
        # Regularisation jitter, scaled to the cloud's current spread.
        spread = np.maximum(self._state.std(axis=0), 1e-3)
        jitter = self.rng.normal(0.0, 0.1, self._state.shape) * spread
        self._state = self._state + jitter
        self._state[:, 3] = np.clip(self._state[:, 3], 1.0, 5.0)
        self._state[:, 2] = np.clip(self._state[:, 2], -95.0, -25.0)
        self._weights = np.full(n, 1.0 / n)

    def estimate(self) -> LocationEstimate:
        """The posterior-mean estimate with its spread as position_std."""
        if self._n_updates < 1:
            raise EstimationError("no readings assimilated yet")
        mean = np.average(self._state, axis=0, weights=self._weights)
        var_xy = np.average(
            (self._state[:, :2] - mean[:2]) ** 2, axis=0,
            weights=self._weights,
        )
        std = float(np.sqrt(var_xy.sum()))
        # Confidence: how concentrated the posterior is relative to the
        # prior disk.
        confidence = float(np.clip(1.0 - std / self.max_range_m, 0.0, 1.0))
        return LocationEstimate(
            position=Vec2(float(mean[0]), float(mean[1])),
            confidence=confidence,
            gamma=float(mean[2]),
            n=float(mean[3]),
            position_std=std,
        )
