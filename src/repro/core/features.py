"""RSS window feature extraction for EnvAware (Sec. 4.1).

Per 1–2 s window the paper builds a feature vector from "the statistics of a
new time window vector V: mean, variance, skewness. Beside these statistics,
we also use 5 values directly from V: minimum, first quartile, median, third
quartile, and max value", standardized. That enumeration yields eight
values against the stated nine; we add the interquartile range as the ninth
(it completes the five-number summary into a dispersion measure and matches
the stated dimensionality). The standardisation lives in the classifier's
:class:`~repro.ml.preprocessing.StandardScaler`, fitted on training data.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import InsufficientDataError

__all__ = ["FEATURE_NAMES", "window_features", "feature_matrix"]

FEATURE_NAMES = (
    "mean",
    "variance",
    "skewness",
    "min",
    "q1",
    "median",
    "q3",
    "max",
    "iqr",
)

#: Fewer samples than this cannot support a meaningful third moment.
MIN_WINDOW_SAMPLES = 4


def window_features(values: Sequence[float]) -> np.ndarray:
    """The 9-value feature vector of one RSS window (unstandardised)."""
    v = np.asarray(values, dtype=float)
    if v.ndim != 1 or v.size < MIN_WINDOW_SAMPLES:
        raise InsufficientDataError(
            f"need >= {MIN_WINDOW_SAMPLES} samples per window, got {v.size}"
        )
    # Pairwise summation can land np.mean a few ulp outside [min, max] on
    # near-constant windows, breaking the order invariants downstream
    # consumers (and the property tests) rely on — clamp it back in.
    mean = float(np.clip(np.mean(v), v.min(), v.max()))
    var = float(np.var(v))
    std = float(np.sqrt(var))
    if std > 1e-9:
        skew = float(np.mean(((v - mean) / std) ** 3))
    else:
        skew = 0.0
    q1, med, q3 = (float(x) for x in np.percentile(v, [25.0, 50.0, 75.0]))
    return np.array(
        [mean, var, skew, float(v.min()), q1, med, q3, float(v.max()), q3 - q1]
    )


def feature_matrix(windows: List[Sequence[float]]) -> np.ndarray:
    """Stack window feature vectors into an (n_windows, 9) matrix."""
    if not windows:
        raise InsufficientDataError("no windows provided")
    return np.vstack([window_features(w) for w in windows])
