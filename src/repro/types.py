"""Common value types shared across the library.

These are deliberately small, immutable-ish dataclasses: samples, traces and
estimates that flow between the simulator substrate and the LocBLE core.
Positions use metres in a 2-D plane; timestamps are seconds from the start of
a measurement; RSSI is in dBm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Vec2",
    "RssiSample",
    "ImuSample",
    "RssiTrace",
    "ImuTrace",
    "MotionSegment",
    "LocationEstimate",
    "EnvClass",
]


class EnvClass:
    """Propagation environment classes recognised by EnvAware (Sec. 4.1).

    ``LOS``: unobstructed direct path. ``P_LOS``: blocked by a low-attenuation
    obstacle (glass, wooden door, human body). ``NLOS``: blocked by a
    high-attenuation obstacle (concrete/cinder wall, metal board).
    """

    LOS = "LOS"
    P_LOS = "P_LOS"
    NLOS = "NLOS"

    ALL = (LOS, P_LOS, NLOS)


@dataclass(frozen=True)
class Vec2:
    """A 2-D point or displacement in metres."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, k: float) -> "Vec2":
        return Vec2(self.x * k, self.y * k)

    __rmul__ = __mul__

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z-component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Vec2") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalise the zero vector")
        return Vec2(self.x / n, self.y / n)

    def rotated(self, angle_rad: float) -> "Vec2":
        """Rotate counter-clockwise by ``angle_rad`` radians."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def heading(self) -> float:
        """Angle of this vector from the +x axis, in radians (-pi, pi]."""
        return math.atan2(self.y, self.x)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    @staticmethod
    def from_array(a: Sequence[float]) -> "Vec2":
        return Vec2(float(a[0]), float(a[1]))

    @staticmethod
    def from_polar(r: float, angle_rad: float) -> "Vec2":
        return Vec2(r * math.cos(angle_rad), r * math.sin(angle_rad))


@dataclass(frozen=True)
class RssiSample:
    """One received advertisement: when, how strong, from whom, on what channel."""

    timestamp: float
    rssi: float
    beacon_id: str = "beacon-0"
    channel: int = 37


@dataclass(frozen=True)
class ImuSample:
    """One inertial reading in the earth frame (after coordinate alignment).

    ``accel`` is the user-acceleration magnitude signal used for step
    detection (gravity removed), ``gyro_z`` the yaw-rate (rad/s) and
    ``mag_heading`` the magnetic heading in radians.
    """

    timestamp: float
    accel: float
    gyro_z: float
    mag_heading: float


@dataclass
class RssiTrace:
    """A time-ordered RSSI sequence for a single beacon."""

    samples: List[RssiSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def beacon_id(self) -> str:
        if not self.samples:
            raise ValueError("empty trace has no beacon id")
        return self.samples[0].beacon_id

    def timestamps(self) -> np.ndarray:
        return np.array([s.timestamp for s in self.samples], dtype=float)

    def values(self) -> np.ndarray:
        return np.array([s.rssi for s in self.samples], dtype=float)

    def duration(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return self.samples[-1].timestamp - self.samples[0].timestamp

    def mean_rate_hz(self) -> float:
        """Average sampling frequency of the trace."""
        d = self.duration()
        if d <= 0.0:
            return 0.0
        return (len(self.samples) - 1) / d

    def slice_time(self, t0: float, t1: float) -> "RssiTrace":
        """Samples with ``t0 <= timestamp < t1`` as a new trace."""
        return RssiTrace([s for s in self.samples if t0 <= s.timestamp < t1])

    def truncated_fraction(self, fraction: float) -> "RssiTrace":
        """Keep the first ``fraction`` of samples (Fig. 13b walk-length sweep)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        n = max(1, int(round(len(self.samples) * fraction)))
        return RssiTrace(list(self.samples[:n]))

    @staticmethod
    def from_arrays(
        timestamps: Iterable[float],
        rssi: Iterable[float],
        beacon_id: str = "beacon-0",
        channels: Optional[Iterable[int]] = None,
    ) -> "RssiTrace":
        ts = list(timestamps)
        vs = list(rssi)
        if len(ts) != len(vs):
            raise ValueError("timestamps and rssi must have equal length")
        chs = list(channels) if channels is not None else [37] * len(ts)
        return RssiTrace(
            [
                RssiSample(float(t), float(v), beacon_id, int(c))
                for t, v, c in zip(ts, vs, chs)
            ]
        )


@dataclass
class ImuTrace:
    """A time-ordered IMU sequence."""

    samples: List[ImuSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def timestamps(self) -> np.ndarray:
        return np.array([s.timestamp for s in self.samples], dtype=float)

    def accel(self) -> np.ndarray:
        return np.array([s.accel for s in self.samples], dtype=float)

    def gyro_z(self) -> np.ndarray:
        return np.array([s.gyro_z for s in self.samples], dtype=float)

    def mag_heading(self) -> np.ndarray:
        return np.array([s.mag_heading for s in self.samples], dtype=float)

    def rate_hz(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        d = self.samples[-1].timestamp - self.samples[0].timestamp
        return (len(self.samples) - 1) / d if d > 0 else 0.0


@dataclass(frozen=True)
class MotionSegment:
    """Observer displacement over a time interval, from dead reckoning.

    ``displacement`` is expressed in the measurement coordinate frame whose
    origin is the observer's start point and whose +x axis is the observer's
    initial walking direction (the frame of Fig. 6).
    """

    t_start: float
    t_end: float
    displacement: Vec2

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class LocationEstimate:
    """A 2-D beacon location estimate with its confidence (Sec. 5).

    ``position`` is in the measurement frame; ``confidence`` in [0, 1] derives
    from the residual-Gaussian test of Sec. 5 ("Estimation confidence");
    ``gamma`` and ``n`` are the fitted path-loss parameters; ``ambiguous``
    lists alternative mirror solutions not yet ruled out. ``diagnostics``
    (a :class:`repro.robustness.EstimateDiagnostics`, kept untyped here to
    avoid a base-module dependency) is populated by the robust estimation
    path to explain degraded, low-confidence results.
    """

    position: Vec2
    confidence: float = 1.0
    gamma: float = float("nan")
    n: float = float("nan")
    environment: str = EnvClass.LOS
    ambiguous: Tuple[Vec2, ...] = ()
    position_std: float = float("nan")
    diagnostics: Optional[object] = None

    def distance(self) -> float:
        """Estimated range from the observer's origin to the beacon."""
        return self.position.norm()

    def error_to(self, truth: Vec2) -> float:
        """Euclidean estimation error against a ground-truth position."""
        return self.position.distance_to(truth)
