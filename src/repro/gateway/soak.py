"""Gateway soak: concurrent hostile clients, one deterministic spine.

This harness closes the loop the issue demands: a
:class:`~repro.sim.load.LoadConfig` workload is partitioned across
``n_clients`` :class:`~repro.gateway.client.SimulatedClient`\\ s, every
outbound frame gets a seeded :class:`~repro.sim.faults.FrameFate` from a
:class:`~repro.sim.faults.TransportFaultModel`, and the whole stream is
pushed through a live :class:`~repro.gateway.IngestionGateway` tick by
tick — clients misbehaving concurrently *within* a tick, the gateway
draining deterministically *at* the tick.

The acceptance contract is measured, not asserted by hope:

* **zero untyped exceptions** — anything a client or serve task leaks
  outside ``DataQualityError``/``ConfigurationError`` lands in
  ``errors`` and fails :meth:`GatewaySoakResult.passed`;
* **counter/event parity** — every ``gateway.*`` refusal/repair counter
  must equal the ``n``-weighted volume of its same-named obs event over
  the run (a run-scoped sink does the bookkeeping);
* **record→replay bit-identity** — when recording, the trace is replayed
  through a fresh gateway+fleet and each tick's snapshot digest must
  match both the trace and the live run.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, DataQualityError
from repro.fleet import FleetConfig, TrackingFleet
from repro.gateway.client import SimulatedClient
from repro.gateway.gateway import GatewayConfig, IngestionGateway
from repro.gateway.trace import (
    ReplayResult,
    TraceWriter,
    replay,
    snapshot_digest,
    trace_meta,
)
from repro.sim.faults import FrameFate, TransportFaultModel
from repro.sim.load import LoadConfig, generate_load

__all__ = ["GatewaySoakConfig", "GatewaySoakResult", "run_gateway_soak"]

#: Exception types the edge is *allowed* to surface to the driver.
_TYPED = (DataQualityError, ConfigurationError)

#: One client's schedule for one tick: ``[(frame, fate), ...]``.
_TickSchedule = List[Tuple[Dict[str, Any], FrameFate]]


@dataclass(frozen=True)
class GatewaySoakConfig:
    """One gateway soak run: workload, fault matrix, topology, recording."""

    load: LoadConfig = field(default_factory=lambda: LoadConfig(
        duration_s=20.0, n_beacons=8, template_beacons=4, rate_hz=4.0))
    transport: TransportFaultModel = field(
        default_factory=TransportFaultModel)
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)
    n_clients: int = 4
    seed: int = 0
    #: IMU samples bundled per imu frame (client 0 carries the IMU feed).
    imu_chunk: int = 64
    record_path: Optional[str] = None
    #: Replay the recorded trace afterwards and compare digests.
    replay_check: bool = True
    ack_timeout_s: float = 0.1
    max_attempts: int = 4
    #: Wall-sleep multiplier on client backoff (keeps soaks fast).
    sleep_scale: float = 0.001

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigurationError("n_clients must be >= 1")
        if self.imu_chunk < 1:
            raise ConfigurationError("imu_chunk must be >= 1")


@dataclass
class GatewaySoakResult:
    """Everything the acceptance gate needs, in one report."""

    ticks: int = 0
    offered_samples: int = 0
    #: Samples the gateway acked into queues (sum of client ``taken``).
    delivered_samples: int = 0
    fleet_sessions: int = 0
    queue_shed: int = 0
    gateway_counters: Dict[str, int] = field(default_factory=dict)
    client_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: ``n``-weighted obs event volume per event name over the run.
    event_volumes: Dict[str, int] = field(default_factory=dict)
    #: Counter names whose obs-event volume disagreed (must be empty).
    parity_failures: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    untyped_errors: int = 0
    #: Per-tick live snapshot digests (the replay comparison baseline).
    tick_digests: List[str] = field(default_factory=list)
    trace_path: Optional[str] = None
    replay_result: Optional[ReplayResult] = None

    @property
    def passed(self) -> bool:
        """Zero untyped leaks, full parity, and (if recorded) bit-identity."""
        replay_ok = (self.replay_result is None
                     or self.replay_result.identical)
        return (self.untyped_errors == 0 and not self.parity_failures
                and replay_ok)

    def summary(self) -> Dict[str, Any]:
        return {
            "ticks": self.ticks,
            "offered_samples": self.offered_samples,
            "delivered_samples": self.delivered_samples,
            "fleet_sessions": self.fleet_sessions,
            "queue_shed": self.queue_shed,
            "gateway_counters": dict(sorted(self.gateway_counters.items())),
            "client_stats": self.client_stats,
            "errors": len(self.errors),
            "untyped_errors": self.untyped_errors,
            "parity_failures": list(self.parity_failures),
            "trace_path": self.trace_path,
            "replay_identical": (None if self.replay_result is None
                                 else self.replay_result.identical),
            "replay_mismatches": (None if self.replay_result is None
                                  else len(self.replay_result.mismatches)),
            "passed": self.passed,
        }


class _VolumeSink:
    """Sums each event's ``n`` field (default 1) per event name."""

    def __init__(self) -> None:
        self.volumes: Dict[str, int] = {}

    def write(self, event: Any) -> None:
        n = event.fields.get("n", 1)
        if not isinstance(n, int) or isinstance(n, bool):
            n = 1
        self.volumes[event.name] = self.volumes.get(event.name, 0) + n


def _build_schedules(
    config: GatewaySoakConfig,
) -> Tuple[List[float], List[List[_TickSchedule]], int]:
    """Per-tick, per-client frame schedules with seeded fates.

    Beacons are assigned to clients round-robin over the sorted beacon
    universe; client 0 additionally carries the shared IMU feed. Frame
    seqs are per client, monotone across the whole run. Returns
    ``(tick_times, schedules[tick][client], offered_samples)``.
    """
    stream = generate_load(config.load)
    beacons = sorted({s.beacon_id for _, scans, _ in stream.ticks
                      for s in scans})
    owner = {b: i % config.n_clients for i, b in enumerate(beacons)}

    seqs = [0] * config.n_clients
    tick_times: List[float] = []
    raw: List[List[List[Dict[str, Any]]]] = []
    for t, scans, imu in stream.ticks:
        tick_times.append(float(t))
        per_client: List[List[Dict[str, Any]]] = [
            [] for _ in range(config.n_clients)]
        by_beacon: Dict[str, List] = {}
        for s in scans:
            by_beacon.setdefault(s.beacon_id, []).append(s)
        for b in sorted(by_beacon):
            c = owner[b]
            per_client[c].append({
                "type": "scan", "seq": seqs[c], "beacon": b,
                "samples": [[s.timestamp, s.rssi, s.channel]
                            for s in by_beacon[b]],
            })
            seqs[c] += 1
        imu = list(imu)
        for i in range(0, len(imu), config.imu_chunk):
            chunk = imu[i:i + config.imu_chunk]
            per_client[0].append({
                "type": "imu", "seq": seqs[0],
                "samples": [[s.timestamp, s.accel, s.gyro_z, s.mag_heading]
                            for s in chunk],
            })
            seqs[0] += 1
        raw.append(per_client)

    # Roll each client's whole fate script in one deterministic pass.
    fates: List[List[FrameFate]] = []
    for c in range(config.n_clients):
        rng = np.random.default_rng((config.seed, 104729, c))
        fates.append(config.transport.plan(rng, seqs[c]))
    cursor = [0] * config.n_clients
    schedules: List[List[_TickSchedule]] = []
    for per_client in raw:
        tick_sched: List[_TickSchedule] = []
        for c, frames in enumerate(per_client):
            sched: _TickSchedule = []
            for frame in frames:
                sched.append((frame, fates[c][cursor[c]]))
                cursor[c] += 1
            tick_sched.append(sched)
        schedules.append(tick_sched)
    return tick_times, schedules, stream.offered_samples


async def _drive(
    config: GatewaySoakConfig, result: GatewaySoakResult
) -> None:
    tick_times, schedules, offered = _build_schedules(config)
    result.offered_samples = offered

    fleet = TrackingFleet(config.fleet)
    gateway = IngestionGateway(config.gateway, fleet)
    writer: Optional[TraceWriter] = None
    if config.record_path is not None:
        writer = TraceWriter(config.record_path, meta=trace_meta(gateway))
        gateway.tap = writer
        result.trace_path = config.record_path

    clients = [
        SimulatedClient(
            f"c{c:03d}", gateway,
            ack_timeout_s=config.ack_timeout_s,
            max_attempts=config.max_attempts,
            sleep_scale=config.sleep_scale,
        )
        for c in range(config.n_clients)
    ]

    try:
        for t, tick_sched in zip(tick_times, schedules):
            outcomes = await asyncio.gather(
                *(clients[c].run_schedule(sched)
                  for c, sched in enumerate(tick_sched) if sched),
                return_exceptions=True,
            )
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    result.errors.append(
                        f"{type(outcome).__name__}: {outcome}")
                    if not isinstance(outcome, _TYPED):
                        result.untyped_errors += 1
            snapshots = gateway.tick(t)
            result.ticks += 1
            result.tick_digests.append(snapshot_digest(snapshots))
        for client in clients:
            await client.close()
        await gateway.drain_clients()
    finally:
        if writer is not None:
            writer.close()
            gateway.tap = None

    for name in sorted(gateway.task_errors):
        result.errors.append(f"gateway task: {name}")
        result.untyped_errors += 1
    result.delivered_samples = sum(c.stats.taken for c in clients)
    result.fleet_sessions = gateway.fleet.total_sessions
    stats = gateway.stats()
    result.queue_shed = stats["queue_shed"]
    result.gateway_counters = dict(gateway.counters)
    result.client_stats = {
        c.client_id: c.stats.as_dict() for c in clients
    }


def run_gateway_soak(config: GatewaySoakConfig) -> GatewaySoakResult:
    """Run one gateway soak to completion (drives its own event loop).

    Counter/event parity is audited over a run-scoped sink; the
    record→replay determinism check runs after the loop when a
    ``record_path`` was given and ``replay_check`` is on.
    """
    result = GatewaySoakResult()
    sink = _VolumeSink()
    obs.add_sink(sink)
    try:
        asyncio.run(_drive(config, result))
    finally:
        obs.remove_sink(sink)
    result.event_volumes = dict(sink.volumes)

    for name, count in sorted(result.gateway_counters.items()):
        if sink.volumes.get(f"gateway.{name}", 0) != count:
            result.parity_failures.append(name)

    if config.record_path is not None and config.replay_check:
        replay_result = replay(config.record_path)
        # The trace's own per-tick digests were checked inside replay();
        # cross-check the live run's digest stream too, so live, trace
        # and replay all agree.
        if (replay_result.identical
                and replay_result.ticks != len(result.tick_digests)):
            replay_result.mismatches.append(
                (-1, float("nan"), f"{len(result.tick_digests)} live ticks",
                 f"{replay_result.ticks} replayed"))
        result.replay_result = replay_result
    return result
