"""Durable record/replay for the ingestion gateway.

A **trace** is an append-only JSON-lines file capturing everything that
crossed the gateway→fleet boundary, in commit order: one ``tick`` record
per :meth:`~repro.gateway.IngestionGateway.tick` holding the drained scan
and IMU batches plus a digest of the snapshots the fleet produced. Because
the gateway's tick drain is deterministic (sorted beacons, FIFO queues),
the recorded batches are sufficient to reproduce the run **bit-identically**
— all the arrival-time chaos of the async edge happened *before* the tap.

Integrity is a per-record `blake2b` hash chain: each record's ``h`` is
``blake2b(prev_h + canonical_json(record_minus_h))`` from a fixed genesis
string, and a final ``end`` record seals the tick count. Truncation,
reordering, or any flipped byte breaks the chain at the first affected
record, and :func:`read_trace` refuses with a typed
:class:`~repro.errors.DataQualityError` naming the line. Trace bytes are
*data* — nothing in this module raises an untyped exception for anything a
file can contain.

Crashes are the *normal* way a trace ends: a process that dies mid-run
leaves no ``end`` seal and possibly one torn final line, and that trace —
the incident you most want to replay — must stay readable.
``read_trace(path, allow_unsealed=True)`` (or :func:`recover_trace`, which
also returns the structured :class:`TraceRecovery` report) accepts a
crash-truncated trace: it drops **at most one** torn final line and
returns the hash-verified prefix. Corruption anywhere *before* the tail —
a mid-file bit flip, a reordered line, a truncate-and-append — is still
refused in both modes; only the one write a crash can tear is forgiven.

:func:`replay` rebuilds a gateway+fleet from the trace header's recorded
configuration, re-drives every tick, and compares each tick's snapshot
digest against the recorded one — a self-contained determinism check that
needs nothing from the original process.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, DataQualityError
from repro.fleet import FleetConfig, TrackingFleet
from repro.fleet.loadtest import snapshot_key
from repro.gateway.gateway import GatewayConfig, IngestionGateway
from repro.service import ServiceConfig
from repro.service.session import (
    PipelineFactory,
    SessionConfig,
    SessionSnapshot,
    default_pipeline_factory,
)
from repro.types import ImuSample, RssiSample

__all__ = [
    "TRACE_FORMAT",
    "TraceRecovery",
    "TraceWriter",
    "read_trace",
    "recover_trace",
    "replay",
    "ReplayResult",
    "snapshot_digest",
    "trace_meta",
]

#: Durability policies a :class:`TraceWriter` (and
#: :class:`~repro.obs.sinks.JsonLinesSink`) can write under.
DURABILITY_POLICIES = ("flush", "fsync")

#: Schema version written in the trace header.
TRACE_FORMAT = 1

#: Hash-chain genesis: the "previous hash" of the header record.
GENESIS = "repro-trace-v1"

#: Hex chars of blake2b kept per record (16 bytes — plenty for integrity,
#: short enough to keep traces grep-able).
_HASH_LEN = 32


def _canonical(record: Dict[str, Any]) -> str:
    """The canonical JSON text a record is hashed over (sans ``h``)."""
    body = {k: v for k, v in record.items() if k != "h"}
    return json.dumps(body, sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def _chain(prev_h: str, record: Dict[str, Any]) -> str:
    digest = blake2b((prev_h + _canonical(record)).encode("utf-8"),
                     digest_size=_HASH_LEN // 2)
    return digest.hexdigest()


def snapshot_digest(snapshots: Dict[str, SessionSnapshot]) -> str:
    """A deterministic digest of one tick's snapshot stream.

    Built over the sorted :func:`~repro.fleet.loadtest.snapshot_key`
    tuples — the same bit-identity contract migration and checkpoint
    equivalence are judged by (``estimate`` excluded; ``repr`` round-trips
    floats exactly).
    """
    blob = repr([snapshot_key(snapshots[b]) for b in sorted(snapshots)])
    return blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


def trace_meta(gateway: IngestionGateway) -> Dict[str, Any]:
    """The header metadata :func:`replay` needs to rebuild the topology."""
    fleet_cfg = gateway.fleet.config
    service_cfg = fleet_cfg.service
    return {
        "gateway": gateway.config.to_dict(),
        "fleet": {
            "n_shards": fleet_cfg.n_shards,
            "max_total_sessions": fleet_cfg.max_total_sessions,
            "router_salt": fleet_cfg.router_salt,
            "batch_ticks": fleet_cfg.batch_ticks,
            "service": {
                "imu_buffer": service_cfg.imu_buffer,
                "imu_window_s": service_cfg.imu_window_s,
                "max_sessions": service_cfg.max_sessions,
                "session": service_cfg.session.to_dict(),
            },
        },
    }


def _gateway_from_meta(
    meta: Dict[str, Any], pipeline_factory: PipelineFactory
) -> IngestionGateway:
    if not isinstance(meta, dict):
        raise DataQualityError("trace meta must be a JSON object")
    try:
        gw_cfg = GatewayConfig.from_dict(meta["gateway"])
        f = meta["fleet"]
        svc = f["service"]
        service_cfg = ServiceConfig(
            session=SessionConfig.from_dict(svc["session"]),
            imu_buffer=int(svc["imu_buffer"]),
            imu_window_s=float(svc["imu_window_s"]),
            max_sessions=int(svc["max_sessions"]),
        )
        max_total = f["max_total_sessions"]
        fleet_cfg = FleetConfig(
            n_shards=int(f["n_shards"]),
            service=service_cfg,
            max_total_sessions=(None if max_total is None
                                else int(max_total)),
            router_salt=str(f["router_salt"]),
            batch_ticks=bool(f["batch_ticks"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataQualityError(
            f"trace meta does not describe a gateway topology: "
            f"{type(exc).__name__}: {exc}"
        )
    fleet = TrackingFleet(fleet_cfg, pipeline_factory=pipeline_factory)
    return IngestionGateway(gw_cfg, fleet)


class TraceWriter:
    """Appends chained records to a trace file; attach as a gateway tap.

    ``writer = TraceWriter(path, meta=trace_meta(gw)); gw.tap = writer``
    — every subsequent ``gw.tick`` appends one record. Each record is
    flushed as written (``durability="fsync"`` additionally fsyncs every
    record, so a committed tick survives an OS or power crash, not just a
    process crash), so a crash leaves a prefix that still verifies up to
    its last complete line — :func:`recover_trace` reads exactly that
    prefix back. Use as a context manager or call :meth:`close` to seal;
    the context exit seals **only on a clean exit**. When the body raised,
    the trace is left unsealed instead (:meth:`abort`), because an ``end``
    record under an in-flight exception would claim a completed run that
    never completed — the honest artifact of a crashed run is a
    crash-shaped trace.
    """

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None,
                 durability: str = "flush"):
        if durability not in DURABILITY_POLICIES:
            raise ConfigurationError(
                f"durability must be one of {DURABILITY_POLICIES}, "
                f"got {durability!r}")
        self.path = str(path)
        self.durability = durability
        self.ticks = 0
        self._h = GENESIS
        self._closed = False
        try:
            self._fh: IO[str] = open(self.path, "w", encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open trace {self.path!r} for writing: {exc}")
        self._write({
            "kind": "header",
            "format": TRACE_FORMAT,
            "meta": meta or {},
        })

    def _write(self, record: Dict[str, Any]) -> None:
        record = dict(record)
        record["h"] = self._h = _chain(self._h, record)
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":"), allow_nan=True)
                       + "\n")
        self._fh.flush()
        if self.durability == "fsync":
            os.fsync(self._fh.fileno())

    def record_tick(
        self,
        t: float,
        scans: Iterable[RssiSample],
        imu: Iterable[ImuSample],
        snapshots: Dict[str, SessionSnapshot],
    ) -> None:
        """Append one committed tick (the gateway calls this via its tap)."""
        if self._closed:
            raise ConfigurationError("trace writer is closed")
        self._write({
            "kind": "tick",
            "t": float(t),
            "scans": [[s.timestamp, s.rssi, s.beacon_id, s.channel]
                      for s in scans],
            "imu": [[s.timestamp, s.accel, s.gyro_z, s.mag_heading]
                    for s in imu],
            "snap": snapshot_digest(snapshots),
        })
        self.ticks += 1

    def close(self) -> None:
        """Seal the trace with an ``end`` record and close the file."""
        if self._closed:
            return
        self._write({"kind": "end", "ticks": self.ticks})
        self._closed = True
        self._fh.close()

    def abort(self) -> None:
        """Close the file *without* sealing (the crash-path close).

        The trace stays a valid unsealed prefix — readable via
        ``read_trace(path, allow_unsealed=True)`` — and honestly records
        that the run did not finish.
        """
        if self._closed:
            return
        self._closed = True
        self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        # Seal only a clean exit: masking an in-flight exception with an
        # `end` record would forge a completed run.
        if exc_type is None:
            self.close()
        else:
            self.abort()


@dataclass(frozen=True)
class TraceRecovery:
    """The structured report of reading a (possibly crash-ended) trace.

    ``sealed`` is True when the ``end`` record was present and consistent;
    ``torn_line``/``torn_reason`` name the single final line dropped as a
    crash-torn write (``None`` when every line verified). ``ticks_read``
    counts the verified tick records returned alongside this report.
    """

    sealed: bool
    ticks_read: int
    lines_total: int
    torn_line: Optional[int] = None
    torn_reason: Optional[str] = None

    @property
    def clean(self) -> bool:
        """Did the trace read with no recovery at all (sealed, no tear)?"""
        return self.sealed and self.torn_line is None


def _verify_line(
    path: str, lineno: int, line: str, prev_h: str
) -> Dict[str, Any]:
    """One line → verified record, or a typed refusal.

    Exactly the failures a crash-torn final write can produce (partial
    JSON, missing or mismatching hash) raise here — the tolerant reader
    forgives them on the last line only. Everything else is checked by
    the caller, where chain position is known.
    """
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise DataQualityError(
            f"trace {path!r} line {lineno} is not JSON: {exc}")
    if not isinstance(record, dict):
        raise DataQualityError(
            f"trace {path!r} line {lineno}: record must be an object")
    h = record.get("h")
    if not isinstance(h, str):
        raise DataQualityError(
            f"trace {path!r} line {lineno}: missing hash")
    if h != _chain(prev_h, record):
        raise DataQualityError(
            f"trace {path!r} line {lineno}: hash chain broken "
            f"(corruption, truncation-and-append, or reordering)")
    return record


def _read_verified(
    path: str, allow_unsealed: bool
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], TraceRecovery]:
    try:
        # errors="replace": a crash can tear a write mid-byte, leaving a
        # non-UTF-8 tail. Replacement characters can never survive the
        # per-line hash check, so nothing invalid is ever accepted — the
        # mangled line just fails verification like any other torn line.
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            raw = fh.read().splitlines()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path!r}: {exc}")
    lines = [(lineno, line) for lineno, line in enumerate(raw, start=1)
             if line.strip()]
    prev_h = GENESIS
    header: Optional[Dict[str, Any]] = None
    ticks: List[Dict[str, Any]] = []
    ended = False
    torn_line: Optional[int] = None
    torn_reason: Optional[str] = None
    for index, (lineno, line) in enumerate(lines):
        if ended:
            raise DataQualityError(
                f"trace {path!r}: record after end (line {lineno})")
        try:
            record = _verify_line(path, lineno, line, prev_h)
        except DataQualityError as exc:
            if allow_unsealed and index == len(lines) - 1:
                # The one failure a crash legitimately produces: a torn
                # final write. Drop it, keep the verified prefix.
                torn_line, torn_reason = lineno, str(exc)
                break
            if index == len(lines) - 1:
                raise DataQualityError(
                    f"{exc} — if this trace ends in a crash-torn write, "
                    f"read_trace(..., allow_unsealed=True) recovers the "
                    f"verified prefix")
            raise
        prev_h = record["h"]
        kind = record.get("kind")
        if header is None:
            if kind != "header":
                raise DataQualityError(
                    f"trace {path!r}: first record must be the header, "
                    f"got {kind!r}")
            if record.get("format") != TRACE_FORMAT:
                raise DataQualityError(
                    f"trace {path!r}: unsupported format "
                    f"{record.get('format')!r} "
                    f"(this reader speaks {TRACE_FORMAT})")
            header = record
        elif kind == "tick":
            t = record.get("t")
            if not isinstance(t, (int, float)) or not math.isfinite(t):
                # Hash-valid but non-finite: not a torn write — tampering
                # or a writer bug. Refused in both modes.
                raise DataQualityError(
                    f"trace {path!r} line {lineno}: non-finite tick time")
            ticks.append(record)
        elif kind == "end":
            if record.get("ticks") != len(ticks):
                raise DataQualityError(
                    f"trace {path!r}: end record claims "
                    f"{record.get('ticks')!r} ticks, file has {len(ticks)}")
            ended = True
        else:
            raise DataQualityError(
                f"trace {path!r} line {lineno}: unknown record kind "
                f"{kind!r}")
    if header is None:
        raise DataQualityError(f"trace {path!r} is empty")
    if not ended and not allow_unsealed:
        raise DataQualityError(
            f"trace {path!r} is unsealed: no end record ({len(ticks)} "
            f"ticks read). An unsealed trace is the normal artifact of a "
            f"crashed run — pass allow_unsealed=True to read its verified "
            f"prefix")
    meta = header.get("meta")
    recovery = TraceRecovery(
        sealed=ended,
        ticks_read=len(ticks),
        lines_total=len(lines),
        torn_line=torn_line,
        torn_reason=torn_reason,
    )
    return (meta if isinstance(meta, dict) else {}), ticks, recovery


def read_trace(
    path: str, allow_unsealed: bool = False
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read and verify a trace; returns ``(meta, tick_records)``.

    Raises :class:`~repro.errors.DataQualityError` on any integrity
    failure: unparseable lines, a broken hash chain, a bad header, an
    ``end``/tick-count mismatch, or — under the strict default — a
    missing ``end`` seal. :class:`~repro.errors.ConfigurationError`
    covers an unreadable path — that is the caller's input, not the
    file's content.

    ``allow_unsealed=True`` accepts the trace a crashed process leaves
    behind: the ``end`` seal may be missing and **at most one** torn
    final line is dropped; the returned records are the hash-verified
    prefix. Corruption before the final line is refused in both modes.
    Use :func:`recover_trace` to also get the structured
    :class:`TraceRecovery` report of what recovery did.
    """
    meta, ticks, _ = _read_verified(path, allow_unsealed)
    return meta, ticks


def recover_trace(
    path: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], TraceRecovery]:
    """Read a possibly crash-ended trace; ``(meta, ticks, recovery)``.

    The tolerant twin of :func:`read_trace`: accepts a missing ``end``
    seal, drops at most one torn final line, and reports exactly what it
    forgave in the returned :class:`TraceRecovery`. Anything recovery
    cannot explain as a single torn tail write still raises
    :class:`~repro.errors.DataQualityError`.
    """
    return _read_verified(path, allow_unsealed=True)


@dataclass
class ReplayResult:
    """Outcome of re-driving a trace through a fresh gateway+fleet."""

    ticks: int = 0
    samples: int = 0
    imu_samples: int = 0
    #: ``(tick_index, t, recorded_digest, replayed_digest)`` per mismatch.
    mismatches: List[Tuple[int, float, str, str]] = field(
        default_factory=list)
    final_sessions: int = 0

    @property
    def identical(self) -> bool:
        """Did every tick reproduce its recorded snapshot digest?"""
        return not self.mismatches


def _tick_samples(
    record: Dict[str, Any], path: str, index: int
) -> Tuple[List[RssiSample], List[ImuSample]]:
    try:
        scans = [RssiSample(float(t), float(rssi), str(beacon), int(ch))
                 for t, rssi, beacon, ch in record.get("scans", [])]
        imu = [ImuSample(float(t), float(a), float(g), float(m))
               for t, a, g, m in record.get("imu", [])]
    except (TypeError, ValueError) as exc:
        raise DataQualityError(
            f"trace {path!r} tick {index}: malformed sample row: {exc}")
    return scans, imu


def replay(
    path: str,
    pipeline_factory: PipelineFactory = default_pipeline_factory,
    allow_unsealed: bool = False,
) -> ReplayResult:
    """Re-drive a recorded trace through a fresh gateway→fleet.

    The topology is rebuilt from the trace header's recorded configs (a
    run recorded under a custom ``pipeline_factory`` must be replayed with
    the same one — the trace stores configuration, not code). Each tick's
    batches are enqueued and ticked exactly as the original drain
    committed them; the resulting snapshot digest is compared against the
    recorded one, so divergence is pinned to the first differing tick.
    ``allow_unsealed=True`` replays a crashed run's verified prefix (see
    :func:`recover_trace`).
    """
    meta, tick_records = read_trace(path, allow_unsealed=allow_unsealed)
    gateway = _gateway_from_meta(meta, pipeline_factory)
    result = ReplayResult()
    for index, record in enumerate(tick_records):
        scans, imu = _tick_samples(record, path, index)
        gateway.enqueue_scans(scans)
        gateway.enqueue_imu(imu)
        snapshots = gateway.tick(float(record["t"]))
        result.ticks += 1
        result.samples += len(scans)
        result.imu_samples += len(imu)
        replayed = snapshot_digest(snapshots)
        recorded = record.get("snap")
        if replayed != recorded:
            result.mismatches.append(
                (index, float(record["t"]), str(recorded), replayed))
    result.final_sessions = gateway.fleet.total_sessions
    return result
