"""The gateway wire protocol: length-prefixed JSON frames.

One frame on the wire is a 4-byte big-endian unsigned length followed by
that many bytes of UTF-8 JSON encoding a single object. The format is
deliberately the dumbest thing that works — a phone-side client can speak
it from any language in ten lines — while still being *checkable* at every
layer: the length prefix bounds memory before a byte of payload is parsed,
the JSON layer rejects binary garbage, and :func:`validate_frame` pins the
schema of every frame type before the gateway acts on it.

Decoding is **incremental**: a :class:`FrameDecoder` accepts arbitrary
chunkings of the byte stream (TCP segments, a slow-loris client dribbling
one byte per second) and yields complete frames as they close. Every
malformation is a typed :class:`~repro.errors.DataQualityError` — wire
bytes are *data*, and the data-error contract of the rest of the library
(checkpoints, traces) applies to them verbatim: the caller either gets a
valid frame or a typed refusal it can count, event, and answer; never a
``KeyError`` out of a half-parsed dict.

Frame schema (``proto`` version 1):

======== ==============================================================
type     payload
======== ==============================================================
hello    ``{"type":"hello","client":str,"proto":1}``
scan     ``{"type":"scan","seq":int,"beacon":str,
         "samples":[[t,rssi,channel],...]}``
imu      ``{"type":"imu","seq":int,
         "samples":[[t,accel,gyro_z,mag_heading],...]}``
bye      ``{"type":"bye"}``
welcome  ``{"type":"welcome","proto":1}``      (gateway → client)
ack      ``{"type":"ack","seq":int,"taken":int}``  (gateway → client)
error    ``{"type":"error","code":str,"detail":str}`` (gateway → client)
======== ==============================================================
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Dict, List, Tuple

from repro.errors import ConfigurationError, DataQualityError
from repro.types import ImuSample, RssiSample

__all__ = [
    "PROTO_VERSION",
    "MAX_FRAME_BYTES",
    "FrameDecoder",
    "encode_frame",
    "validate_frame",
    "scan_samples",
    "imu_samples",
]

#: Protocol version spoken by this module (echoed in hello/welcome).
PROTO_VERSION = 1

#: Default ceiling on one frame's payload. A length prefix past this is
#: refused before any allocation — the oversized-frame DoS is answered at
#: a cost of four bytes.
MAX_FRAME_BYTES = 64 * 1024

_LEN = struct.Struct(">I")

#: Client-originated frame types the gateway understands.
CLIENT_FRAME_TYPES = ("hello", "scan", "imu", "bye")


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one frame object to its wire bytes.

    Raises :class:`~repro.errors.ConfigurationError` when the object is not
    JSON-serializable or exceeds :data:`MAX_FRAME_BYTES` — encoding errors
    are caller bugs, not wire-data pathologies.
    """
    try:
        payload = json.dumps(
            obj, separators=(",", ":"), allow_nan=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"frame is not JSON-serializable: {exc}")
    if len(payload) > MAX_FRAME_BYTES:
        raise ConfigurationError(
            f"frame payload {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte wire limit"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental wire-frame decoder with bounded buffering.

    Feed it byte chunks in any fragmentation; it returns the complete
    frames each chunk closes. All failure modes raise
    :class:`~repro.errors.DataQualityError`: an oversized length prefix, a
    payload that is not UTF-8, not JSON, or not a JSON object, and a
    stream that ends mid-frame (:meth:`eof`). After an error the decoder
    is poisoned — framing on a corrupted stream cannot resynchronize, so
    the connection must be dropped.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        if max_frame_bytes < 2:
            raise ConfigurationError("max_frame_bytes must be >= 2")
        self.max_frame_bytes = int(max_frame_bytes)
        self._buf = bytearray()
        self._poisoned = False
        #: Total frames decoded over the connection's lifetime.
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume one chunk; returns every frame it completed (in order)."""
        if self._poisoned:
            raise DataQualityError(
                "frame stream already failed; connection must be reset"
            )
        self._buf.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > self.max_frame_bytes:
                self._poisoned = True
                raise DataQualityError(
                    f"frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if len(self._buf) < _LEN.size + length:
                return frames
            payload = bytes(self._buf[_LEN.size:_LEN.size + length])
            del self._buf[:_LEN.size + length]
            frames.append(self._parse(payload))
            self.frames_decoded += 1

    def _parse(self, payload: bytes) -> Dict[str, Any]:
        try:
            text = payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            self._poisoned = True
            raise DataQualityError(f"frame payload is not UTF-8: {exc}")
        try:
            obj = json.loads(text)
        except ValueError as exc:
            self._poisoned = True
            raise DataQualityError(f"frame payload is not JSON: {exc}")
        if not isinstance(obj, dict):
            self._poisoned = True
            raise DataQualityError(
                f"frame payload must be a JSON object, "
                f"got {type(obj).__name__}"
            )
        return obj

    def eof(self) -> None:
        """Declare the stream closed; raises on a truncated final frame."""
        if self._buf and not self._poisoned:
            self._poisoned = True
            raise DataQualityError(
                f"stream ended mid-frame with {len(self._buf)} "
                f"buffered bytes"
            )


def _require(frame: Dict[str, Any], key: str, types: tuple, what: str) -> Any:
    if key not in frame:
        raise DataQualityError(f"{what} frame missing {key!r}")
    value = frame[key]
    # bool is an int subclass; a frame saying {"seq": true} is junk.
    if isinstance(value, bool) and bool not in types:
        raise DataQualityError(
            f"{what} frame field {key!r} must be "
            f"{'/'.join(t.__name__ for t in types)}, got bool"
        )
    if not isinstance(value, types):
        raise DataQualityError(
            f"{what} frame field {key!r} must be "
            f"{'/'.join(t.__name__ for t in types)}, "
            f"got {type(value).__name__}"
        )
    return value


def validate_frame(frame: Dict[str, Any]) -> str:
    """Check a decoded client frame against the proto-1 schema.

    Returns the frame type on success; raises
    :class:`~repro.errors.DataQualityError` naming the first violated
    constraint otherwise. Sample *values* (finiteness of timestamps, RSSI
    plausibility) are deliberately not judged here — the gateway screens
    and counts those per sample so a frame with one poisoned reading does
    not forfeit its siblings.
    """
    if not isinstance(frame, dict):
        raise DataQualityError("frame must be a JSON object")
    ftype = frame.get("type")
    if ftype not in CLIENT_FRAME_TYPES:
        raise DataQualityError(
            f"unknown frame type {ftype!r} "
            f"(expected one of {CLIENT_FRAME_TYPES})"
        )
    if ftype == "hello":
        _require(frame, "client", (str,), "hello")
        proto = _require(frame, "proto", (int,), "hello")
        if proto != PROTO_VERSION:
            raise DataQualityError(
                f"unsupported protocol version {proto} "
                f"(this gateway speaks {PROTO_VERSION})"
            )
    elif ftype == "scan":
        seq = _require(frame, "seq", (int,), "scan")
        if seq < 0:
            raise DataQualityError("scan frame seq must be >= 0")
        _require(frame, "beacon", (str,), "scan")
        if not frame["beacon"]:
            raise DataQualityError("scan frame beacon id must be non-empty")
        samples = _require(frame, "samples", (list,), "scan")
        for row in samples:
            if (not isinstance(row, list) or len(row) != 3
                    or not all(isinstance(v, (int, float))
                               and not isinstance(v, bool) for v in row)):
                raise DataQualityError(
                    "scan frame samples must be [t, rssi, channel] "
                    "number triples"
                )
    elif ftype == "imu":
        seq = _require(frame, "seq", (int,), "imu")
        if seq < 0:
            raise DataQualityError("imu frame seq must be >= 0")
        samples = _require(frame, "samples", (list,), "imu")
        for row in samples:
            if (not isinstance(row, list) or len(row) != 4
                    or not all(isinstance(v, (int, float))
                               and not isinstance(v, bool) for v in row)):
                raise DataQualityError(
                    "imu frame samples must be "
                    "[t, accel, gyro_z, mag_heading] number quadruples"
                )
    # "bye" carries no payload.
    return ftype


def scan_samples(
    frame: Dict[str, Any],
) -> Tuple[List[RssiSample], int]:
    """Materialize a validated scan frame's rows, screening non-finite times.

    Returns ``(samples, rejected)`` — rows whose timestamp is not finite
    are dropped here (a poisoned timestamp would corrupt every later
    windowing decision), counted in ``rejected`` for the gateway to event.
    Non-finite RSSI is *kept*: the repair-mode pipeline sanitizes values
    per solve, and dropping them at the edge would hide the degradation
    from the sanitization report.
    """
    beacon_id = str(frame["beacon"])
    out: List[RssiSample] = []
    rejected = 0
    for t, rssi, channel in frame["samples"]:
        if not math.isfinite(t):
            rejected += 1
            continue
        out.append(RssiSample(float(t), float(rssi), beacon_id, int(channel)))
    return out, rejected


def imu_samples(frame: Dict[str, Any]) -> Tuple[List[ImuSample], int]:
    """Materialize a validated imu frame's rows (same screening contract)."""
    out: List[ImuSample] = []
    rejected = 0
    for t, accel, gyro_z, mag in frame["samples"]:
        if not math.isfinite(t):
            rejected += 1
            continue
        out.append(ImuSample(float(t), float(accel), float(gyro_z),
                             float(mag)))
    return out, rejected
