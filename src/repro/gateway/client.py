"""A protocol-complete simulated client with scripted transport faults.

:class:`SimulatedClient` is the gateway's sparring partner: it speaks the
frame protocol correctly — hello handshake, at-least-once delivery with
per-``seq`` acks, reconnect-and-resend after a dropped connection — while
a per-frame :class:`~repro.sim.faults.FrameFate` script makes it misbehave
in every transport-level way the hostile-input matrix names:

* **drop** — pretend to send, then wait for the ack that never comes;
  the ack timeout expires and the retry path delivers for real.
* **duplicate** — send the frame twice; the gateway's seq dedup must ack
  the second copy idempotently (``taken=0``).
* **corrupt** — flip the first payload byte (a guaranteed UTF-8 break, so
  the refusal is deterministic); the gateway hangs up with a typed
  ``bad-frame`` error and the client reconnects and resends.
* **truncate** — send half the wire bytes and slam the connection; the
  gateway counts a truncated frame, the client reconnects and resends.
* **disconnect** — close cleanly after the ack, reconnecting lazily on
  the next send (the gateway's seq memory must survive the reconnect).
* **stall** — dribble the frame with a mid-frame pause (slow-loris); a
  stall longer than the gateway's read timeout triggers its typed
  timeout hangup, and again the retry path recovers.
* **reorder** — handled upstream by :func:`apply_reorder` swapping
  adjacent frames in the schedule, since a sequential-ack client cannot
  reorder within a single in-flight window.

Retry pacing uses the deterministic jittered
:class:`~repro.service.ExponentialBackoff` (scaled down so soaks stay
fast); every recovery action lands in :class:`ClientStats` so the soak
can assert the fault matrix actually exercised each path.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, DataQualityError
from repro.gateway.frames import FrameDecoder, encode_frame
from repro.gateway.transport import ConnectionClosed, Endpoint
from repro.service.breaker import BackoffConfig, ExponentialBackoff
from repro.sim.faults import FrameFate

__all__ = ["ClientStats", "SimulatedClient", "apply_reorder"]

#: A clean fate: deliver the frame with no misbehaviour.
_CLEAN = FrameFate()


@dataclass
class ClientStats:
    """What one client did and endured over its lifetime."""

    frames_sent: int = 0
    acks: int = 0
    dup_acks: int = 0
    taken: int = 0
    retries: int = 0
    reconnects: int = 0
    timeouts: int = 0
    errors_received: int = 0
    refused: int = 0
    gave_up: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in (
            "frames_sent", "acks", "dup_acks", "taken", "retries",
            "reconnects", "timeouts", "errors_received", "refused",
            "gave_up",
        )}


def apply_reorder(
    schedule: List[Tuple[Dict[str, Any], FrameFate]],
) -> List[Tuple[Dict[str, Any], FrameFate]]:
    """Swap each reorder-fated frame with its successor (in place).

    The swap happens at the send schedule, before any wire activity —
    the client then delivers seqs out of order and the gateway's
    ``frame_reordered`` repair path must absorb it.
    """
    i = 0
    while i < len(schedule) - 1:
        if schedule[i][1].reorder:
            schedule[i], schedule[i + 1] = schedule[i + 1], schedule[i]
            i += 2
        else:
            i += 1
    return schedule


class SimulatedClient:
    """One at-least-once client connection driver against a gateway."""

    def __init__(
        self,
        client_id: str,
        gateway: Any,
        backoff: Optional[BackoffConfig] = None,
        ack_timeout_s: float = 0.25,
        max_attempts: int = 4,
        sleep_scale: float = 0.001,
    ):
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if not ack_timeout_s > 0:
            raise ConfigurationError("ack_timeout_s must be > 0")
        self.client_id = client_id
        self.gateway = gateway
        self.backoff = ExponentialBackoff(
            backoff or BackoffConfig(base_s=0.05, factor=2.0, max_s=1.0),
            key=client_id)
        self.ack_timeout_s = float(ack_timeout_s)
        self.max_attempts = int(max_attempts)
        #: Wall-sleep multiplier on backoff delays (soaks shrink it).
        self.sleep_scale = float(sleep_scale)
        self.stats = ClientStats()
        self._ep: Optional[Endpoint] = None
        self._connected_once = False
        self._decoder = FrameDecoder()
        self._pending: List[Dict[str, Any]] = []

    # -- connection lifecycle ------------------------------------------------

    async def _ensure_connected(self) -> None:
        if (self._ep is not None and not self._ep.closed
                and not self._ep.at_eof()):
            return
        if self._connected_once:
            self.stats.reconnects += 1
        self._connected_once = True
        self._ep = self.gateway.connect(name=self.client_id)
        self._decoder = FrameDecoder()
        self._pending = []
        await self._ep.send(encode_frame({
            "type": "hello", "client": self.client_id, "proto": 1,
        }))
        reply = await asyncio.wait_for(self._read_reply(),
                                       timeout=self.ack_timeout_s)
        if reply is None or reply.get("type") != "welcome":
            # "busy" refusal or a vanished gateway: surface as a typed
            # condition for the retry loop.
            raise ConnectionClosed(
                f"client {self.client_id}: handshake answered with "
                f"{(reply or {}).get('type')!r}")

    def _drop_connection(self) -> None:
        if self._ep is not None:
            self._ep.close()
            self._ep = None

    async def close(self) -> None:
        """Say bye and close cleanly (no reply expected)."""
        if self._ep is None or self._ep.closed or self._ep.at_eof():
            self._ep = None
            return
        try:
            await self._ep.send(encode_frame({"type": "bye"}))
        except ConnectionClosed:
            pass
        self._drop_connection()

    # -- the at-least-once send loop -----------------------------------------

    async def send_frame(
        self, frame: Dict[str, Any], fate: FrameFate = _CLEAN
    ) -> bool:
        """Deliver one frame until acked (or attempts are exhausted).

        Returns True once the gateway acked the frame's seq. The scripted
        ``fate`` misbehaviours fire on the *first* attempt only — retries
        deliver cleanly, which is exactly how a real lossy link recovers.
        A non-retryable refusal stops immediately: resending a frame the
        gateway rejected by policy cannot help.
        """
        seq = frame["seq"]
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                self.stats.retries += 1
                delay = self.backoff.delay_for(attempt - 1)
                await asyncio.sleep(delay * self.sleep_scale)
            acting = fate if attempt == 1 else _CLEAN
            try:
                await self._ensure_connected()
                await self._transmit(frame, acting)
                if acting.truncate:
                    # Mid-frame slam: no ack can come; reconnect+retry.
                    self._drop_connection()
                    continue
                status = await self._await_ack(seq)
            except (asyncio.TimeoutError, ConnectionClosed,
                    DataQualityError):
                # Handshake timed out, peer hung up, or the reply stream
                # was unreadable: reconnect on the next attempt.
                self._drop_connection()
                continue
            if status == "ack":
                if acting.duplicate:
                    # The idempotency probe: resend and expect a dup-ack.
                    try:
                        await self._transmit(frame, _CLEAN)
                        await self._await_ack(seq)
                    except (asyncio.TimeoutError, ConnectionClosed):
                        self._drop_connection()
                if acting.disconnect:
                    await self.close()
                return True
            if status == "refused":
                return False
            self._drop_connection()
        self.stats.gave_up += 1
        return False

    async def _transmit(
        self, frame: Dict[str, Any], fate: FrameFate
    ) -> None:
        """Put (a possibly sabotaged) frame on the wire."""
        assert self._ep is not None
        if fate.drop:
            return
        wire = encode_frame(frame)
        if fate.corrupt:
            sabotaged = bytearray(wire)
            # First payload byte: 0x7b ('{') ^ 0xff = 0x84, an invalid
            # UTF-8 start byte — the refusal is deterministic.
            sabotaged[4] ^= 0xFF
            wire = bytes(sabotaged)
        if fate.truncate:
            await self._ep.send(wire[:max(4, len(wire) // 2)])
            self.stats.frames_sent += 1
            return
        if fate.stall_s > 0:
            half = len(wire) // 2
            await self._ep.send(wire[:half])
            await asyncio.sleep(fate.stall_s)
            await self._ep.send(wire[half:])
        else:
            await self._ep.send(wire)
        self.stats.frames_sent += 1

    async def _await_ack(self, seq: int) -> str:
        """Read replies until ``seq`` resolves.

        Returns ``"ack"``, ``"refused"`` (non-retryable error),
        ``"error"`` (retryable error — the gateway is about to hang up),
        ``"timeout"`` or ``"eof"``.
        """
        while True:
            try:
                reply = await asyncio.wait_for(
                    self._read_reply(), timeout=self.ack_timeout_s)
            except asyncio.TimeoutError:
                self.stats.timeouts += 1
                return "timeout"
            if reply is None:
                return "eof"
            rtype = reply.get("type")
            if rtype == "error":
                self.stats.errors_received += 1
                if not reply.get("retryable", False):
                    self.stats.refused += 1
                    return "refused"
                return "error"
            if rtype == "ack":
                if reply.get("seq") != seq:
                    # A straggler ack (e.g. from an earlier duplicate):
                    # keep reading for ours.
                    continue
                self.stats.acks += 1
                if reply.get("dup"):
                    self.stats.dup_acks += 1
                self.stats.taken += int(reply.get("taken", 0))
                return "ack"
            # welcome or unknown reply type: keep reading.

    async def _read_reply(self) -> Optional[Dict[str, Any]]:
        """The next gateway frame (buffered or from the wire); None at EOF."""
        if self._pending:
            return self._pending.pop(0)
        assert self._ep is not None
        while True:
            chunk = await self._ep.recv()
            if chunk == b"":
                self._drop_connection()
                return None
            frames = self._decoder.feed(chunk)
            if frames:
                self._pending.extend(frames[1:])
                return frames[0]

    async def run_schedule(
        self,
        schedule: Sequence[Tuple[Dict[str, Any], FrameFate]],
    ) -> ClientStats:
        """Deliver a whole scripted schedule (reorder fates pre-applied)."""
        for frame, fate in apply_reorder(list(schedule)):
            await self.send_frame(frame, fate)
        return self.stats
