"""The ingestion gateway: many concurrent clients, one deterministic fleet.

:class:`IngestionGateway` is the asyncio edge in front of a
:class:`~repro.fleet.TrackingFleet`. Each client connection is served by
its own task speaking the length-prefixed frame protocol of
:mod:`repro.gateway.frames` over a flow-controlled
:mod:`repro.gateway.transport` pipe; accepted samples land in **bounded
per-beacon queues** that shed visibly under pressure, and a synchronous
:meth:`IngestionGateway.tick` drains those queues into the fleet in a
deterministic order. The async edge absorbs all the arrival-time chaos —
what crosses into the fleet is a plain, ordered batch per tick, which is
exactly what makes record/replay (:mod:`repro.gateway.trace`) able to
reproduce a run bit-identically.

Degradation ladder, outermost first:

1. **Transport backpressure** — a slow gateway blocks its clients' sends
   (bounded in-flight window per connection).
2. **Connection policing** — handshake required, per-connection typed
   refusal budget, read timeout for slow-loris clients, poisoned decoder
   ⇒ hang up. Every hangup is counted and evented.
3. **Frame admission** — schema validation, per-client duplicate ``seq``
   suppression (idempotent ack, so at-least-once clients are safe),
   reordered ``seq`` repair, fleet-level beacon admission.
4. **Sample screening** — non-finite timestamps and samples older than
   the late horizon are refused per sample, counted per frame.
5. **Queue shedding** — per-beacon :class:`~repro.service.BoundedBuffer`
   drop-oldest with the standard shed ritual.

Nothing in this module raises an untyped exception for anything a client
can put on the wire: every refusal or repair is a ``gateway.*`` perf
counter plus a same-named :mod:`repro.obs` event, emitted at the same
call site.
"""

from __future__ import annotations

import asyncio
import logging
import math
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro import obs, perf
from repro.errors import ConfigurationError, DataQualityError
from repro.fleet import TrackingFleet
from repro.gateway.frames import (
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    FrameDecoder,
    encode_frame,
    imu_samples,
    scan_samples,
    validate_frame,
)
from repro.gateway.transport import (
    ConnectionClosed,
    Endpoint,
    connected_pair,
    recv_with_timeout,
)
from repro.service.buffers import BoundedBuffer
from repro.service.session import SessionSnapshot
from repro.types import ImuSample, RssiSample

__all__ = ["GatewayConfig", "IngestionGateway"]

logger = logging.getLogger("repro.gateway")

#: Distinct client ids whose seq-dedup memory the gateway retains (LRU).
CLIENT_MEMORY = 1024


@dataclass(frozen=True)
class GatewayConfig:
    """Capacity and policing policy for one gateway instance.

    ``late_horizon_s`` mirrors the estimation window downstream: a sample
    older than ``last_tick - late_horizon_s`` can no longer influence any
    solve, so admitting it would only burn queue capacity — it is refused
    at the edge (counted, evented) instead of shed silently later.
    """

    max_frame_bytes: int = MAX_FRAME_BYTES
    scan_queue: int = 1024
    imu_queue: int = 8192
    max_clients: int = 64
    max_beacons: int = 512
    client_timeout_s: Optional[float] = 2.0
    max_frame_errors: int = 8
    late_horizon_s: float = 75.0
    seq_memory: int = 4096
    transport_window: int = 64

    def __post_init__(self) -> None:
        for name in ("max_frame_bytes", "scan_queue", "imu_queue",
                     "max_clients", "max_beacons", "max_frame_errors",
                     "seq_memory", "transport_window"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(f"{name} must be an int >= 1")
        if self.client_timeout_s is not None and not (
                math.isfinite(self.client_timeout_s)
                and self.client_timeout_s > 0):
            raise ConfigurationError(
                "client_timeout_s must be finite and > 0 (or None)")
        if not (math.isfinite(self.late_horizon_s)
                and self.late_horizon_s > 0):
            raise ConfigurationError("late_horizon_s must be finite and > 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_frame_bytes": self.max_frame_bytes,
            "scan_queue": self.scan_queue,
            "imu_queue": self.imu_queue,
            "max_clients": self.max_clients,
            "max_beacons": self.max_beacons,
            "client_timeout_s": self.client_timeout_s,
            "max_frame_errors": self.max_frame_errors,
            "late_horizon_s": self.late_horizon_s,
            "seq_memory": self.seq_memory,
            "transport_window": self.transport_window,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "GatewayConfig":
        if not isinstance(d, dict):
            raise DataQualityError("gateway config must be a JSON object")
        try:
            return cls(**d)
        except TypeError as exc:
            raise DataQualityError(f"bad gateway config: {exc}")


class _SeqMemory:
    """Bounded per-client memory of seen frame sequence numbers.

    Survives reconnects (it is keyed by client id, not connection), which
    is what makes retry-after-disconnect idempotent: the resent frame's
    seq is still remembered and acked without re-ingesting.
    """

    def __init__(self, maxlen: int):
        self.maxlen = maxlen
        self.max_seq = -1
        self._set: Set[int] = set()
        self._fifo: Deque[int] = deque()

    def seen(self, seq: int) -> bool:
        return seq in self._set

    def record(self, seq: int) -> bool:
        """Remember ``seq``; returns True when it arrived out of order."""
        reordered = seq < self.max_seq
        if seq > self.max_seq:
            self.max_seq = seq
        self._set.add(seq)
        self._fifo.append(seq)
        if len(self._fifo) > self.maxlen:
            self._set.discard(self._fifo.popleft())
        return reordered


class _ClientState:
    """Per-connection handshake/error bookkeeping."""

    __slots__ = ("client_id", "memory", "errors")

    def __init__(self) -> None:
        self.client_id: Optional[str] = None
        self.memory: Optional[_SeqMemory] = None
        self.errors = 0


class IngestionGateway:
    """Serves frame-protocol clients and feeds a fleet one tick at a time."""

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        fleet: Optional[TrackingFleet] = None,
    ):
        self.config = config or GatewayConfig()
        self.fleet = fleet or TrackingFleet()
        self.scan_queues: Dict[str, BoundedBuffer[RssiSample]] = {}
        self.imu_queue: BoundedBuffer[ImuSample] = BoundedBuffer(
            self.config.imu_queue, name="gateway.imu")
        #: Gateway-local refusal/repair counters (mirrored into repro.perf).
        self.counters: Dict[str, int] = {}
        self.active_clients = 0
        self.ticks = 0
        self.last_tick_t: Optional[float] = None
        #: Optional trace tap: any object with
        #: ``record_tick(t, scans, imu, snapshots)`` (see gateway.trace).
        self.tap: Optional[Any] = None
        #: Untyped exceptions that escaped a serve task — always a bug;
        #: soak/CI assert this stays empty.
        self.task_errors: List[str] = []
        self._seq_memory: "OrderedDict[str, _SeqMemory]" = OrderedDict()
        self._tasks: Set["asyncio.Task"] = set()

    # -- connection edge -----------------------------------------------------

    def connect(self, name: str = "") -> Endpoint:
        """Open a connection; returns the client end.

        A gateway already at ``max_clients`` still answers: the serve task
        sends a retryable ``busy`` error and hangs up, so the refusal is
        explicit on the wire rather than an unbounded accept queue.
        """
        client_end, server_end = connected_pair(
            self.config.transport_window, name=name)
        admitted = self.active_clients < self.config.max_clients
        if admitted:
            self.active_clients += 1
        task = asyncio.ensure_future(self._serve(server_end, admitted))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return client_end

    async def drain_clients(self) -> None:
        """Wait for every serve task to finish (after clients close)."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def _serve(self, ep: Endpoint, admitted: bool) -> None:
        state = _ClientState()
        try:
            if not admitted:
                self._event("client_rejected", reason="max_clients",
                            active=self.active_clients)
                await self._send(ep, state, {
                    "type": "error", "code": "busy",
                    "detail": "gateway at max_clients", "retryable": True,
                })
                return
            await self._serve_admitted(ep, state)
        except Exception as exc:  # noqa: BLE001 — contract violation, surfaced
            self.task_errors.append(
                f"{type(exc).__name__}: {exc} (client={state.client_id!r})")
            self._event("internal_error", severity="error",
                        client=state.client_id, error=type(exc).__name__)
        finally:
            ep.close()
            if admitted:
                self.active_clients -= 1

    async def _serve_admitted(self, ep: Endpoint, state: _ClientState) -> None:
        decoder = FrameDecoder(self.config.max_frame_bytes)
        while True:
            try:
                chunk = await recv_with_timeout(
                    ep, self.config.client_timeout_s)
            except asyncio.TimeoutError:
                # Slow-loris / stalled client: refuse the connection, not
                # the process. The client may reconnect and resend.
                self._event("client_timeout", client=state.client_id,
                            pending_bytes=decoder.pending_bytes)
                await self._send(ep, state, {
                    "type": "error", "code": "timeout",
                    "detail": "no bytes within client_timeout_s",
                    "retryable": True,
                })
                return
            if chunk == b"":
                try:
                    decoder.eof()
                except DataQualityError as exc:
                    self._event("frame_truncated", client=state.client_id,
                                detail=str(exc))
                else:
                    self._event("client_disconnected", severity="info",
                                client=state.client_id,
                                frames=decoder.frames_decoded)
                return
            try:
                frames = decoder.feed(chunk)
            except DataQualityError as exc:
                # Framing cannot resynchronize after corruption: count,
                # answer, hang up.
                self._event("frame_malformed", client=state.client_id,
                            detail=str(exc))
                await self._send(ep, state, {
                    "type": "error", "code": "bad-frame",
                    "detail": str(exc), "retryable": True,
                })
                return
            for frame in frames:
                if not await self._handle_frame(ep, state, frame):
                    return

    # -- frame handling ------------------------------------------------------

    async def _handle_frame(
        self, ep: Endpoint, state: _ClientState, frame: Dict[str, Any]
    ) -> bool:
        """Process one decoded frame; returns False to end the connection."""
        try:
            ftype = validate_frame(frame)
        except DataQualityError as exc:
            state.errors += 1
            self._event("frame_invalid", client=state.client_id,
                        detail=str(exc), errors=state.errors)
            await self._send(ep, state, {
                "type": "error", "code": "invalid",
                "detail": str(exc), "retryable": False,
            })
            if state.errors >= self.config.max_frame_errors:
                self._event("client_expelled", client=state.client_id,
                            errors=state.errors)
                return False
            return True

        if state.client_id is None and ftype != "hello":
            self._event("bad_handshake", client=None, got=ftype)
            await self._send(ep, state, {
                "type": "error", "code": "handshake",
                "detail": "first frame must be hello", "retryable": False,
            })
            return False

        if ftype == "hello":
            state.client_id = str(frame["client"])
            state.memory = self._memory_for(state.client_id)
            self._event("client_connected", severity="info",
                        client=state.client_id)
            return await self._send(ep, state, {
                "type": "welcome", "proto": PROTO_VERSION,
            })
        if ftype == "bye":
            self._event("client_bye", severity="info",
                        client=state.client_id)
            return False
        if ftype == "scan":
            return await self._handle_scan(ep, state, frame)
        return await self._handle_imu(ep, state, frame)

    async def _handle_scan(
        self, ep: Endpoint, state: _ClientState, frame: Dict[str, Any]
    ) -> bool:
        seq = frame["seq"]
        assert state.memory is not None
        if state.memory.seen(seq):
            # At-least-once delivery: the retry of an already-ingested
            # frame is acked idempotently, never re-ingested.
            self._event("frame_duplicate", severity="debug",
                        client=state.client_id, seq=seq)
            return await self._send(ep, state, {
                "type": "ack", "seq": seq, "taken": 0, "dup": True,
            })
        if state.memory.record(seq):
            self._event("frame_reordered", severity="debug",
                        client=state.client_id, seq=seq,
                        max_seq=state.memory.max_seq)
        samples, rejected = scan_samples(frame)
        if rejected:
            self._event("sample_rejected", n=rejected,
                        client=state.client_id, seq=seq)
        samples = self._screen_late(state, seq, samples)
        beacon = str(frame["beacon"])
        taken = 0
        refused: Optional[str] = None
        if samples:
            queue = self.scan_queues.get(beacon)
            if queue is None:
                if len(self.scan_queues) >= self.config.max_beacons:
                    # Edge-level admission: ack so the client stops
                    # resending (a retry cannot help), but say why.
                    self._event("admission_refused", client=state.client_id,
                                beacon=beacon, n=len(samples))
                    refused = "max_beacons"
                else:
                    queue = BoundedBuffer(self.config.scan_queue,
                                          name="gateway.scan")
                    self.scan_queues[beacon] = queue
            if queue is not None:
                taken = queue.extend(samples)
        ack: Dict[str, Any] = {"type": "ack", "seq": seq, "taken": taken}
        if refused is not None:
            ack["refused"] = refused
        return await self._send(ep, state, ack)

    async def _handle_imu(
        self, ep: Endpoint, state: _ClientState, frame: Dict[str, Any]
    ) -> bool:
        seq = frame["seq"]
        assert state.memory is not None
        if state.memory.seen(seq):
            self._event("frame_duplicate", severity="debug",
                        client=state.client_id, seq=seq)
            return await self._send(ep, state, {
                "type": "ack", "seq": seq, "taken": 0, "dup": True,
            })
        if state.memory.record(seq):
            self._event("frame_reordered", severity="debug",
                        client=state.client_id, seq=seq,
                        max_seq=state.memory.max_seq)
        samples, rejected = imu_samples(frame)
        if rejected:
            self._event("sample_rejected", n=rejected,
                        client=state.client_id, seq=seq)
        samples = self._screen_late(state, seq, samples)
        taken = self.imu_queue.extend(samples) if samples else 0
        return await self._send(ep, state, {
            "type": "ack", "seq": seq, "taken": taken,
        })

    def _screen_late(self, state: _ClientState, seq: int, samples: list) -> list:
        """Refuse stragglers older than the estimation horizon."""
        if self.last_tick_t is None or not samples:
            return samples
        horizon = self.last_tick_t - self.config.late_horizon_s
        fresh = [s for s in samples if s.timestamp >= horizon]
        n_late = len(samples) - len(fresh)
        if n_late:
            self._event("sample_late", n=n_late, client=state.client_id,
                        seq=seq, horizon=horizon)
        return fresh

    # -- the synchronous spine ----------------------------------------------

    def enqueue_scans(self, samples: List[RssiSample]) -> int:
        """Enqueue scans directly, bypassing the wire protocol.

        Same queue semantics as the framed path — beacon admission applies
        and overflow sheds with the standard ritual — minus the
        per-connection layers (handshake, seq dedup, late screening). This
        is the replay entry point: :func:`repro.gateway.trace.replay`
        drives *already-committed* batches back through the queues, and
        those cleared every edge check when they were recorded.
        """
        taken = 0
        for s in samples:
            queue = self.scan_queues.get(s.beacon_id)
            if queue is None:
                if len(self.scan_queues) >= self.config.max_beacons:
                    self._event("admission_refused", client=None,
                                beacon=s.beacon_id, n=1)
                    continue
                queue = BoundedBuffer(self.config.scan_queue,
                                      name="gateway.scan")
                self.scan_queues[s.beacon_id] = queue
            queue.append(s)
            taken += 1
        return taken

    def enqueue_imu(self, samples: List[ImuSample]) -> int:
        """Enqueue IMU samples directly (replay / in-process producers)."""
        return self.imu_queue.extend(samples)

    def tick(self, t: float) -> Dict[str, SessionSnapshot]:
        """Drain all queues into the fleet and advance it to time ``t``.

        The drain order is fully deterministic — beacons in sorted order,
        FIFO within each queue, then the IMU queue — so a recorded tick
        replays bit-identically regardless of the arrival interleaving
        that filled the queues.
        """
        if not isinstance(t, (int, float)) or not math.isfinite(t):
            raise ConfigurationError("tick time must be finite")
        scans: List[RssiSample] = []
        for beacon in sorted(self.scan_queues):
            queue = self.scan_queues[beacon]
            scans.extend(queue.items())
            queue.clear()
        imu = self.imu_queue.items()
        self.imu_queue.clear()
        if scans:
            self.fleet.ingest_scans(scans)
        if imu:
            self.fleet.ingest_imu(imu)
        snapshots = self.fleet.tick(float(t))
        self.ticks += 1
        self.last_tick_t = float(t)
        perf.count("gateway.ticks")
        if self.tap is not None:
            self.tap.record_tick(float(t), scans, imu, snapshots)
        return snapshots

    def stats(self) -> Dict[str, Any]:
        """Edge counters, queue depths and the fleet's own aggregates."""
        return {
            "counters": dict(self.counters),
            "ticks": self.ticks,
            "active_clients": self.active_clients,
            "known_clients": len(self._seq_memory),
            "scan_queues": {
                b: q.stats() for b, q in sorted(self.scan_queues.items())
            },
            "imu_queue": self.imu_queue.stats(),
            "queue_shed": (
                sum(q.shed for q in self.scan_queues.values())
                + self.imu_queue.shed
            ),
            "task_errors": list(self.task_errors),
            "fleet": self.fleet.stats(),
        }

    # -- internals -----------------------------------------------------------

    def _memory_for(self, client_id: str) -> _SeqMemory:
        memory = self._seq_memory.get(client_id)
        if memory is None:
            memory = _SeqMemory(self.config.seq_memory)
            self._seq_memory[client_id] = memory
            if len(self._seq_memory) > CLIENT_MEMORY:
                evicted, _ = self._seq_memory.popitem(last=False)
                self._event("client_memory_evicted", severity="debug",
                            client=evicted)
        else:
            self._seq_memory.move_to_end(client_id)
        return memory

    async def _send(
        self, ep: Endpoint, state: _ClientState, obj: Dict[str, Any]
    ) -> bool:
        """Best-effort reply; a vanished peer is counted, not raised."""
        try:
            await ep.send(encode_frame(obj))
            return True
        except ConnectionClosed:
            self._event("reply_dropped", severity="debug",
                        client=state.client_id,
                        frame_type=obj.get("type"))
            return False

    def _event(self, name: str, severity: str = "warning", n: int = 1,
               **fields: Any) -> None:
        """The refusal/repair ritual: local counter + perf + obs, paired.

        Every ``gateway.<name>`` perf counter increments in lockstep with
        a same-named obs event from this one call site — the parity that
        ``tests/test_gateway.py`` audits across whole soak runs.
        """
        self.counters[name] = self.counters.get(name, 0) + n
        perf.count(f"gateway.{name}", n)
        obs.emit(f"gateway.{name}", severity=severity, component="gateway",
                 n=n, **fields)
