"""In-memory asyncio byte-stream transport for the ingestion gateway.

The gateway's contract is written against a *byte stream with flow
control*, not against sockets: each connection is a duplex pair of
:class:`Endpoint` objects moving raw byte chunks through per-direction
queues gated by a bounded in-flight window. A full window makes ``send``
await — that is the transport-level half of backpressure (a slow gateway
slows its clients down), with the application-level half (bounded
per-beacon queues that shed) layered above it by the gateway.

Going in-memory rather than TCP keeps the whole edge deterministic-ish and
testable on a hermetic CI host while preserving everything the protocol
layer cares about: arbitrary chunk fragmentation, half-open closes, EOF
mid-frame, stalls. The :class:`Endpoint` API is four methods
(``send``/``recv``/``close``/``at_eof``); an adapter over a real
``asyncio.StreamReader``/``StreamWriter`` pair is mechanical when a
deployment needs real sockets.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "ConnectionClosed",
    "Endpoint",
    "connected_pair",
    "recv_with_timeout",
]

#: Sentinel queued to signal a peer-side close (EOF after draining).
_EOF = object()


class ConnectionClosed(ConfigurationError):
    """Raised when sending on a connection whose peer has gone away.

    Subclasses :class:`~repro.errors.ConfigurationError` so it stays inside
    the typed-error taxonomy: a client writing into a closed pipe is an
    expected edge event, and every gateway/client loop handles it as one.
    """


class Endpoint:
    """One end of an in-memory duplex byte pipe.

    Flow control is a counted in-flight window per direction: ``send``
    acquires a slot (awaiting when the window is exhausted), the peer's
    ``recv`` releases it. The close sentinel bypasses the window so a
    synchronous :meth:`close` always lands.
    """

    def __init__(
        self,
        inbox: "asyncio.Queue",
        peer_inbox: "asyncio.Queue",
        send_window: "asyncio.Semaphore",
        recv_window: "asyncio.Semaphore",
        name: str = "",
    ):
        self.name = name
        self._inbox = inbox
        self._peer_inbox = peer_inbox
        self._send_window = send_window
        self._recv_window = recv_window
        self._closed = False          # this side called close()
        self._peer_closed = False     # EOF sentinel consumed from the inbox
        #: Bytes this endpoint has pushed to its peer (stats/debug).
        self.bytes_sent = 0
        self.bytes_received = 0

    async def send(self, data: bytes) -> None:
        """Queue one chunk to the peer; awaits while the window is full.

        Raises :class:`ConnectionClosed` once either side has closed —
        bytes written into a dead pipe would otherwise vanish silently,
        and silent loss is exactly what this edge exists to forbid.
        """
        if self._closed or self._peer_closed:
            raise ConnectionClosed(
                f"endpoint {self.name or id(self)} is closed"
            )
        await self._send_window.acquire()
        if self._closed or self._peer_closed:
            self._send_window.release()
            raise ConnectionClosed(
                f"endpoint {self.name or id(self)} closed while sending"
            )
        self._peer_inbox.put_nowait(bytes(data))
        self.bytes_sent += len(data)

    async def recv(self) -> bytes:
        """The next chunk from the peer; ``b""`` exactly once at EOF."""
        if self._peer_closed:
            return b""
        item = await self._inbox.get()
        if item is _EOF:
            self._peer_closed = True
            return b""
        self._recv_window.release()
        self.bytes_received += len(item)
        return item

    def close(self) -> None:
        """Half-close: the peer drains what was already sent, then sees EOF."""
        if self._closed:
            return
        self._closed = True
        self._peer_inbox.put_nowait(_EOF)

    @property
    def closed(self) -> bool:
        return self._closed

    def at_eof(self) -> bool:
        """Has the peer closed and the inbox been drained to the sentinel?"""
        return self._peer_closed


def connected_pair(
    buffer_chunks: int = 64, name: str = ""
) -> Tuple[Endpoint, Endpoint]:
    """A fresh duplex connection: ``(client_end, server_end)``.

    ``buffer_chunks`` bounds each direction's in-flight chunk count — the
    transport window that turns a slow reader into a blocked writer.
    """
    if buffer_chunks < 1:
        raise ConfigurationError("buffer_chunks must be >= 1")
    a_inbox: "asyncio.Queue" = asyncio.Queue()   # chunks flowing B -> A
    b_inbox: "asyncio.Queue" = asyncio.Queue()   # chunks flowing A -> B
    window_ab = asyncio.Semaphore(buffer_chunks)
    window_ba = asyncio.Semaphore(buffer_chunks)
    client = Endpoint(a_inbox, b_inbox, window_ab, window_ba,
                      name=f"{name}:client")
    server = Endpoint(b_inbox, a_inbox, window_ba, window_ab,
                      name=f"{name}:server")
    return client, server


async def recv_with_timeout(
    endpoint: Endpoint, timeout_s: Optional[float]
) -> bytes:
    """``endpoint.recv()`` bounded by ``timeout_s`` (None = wait forever).

    Raises :class:`asyncio.TimeoutError` on expiry — the caller owns the
    slow-loris policy (count, event, refuse), this helper only enforces
    the clock.
    """
    if timeout_s is None:
        return await endpoint.recv()
    return await asyncio.wait_for(endpoint.recv(), timeout=timeout_s)
