"""``repro.gateway`` — the async ingestion edge in front of the fleet.

Layout:

* :mod:`~repro.gateway.frames` — the length-prefixed JSON wire protocol
  and its incremental, typed-error decoder.
* :mod:`~repro.gateway.transport` — in-memory flow-controlled duplex
  byte pipes (the deterministic stand-in for sockets).
* :mod:`~repro.gateway.gateway` — :class:`IngestionGateway`: concurrent
  client serving, layered admission, bounded queues, deterministic tick.
* :mod:`~repro.gateway.trace` — durable hash-chained record/replay.
* :mod:`~repro.gateway.client` — a protocol-complete simulated client
  that acts out scripted transport faults.
* :mod:`~repro.gateway.soak` — the hostile-matrix soak harness with the
  parity and replay acceptance gates.
"""

from repro.gateway.client import ClientStats, SimulatedClient, apply_reorder
from repro.gateway.frames import (
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    FrameDecoder,
    encode_frame,
    imu_samples,
    scan_samples,
    validate_frame,
)
from repro.gateway.gateway import GatewayConfig, IngestionGateway
from repro.gateway.soak import (
    GatewaySoakConfig,
    GatewaySoakResult,
    run_gateway_soak,
)
from repro.gateway.trace import (
    TRACE_FORMAT,
    ReplayResult,
    TraceRecovery,
    TraceWriter,
    read_trace,
    recover_trace,
    replay,
    snapshot_digest,
    trace_meta,
)
from repro.gateway.transport import (
    ConnectionClosed,
    Endpoint,
    connected_pair,
    recv_with_timeout,
)

__all__ = [
    "PROTO_VERSION",
    "MAX_FRAME_BYTES",
    "TRACE_FORMAT",
    "FrameDecoder",
    "encode_frame",
    "validate_frame",
    "scan_samples",
    "imu_samples",
    "ConnectionClosed",
    "Endpoint",
    "connected_pair",
    "recv_with_timeout",
    "GatewayConfig",
    "IngestionGateway",
    "TraceRecovery",
    "TraceWriter",
    "read_trace",
    "recover_trace",
    "replay",
    "ReplayResult",
    "snapshot_digest",
    "trace_meta",
    "ClientStats",
    "SimulatedClient",
    "apply_reorder",
    "GatewaySoakConfig",
    "GatewaySoakResult",
    "run_gateway_soak",
]
