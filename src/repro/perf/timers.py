"""Timer/counter registry backing the :mod:`repro.perf` facade.

The registry is deliberately tiny: a name → (count, total, min, max) map for
timers and a name → int map for counters, guarded by one lock. Overhead per
timed call is two ``perf_counter`` reads and a dict update — cheap enough to
leave on the estimator / DTW / pipeline entry points permanently, which is
the whole point: the production hot paths carry their own instrumentation
instead of needing an external profiler bolted on.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = ["TimerStats", "PerfRegistry"]


@dataclass
class TimerStats:
    """Accumulated statistics of one named timer."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


@dataclass
class PerfRegistry:
    """A named collection of wall-clock timers and event counters."""

    enabled: bool = True
    _timers: Dict[str, TimerStats] = field(default_factory=dict)
    _counters: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    # -- recording -----------------------------------------------------------

    def record(self, name: str, elapsed_s: float) -> None:
        """Add one observation to timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.add(elapsed_s)

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """``with registry.timer("estimator.fit"): ...`` — times the block."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - t0)

    def profiled(
        self, name: Optional[str] = None
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator timing every call of the wrapped function.

        The timer name defaults to ``<leaf module>.<qualname>`` so e.g.
        ``EllipticalEstimator.fit`` shows up as ``estimator.EllipticalEstimator.fit``.
        """

        def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
            label = name or (
                f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"
            )

            @wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return fn(*args, **kwargs)
                t0 = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    self.record(label, time.perf_counter() - t0)

            wrapper.__perf_name__ = label  # type: ignore[attr-defined]
            return wrapper

        return decorate

    # -- reading / lifecycle -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy of every timer and counter."""
        with self._lock:
            return {
                "timers": {k: v.as_dict() for k, v in sorted(self._timers.items())},
                "counters": dict(sorted(self._counters.items())),
            }

    def counter_value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if it never fired).

        Cheaper than :meth:`snapshot` when a test or the observability
        layer only needs to cross-check a single counter.
        """
        with self._lock:
            return self._counters.get(name, 0)

    def reset(self) -> None:
        """Drop all accumulated timers and counters."""
        with self._lock:
            self._timers.clear()
            self._counters.clear()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
