"""Lightweight performance instrumentation for the hot paths.

One process-wide registry of wall-clock timers and event counters, designed
to stay enabled in production: the estimator, ANF, DTW and pipeline entry
points are decorated with :func:`profiled`, so any long-running deployment
can ask :func:`snapshot` where its time went without attaching a profiler.

Usage::

    from repro import perf

    with perf.timer("estimator.fit"):
        estimator.fit(p, q, rss)

    perf.count("dtw.lb_rejections")
    print(perf.snapshot()["timers"]["estimator.fit"]["mean_s"])

``perf.disable()`` turns the whole subsystem into a no-op (one boolean check
per call) for overhead-sensitive sweeps; ``perf.reset()`` clears the stats
between measurement windows.
"""

from __future__ import annotations

from repro.perf.timers import PerfRegistry, TimerStats

__all__ = [
    "PerfRegistry",
    "TimerStats",
    "registry",
    "timer",
    "count",
    "record",
    "profiled",
    "snapshot",
    "counter_value",
    "reset",
    "enable",
    "disable",
]

#: The process-wide default registry used by the module-level helpers below
#: and by every ``@profiled`` hot path in the library.
registry = PerfRegistry()

timer = registry.timer
count = registry.count
record = registry.record
profiled = registry.profiled
snapshot = registry.snapshot
counter_value = registry.counter_value
reset = registry.reset
enable = registry.enable
disable = registry.disable
