"""Pretty-printer for ``BENCH_perf.json`` (the hot-path benchmark output).

``benchmarks/bench_perf_hotpaths.py`` times the vectorized hot paths against
their reference implementations and writes the results to ``BENCH_perf.json``
at the repo root. This module renders that file for humans::

    python -m repro.perf.report [path/to/BENCH_perf.json]

With no argument it looks for ``BENCH_perf.json`` in the current directory
and then walks up towards the filesystem root, so it works from anywhere
inside the repo.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["find_report", "load_report", "format_report", "main"]

REPORT_FILENAME = "BENCH_perf.json"


def find_report(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ``BENCH_perf.json`` at or above ``start`` (default: cwd)."""
    here = (start or Path.cwd()).resolve()
    for directory in [here, *here.parents]:
        candidate = directory / REPORT_FILENAME
        if candidate.is_file():
            return candidate
    return None


def load_report(path: Path) -> Dict[str, Any]:
    """Parse one benchmark report file."""
    with open(path) as fh:
        return json.load(fh)


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f} ms"
    return f"{s * 1e6:.1f} us"


def format_report(data: Dict[str, Any]) -> str:
    """Render a report dict as an aligned text table."""
    lines: List[str] = []
    header = data.get("meta", {})
    lines.append("=== repro hot-path performance report ===")
    for key in ("generated_at", "effective_cpus", "numpy"):
        if key in header:
            lines.append(f"  {key}: {header[key]}")

    benches = data.get("benches", {})
    if benches:
        name_w = max(len(n) for n in benches) + 2
        lines.append("")
        lines.append(
            f"  {'bench'.ljust(name_w)}{'before':>12}{'after':>12}"
            f"{'speedup':>10}{'target':>9}  met"
        )
        for name, row in benches.items():
            speedup = row.get("speedup", float("nan"))
            target = row.get("target_speedup")
            met = row.get("meets_target")
            lines.append(
                f"  {name.ljust(name_w)}"
                f"{_fmt_seconds(row['before_s']):>12}"
                f"{_fmt_seconds(row['after_s']):>12}"
                f"{speedup:>9.2f}x"
                + (f"{target:>8.1f}x" if target is not None else f"{'-':>9}")
                + ("  yes" if met else ("  NO" if met is not None else ""))
            )
            if row.get("note"):
                lines.append(f"  {' ' * name_w}note: {row['note']}")

    timers = data.get("perf_snapshot", {}).get("timers", {})
    if timers:
        lines.append("")
        lines.append("  -- perf timers captured during the bench --")
        name_w = max(len(n) for n in timers) + 2
        lines.append(
            f"  {'timer'.ljust(name_w)}{'calls':>8}{'total':>12}{'mean':>12}"
        )
        for name, t in timers.items():
            lines.append(
                f"  {name.ljust(name_w)}{t['count']:>8}"
                f"{_fmt_seconds(t['total_s']):>12}"
                f"{_fmt_seconds(t['mean_s']):>12}"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args:
        path = Path(args[0])
        if not path.is_file():
            print(f"error: no report at {path}", file=sys.stderr)
            return 2
    else:
        found = find_report()
        if found is None:
            print(
                f"error: no {REPORT_FILENAME} found here or above; run "
                "'python benchmarks/bench_perf_hotpaths.py' first",
                file=sys.stderr,
            )
            return 2
        path = found
    print(format_report(load_report(path)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
