"""Link-budget analysis: predicted range and margin for a deployment.

Deployment planning questions the library's models can answer directly:
"how far can this beacon be heard through that wall?", "how much margin is
left at the shelf distance?". Useful both as a user-facing tool and as the
analytical cross-check for the simulator (tests compare predicted range
against simulated packet survival).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ble.devices import BeaconProfile
from repro.ble.scanner import (
    CODED_PHY_SENSITIVITY_GAIN_DB,
    DEFAULT_SENSITIVITY_DBM,
)
from repro.channel.pathloss import distance_for_rss, rss_at
from repro.errors import ConfigurationError
from repro.types import EnvClass

__all__ = ["LinkBudget"]

#: Nominal per-class exponents for planning (class-range midpoints).
_PLANNING_N = {EnvClass.LOS: 1.95, EnvClass.P_LOS: 2.25, EnvClass.NLOS: 2.6}


@dataclass(frozen=True)
class LinkBudget:
    """Static link-budget calculator for one beacon profile.

    ``fade_margin_db`` reserves headroom for fading dips (10 dB covers the
    ~90th percentile of the simulator's Rician/shadowing combination).
    """

    profile: BeaconProfile
    env_class: str = EnvClass.LOS
    excess_loss_db: float = 0.0
    fade_margin_db: float = 10.0

    def __post_init__(self) -> None:
        if self.env_class not in _PLANNING_N:
            raise ConfigurationError(
                f"unknown environment class {self.env_class!r}")
        if self.excess_loss_db < 0 or self.fade_margin_db < 0:
            raise ConfigurationError("losses/margins must be non-negative")

    @property
    def sensitivity_dbm(self) -> float:
        s = DEFAULT_SENSITIVITY_DBM
        if self.profile.coded_phy:
            s -= CODED_PHY_SENSITIVITY_GAIN_DB
        return s

    @property
    def exponent(self) -> float:
        return _PLANNING_N[self.env_class]

    def expected_rss(self, distance_m: float) -> float:
        """Mean RSS (dBm) at ``distance_m`` under this budget."""
        return rss_at(distance_m, self.profile.gamma_dbm,
                      self.exponent) - self.excess_loss_db

    def margin_db(self, distance_m: float) -> float:
        """Headroom above sensitivity (fade margin not yet subtracted)."""
        return self.expected_rss(distance_m) - self.sensitivity_dbm

    def max_range_m(self) -> float:
        """Distance at which the faded signal hits sensitivity."""
        floor = (self.sensitivity_dbm + self.fade_margin_db
                 + self.excess_loss_db)
        return distance_for_rss(floor, self.profile.gamma_dbm, self.exponent)

    def usable_at(self, distance_m: float) -> bool:
        """Does the link close (with fade margin) at this distance?"""
        return self.margin_db(distance_m) >= self.fade_margin_db

    def report(self) -> str:
        """A small human-readable planning summary."""
        lines = [
            f"beacon        : {self.profile.name} "
            f"(Γ = {self.profile.gamma_dbm:.0f} dBm @ 1 m)",
            f"environment   : {self.env_class} "
            f"(n = {self.exponent:.2f}, excess {self.excess_loss_db:.0f} dB)",
            f"sensitivity   : {self.sensitivity_dbm:.0f} dBm"
            + (" (coded PHY)" if self.profile.coded_phy else ""),
            f"fade margin   : {self.fade_margin_db:.0f} dB",
            f"max range     : {self.max_range_m():.1f} m",
        ]
        return "\n".join(lines)
