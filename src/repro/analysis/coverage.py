"""Coverage maps: mean RSS and measurability over a floorplan grid.

Answers "where in this room can the beacon be heard / located?" by
evaluating the deterministic part of the channel (path loss + blocker
insertion loss) on a grid. The measurability map additionally applies the
link-budget fade margin, giving deployment planners the audible region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ble.devices import BEACONS, BeaconProfile
from repro.ble.scanner import (
    CODED_PHY_SENSITIVITY_GAIN_DB,
    DEFAULT_SENSITIVITY_DBM,
)
from repro.channel.pathloss import ENV_EXPONENTS, rss_at
from repro.errors import ConfigurationError
from repro.types import Vec2
from repro.world.floorplan import Floorplan

__all__ = ["CoverageMap"]


@dataclass
class CoverageMap:
    """Grid evaluation of a beacon's coverage on a floorplan."""

    floorplan: Floorplan
    beacon_position: Vec2
    profile: BeaconProfile = None
    cell_m: float = 0.5
    fade_margin_db: float = 10.0

    def __post_init__(self) -> None:
        if self.profile is None:
            self.profile = BEACONS["estimote"]
        if self.cell_m <= 0:
            raise ConfigurationError("cell_m must be positive")
        if not self.floorplan.contains(self.beacon_position):
            raise ConfigurationError("beacon must sit inside the floorplan")

    def grid(self):
        """(xs, ys) cell-centre coordinates."""
        xs = np.arange(self.cell_m / 2, self.floorplan.width, self.cell_m)
        ys = np.arange(self.cell_m / 2, self.floorplan.height, self.cell_m)
        return xs, ys

    def mean_rss_map(self, t: float = 0.0) -> np.ndarray:
        """Mean RSS (dBm) per cell, shape (len(ys), len(xs)).

        Uses the midpoint exponent of each cell's true link class, so walls
        shadow the map exactly as they shadow the simulator.
        """
        xs, ys = self.grid()
        out = np.empty((len(ys), len(xs)))
        for j, y in enumerate(ys):
            for i, x in enumerate(xs):
                rx = Vec2(float(x), float(y))
                state = self.floorplan.classify_link(
                    self.beacon_position, rx, t)
                lo, hi = ENV_EXPONENTS[state.env_class]
                n = (lo + hi) / 2.0
                out[j, i] = (rss_at(state.distance, self.profile.gamma_dbm, n)
                             - state.excess_loss_db)
        return out

    def measurable_map(self, t: float = 0.0) -> np.ndarray:
        """Boolean map: does the link close with the fade margin?"""
        sensitivity = DEFAULT_SENSITIVITY_DBM
        if self.profile.coded_phy:
            sensitivity -= CODED_PHY_SENSITIVITY_GAIN_DB
        return self.mean_rss_map(t) >= sensitivity + self.fade_margin_db

    def coverage_fraction(self, t: float = 0.0) -> float:
        """Fraction of the floorplan where the beacon is measurable."""
        m = self.measurable_map(t)
        return float(np.mean(m))

    def ascii_map(self, t: float = 0.0) -> str:
        """A terminal-friendly rendering: '#' covered, '.' not, 'B' beacon."""
        xs, ys = self.grid()
        m = self.measurable_map(t)
        bi = int(np.argmin(np.abs(xs - self.beacon_position.x)))
        bj = int(np.argmin(np.abs(ys - self.beacon_position.y)))
        rows = []
        for j in range(len(ys) - 1, -1, -1):  # north up
            row = "".join(
                "B" if (i == bi and j == bj) else ("#" if m[j, i] else ".")
                for i in range(len(xs))
            )
            rows.append(row)
        return "\n".join(rows)
