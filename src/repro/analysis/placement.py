"""Beacon placement optimisation: greedy max-coverage on a floorplan.

The deployment question after "where can one beacon be heard?" is "where
should I put *k* beacons so the whole floor is covered?". Greedy max-
coverage — repeatedly placing the next beacon where it covers the most
still-uncovered cells — carries the classic (1 - 1/e) guarantee for
submodular coverage and is exactly how integrators plan in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.coverage import CoverageMap
from repro.ble.devices import BEACONS, BeaconProfile
from repro.errors import ConfigurationError
from repro.types import Vec2
from repro.world.floorplan import Floorplan

__all__ = ["PlacementPlan", "greedy_placement"]


@dataclass
class PlacementPlan:
    """The optimiser's output: chosen spots and the coverage they achieve."""

    positions: List[Vec2]
    coverage_fraction: float
    per_step_coverage: List[float]

    def __str__(self) -> str:
        spots = ", ".join(f"({p.x:.1f}, {p.y:.1f})" for p in self.positions)
        return (f"{len(self.positions)} beacon(s) at {spots} -> "
                f"{self.coverage_fraction:.0%} coverage")


def _measurable(plan: Floorplan, candidate: Vec2, profile: BeaconProfile,
                cell_m: float, fade_margin_db: float) -> np.ndarray:
    cm = CoverageMap(plan, candidate, profile=profile, cell_m=cell_m,
                     fade_margin_db=fade_margin_db)
    return cm.measurable_map()


def greedy_placement(
    floorplan: Floorplan,
    n_beacons: int,
    profile: Optional[BeaconProfile] = None,
    cell_m: float = 1.0,
    candidate_step_m: float = 1.5,
    fade_margin_db: float = 10.0,
) -> PlacementPlan:
    """Choose ``n_beacons`` positions greedily maximising covered cells.

    Candidates lie on a ``candidate_step_m`` grid (wall cells excluded by
    construction since candidates are cell centres). Coverage is evaluated
    with the same link budget the :class:`~repro.analysis.coverage.
    CoverageMap` uses.
    """
    if n_beacons < 1:
        raise ConfigurationError("n_beacons must be >= 1")
    profile = profile or BEACONS["estimote"]

    cand_x = np.arange(candidate_step_m / 2, floorplan.width, candidate_step_m)
    cand_y = np.arange(candidate_step_m / 2, floorplan.height, candidate_step_m)
    candidates = [Vec2(float(x), float(y)) for x in cand_x for y in cand_y]
    if not candidates:
        raise ConfigurationError("no candidate positions fit the floorplan")

    # Precompute each candidate's measurable map once.
    maps = [
        _measurable(floorplan, c, profile, cell_m, fade_margin_db)
        for c in candidates
    ]
    total_cells = maps[0].size

    covered = np.zeros_like(maps[0], dtype=bool)
    chosen: List[Vec2] = []
    per_step: List[float] = []
    remaining = list(range(len(candidates)))
    for _ in range(n_beacons):
        best_idx = None
        best_gain = -1
        for i in remaining:
            gain = int(np.sum(maps[i] & ~covered))
            if gain > best_gain:
                best_gain = gain
                best_idx = i
        if best_idx is None or best_gain <= 0:
            break  # everything reachable is already covered
        covered |= maps[best_idx]
        chosen.append(candidates[best_idx])
        per_step.append(float(np.mean(covered)))
        remaining.remove(best_idx)

    return PlacementPlan(
        positions=chosen,
        coverage_fraction=float(np.mean(covered)),
        per_step_coverage=per_step,
    )
