"""Deployment analysis tools: link budgets and coverage maps."""

from repro.analysis.coverage import CoverageMap
from repro.analysis.linkbudget import LinkBudget
from repro.analysis.placement import PlacementPlan, greedy_placement

__all__ = ["CoverageMap", "LinkBudget", "PlacementPlan", "greedy_placement"]
