"""Trace sanitization: turn dirty field logs into usable RSS traces.

The paper's premise is that BLE RSS is "highly susceptible to environment
changes" (Sec. 4), and real scan logs are dirtier still: advertisements are
dropped in bursts, OS scan callbacks coalesce or reorder reports, sensor
hiccups produce NaN readings, and clock adjustments skew timestamps. The
estimation pipeline assumes a clean, time-sorted, finite trace — this module
is the boundary between the two worlds.

Two entry styles share one implementation:

* :func:`check_trace` — *strict*: verify the trace is already clean and
  raise a typed :class:`~repro.errors.DataQualityError` describing the first
  pathology found. Used by default at every pipeline entry point, so
  malformed input can never silently corrupt an estimate.
* :func:`sanitize_trace` — *repair*: sort, dedupe, drop non-finite and
  implausible readings, and return the repaired trace together with a
  structured :class:`SanitizationReport` of everything that was done and
  every anomaly (dropout gaps, rate anomalies) that was observed. Used by
  :meth:`LocBLE.estimate_robust <repro.core.pipeline.LocBLE.estimate_robust>`
  and by fault-injection experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, DataQualityError
from repro.types import RssiSample, RssiTrace

__all__ = [
    "SanitizationReport",
    "check_trace",
    "sanitize_trace",
    "robust_rate_hz",
    "RSSI_PLAUSIBLE_DBM",
    "DEFAULT_GAP_FACTOR",
]

#: Readings outside this closed dBm interval are physically implausible for
#: a BLE link (thermal floor ~-110 dBm; +20 dBm exceeds the strongest class-1
#: transmitter at zero path loss) and are treated as scanner glitches.
RSSI_PLAUSIBLE_DBM: Tuple[float, float] = (-120.0, 20.0)

#: An inter-arrival exceeding this multiple of the trace's median interval is
#: reported as a dropout gap (scan pause, bursty loss, radio contention).
DEFAULT_GAP_FACTOR = 5.0

#: Robust rates outside this band are flagged as anomalous: BLE advertising
#: below ~0.5 Hz cannot drive the pipeline's windowing, and >100 Hz exceeds
#: any phone scanner's report rate (duplicate-timestamp floods, unit bugs).
_PLAUSIBLE_RATE_HZ: Tuple[float, float] = (0.5, 100.0)


def robust_rate_hz(timestamps: np.ndarray) -> float:
    """Sampling rate from the median positive inter-arrival time.

    Unlike the trace-level mean rate ``(n-1)/duration``, the median interval
    is insensitive to dropout gaps (which stretch the duration) and to
    duplicate timestamps (zero intervals are excluded). Returns 0.0 when no
    positive interval exists (fewer than two distinct timestamps).
    """
    ts = np.sort(np.asarray(timestamps, dtype=float))
    if ts.size < 2:
        return 0.0
    dt = np.diff(ts)
    dt = dt[np.isfinite(dt) & (dt > 0.0)]
    if dt.size == 0:
        return 0.0
    return float(1.0 / np.median(dt))


@dataclass(frozen=True)
class SanitizationReport:
    """Structured account of what sanitization found and changed.

    ``clean`` means the trace needed no repair at all; ``issues`` carries a
    human-readable tag per anomaly class so experiment code can assert on
    (or tabulate) failure modes without string-matching exception messages.
    Observational findings (dropout gaps, rate anomalies) do not make a
    trace un-clean on their own — they describe degradation, not corruption.
    """

    n_input: int
    n_output: int
    n_nonfinite_dropped: int = 0
    n_implausible_dropped: int = 0
    n_duplicates_collapsed: int = 0
    was_sorted: bool = True
    dropout_gaps: Tuple[Tuple[float, float], ...] = ()
    rate_hz: float = 0.0
    rate_anomaly: bool = False
    issues: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """True when the input trace required no repair."""
        return (
            self.n_nonfinite_dropped == 0
            and self.n_implausible_dropped == 0
            and self.n_duplicates_collapsed == 0
            and self.was_sorted
        )

    @property
    def degraded(self) -> bool:
        """True when the trace was repaired or shows degradation signs."""
        return not self.clean or bool(self.dropout_gaps) or self.rate_anomaly

    @property
    def n_dropped(self) -> int:
        return self.n_input - self.n_output

    def summary(self) -> str:
        """One-line report for logs and CLI output."""
        if not self.issues:
            return f"clean trace ({self.n_output} samples, {self.rate_hz:.1f} Hz)"
        return (
            f"{self.n_input}->{self.n_output} samples, {self.rate_hz:.1f} Hz; "
            + ", ".join(self.issues)
        )


def check_trace(
    trace: RssiTrace,
    context: str = "trace",
    allow_empty: bool = True,
) -> None:
    """Strict validation: raise :class:`DataQualityError` on the first flaw.

    Checks, in order: emptiness (when disallowed), non-finite timestamps,
    non-finite RSSI values, timestamp ordering. Messages name the count and
    the remedy so a failing batch job points straight at its bad input.
    Duplicate timestamps are legal (coalesced scan reports) and pass.
    """
    if len(trace) == 0:
        if allow_empty:
            return
        raise DataQualityError(f"{context} is empty; nothing to process")
    ts = trace.timestamps()
    if not np.all(np.isfinite(ts)):
        bad = int(np.sum(~np.isfinite(ts)))
        raise DataQualityError(
            f"{context} contains {bad} non-finite timestamp(s); "
            "sanitize the log before processing"
        )
    vals = trace.values()
    if not np.all(np.isfinite(vals)):
        bad = int(np.sum(~np.isfinite(vals)))
        raise DataQualityError(
            f"{context} contains {bad} non-finite RSSI value(s); "
            "clean the log before estimation"
        )
    if np.any(np.diff(ts) < 0):
        raise DataQualityError(
            f"{context} timestamps are not sorted; sort samples by time "
            "before estimation"
        )


def sanitize_trace(
    trace: RssiTrace,
    gap_factor: float = DEFAULT_GAP_FACTOR,
    rssi_bounds: Tuple[float, float] = RSSI_PLAUSIBLE_DBM,
    collapse_duplicates: bool = True,
) -> Tuple[RssiTrace, SanitizationReport]:
    """Repair a trace and report everything found along the way.

    The repair pipeline, in order:

    1. drop samples with non-finite timestamps or RSSI;
    2. drop samples whose RSSI lies outside ``rssi_bounds`` (glitches);
    3. stable-sort the survivors by timestamp;
    4. collapse exact duplicate timestamps to one sample holding the median
       of the coalesced readings (keeping the first sample's metadata);
    5. detect dropout gaps (interval > ``gap_factor`` x median interval) and
       rate anomalies, recording them without altering the data.

    Returns the repaired trace and the :class:`SanitizationReport`. Never
    raises on dirty data — an unusably empty result is itself reported
    (``n_output == 0``) and left for the caller's policy to handle.
    """
    if gap_factor <= 1.0:
        raise ConfigurationError("gap_factor must exceed 1.0")
    lo, hi = float(rssi_bounds[0]), float(rssi_bounds[1])
    issues: List[str] = []
    n_input = len(trace)
    samples = list(trace.samples)

    finite = [
        s for s in samples
        if np.isfinite(s.timestamp) and np.isfinite(s.rssi)
    ]
    n_nonfinite = n_input - len(finite)
    if n_nonfinite:
        issues.append(f"dropped {n_nonfinite} non-finite sample(s)")

    plausible = [s for s in finite if lo <= s.rssi <= hi]
    n_implausible = len(finite) - len(plausible)
    if n_implausible:
        issues.append(
            f"dropped {n_implausible} implausible reading(s) outside "
            f"[{lo:.0f}, {hi:.0f}] dBm"
        )

    was_sorted = all(
        plausible[i].timestamp <= plausible[i + 1].timestamp
        for i in range(len(plausible) - 1)
    )
    if not was_sorted:
        plausible = sorted(plausible, key=lambda s: s.timestamp)
        issues.append("re-sorted out-of-order timestamps")

    n_duplicates = 0
    if collapse_duplicates and plausible:
        merged: List[RssiSample] = []
        group: List[RssiSample] = [plausible[0]]
        for s in plausible[1:]:
            if s.timestamp == group[0].timestamp:
                group.append(s)
                continue
            merged.append(_collapse(group))
            n_duplicates += len(group) - 1
            group = [s]
        merged.append(_collapse(group))
        n_duplicates += len(group) - 1
        if n_duplicates:
            issues.append(f"collapsed {n_duplicates} duplicate timestamp(s)")
        plausible = merged

    out = RssiTrace(plausible)
    ts = out.timestamps()
    gaps: List[Tuple[float, float]] = []
    rate = robust_rate_hz(ts)
    if ts.size >= 3 and rate > 0:
        dt = np.diff(ts)
        threshold = gap_factor / rate
        for i in np.flatnonzero(dt > threshold):
            gaps.append((float(ts[i]), float(ts[i + 1])))
        if gaps:
            issues.append(f"{len(gaps)} dropout gap(s) > {threshold:.2f} s")
    rate_anomaly = len(out) >= 2 and not (
        _PLAUSIBLE_RATE_HZ[0] <= rate <= _PLAUSIBLE_RATE_HZ[1]
    )
    if rate_anomaly:
        issues.append(f"anomalous sampling rate {rate:.2f} Hz")

    report = SanitizationReport(
        n_input=n_input,
        n_output=len(out),
        n_nonfinite_dropped=n_nonfinite,
        n_implausible_dropped=n_implausible,
        n_duplicates_collapsed=n_duplicates,
        was_sorted=was_sorted,
        dropout_gaps=tuple(gaps),
        rate_hz=rate,
        rate_anomaly=rate_anomaly,
        issues=tuple(issues),
    )
    return out, report


def _collapse(group: List[RssiSample]) -> RssiSample:
    """Merge samples sharing one timestamp into a single median reading."""
    if len(group) == 1:
        return group[0]
    first = group[0]
    return RssiSample(
        timestamp=first.timestamp,
        rssi=float(np.median([s.rssi for s in group])),
        beacon_id=first.beacon_id,
        channel=first.channel,
    )
