"""Input validation and fault tolerance for the RSS->location pipeline."""

from repro.robustness.diagnostics import EstimateDiagnostics
from repro.robustness.sanitize import (
    DEFAULT_GAP_FACTOR,
    RSSI_PLAUSIBLE_DBM,
    SanitizationReport,
    check_trace,
    robust_rate_hz,
    sanitize_trace,
)

__all__ = [
    "DEFAULT_GAP_FACTOR",
    "RSSI_PLAUSIBLE_DBM",
    "EstimateDiagnostics",
    "SanitizationReport",
    "check_trace",
    "robust_rate_hz",
    "sanitize_trace",
]
