"""Diagnostics attached to degraded (low-confidence) location estimates.

When :meth:`LocBLE.estimate_robust <repro.core.pipeline.LocBLE.estimate_robust>`
cannot run the full elliptical regression — degenerate geometry, too few
samples after sanitization, a rank-deficient solve — it returns a fallback
estimate instead of raising. The :class:`EstimateDiagnostics` carried on
that estimate records *why* confidence is zero, so degradation-curve
experiments can tabulate failure modes instead of losing them to a bare
``except`` clause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.provenance import FixProvenance
from repro.robustness.sanitize import SanitizationReport

__all__ = ["EstimateDiagnostics"]


@dataclass(frozen=True)
class EstimateDiagnostics:
    """Why and how an estimate was produced under degraded conditions.

    ``fallback`` is ``None`` when the full pipeline ran; otherwise a short
    tag naming the fallback path taken (``"range-only"`` when only a
    proximity-style range from the median RSS was possible, ``"no-data"``
    when nothing usable survived sanitization). ``failure`` carries the
    message of the pipeline error that forced the fallback.
    ``env_changes`` lists the timestamps of abrupt EnvAware environment
    changes that restarted the regression — streaming supervisors
    (:mod:`repro.service`) treat a fresh restart as a degraded-quality
    signal because the regression is warming up again.

    ``provenance`` is the :class:`repro.obs.FixProvenance` record the
    pipeline assembled for this estimate (solver facts included); streaming
    sessions enrich it with their stream-layer fields and emit it as the
    ``fix.provenance`` event.

    ``warm`` is the :class:`repro.core.estimator.WarmStartState` the solver
    derived from this fit (typed loosely to keep this module import-light):
    streaming callers carry it into the next overlapping-window solve to
    take the warm fast path.
    """

    sanitization: Optional[SanitizationReport] = None
    fallback: Optional[str] = None
    failure: Optional[str] = None
    n_samples_used: int = 0
    env_changes: Tuple[float, ...] = ()
    provenance: Optional[FixProvenance] = None
    warm: Optional[object] = None

    @property
    def full_pipeline(self) -> bool:
        """True when the regular estimation pipeline produced the result."""
        return self.fallback is None
