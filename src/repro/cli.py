"""Command-line interface: run LocBLE experiments without writing code.

Usage examples::

    python -m repro locate --scenario 1 --seed 3
    python -m repro table1 --seeds 4
    python -m repro envaware --sessions 8
    python -m repro cluster --scenario 7 --beacons 6 --seed 2
    python -m repro sweep-distance --repeats 3
    python -m repro coverage --scenario 6
    python -m repro report --scenario 1 --seed 1
    python -m repro degrade --scenario 1 --seeds 8 --loss 0 0.1 0.3
    python -m repro soak --duration 300 --loss 0.3 --outages 2 --outage-s 60
    python -m repro fleet --shards 4 --beacons 200 --migrate-at 30
    python -m repro gateway --duration 20 --drop 0.1 --corrupt 0.05 \\
        --record run.trace
    python -m repro gateway --replay run.trace
    python -m repro gateway --replay crashed.trace --allow-unsealed
    python -m repro chaos --seed 1 --kills 2 --replay-check

Every command is a thin wrapper over the public API, prints a small report
and returns 0 on success, so the CLI doubles as living documentation of the
library's entry points.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LocBLE reproduction: locate BLE beacons in simulation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("locate", help="one measurement in a Table-1 scenario")
    p.add_argument("--scenario", type=int, default=1, choices=range(1, 10))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--leg1", type=float, default=2.8)
    p.add_argument("--leg2", type=float, default=2.2)
    p.add_argument("--env-prior", choices=["auto", "off"], default="auto")
    p.add_argument("--solver", choices=["elliptical", "particle", "ekf"],
                   default="elliptical",
                   help="solver backend resolving the location")

    p = sub.add_parser("table1", help="per-environment accuracy sweep")
    p.add_argument("--seeds", type=int, default=3)

    p = sub.add_parser("envaware", help="train and score the classifier")
    p.add_argument("--sessions", type=int, default=8)
    p.add_argument("--test-sessions", type=int, default=4)

    p = sub.add_parser("cluster", help="multi-beacon clustering calibration")
    p.add_argument("--scenario", type=int, default=7, choices=range(1, 10))
    p.add_argument("--beacons", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("sweep-distance", help="accuracy vs target distance")
    p.add_argument("--repeats", type=int, default=3)

    from repro.ble.devices import BEACONS

    p = sub.add_parser("coverage", help="ASCII coverage map of a scenario")
    p.add_argument("--scenario", type=int, default=6, choices=range(1, 10))
    p.add_argument("--beacon", choices=sorted(BEACONS), default="estimote")
    p.add_argument("--cell", type=float, default=0.5)

    p = sub.add_parser("report", help="quality report for one measurement")
    p.add_argument("--scenario", type=int, default=1, choices=range(1, 10))
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "degrade",
        help="accuracy degradation curve under injected trace faults",
    )
    p.add_argument("--scenario", type=int, default=1, choices=range(1, 10))
    p.add_argument("--seeds", type=int, default=8)
    p.add_argument("--loss", type=float, nargs="+",
                   default=[0.0, 0.1, 0.3, 0.5],
                   help="bursty loss rates to sweep")
    p.add_argument("--burst", type=float, default=3.0,
                   help="mean loss burst length (samples)")
    p.add_argument("--outages", type=int, default=0,
                   help="number of scan outages per trace")
    p.add_argument("--outage-s", type=float, default=1.0)
    p.add_argument("--jitter-ms", type=float, default=0.0,
                   help="timestamp jitter sigma (ms)")
    p.add_argument("--skew-ppm", type=float, default=0.0)
    p.add_argument("--spike-rate", type=float, default=0.0)
    p.add_argument("--spike-db", type=float, default=20.0)
    p.add_argument("--nan-rate", type=float, default=0.0)
    p.add_argument("--solver", choices=["elliptical", "particle", "ekf"],
                   default="elliptical",
                   help="solver backend the faulted trials solve with")

    p = sub.add_parser(
        "soak",
        help="long-horizon streaming soak of the tracking service",
    )
    p.add_argument("--scenario", type=int, default=6, choices=range(1, 10))
    p.add_argument("--duration", type=float, default=300.0,
                   help="stream length (seconds)")
    p.add_argument("--tick", type=float, default=1.0,
                   help="ingest/step period (seconds)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--beacons", type=int, default=1)
    p.add_argument("--loss", type=float, default=0.3,
                   help="bursty scan loss rate")
    p.add_argument("--burst", type=float, default=3.0,
                   help="mean loss burst length (samples)")
    p.add_argument("--outages", type=int, default=2,
                   help="number of full scanner outages")
    p.add_argument("--outage-s", type=float, default=60.0)
    p.add_argument("--nan-rate", type=float, default=0.0)
    p.add_argument("--checkpoint-t", type=float, default=None,
                   help="stream time of a mid-run kill-and-resume check")
    p.add_argument("--batch", action="store_true",
                   help="drive ticks through the batched solve dispatch "
                        "(TrackingService.tick_batch) instead of the "
                        "sequential per-session step")
    p.add_argument("--events-log", type=str, default=None, metavar="PATH",
                   help="write the run's structured events as JSON lines "
                        "(readable by 'repro obs report')")

    p = sub.add_parser(
        "fleet",
        help="load-test the sharded tracking fleet with generated load",
    )
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--beacons", type=int, default=100)
    p.add_argument("--duration", type=float, default=60.0,
                   help="stream length (seconds)")
    p.add_argument("--tick", type=float, default=1.0,
                   help="ingest/tick period (seconds)")
    p.add_argument("--rate", type=float, default=5.0,
                   help="per-beacon advertising rate (Hz)")
    p.add_argument("--arrival", choices=["poisson", "periodic", "bursty"],
                   default="poisson")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scenario", type=int, default=6, choices=range(1, 10))
    p.add_argument("--max-sessions", type=int, default=256,
                   help="per-shard session cap")
    p.add_argument("--max-total", type=int, default=None,
                   help="fleet-wide admission cap on live sessions")
    p.add_argument("--migrate-at", type=int, default=None, metavar="TICK",
                   help="run a live migration wave before this tick")
    p.add_argument("--migrate-stride", type=int, default=2,
                   help="move every Nth session during the wave")
    p.add_argument("--loss", type=float, default=0.0,
                   help="bursty scan loss rate")
    p.add_argument("--outages", type=int, default=0,
                   help="number of full scanner outages")
    p.add_argument("--outage-s", type=float, default=10.0)

    p = sub.add_parser(
        "gateway",
        help="soak the async ingestion gateway under transport faults, "
             "or replay a recorded trace",
    )
    p.add_argument("--duration", type=float, default=30.0,
                   help="stream length (seconds)")
    p.add_argument("--tick", type=float, default=1.0,
                   help="gateway tick period (seconds)")
    p.add_argument("--beacons", type=int, default=8)
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--rate", type=float, default=4.0,
                   help="per-beacon advertising rate (Hz)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scenario", type=int, default=6, choices=range(1, 10))
    p.add_argument("--drop", type=float, default=0.0,
                   help="frame loss rate")
    p.add_argument("--dup", type=float, default=0.0,
                   help="frame duplication rate")
    p.add_argument("--reorder", type=float, default=0.0,
                   help="frame reordering rate")
    p.add_argument("--corrupt", type=float, default=0.0,
                   help="mid-flight byte-flip rate")
    p.add_argument("--truncate", type=float, default=0.0,
                   help="mid-frame connection-death rate")
    p.add_argument("--disconnect", type=float, default=0.0,
                   help="clean-disconnect rate")
    p.add_argument("--stall", type=float, default=0.0,
                   help="slow-loris stall rate")
    p.add_argument("--stall-s", type=float, default=0.05,
                   help="seconds each stalled frame pauses mid-frame")
    p.add_argument("--client-timeout", type=float, default=1.0,
                   help="gateway read timeout per connection (seconds)")
    p.add_argument("--scan-queue", type=int, default=1024,
                   help="per-beacon bounded queue capacity")
    p.add_argument("--record", type=str, default=None, metavar="PATH",
                   help="record the committed tick stream to a trace file")
    p.add_argument("--no-replay-check", action="store_true",
                   help="skip the record->replay determinism check")
    p.add_argument("--replay", type=str, default=None, metavar="PATH",
                   help="replay-only: verify an existing trace instead of "
                        "running a soak")
    p.add_argument("--allow-unsealed", action="store_true",
                   help="with --replay: accept a crash-truncated trace "
                        "(missing end seal, at most one torn final line) "
                        "and replay its verified prefix")

    p = sub.add_parser(
        "chaos",
        help="seeded crash chaos: kill, corrupt, recover, verify digests",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ticks", type=int, default=36,
                   help="workload length in ticks")
    p.add_argument("--tick", type=float, default=1.0,
                   help="tick period (seconds)")
    p.add_argument("--beacons", type=int, default=8)
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--kills", type=int, default=2,
                   help="SIGKILL-simulated process deaths")
    p.add_argument("--shard-crashes", type=int, default=2,
                   help="in-process shard-worker crashes to inject")
    p.add_argument("--checkpoint-every", type=int, default=4,
                   help="ticks between durable fleet snapshots")
    p.add_argument("--torn-prob", type=float, default=0.5,
                   help="probability a kill tears the trace's final write")
    p.add_argument("--bitflip-prob", type=float, default=0.5,
                   help="probability a kill bit-flips the newest snapshot")
    p.add_argument("--durability", choices=["flush", "fsync"],
                   default="fsync",
                   help="store/trace write policy (flush is faster)")
    p.add_argument("--workdir", type=str, default=None, metavar="DIR",
                   help="keep traces and the checkpoint store here "
                        "(default: a fresh temp directory)")
    p.add_argument("--replay-check", action="store_true",
                   help="also replay the sealed baseline trace and check "
                        "every crashed segment trace is readable")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable result instead")

    p = sub.add_parser(
        "obs",
        help="inspect a structured event log (JSON lines)",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser("report", help="summarize an event log")
    p.add_argument("log", type=str, help="path to a JSON-lines event log")
    p.add_argument("--tail", type=int, default=10,
                   help="how many newest events to print (0 disables)")

    return parser


def _cmd_locate(args) -> int:
    from repro import BeaconSpec, LocBLE, Simulator, l_shape, scenario
    from repro.core.estimator import EllipticalEstimator

    sc = scenario(args.scenario)
    rng = np.random.default_rng(args.seed)
    sim = Simulator(sc.floorplan, rng)
    walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                   leg1=args.leg1, leg2=args.leg2)
    rec = sim.simulate(walk, [BeaconSpec("b", position=sc.beacon_position)])

    estimator = EllipticalEstimator()
    if args.env_prior == "auto":
        env = sc.floorplan.classify_link(
            sc.beacon_position, sc.observer_start).env_class
        estimator = estimator.with_environment(env)
    est = LocBLE(estimator=estimator, solver=args.solver).estimate(
        rec.rssi_traces["b"], rec.observer_imu.trace)
    truth = rec.true_position_in_frame("b")

    print(f"scenario  : #{sc.index} {sc.name}")
    print(f"estimate  : ({est.position.x:+.2f}, {est.position.y:+.2f}) m")
    print(f"truth     : ({truth.x:+.2f}, {truth.y:+.2f}) m")
    print(f"error     : {est.error_to(truth):.2f} m")
    print(f"gamma / n : {est.gamma:.1f} dBm / {est.n:.2f}")
    print(f"confidence: {est.confidence:.2f}")
    return 0


def _cmd_table1(args) -> int:
    from repro import BeaconSpec, LocBLE, Simulator, l_shape, scenario
    from repro.core.estimator import EllipticalEstimator

    print(f"{'env':>3s} {'name':14s} {'class':6s} {'dist':>5s} "
          f"{'median':>7s} {'mean':>6s} {'paper':>6s}")
    for idx in range(1, 10):
        sc = scenario(idx)
        env = sc.floorplan.classify_link(
            sc.beacon_position, sc.observer_start).env_class
        errs = []
        for seed in range(args.seeds):
            rng = np.random.default_rng(seed)
            sim = Simulator(sc.floorplan, rng)
            walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                           leg1=2.8, leg2=2.2)
            rec = sim.simulate(
                walk, [BeaconSpec("b", position=sc.beacon_position)])
            est = LocBLE(
                estimator=EllipticalEstimator().with_environment(env)
            ).estimate(rec.rssi_traces["b"], rec.observer_imu.trace)
            errs.append(est.error_to(rec.true_position_in_frame("b")))
        print(f"{idx:3d} {sc.name:14s} {env:6s} {sc.nominal_distance:5.1f} "
              f"{np.median(errs):7.2f} {np.mean(errs):6.2f} "
              f"{sc.paper_accuracy_m:6.1f}")
    return 0


def _cmd_envaware(args) -> int:
    from repro.core.envaware import EnvAwareClassifier
    from repro.ml.metrics import accuracy, precision_recall_f1
    from repro.sim.datasets import EnvDatasetBuilder

    train = EnvDatasetBuilder(np.random.default_rng(20170701))
    w, y = train.build(sessions_per_class=args.sessions)
    clf = EnvAwareClassifier().fit(w, y)
    test = EnvDatasetBuilder(np.random.default_rng(20171212))
    w2, y2 = test.build(sessions_per_class=args.test_sessions)
    pred = clf.predict(w2)
    m = precision_recall_f1(np.asarray(y2), pred)
    print(f"train windows: {len(w)}  test windows: {len(w2)}")
    print(f"accuracy : {accuracy(np.asarray(y2), pred):.3f}")
    print(f"precision: {m['precision']:.3f}  (paper: 0.947)")
    print(f"recall   : {m['recall']:.3f}  (paper: 0.945)")
    return 0


def _cmd_cluster(args) -> int:
    from repro import (BeaconSpec, ClusteringCalibrator, LocBLE, Simulator,
                       Vec2, l_shape, scenario)
    from repro.core.estimator import EllipticalEstimator

    sc = scenario(args.scenario)
    rng = np.random.default_rng(args.seed)
    sim = Simulator(sc.floorplan, rng)
    walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                   leg1=2.8, leg2=2.2)
    beacons = [BeaconSpec("target", position=sc.beacon_position)]
    for k in range(max(args.beacons - 1, 0)):
        offset = Vec2.from_polar(
            0.3, 2.0 * math.pi * k / max(args.beacons - 1, 1))
        beacons.append(
            BeaconSpec(f"n{k}", position=sc.beacon_position + offset))
    rec = sim.simulate(walk, beacons)
    truth = rec.true_position_in_frame("target")
    env = sc.floorplan.classify_link(
        sc.beacon_position, sc.observer_start).env_class
    pipeline = LocBLE(estimator=EllipticalEstimator().with_environment(env))

    single = pipeline.estimate(rec.rssi_traces["target"],
                               rec.observer_imu.trace)
    result = ClusteringCalibrator(pipeline).calibrate(
        "target", rec.rssi_traces, rec.observer_imu.trace)
    print(f"scenario #{sc.index} {sc.name}, {args.beacons} beacons")
    print(f"single-beacon error : {single.error_to(truth):.2f} m")
    print(f"calibrated error    : {result.error_to(truth):.2f} m")
    print(f"cluster members     : {', '.join(result.contributors)}")
    return 0


def _cmd_sweep_distance(args) -> int:
    from repro import BeaconSpec, Floorplan, LocBLE, Simulator, Vec2, l_shape
    from repro.errors import EstimationError, InsufficientDataError

    print(f"{'distance':>8s} {'mean err':>9s}")
    for d in (2.8, 5.6, 8.4, 11.2, 14.0):
        errs = []
        for seed in range(args.repeats):
            rng = np.random.default_rng(int(d * 100) + seed)
            sim = Simulator(Floorplan("lot", 30, 20, outdoor=True), rng)
            start = Vec2(2.0, 8.0)
            beacon = start + Vec2.from_polar(d, math.radians(12.0))
            walk = l_shape(start, 0.0, leg1=2.8, leg2=2.2)
            rec = sim.simulate(walk, [BeaconSpec("b", position=beacon)])
            try:
                est = LocBLE().estimate(rec.rssi_traces["b"],
                                        rec.observer_imu.trace)
                errs.append(est.error_to(rec.true_position_in_frame("b")))
            except (EstimationError, InsufficientDataError):
                errs.append(d)
        print(f"{d:8.1f} {np.mean(errs):9.2f}")
    return 0


def _cmd_coverage(args) -> int:
    from repro.analysis import CoverageMap
    from repro.ble.devices import BEACONS
    from repro import scenario

    sc = scenario(args.scenario)
    cm = CoverageMap(sc.floorplan, sc.beacon_position,
                     profile=BEACONS[args.beacon], cell_m=args.cell)
    print(f"scenario #{sc.index} {sc.name}, beacon {args.beacon} at "
          f"{sc.beacon_position}")
    print(f"coverage: {cm.coverage_fraction():.0%} of the floor\n")
    print(cm.ascii_map())
    return 0


def _cmd_report(args) -> int:
    from repro import BeaconSpec, Simulator, l_shape, scenario
    from repro.core.reporting import session_report

    sc = scenario(args.scenario)
    rng = np.random.default_rng(args.seed)
    sim = Simulator(sc.floorplan, rng)
    walk = l_shape(sc.observer_start, sc.observer_heading_rad,
                   leg1=2.8, leg2=2.2)
    rec = sim.simulate(walk, [BeaconSpec("b", position=sc.beacon_position)])
    print(session_report(rec.rssi_traces["b"], rec.observer_imu.trace))
    truth = rec.true_position_in_frame("b")
    print(f"ground truth: ({truth.x:+.2f}, {truth.y:+.2f}) m")
    return 0


def _cmd_degrade(args) -> int:
    from repro import scenario
    from repro.sim.faults import FaultModel, degradation_sweep
    from repro.sim.montecarlo import SolverPipelineFactory, summarize

    sc = scenario(args.scenario)
    models = [
        FaultModel(
            loss_rate=loss,
            mean_burst=args.burst,
            n_outages=args.outages,
            outage_s=args.outage_s,
            jitter_s=args.jitter_ms / 1000.0,
            skew_ppm=args.skew_ppm,
            spike_rate=args.spike_rate,
            spike_db=args.spike_db,
            nan_rate=args.nan_rate,
        )
        for loss in args.loss
    ]
    print(f"scenario #{sc.index} {sc.name}, {args.seeds} seeds per point, "
          f"solver={args.solver}")
    print(f"{'loss':>5s} {'n':>3s} {'median':>7s} {'mean':>6s} {'p90':>6s}")
    sweep = degradation_sweep(
        sc, range(args.seeds), models,
        pipeline_factory=SolverPipelineFactory(solver=args.solver),
    )
    for model, errors in sweep:
        if not errors:
            print(f"{model.loss_rate:5.2f}   0  all trials refused")
            continue
        s = summarize(errors)
        print(f"{model.loss_rate:5.2f} {s.n:3d} {s.median:7.2f} "
              f"{s.mean:6.2f} {s.p90:6.2f}")
    return 0


def _cmd_soak(args) -> int:
    from repro.sim.faults import FaultModel
    from repro.sim.soak import SoakConfig, run_soak

    result = run_soak(SoakConfig(
        duration_s=args.duration,
        tick_s=args.tick,
        seed=args.seed,
        scenario_index=args.scenario,
        n_beacons=args.beacons,
        fault=FaultModel(
            loss_rate=args.loss,
            mean_burst=args.burst,
            n_outages=args.outages,
            outage_s=args.outage_s,
            nan_rate=args.nan_rate,
        ),
        checkpoint_t=args.checkpoint_t,
        events_jsonl=args.events_log,
        batch_ticks=args.batch,
    ))
    print(f"soak      : {result.duration_s:.0f} s stream, "
          f"{result.ticks} ticks, {args.beacons} beacon(s)")
    print(f"faults    : loss={args.loss:.2f} outages={args.outages}"
          f"x{args.outage_s:.0f}s nan={args.nan_rate:.2f}")
    for beacon_id in sorted(result.snapshots):
        path = " -> ".join(result.states_visited(beacon_id))
        print(f"  {beacon_id:8s}: {path}")
        dwell = result.dwell.get(beacon_id, {})
        spent = ", ".join(f"{state}={dwell[state]:.0f}s"
                          for state in sorted(dwell) if dwell[state] > 0)
        print(f"  {'':8s}  dwell: {spent}")
    counts = ", ".join(f"{k}={v}" for k, v in sorted(result.counters.items())
                       if v)
    print(f"counters  : {counts}")
    if result.checkpoint_equal is not None:
        verdict = ("bit-identical resume"
                   if result.checkpoint_equal
                   else f"DIVERGED at t={result.divergence_t}")
        print(f"checkpoint: t={args.checkpoint_t:.0f}s -> {verdict}")
    print(f"errors    : {len(result.errors)} "
          f"({result.untyped_errors} untyped)")
    for line in result.errors[:5]:
        print(f"  ! {line}")
    if result.events:
        total = sum(result.events.values())
        top = sorted(result.events.items(), key=lambda kv: (-kv[1], kv[0]))
        shown = ", ".join(f"{name}={n}" for name, n in top[:6])
        print(f"events    : {total} total ({shown})")
    if result.events_jsonl:
        print(f"event log : {result.events_jsonl} "
              f"(inspect with 'repro obs report')")
    ok = result.untyped_errors == 0 and result.checkpoint_equal is not False
    return 0 if ok else 1


def _cmd_fleet(args) -> int:
    from repro.fleet import FleetConfig, LoadTestConfig, run_load_test
    from repro.service import ServiceConfig
    from repro.sim.faults import FaultModel
    from repro.sim.load import LoadConfig

    result = run_load_test(LoadTestConfig(
        fleet=FleetConfig(
            n_shards=args.shards,
            service=ServiceConfig(max_sessions=args.max_sessions),
            max_total_sessions=args.max_total,
        ),
        load=LoadConfig(
            duration_s=args.duration,
            tick_s=args.tick,
            seed=args.seed,
            scenario_index=args.scenario,
            n_beacons=args.beacons,
            template_beacons=min(4, args.beacons),
            arrival=args.arrival,
            rate_hz=args.rate,
            fault=FaultModel(
                loss_rate=args.loss,
                n_outages=args.outages,
                outage_s=args.outage_s,
            ),
        ),
        migrate_at_tick=args.migrate_at,
        migrate_stride=args.migrate_stride,
    ))
    stats = result.stats
    print(f"fleet     : {args.shards} shard(s), {args.beacons} beacon(s), "
          f"{result.ticks} ticks over {args.duration:.0f} s")
    print(f"offered   : {result.offered_samples} samples "
          f"({result.offered_per_s:.1f}/s, {args.arrival})")
    print(f"served    : {result.fixes_total} fixes, "
          f"{result.fixes_per_s:.1f} fixes/s")
    print(f"latency   : p50={result.fix_latency_p50_ms:.1f} ms  "
          f"p99={result.fix_latency_p99_ms:.1f} ms")
    print(f"shed      : {result.shed_samples} samples "
          f"({result.shed_rate:.1%} of offered), "
          f"admission refused {stats['admission_refused']} beacon(s)")
    print(f"sessions  : {stats['sessions']} live, per shard "
          f"{stats['sessions_per_shard']}")
    if result.migrations:
        moves = ", ".join(f"{b}->s{d}" for b, d in result.migrations[:6])
        extra = ("" if len(result.migrations) <= 6
                 else f", +{len(result.migrations) - 6} more")
        print(f"migrated  : {len(result.migrations)} session(s) before tick "
              f"{args.migrate_at} ({moves}{extra})")
    print(f"errors    : {len(result.errors)} "
          f"({result.untyped_errors} untyped)")
    for line in result.errors[:5]:
        print(f"  ! {line}")
    return 0 if result.untyped_errors == 0 else 1


def _cmd_gateway(args) -> int:
    from repro.fleet import FleetConfig
    from repro.gateway import (GatewayConfig, GatewaySoakConfig,
                               replay, run_gateway_soak)
    from repro.sim.faults import TransportFaultModel
    from repro.sim.load import LoadConfig

    if args.replay is not None:
        result = replay(args.replay, allow_unsealed=args.allow_unsealed)
        print(f"replay    : {args.replay}"
              + (" (unsealed prefix)" if args.allow_unsealed else ""))
        print(f"ticks     : {result.ticks} "
              f"({result.samples} scans, {result.imu_samples} imu)")
        print(f"sessions  : {result.final_sessions} live after replay")
        if result.identical:
            print("verdict   : bit-identical snapshot stream")
            return 0
        first = result.mismatches[0]
        print(f"verdict   : DIVERGED at tick {first[0]} (t={first[1]}), "
              f"{len(result.mismatches)} mismatching tick(s)")
        return 1

    result = run_gateway_soak(GatewaySoakConfig(
        load=LoadConfig(
            duration_s=args.duration,
            tick_s=args.tick,
            seed=args.seed,
            scenario_index=args.scenario,
            n_beacons=args.beacons,
            template_beacons=min(4, args.beacons),
            rate_hz=args.rate,
        ),
        transport=TransportFaultModel(
            drop_rate=args.drop,
            duplicate_rate=args.dup,
            reorder_rate=args.reorder,
            corrupt_rate=args.corrupt,
            truncate_rate=args.truncate,
            disconnect_rate=args.disconnect,
            stall_rate=args.stall,
            stall_s=args.stall_s,
        ),
        gateway=GatewayConfig(client_timeout_s=args.client_timeout,
                              scan_queue=args.scan_queue),
        fleet=FleetConfig(n_shards=args.shards),
        n_clients=args.clients,
        seed=args.seed,
        record_path=args.record,
        replay_check=not args.no_replay_check,
    ))
    print(f"gateway   : {args.clients} client(s) -> {args.shards} shard(s), "
          f"{result.ticks} ticks over {args.duration:.0f} s")
    print(f"offered   : {result.offered_samples} scan samples, "
          f"delivered {result.delivered_samples} (scan+imu), "
          f"shed {result.queue_shed}, "
          f"{result.fleet_sessions} session(s)")
    edge = ", ".join(f"{k}={v}"
                     for k, v in sorted(result.gateway_counters.items()) if v)
    print(f"edge      : {edge or 'clean run'}")
    recovery = {"retries": 0, "reconnects": 0, "timeouts": 0, "gave_up": 0}
    for stats in result.client_stats.values():
        for key in recovery:
            recovery[key] += stats[key]
    print(f"clients   : " + ", ".join(f"{k}={v}"
                                      for k, v in recovery.items()))
    print(f"errors    : {len(result.errors)} "
          f"({result.untyped_errors} untyped)")
    for line in result.errors[:5]:
        print(f"  ! {line}")
    if result.parity_failures:
        print(f"parity    : FAILED for {result.parity_failures}")
    if result.trace_path:
        print(f"trace     : {result.trace_path}")
    if result.replay_result is not None:
        verdict = ("bit-identical snapshot stream"
                   if result.replay_result.identical
                   else f"DIVERGED "
                        f"({len(result.replay_result.mismatches)} ticks)")
        print(f"replay    : {verdict}")
    print(f"verdict   : {'PASS' if result.passed else 'FAIL'}")
    return 0 if result.passed else 1


def _cmd_chaos(args) -> int:
    import json as _json

    from repro.durability.chaos import ChaosConfig, format_report, run_chaos

    result = run_chaos(
        ChaosConfig(
            seed=args.seed,
            ticks=args.ticks,
            tick_s=args.tick,
            n_beacons=args.beacons,
            n_shards=args.shards,
            kills=args.kills,
            shard_crashes=args.shard_crashes,
            checkpoint_every=args.checkpoint_every,
            torn_write_prob=args.torn_prob,
            bitflip_prob=args.bitflip_prob,
            durability=args.durability,
            replay_check=args.replay_check,
        ),
        workdir=args.workdir,
    )
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_report(result))
    return 0 if result.passed else 1


def _cmd_obs(args) -> int:
    from repro.obs.report import main as obs_report_main

    argv = [args.log, "--tail", str(args.tail)]
    return obs_report_main(argv)


_COMMANDS = {
    "locate": _cmd_locate,
    "table1": _cmd_table1,
    "envaware": _cmd_envaware,
    "cluster": _cmd_cluster,
    "sweep-distance": _cmd_sweep_distance,
    "coverage": _cmd_coverage,
    "report": _cmd_report,
    "degrade": _cmd_degrade,
    "soak": _cmd_soak,
    "fleet": _cmd_fleet,
    "gateway": _cmd_gateway,
    "chaos": _cmd_chaos,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
