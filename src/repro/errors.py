"""Exception hierarchy for the LocBLE reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class DataQualityError(ConfigurationError):
    """Measurement data is malformed or degraded beyond use.

    Distinguishes *data pathologies* (NaN RSS from a flaky scanner, unsorted
    or duplicate timestamps, zero-duration traces) from *caller bugs*
    (:class:`ConfigurationError` proper: bad parameters, mismatched array
    shapes). It derives from :class:`ConfigurationError` so existing callers
    that catch the broader class keep working; new code should catch this
    class to handle dirty field logs specifically — typically by routing the
    trace through :func:`repro.robustness.sanitize_trace` and retrying.
    """


class InsufficientDataError(ReproError):
    """An algorithm received too few samples to produce a meaningful result.

    The paper requires ~80 % of a 3.5-5 m L-shaped walk (Sec. 7.6.2); below
    that the regression is under-determined and we refuse to guess.
    """


class EstimationError(ReproError):
    """Location estimation failed to converge or produced no valid solution."""


class DegenerateGeometryError(EstimationError):
    """The measurement geometry cannot constrain the estimate.

    Raised when every candidate regression is rank-deficient or no
    path-loss exponent yields a valid solve — typically a standstill walk,
    a perfectly collinear trace, or RSS with no distance structure. Derives
    from :class:`EstimationError` so existing handlers keep working;
    :meth:`repro.core.pipeline.LocBLE.estimate_robust` converts it into a
    zero-confidence fallback estimate instead of propagating it.
    """


class PacketError(ReproError):
    """A BLE advertising PDU could not be encoded or decoded."""


class NotFittedError(ReproError):
    """A learning component was used before :meth:`fit` was called."""


class GeometryError(ReproError):
    """A geometric primitive was given degenerate input."""
