"""Exception hierarchy for the LocBLE reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class InsufficientDataError(ReproError):
    """An algorithm received too few samples to produce a meaningful result.

    The paper requires ~80 % of a 3.5-5 m L-shaped walk (Sec. 7.6.2); below
    that the regression is under-determined and we refuse to guess.
    """


class EstimationError(ReproError):
    """Location estimation failed to converge or produced no valid solution."""


class PacketError(ReproError):
    """A BLE advertising PDU could not be encoded or decoded."""


class NotFittedError(ReproError):
    """A learning component was used before :meth:`fit` was called."""


class GeometryError(ReproError):
    """A geometric primitive was given degenerate input."""
