"""iBeacon-style 4-zone proximity classification (the status quo, Sec. 1).

Existing beacon apps expose "1-dimensional, four proximity zones (immediate,
near, far, and unknown)" — the coarse feature LocBLE improves on. The zone
thresholds follow the conventional iBeacon ranging bands. Also provides the
short-range proximity distance estimate the last-metre extension uses
(Sec. 9.2: "Bluetooth proximity actually demonstrates fairly good accuracy
within 2 m").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.pathloss import distance_for_rss
from repro.errors import InsufficientDataError
from repro.types import RssiTrace

__all__ = ["ProximityZone", "ProximityEstimator"]


class ProximityZone:
    """The four iBeacon proximity zones."""

    IMMEDIATE = "immediate"  # < 0.5 m
    NEAR = "near"            # 0.5 – 3 m
    FAR = "far"              # 3 m – edge of coverage
    UNKNOWN = "unknown"      # no usable signal

    ALL = (IMMEDIATE, NEAR, FAR, UNKNOWN)


@dataclass
class ProximityEstimator:
    """Zone classifier + short-range distance estimator."""

    gamma_dbm: float = -59.0
    n: float = 2.0
    immediate_threshold_m: float = 0.5
    near_threshold_m: float = 3.0
    unknown_floor_dbm: float = -95.0
    smoothing_window: int = 8

    def _smoothed_rss(self, trace: RssiTrace) -> Optional[float]:
        if len(trace) == 0:
            return None
        vals = trace.values()
        w = min(self.smoothing_window, len(vals))
        return float(np.mean(vals[-w:]))

    def zone(self, trace: RssiTrace) -> str:
        """Classify the latest readings into a proximity zone."""
        rss = self._smoothed_rss(trace)
        if rss is None or rss < self.unknown_floor_dbm:
            return ProximityZone.UNKNOWN
        d = distance_for_rss(rss, self.gamma_dbm, self.n)
        if d < self.immediate_threshold_m:
            return ProximityZone.IMMEDIATE
        if d < self.near_threshold_m:
            return ProximityZone.NEAR
        return ProximityZone.FAR

    def short_range_distance(self, trace: RssiTrace) -> float:
        """Distance estimate intended for the < 2 m regime.

        At short range the log model is steep in RSS, so inversion is
        comparatively accurate — the basis of the last-metre snap.
        """
        rss = self._smoothed_rss(trace)
        if rss is None:
            raise InsufficientDataError("empty trace")
        return distance_for_rss(rss, self.gamma_dbm, self.n)
