"""Comparison baselines: Dartle-style ranging, proximity zones, trilateration."""

from repro.baselines.dartle import DartleRanger
from repro.baselines.fingerprint import DistanceFingerprint, FingerprintLocator
from repro.baselines.proximity import ProximityEstimator, ProximityZone
from repro.baselines.trilateration import WalkTrilaterator, trilaterate

__all__ = [
    "DartleRanger", "DistanceFingerprint", "FingerprintLocator",
    "ProximityEstimator", "ProximityZone",
    "WalkTrilaterator", "trilaterate",
]
