"""Classic multi-anchor trilateration — a reference point outside the paper.

LocBLE's whole premise is locating a beacon with a *single* phone and no
anchors. For experiments that want an upper-reference (what infrastructure
would buy you), this baseline solves the standard linearised trilateration
from several known observer positions with per-position range estimates —
equivalent to treating sampled points of the walk as anchors with the
fixed-parameter ranger attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import EstimationError, InsufficientDataError
from repro.types import Vec2

__all__ = ["trilaterate", "WalkTrilaterator"]


def trilaterate(anchors: Sequence[Vec2], ranges: Sequence[float]) -> Vec2:
    """Least-squares position from >= 3 anchors with measured ranges.

    Uses the standard linearisation against the first anchor:
    subtracting the first range equation from the others removes the
    quadratic unknowns.
    """
    if len(anchors) != len(ranges):
        raise EstimationError("anchors and ranges must align")
    if len(anchors) < 3:
        raise InsufficientDataError("trilateration needs >= 3 anchors")
    a0 = anchors[0]
    r0 = ranges[0]
    rows = []
    rhs = []
    for a, r in zip(anchors[1:], ranges[1:]):
        rows.append([2.0 * (a.x - a0.x), 2.0 * (a.y - a0.y)])
        rhs.append(
            r0 * r0 - r * r + a.x * a.x - a0.x * a0.x + a.y * a.y - a0.y * a0.y
        )
    design = np.asarray(rows, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if np.linalg.matrix_rank(design) < 2:
        raise EstimationError("anchors are collinear; position is ambiguous "
                              "perpendicular to the line")
    sol, *_ = np.linalg.lstsq(design, rhs, rcond=None)
    return Vec2(float(sol[0]), float(sol[1]))


@dataclass
class WalkTrilaterator:
    """Trilateration over sampled walk positions with log-model ranges."""

    gamma_dbm: float = -59.0
    n: float = 2.0
    n_anchors: int = 5

    def estimate(
        self, positions: List[Vec2], rss: Sequence[float]
    ) -> Vec2:
        """Pick spread anchors along the walk and trilaterate.

        ``positions`` are measurement-frame observer positions aligned with
        the ``rss`` readings.
        """
        if len(positions) != len(rss):
            raise EstimationError("positions and rss must align")
        if len(positions) < self.n_anchors:
            raise InsufficientDataError(
                f"need >= {self.n_anchors} samples, got {len(positions)}"
            )
        idx = np.linspace(0, len(positions) - 1, self.n_anchors).astype(int)
        anchors = [positions[i] for i in idx]
        ranges = [
            10.0 ** ((self.gamma_dbm - rss[i]) / (10.0 * self.n)) for i in idx
        ]
        return trilaterate(anchors, ranges)
